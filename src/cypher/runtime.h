#ifndef MBQ_CYPHER_RUNTIME_H_
#define MBQ_CYPHER_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "cypher/ast.h"
#include "nodestore/graph_db.h"

namespace mbq::exec {
class ThreadPool;
}  // namespace mbq::exec

namespace mbq::cache {
class AdjacencyCache;
}  // namespace mbq::cache

namespace mbq::cypher {

using common::Value;
using nodestore::GraphDb;
using nodestore::NodeId;
using nodestore::RelId;

/// A runtime value flowing through query execution: a plain Value, a node
/// reference, a relationship reference, or a path.
struct RtValue {
  enum class Kind : uint8_t { kNull, kValue, kNode, kRel, kPath };

  Kind kind = Kind::kNull;
  Value value;
  NodeId node = nodestore::kInvalidNode;
  RelId rel = nodestore::kInvalidRel;
  std::vector<NodeId> path;

  static RtValue Null() { return RtValue(); }
  static RtValue FromValue(Value v) {
    RtValue r;
    r.kind = v.is_null() ? Kind::kNull : Kind::kValue;
    r.value = std::move(v);
    return r;
  }
  static RtValue FromNode(NodeId id) {
    RtValue r;
    r.kind = Kind::kNode;
    r.node = id;
    return r;
  }
  static RtValue FromRel(RelId id) {
    RtValue r;
    r.kind = Kind::kRel;
    r.rel = id;
    return r;
  }
  static RtValue FromPath(std::vector<NodeId> nodes) {
    RtValue r;
    r.kind = Kind::kPath;
    r.path = std::move(nodes);
    return r;
  }

  bool is_null() const { return kind == Kind::kNull; }

  bool Equals(const RtValue& other) const;
  /// Total order for ORDER BY / DISTINCT: null < value < node < rel < path.
  int Compare(const RtValue& other) const;
  size_t Hash() const;
  std::string ToString() const;
};

/// One result row; slots are assigned by the planner.
using Row = std::vector<RtValue>;

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const RtValue& v : row) h = h * 1315423911u + v.Hash();
    return h;
  }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

/// Query parameters by name.
using Params = std::unordered_map<std::string, Value>;

/// Shared state for one query execution.
struct ExecContext {
  GraphDb* db = nullptr;
  const Params* params = nullptr;
  /// Set by Apply while driving its right side: scans start from this row
  /// instead of an empty one, so already-bound slots carry across.
  const Row* outer_row = nullptr;
  /// Morsel-parallel execution: with `threads > 1` and a pool, eligible
  /// aggregation pipelines fan their input out across worker threads.
  /// Worker pipelines run with a thread-local copy where pool is null and
  /// threads is 1 (no nested parallelism).
  exec::ThreadPool* pool = nullptr;
  uint32_t threads = 1;
  /// Db hits charged by worker threads (the session adds them to the
  /// caller thread's own tally for QueryResult::db_hits). May be null.
  std::atomic<uint64_t>* side_hits = nullptr;
  /// Hot adjacency cache consulted by Expand; null disables it. Shared by
  /// all worker pipelines of a query (internally sharded and locked), and
  /// propagated to workers by the context copy in parallel.cc.
  cache::AdjacencyCache* adj_cache = nullptr;
};

/// Variable -> slot assignment produced by the planner.
using SlotMap = std::unordered_map<std::string, uint32_t>;

/// Evaluates a non-aggregate expression against a row. Pattern predicates
/// probe the store (and therefore cost db hits, as in Cypher).
Result<RtValue> EvalExpr(const Expr& expr, const Row& row,
                         const SlotMap& slots, ExecContext* ctx);

/// Evaluates an expression expected to be a boolean predicate.
Result<bool> EvalPredicate(const Expr& expr, const Row& row,
                           const SlotMap& slots, ExecContext* ctx);

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_RUNTIME_H_
