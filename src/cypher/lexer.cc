#include "cypher/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace mbq::cypher {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();
  // Line/column bookkeeping for error messages and diagnostic spans.
  // `line_start` is the offset of the first byte of the current line.
  uint32_t line = 1;
  size_t line_start = 0;
  auto column_of = [&](size_t pos) {
    return static_cast<uint32_t>(pos - line_start + 1);
  };
  auto at = [&](size_t pos) {
    return "at line " + std::to_string(line) + ", column " +
           std::to_string(column_of(pos));
  };
  auto push = [&](TokenKind kind, std::string text, size_t pos) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.position = pos;
    t.line = line;
    t.column = column_of(pos);
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') {
        ++line;
        line_start = i + 1;
      }
      ++i;
      continue;
    }
    size_t pos = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(query[i])) ++i;
      push(TokenKind::kIdentifier, query.substr(start, i - start), pos);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) ++i;
      bool is_float = false;
      if (i + 1 < n && query[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(query[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) ++i;
      }
      std::string text = query.substr(start, i - start);
      Token t;
      t.position = pos;
      t.line = line;
      t.column = column_of(pos);
      t.text = text;
      if (is_float) {
        t.kind = TokenKind::kFloat;
        MBQ_ASSIGN_OR_RETURN(t.float_value, ParseDouble(text));
      } else {
        t.kind = TokenKind::kInteger;
        MBQ_ASSIGN_OR_RETURN(t.int_value, ParseInt64(text));
      }
      tokens.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '$': {
        ++i;
        size_t start = i;
        while (i < n && IsIdentChar(query[i])) ++i;
        if (start == i) {
          return Status::InvalidArgument("empty parameter name " + at(pos));
        }
        push(TokenKind::kParameter, query.substr(start, i - start), pos);
        break;
      }
      case '\'':
      case '"': {
        char quote = c;
        ++i;
        std::string text;
        bool closed = false;
        // Strings may span lines; keep the line bookkeeping exact so
        // later tokens still report correct positions.
        auto track_newline = [&](size_t offset) {
          if (query[offset] == '\n') {
            ++line;
            line_start = offset + 1;
          }
        };
        while (i < n) {
          if (query[i] == '\\' && i + 1 < n) {
            text += query[i + 1];
            track_newline(i + 1);
            i += 2;
            continue;
          }
          if (query[i] == quote) {
            closed = true;
            ++i;
            break;
          }
          track_newline(i);
          text += query[i++];
        }
        if (!closed) {
          return Status::InvalidArgument("unterminated string " + at(pos));
        }
        push(TokenKind::kString, std::move(text), pos);
        break;
      }
      case '(':
        push(TokenKind::kLParen, "(", pos);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, ")", pos);
        ++i;
        break;
      case '[':
        push(TokenKind::kLBracket, "[", pos);
        ++i;
        break;
      case ']':
        push(TokenKind::kRBracket, "]", pos);
        ++i;
        break;
      case '{':
        push(TokenKind::kLBrace, "{", pos);
        ++i;
        break;
      case '}':
        push(TokenKind::kRBrace, "}", pos);
        ++i;
        break;
      case ':':
        push(TokenKind::kColon, ":", pos);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma, ",", pos);
        ++i;
        break;
      case '.':
        if (i + 1 < n && query[i + 1] == '.') {
          push(TokenKind::kDotDot, "..", pos);
          i += 2;
        } else {
          push(TokenKind::kDot, ".", pos);
          ++i;
        }
        break;
      case '*':
        push(TokenKind::kStar, "*", pos);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, "=", pos);
        ++i;
        break;
      case '<':
        if (i + 1 < n && query[i + 1] == '>') {
          push(TokenKind::kNe, "<>", pos);
          i += 2;
        } else if (i + 1 < n && query[i + 1] == '=') {
          push(TokenKind::kLe, "<=", pos);
          i += 2;
        } else if (i + 1 < n && query[i + 1] == '-') {
          push(TokenKind::kArrowLeftDash, "<-", pos);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", pos);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && query[i + 1] == '=') {
          push(TokenKind::kGe, ">=", pos);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", pos);
          ++i;
        }
        break;
      case '-':
        if (i + 1 < n && query[i + 1] == '>') {
          push(TokenKind::kArrowRight, "->", pos);
          i += 2;
        } else {
          push(TokenKind::kDash, "-", pos);
          ++i;
        }
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' " + at(pos));
    }
  }
  push(TokenKind::kEnd, "", n);
  return tokens;
}

}  // namespace mbq::cypher
