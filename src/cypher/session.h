#ifndef MBQ_CYPHER_SESSION_H_
#define MBQ_CYPHER_SESSION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cypher/planner.h"
#include "cypher/runtime.h"

namespace mbq::cypher {

/// A finished query's output plus its profile.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  /// Record accesses charged to this execution (PROFILE's db hits).
  uint64_t db_hits = 0;
  /// True if the plan came from the plan cache (no re-compilation).
  bool plan_cached = false;
  /// Indented plan tree with per-operator rows and db hits (for EXPLAIN,
  /// the shape only — the query never executed).
  std::string profile;
  /// True when the query carried a PROFILE prefix.
  bool profiled = false;
  /// True when the query carried an EXPLAIN prefix: the plan was compiled
  /// but not executed, so `rows` is empty and `db_hits` is 0.
  bool explain_only = false;
};

/// The declarative query interface over the record-store engine: parse ->
/// plan -> execute, with a plan cache keyed by query text. Parameterized
/// queries ($param) reuse cached plans across executions — the speedup
/// the paper attributes to "specifying parameters, because it allows
/// Cypher to cache the execution plans".
class CypherSession {
 public:
  explicit CypherSession(GraphDb* db) : db_(db) {}

  CypherSession(const CypherSession&) = delete;
  CypherSession& operator=(const CypherSession&) = delete;

  /// Parses (or fetches from cache), plans and runs `query`. A leading
  /// `PROFILE` keyword marks the result profiled (the operator tree with
  /// per-operator rows and db hits, Neo4j's PROFILE verb); a leading
  /// `EXPLAIN` compiles and returns the plan shape without executing.
  Result<QueryResult> Run(const std::string& query, const Params& params);
  Result<QueryResult> Run(const std::string& query) {
    return Run(query, Params{});
  }

  /// Compiles without executing; useful for EXPLAIN-style tests.
  Result<const PlannedQuery*> Prepare(const std::string& query);

  /// Enables/disables the plan cache (the cold-cache ablation measures
  /// the recompilation cost the paper mentions).
  void SetPlanCacheEnabled(bool enabled) { plan_cache_enabled_ = enabled; }

  uint64_t plan_cache_hits() const { return plan_cache_hits_; }
  uint64_t plan_cache_misses() const { return plan_cache_misses_; }
  void ClearPlanCache() { plan_cache_.clear(); }

 private:
  GraphDb* db_;
  bool plan_cache_enabled_ = true;
  bool last_prepare_was_cache_hit_ = false;
  uint64_t plan_cache_hits_ = 0;
  uint64_t plan_cache_misses_ = 0;
  std::unordered_map<std::string, std::unique_ptr<PlannedQuery>> plan_cache_;
  /// Most recent plan compiled with the cache disabled (kept alive for
  /// the caller of Prepare/Run).
  std::unique_ptr<PlannedQuery> uncached_plan_;
};

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_SESSION_H_
