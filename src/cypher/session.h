#ifndef MBQ_CYPHER_SESSION_H_
#define MBQ_CYPHER_SESSION_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/adjacency_cache.h"
#include "cache/result_cache.h"
#include "cypher/diag.h"
#include "cypher/planner.h"
#include "cypher/runtime.h"
#include "store/delta/snapshot.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace mbq::exec {
class ThreadPool;
}  // namespace mbq::exec

namespace mbq::cypher {

/// A finished query's output plus its profile.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  /// Record accesses charged to this execution (PROFILE's db hits).
  uint64_t db_hits = 0;
  /// True if the plan came from the plan cache (no re-compilation).
  bool plan_cached = false;
  /// True if the rows came from the result cache (no re-execution).
  bool result_cached = false;
  /// Indented plan tree with per-operator rows and db hits (for EXPLAIN,
  /// the shape only — the query never executed). With the result cache
  /// enabled the first line is `cache=hit` or `cache=miss`.
  std::string profile;
  /// True when the query carried a PROFILE prefix.
  bool profiled = false;
  /// True when the query carried an EXPLAIN prefix: the plan was compiled
  /// but not executed, so `rows` is empty and `db_hits` is 0.
  bool explain_only = false;
  /// True when the query carried a LINT prefix: the query was parsed and
  /// semantically analyzed but never planned or executed; `rows` holds
  /// one (severity, rule, at, message) row per diagnostic and `profile`
  /// the rendered diagnostic lines.
  bool lint_only = false;
};

/// Everything a session can be tuned with, in one struct — threads (what
/// SetThreads configured), the plan cache, and the two read caches. Apply
/// with CypherSession::Configure before issuing concurrent queries.
struct SessionOptions {
  /// Worker count for eligible pipelines; 0 keeps the session's current
  /// setting (the CYPHER_THREADS default), 1 is fully sequential.
  uint32_t threads = 0;
  /// Borrowed pool for parallel execution; null uses the process default.
  exec::ThreadPool* pool = nullptr;
  /// Plan cache (compiled operator trees keyed by query text).
  bool plan_cache = true;
  /// Result cache: canonicalized query text + parameters -> rows, served
  /// without re-execution until a write bumps an epoch in the plan's
  /// footprint.
  bool result_cache = false;
  size_t result_cache_capacity = 256;  // entries
  /// Hot adjacency cache consulted by the Expand operator.
  bool adjacency_cache = false;
  size_t adjacency_cache_capacity = 4096;  // entries
  /// Neighbor lists shorter than this are not cached (hub-only caching).
  uint64_t adjacency_min_degree = 8;
  /// Strict mode: refuse to plan/execute queries carrying semantic
  /// diagnostics at or above this severity (kError rejects mistyped
  /// labels and undefined variables; kOff, the default, only reports).
  /// LINT and EXPLAIN always run regardless of this setting.
  LintLevel lint_level = LintLevel::kOff;
  /// Executions taking at least this many milliseconds are captured by
  /// the slow-query flight recorder (obs::FlightRecorder::Global(),
  /// served at /slow and shell :slow). 0 captures every query; -1 (the
  /// default) keeps the session's current threshold — the
  /// MBQ_SLOW_QUERY_MILLIS environment variable when set, else 50 ms.
  int64_t slow_query_millis = -1;
};

/// The declarative query interface over the record-store engine: parse ->
/// plan -> execute, with a plan cache keyed by query text. Parameterized
/// queries ($param) reuse cached plans across executions — the speedup
/// the paper attributes to "specifying parameters, because it allows
/// Cypher to cache the execution plans".
/// Thread-safety: Run/Prepare may be called from concurrent threads over
/// the same session. The plan cache is mutex-guarded and single-flight
/// (two threads racing on the same uncached query text compile it once);
/// cached plan trees are immutable — every execution clones the operator
/// tree, so concurrent runs of one plan never share runtime state. The
/// result and adjacency caches are internally sharded and locked;
/// Configure itself must not race concurrent queries.
class CypherSession {
 public:
  explicit CypherSession(GraphDb* db);

  CypherSession(const CypherSession&) = delete;
  CypherSession& operator=(const CypherSession&) = delete;

  /// Parses (or fetches from cache), plans and runs `query`. A leading
  /// `PROFILE` keyword marks the result profiled (the operator tree with
  /// per-operator rows and db hits, Neo4j's PROFILE verb); a leading
  /// `EXPLAIN` compiles and returns the plan shape without executing.
  /// With the result cache enabled, a repeated (query, params) pair whose
  /// epoch stamp is still valid returns the memoized rows with zero db
  /// hits and `result_cached` set.
  Result<QueryResult> Run(const std::string& query, const Params& params);
  Result<QueryResult> Run(const std::string& query) {
    return Run(query, Params{});
  }

  /// Compiles without executing; useful for EXPLAIN-style tests. Never
  /// enforces the lint level (the compiled plan carries its diagnostics
  /// for inspection instead).
  Result<const PlannedQuery*> Prepare(const std::string& query);

  /// Parses and semantically analyzes `query` (no LINT prefix) without
  /// planning, executing, touching the result cache, or bumping the
  /// cypher.query.* metrics. Parse failures come back as a single
  /// error-level `parse-error` diagnostic rather than a failed status.
  Result<QueryResult> Lint(const std::string& query);

  /// Strict-mode threshold; SessionOptions::lint_level sets it too.
  void SetLintLevel(LintLevel level) {
    util::ScopedLock lock(mu_);
    lint_level_ = level;
  }
  LintLevel lint_level() const {
    util::ScopedLock lock(mu_);
    return lint_level_;
  }

  /// Applies the whole option surface at once (threads, plan cache,
  /// result cache, adjacency cache). Re-enabling a cache with a new
  /// capacity replaces it empty; disabling destroys it.
  void Configure(const SessionOptions& options);

  /// Enables/disables the plan cache (the cold-cache ablation measures
  /// the recompilation cost the paper mentions).
  void SetPlanCacheEnabled(bool enabled) {
    util::ScopedLock lock(mu_);
    plan_cache_enabled_ = enabled;
  }

  /// Worker count for eligible pipelines; 1 (the default when the
  /// CYPHER_THREADS environment variable is unset) executes everything
  /// sequentially. `pool` is borrowed and must outlive the session; null
  /// uses the process-wide exec::ThreadPool::Default().
  void SetThreads(uint32_t threads, exec::ThreadPool* pool = nullptr);
  uint32_t threads() const {
    return threads_.load(std::memory_order_relaxed);
  }

  /// Slow-query capture threshold (milliseconds, inclusive); 0 captures
  /// everything. The constructor seeds it from MBQ_SLOW_QUERY_MILLIS.
  void SetSlowQueryMillis(uint64_t millis) {
    slow_query_millis_.store(millis, std::memory_order_relaxed);
  }
  uint64_t slow_query_millis() const {
    return slow_query_millis_.load(std::memory_order_relaxed);
  }

  uint64_t plan_cache_hits() const {
    return plan_cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t plan_cache_misses() const {
    return plan_cache_misses_.load(std::memory_order_relaxed);
  }
  void ClearPlanCache() {
    util::ScopedLock lock(mu_);
    plan_cache_.clear();
  }

  bool result_cache_enabled() const { return result_cache_ != nullptr; }
  bool adjacency_cache_enabled() const { return adj_cache_ != nullptr; }
  /// Zeroed stats when the corresponding cache is disabled.
  cache::CacheStats result_cache_stats() const {
    return result_cache_ != nullptr ? result_cache_->stats()
                                    : cache::CacheStats{};
  }
  cache::CacheStats adjacency_cache_stats() const {
    return adj_cache_ != nullptr ? adj_cache_->stats() : cache::CacheStats{};
  }
  /// Empties the result and adjacency caches (entries, not configuration).
  void ClearReadCaches() {
    if (result_cache_ != nullptr) result_cache_->Clear();
    if (adj_cache_ != nullptr) adj_cache_->Clear();
  }

  /// The adjacency cache instance (null when disabled) — shared with
  /// embedders that expand outside the session.
  cache::AdjacencyCache* adjacency_cache() { return adj_cache_.get(); }

  /// Attaches the engine's snapshot registry (borrowed, may be null to
  /// detach). With a registry set, read queries execute under a shared
  /// snapshot — they never observe a half-applied write — and write
  /// queries (CREATE/SET/DELETE) take the exclusive commit section and
  /// run inside a store transaction. Attach before issuing concurrent
  /// queries; the engine's EnableWrites does this at open time.
  void SetSnapshotRegistry(store::SnapshotRegistry* registry) {
    snapshots_.store(registry, std::memory_order_release);
  }
  store::SnapshotRegistry* snapshot_registry() const {
    return snapshots_.load(std::memory_order_acquire);
  }

 private:
  /// What the result cache stores per (query, params) key. Immutable
  /// after insertion; hits share it by reference.
  struct CachedResult {
    std::vector<std::string> columns;
    std::vector<Row> rows;
    std::string profile;  // the miss run's plan tree
    size_t ByteSize() const;
  };

  /// Cache lookup or single-flight compile; sets *cache_hit. With
  /// `enforce_lint`, a query whose diagnostics reach the session's lint
  /// level is refused (InvalidArgument) — before planning on a cache
  /// miss, from the stored diagnostics on a hit.
  Result<std::shared_ptr<const PlannedQuery>> PrepareShared(
      const std::string& query, bool* cache_hit, bool enforce_lint);
  /// Refusal check against lint_level_.
  Status LintGate(const std::vector<Diagnostic>& diagnostics) const
      MBQ_REQUIRES(mu_);
  /// Canonical text + parameters serialized sorted by name (typed, so
  /// Int(1) and String("1") never collide).
  static std::string ResultCacheKey(const std::string& body,
                                    const Params& params);

  GraphDb* db_;
  /// LockRank::kSession: held across parse/analyze/plan in PrepareShared
  /// (single-flight compilation), which may read store catalogues and so
  /// reach every storage-tier lock below; only rpc.client ranks higher.
  mutable util::RankedMutex mu_{util::LockRank::kSession, "cypher.session"};
  bool plan_cache_enabled_ MBQ_GUARDED_BY(mu_) = true;
  bool last_prepare_was_cache_hit_ MBQ_GUARDED_BY(mu_) = false;
  LintLevel lint_level_ MBQ_GUARDED_BY(mu_) = LintLevel::kOff;
  std::atomic<uint32_t> threads_{1};
  std::atomic<uint64_t> slow_query_millis_{50};  // constructor re-seeds
  std::atomic<exec::ThreadPool*> pool_{nullptr};
  std::atomic<uint64_t> plan_cache_hits_{0};
  std::atomic<uint64_t> plan_cache_misses_{0};
  std::unordered_map<std::string, std::shared_ptr<PlannedQuery>> plan_cache_
      MBQ_GUARDED_BY(mu_);
  /// Most recent plan compiled with the cache disabled (kept alive for
  /// the caller of Prepare/Run).
  std::shared_ptr<PlannedQuery> uncached_plan_ MBQ_GUARDED_BY(mu_);

  std::unique_ptr<cache::ResultCache<CachedResult>> result_cache_;
  std::unique_ptr<cache::AdjacencyCache> adj_cache_;
  std::atomic<store::SnapshotRegistry*> snapshots_{nullptr};
};

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_SESSION_H_
