#ifndef MBQ_CYPHER_PARALLEL_H_
#define MBQ_CYPHER_PARALLEL_H_

#include "cypher/runtime.h"

namespace mbq::cypher {

class Aggregate;

/// Morsel-driven parallel consumption of an aggregation pipeline
/// (Leis et al., SIGMOD'14 adapted to the pull model): when the chain
/// under `agg` is scan/expand/filter only, the leaf is drained into a
/// shared row buffer, each of the context's worker threads runs a cloned
/// copy of the chain over disjoint morsels of that buffer into a private
/// partial-group collector, and the partial groups are merged back into
/// `agg`. Returns true if the input was consumed this way (the caller
/// finalizes groups), false if the chain is not parallelizable and the
/// caller must fall back to the sequential pull loop. Per-operator
/// rows/db-hits from the worker clones are folded back into the plan's
/// operators so PROFILE output stays meaningful (annotated `par=N`).
///
/// Preconditions: the subtree under `agg` is Open()ed, `ctx->pool` is
/// non-null, `ctx->threads > 1`, and `ctx->outer_row == nullptr` (inside
/// an Apply the pipeline re-runs per outer row; too fine-grained to pay
/// the fan-out cost).
Result<bool> ParallelMaterializeAggregate(Aggregate* agg, ExecContext* ctx);

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_PARALLEL_H_
