#include "cypher/parser.h"

#include "cypher/lexer.h"
#include "util/string_util.h"

namespace mbq::cypher {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query query;
    // CREATE-only query: no reading clause at all.
    if (PeekKeyword("create")) {
      MBQ_RETURN_IF_ERROR(ParseWriteClauses(&query));
      if (Peek().kind != TokenKind::kEnd) {
        return Error("unexpected trailing input after write clauses");
      }
      return query;
    }
    MBQ_RETURN_IF_ERROR(ExpectKeyword("match"));
    MBQ_ASSIGN_OR_RETURN(PatternPart part, ParsePatternPart());
    query.patterns.push_back(std::move(part));
    while (AcceptToken(TokenKind::kComma)) {
      MBQ_ASSIGN_OR_RETURN(PatternPart next, ParsePatternPart());
      query.patterns.push_back(std::move(next));
    }
    if (AcceptKeyword("where")) {
      MBQ_ASSIGN_OR_RETURN(query.where, ParseOrExpr());
    }
    // MATCH ... followed by write clauses: a write query, which produces
    // one summary row instead of a RETURN projection.
    if (PeekKeyword("create") || PeekKeyword("set") ||
        PeekKeyword("delete") || PeekKeyword("detach")) {
      MBQ_RETURN_IF_ERROR(ParseWriteClauses(&query));
      if (Peek().kind != TokenKind::kEnd) {
        return Error(
            "write queries produce a summary row and cannot RETURN");
      }
      return query;
    }
    MBQ_RETURN_IF_ERROR(ExpectKeyword("return"));
    if (AcceptKeyword("distinct")) query.return_distinct = true;
    MBQ_ASSIGN_OR_RETURN(ReturnItem item, ParseReturnItem());
    query.return_items.push_back(std::move(item));
    while (AcceptToken(TokenKind::kComma)) {
      MBQ_ASSIGN_OR_RETURN(ReturnItem next, ParseReturnItem());
      query.return_items.push_back(std::move(next));
    }
    if (AcceptKeyword("order")) {
      MBQ_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        OrderItem order;
        MBQ_ASSIGN_OR_RETURN(order.expr, ParseOrExpr());
        if (AcceptKeyword("desc")) {
          order.ascending = false;
        } else {
          AcceptKeyword("asc");
        }
        query.order_by.push_back(std::move(order));
      } while (AcceptToken(TokenKind::kComma));
    }
    if (AcceptKeyword("limit")) {
      MBQ_ASSIGN_OR_RETURN(query.limit, ParsePrimary());
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdentifier && ToLowerAscii(t.text) == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected keyword '") + kw + "'");
    }
    return Status::OK();
  }
  bool AcceptToken(TokenKind kind) {
    if (Peek().kind == kind) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectToken(TokenKind kind, const char* what) {
    if (!AcceptToken(kind)) {
      return Error(std::string("expected ") + what);
    }
    return Status::OK();
  }
  static SourceSpan SpanOf(const Token& t) {
    SourceSpan span;
    span.offset = t.position;
    span.line = t.line;
    span.column = t.column;
    return span;
  }
  Status Error(const std::string& message) const {
    const Token& t = Peek();
    std::string where = SpanOf(t).ToString();
    if (t.kind == TokenKind::kEnd) {
      return Status::InvalidArgument(message + " at " + where +
                                     " (end of input)");
    }
    return Status::InvalidArgument(message + " at " + where + " ('" + t.text +
                                   "')");
  }
  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  /// One or more CREATE/SET/DELETE clauses, in any order and repetition.
  Status ParseWriteClauses(Query* query) {
    bool any = false;
    for (;;) {
      if (AcceptKeyword("create")) {
        any = true;
        do {
          MBQ_ASSIGN_OR_RETURN(PatternPart part, ParsePatternPart());
          if (part.shortest_path) {
            return Error("cannot CREATE a shortestPath pattern");
          }
          query->create_patterns.push_back(std::move(part));
        } while (AcceptToken(TokenKind::kComma));
        continue;
      }
      if (AcceptKeyword("set")) {
        any = true;
        do {
          SetItem item;
          item.span = SpanOf(Peek());
          MBQ_ASSIGN_OR_RETURN(item.variable, ExpectIdentifier("variable"));
          MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kDot, "'.'"));
          MBQ_ASSIGN_OR_RETURN(item.property,
                               ExpectIdentifier("property name"));
          MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kEq, "'='"));
          MBQ_ASSIGN_OR_RETURN(item.value, ParsePrimary());
          query->set_items.push_back(std::move(item));
        } while (AcceptToken(TokenKind::kComma));
        continue;
      }
      bool detach = false;
      if (PeekKeyword("detach")) {
        Advance();
        MBQ_RETURN_IF_ERROR(ExpectKeyword("delete"));
        detach = true;
      } else if (!AcceptKeyword("delete")) {
        break;
      }
      any = true;
      do {
        DeleteItem item;
        item.detach = detach;
        item.span = SpanOf(Peek());
        MBQ_ASSIGN_OR_RETURN(item.variable, ExpectIdentifier("variable"));
        query->delete_items.push_back(std::move(item));
      } while (AcceptToken(TokenKind::kComma));
    }
    if (!any) return Error("expected CREATE, SET or DELETE");
    return Status::OK();
  }

  Result<ReturnItem> ParseReturnItem() {
    ReturnItem item;
    MBQ_ASSIGN_OR_RETURN(item.expr, ParseOrExpr());
    if (AcceptKeyword("as")) {
      MBQ_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
    }
    return item;
  }

  // ------------------------------------------------------------ Patterns

  Result<PatternPart> ParsePatternPart() {
    PatternPart part;
    // `p = shortestPath( ... )` or a plain chain.
    if (Peek().kind == TokenKind::kIdentifier &&
        Peek(1).kind == TokenKind::kEq && !PeekKeyword("shortestpath")) {
      part.path_variable = Advance().text;
      Advance();  // '='
      MBQ_RETURN_IF_ERROR(ExpectKeyword("shortestpath"));
      part.shortest_path = true;
      MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kLParen, "'('"));
      MBQ_RETURN_IF_ERROR(ParseChain(&part));
      MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'"));
      return part;
    }
    if (PeekKeyword("shortestpath")) {
      Advance();
      part.shortest_path = true;
      MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kLParen, "'('"));
      MBQ_RETURN_IF_ERROR(ParseChain(&part));
      MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'"));
      return part;
    }
    MBQ_RETURN_IF_ERROR(ParseChain(&part));
    return part;
  }

  Status ParseChain(PatternPart* part) {
    MBQ_ASSIGN_OR_RETURN(NodePattern node, ParseNodePattern());
    part->nodes.push_back(std::move(node));
    while (Peek().kind == TokenKind::kDash ||
           Peek().kind == TokenKind::kArrowLeftDash) {
      MBQ_ASSIGN_OR_RETURN(RelPattern rel, ParseRelPattern());
      MBQ_ASSIGN_OR_RETURN(NodePattern next, ParseNodePattern());
      part->rels.push_back(std::move(rel));
      part->nodes.push_back(std::move(next));
    }
    return Status::OK();
  }

  Result<NodePattern> ParseNodePattern() {
    SourceSpan span = SpanOf(Peek());
    MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kLParen, "'(' of node pattern"));
    NodePattern node;
    node.span = span;
    if (Peek().kind == TokenKind::kIdentifier) {
      node.variable = Advance().text;
    }
    if (AcceptToken(TokenKind::kColon)) {
      node.label_span = SpanOf(Peek());
      MBQ_ASSIGN_OR_RETURN(node.label, ExpectIdentifier("label name"));
    }
    if (AcceptToken(TokenKind::kLBrace)) {
      do {
        MBQ_ASSIGN_OR_RETURN(std::string key, ExpectIdentifier("property key"));
        MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kColon, "':'"));
        MBQ_ASSIGN_OR_RETURN(ExprPtr value, ParsePrimary());
        node.properties.emplace_back(std::move(key), std::move(value));
      } while (AcceptToken(TokenKind::kComma));
      MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kRBrace, "'}'"));
    }
    MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')' of node pattern"));
    return node;
  }

  Result<RelPattern> ParseRelPattern() {
    RelPattern rel;
    rel.span = SpanOf(Peek());
    bool left_arrow = false;
    if (AcceptToken(TokenKind::kArrowLeftDash)) {
      left_arrow = true;
    } else {
      MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kDash, "'-'"));
    }
    if (AcceptToken(TokenKind::kLBracket)) {
      if (Peek().kind == TokenKind::kIdentifier) {
        rel.variable = Advance().text;
      }
      if (AcceptToken(TokenKind::kColon)) {
        rel.type_span = SpanOf(Peek());
        MBQ_ASSIGN_OR_RETURN(rel.type, ExpectIdentifier("relationship type"));
      }
      if (AcceptToken(TokenKind::kStar)) {
        // *, *n, *n..m, *..m
        rel.min_hops = 1;
        rel.max_hops = UINT32_MAX;
        if (Peek().kind == TokenKind::kInteger) {
          rel.min_hops = static_cast<uint32_t>(Advance().int_value);
          rel.max_hops = rel.min_hops;
        }
        if (AcceptToken(TokenKind::kDotDot)) {
          rel.max_hops = UINT32_MAX;
          if (Peek().kind == TokenKind::kInteger) {
            rel.max_hops = static_cast<uint32_t>(Advance().int_value);
          }
        }
      }
      MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kRBracket, "']'"));
    }
    bool right_arrow = AcceptToken(TokenKind::kArrowRight);
    if (!right_arrow) {
      MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kDash, "'-' or '->'"));
    }
    if (left_arrow && right_arrow) {
      return Error("relationship cannot point both ways");
    }
    rel.dir = left_arrow   ? RelPattern::Dir::kIn
              : right_arrow ? RelPattern::Dir::kOut
                            : RelPattern::Dir::kBoth;
    return rel;
  }

  // --------------------------------------------------------- Expressions

  Result<ExprPtr> ParseOrExpr() {
    MBQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
    while (AcceptKeyword("or")) {
      MBQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
      lhs = MakeOr(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAndExpr() {
    MBQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNotExpr());
    while (AcceptKeyword("and")) {
      MBQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNotExpr());
      lhs = MakeAnd(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNotExpr() {
    if (AcceptKeyword("not")) {
      MBQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseNotExpr());
      return MakeNot(std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    // Pattern predicate: '(' var ')' <-/- [..] -/-> '(' var ')'
    if (IsPatternPredicateAhead()) return ParsePatternPredicate();
    MBQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());
    CompareOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = CompareOp::kEq;
        break;
      case TokenKind::kNe:
        op = CompareOp::kNe;
        break;
      case TokenKind::kLt:
        op = CompareOp::kLt;
        break;
      case TokenKind::kLe:
        op = CompareOp::kLe;
        break;
      case TokenKind::kGt:
        op = CompareOp::kGt;
        break;
      case TokenKind::kGe:
        op = CompareOp::kGe;
        break;
      default:
        return lhs;  // bare expression (boolean-valued)
    }
    Advance();
    MBQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
    return MakeComparison(op, std::move(lhs), std::move(rhs));
  }

  bool IsPatternPredicateAhead() const {
    if (Peek().kind != TokenKind::kLParen) return false;
    if (Peek(1).kind != TokenKind::kIdentifier) return false;
    if (Peek(2).kind != TokenKind::kRParen) return false;
    TokenKind after = Peek(3).kind;
    return after == TokenKind::kDash || after == TokenKind::kArrowLeftDash;
  }

  Result<ExprPtr> ParsePatternPredicate() {
    SourceSpan span = SpanOf(Peek());
    MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kLParen, "'('"));
    MBQ_ASSIGN_OR_RETURN(std::string src, ExpectIdentifier("variable"));
    MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'"));
    MBQ_ASSIGN_OR_RETURN(RelPattern rel, ParseRelPattern());
    MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kLParen, "'('"));
    MBQ_ASSIGN_OR_RETURN(std::string dst, ExpectIdentifier("variable"));
    MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'"));
    if (rel.min_hops != 1 || rel.max_hops != 1) {
      return Error("pattern predicates support single hops only");
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kPatternPred;
    e->span = span;
    e->pattern_src = std::move(src);
    e->pattern_dst = std::move(dst);
    e->pattern_rel_type = rel.type;
    e->pattern_right_arrow = rel.dir != RelPattern::Dir::kIn;
    if (rel.dir == RelPattern::Dir::kIn) {
      // (a)<-[:t]-(b) is equivalent to (b)-[:t]->(a).
      std::swap(e->pattern_src, e->pattern_dst);
      e->pattern_right_arrow = true;
    }
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    SourceSpan span = SpanOf(t);
    auto with_span = [&](ExprPtr e) {
      e->span = span;
      return e;
    };
    switch (t.kind) {
      case TokenKind::kInteger: {
        Advance();
        return with_span(MakeLiteral(Value::Int(t.int_value)));
      }
      case TokenKind::kFloat: {
        Advance();
        return with_span(MakeLiteral(Value::Double(t.float_value)));
      }
      case TokenKind::kString: {
        Advance();
        return with_span(MakeLiteral(Value::String(t.text)));
      }
      case TokenKind::kParameter: {
        Advance();
        return with_span(MakeParameter(t.text));
      }
      case TokenKind::kLParen: {
        Advance();
        MBQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseOrExpr());
        MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdentifier:
        break;
      default:
        return Error("expected expression");
    }
    std::string name = Advance().text;
    std::string lower = ToLowerAscii(name);
    if (lower == "true") return with_span(MakeLiteral(Value::Bool(true)));
    if (lower == "false") return with_span(MakeLiteral(Value::Bool(false)));
    if (lower == "null") return with_span(MakeLiteral(Value::Null()));
    bool is_agg = lower == "count" || lower == "sum" || lower == "min" ||
                  lower == "max" || lower == "avg";
    if (Peek().kind == TokenKind::kLParen &&
        (is_agg || lower == "length" || lower == "id")) {
      Advance();  // '('
      if (is_agg) {
        if (lower == "count" && AcceptToken(TokenKind::kStar)) {
          MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'"));
          return with_span(MakeCount("", /*star=*/true, /*distinct=*/false));
        }
        bool distinct = AcceptKeyword("distinct");
        MBQ_ASSIGN_OR_RETURN(ExprPtr argument, ParsePrimary());
        MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'"));
        AggFunc func = lower == "count" ? AggFunc::kCount
                       : lower == "sum" ? AggFunc::kSum
                       : lower == "min" ? AggFunc::kMin
                       : lower == "max" ? AggFunc::kMax
                                        : AggFunc::kAvg;
        ExprPtr agg = MakeAggregate(func, std::move(argument), distinct);
        // Keep the raw argument text for column naming.
        const Expr& arg = *agg->children[0];
        agg->variable = arg.kind == ExprKind::kProperty
                            ? arg.variable + "." + arg.property
                            : arg.variable;
        return with_span(std::move(agg));
      }
      MBQ_ASSIGN_OR_RETURN(std::string var, ExpectIdentifier("variable"));
      MBQ_RETURN_IF_ERROR(ExpectToken(TokenKind::kRParen, "')'"));
      auto e = std::make_unique<Expr>();
      e->kind = lower == "length" ? ExprKind::kLengthCall : ExprKind::kIdCall;
      e->variable = std::move(var);
      return with_span(ExprPtr(std::move(e)));
    }
    if (AcceptToken(TokenKind::kDot)) {
      MBQ_ASSIGN_OR_RETURN(std::string prop, ExpectIdentifier("property name"));
      return with_span(MakeProperty(std::move(name), std::move(prop)));
    }
    return with_span(MakeVariable(std::move(name)));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  MBQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace mbq::cypher
