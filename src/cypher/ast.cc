#include "cypher/ast.h"

namespace mbq::cypher {

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeParameter(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kParameter;
  e->param_name = std::move(name);
  return e;
}

ExprPtr MakeVariable(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVariable;
  e->variable = std::move(name);
  return e;
}

ExprPtr MakeProperty(std::string var, std::string prop) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kProperty;
  e->variable = std::move(var);
  e->property = std::move(prop);
  return e;
}

ExprPtr MakeComparison(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kComparison;
  e->op = op;
  e->span = lhs->span;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAnd;
  e->span = lhs->span;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kOr;
  e->span = lhs->span;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeNot(ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNot;
  e->span = operand->span;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeCount(std::string var, bool star, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggCall;
  e->agg_func = AggFunc::kCount;
  e->variable = var;
  e->count_star = star;
  e->distinct = distinct;
  if (!star) e->children.push_back(MakeVariable(std::move(var)));
  return e;
}

ExprPtr MakeAggregate(AggFunc func, ExprPtr argument, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggCall;
  e->agg_func = func;
  e->distinct = distinct;
  e->span = argument->span;
  e->children.push_back(std::move(argument));
  return e;
}

}  // namespace mbq::cypher
