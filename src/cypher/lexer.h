#ifndef MBQ_CYPHER_LEXER_H_
#define MBQ_CYPHER_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace mbq::cypher {

enum class TokenKind : uint8_t {
  kIdentifier,   // user, follows, u (also keywords; parser matches text)
  kParameter,    // $uid
  kInteger,      // 42
  kFloat,        // 3.5
  kString,       // 'abc' or "abc"
  kLParen,       // (
  kRParen,       // )
  kLBracket,     // [
  kRBracket,     // ]
  kLBrace,       // {
  kRBrace,       // }
  kColon,        // :
  kComma,        // ,
  kDot,          // .
  kDotDot,       // ..
  kStar,         // *
  kEq,           // =
  kNe,           // <>
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kDash,         // -
  kArrowRight,   // ->
  kArrowLeftDash,// <- (left arrow head plus dash)
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // identifier/param/string payload, literal spelling
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  // byte offset in the query
  uint32_t line = 1;    // 1-based source line
  uint32_t column = 1;  // 1-based source column
};

/// Tokenizes a query string. Keywords are returned as identifiers; the
/// parser compares case-insensitively.
Result<std::vector<Token>> Tokenize(const std::string& query);

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_LEXER_H_
