#ifndef MBQ_CYPHER_SEMANTIC_H_
#define MBQ_CYPHER_SEMANTIC_H_

#include <string>
#include <vector>

#include "cypher/ast.h"
#include "cypher/diag.h"
#include "nodestore/graph_db.h"

namespace mbq::cypher {

using nodestore::GraphDb;

/// Static types the analyzer infers for expressions. kAny marks an
/// expression whose type depends on runtime data (parameters, properties
/// of unknown keys); comparisons against kAny never warn.
enum class InferredType : uint8_t {
  kAny = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kNode,
  kRel,
  kPath,
};

const char* InferredTypeName(InferredType type);

/// Infers the static type of `expr` given the pattern bindings in
/// `query` (node/rel/path variables). Pure; never touches the store.
InferredType InferExprType(const Expr& expr, const Query& query);

/// The lint rule catalogue (stable identifiers used in Diagnostic::rule
/// and documented in docs/STATIC_ANALYSIS.md):
///
///   error    undefined-variable        reference to an unbound variable
///   error    unknown-label             label absent from the schema
///   error    unknown-rel-type          rel type absent from the schema
///   error    type-mismatch             comparison can never be true
///   error    aggregate-in-where        aggregates are RETURN-only
///   warning  unknown-property          property key never written
///   warning  full-scan-no-index        anchor filter not index-backed
///   warning  cartesian-product         disconnected pattern parts
///   warning  unbounded-varlength-path  `*..` with no upper bound
///   hint     unused-binding            named binding never referenced
///
/// The semantic pass between parser and planner: scope checking, type
/// inference over comparisons, and schema validation against the live
/// database catalogue (so a mistyped label is caught here instead of
/// silently matching nothing at runtime — the paper's Neo4j footgun).
/// `db` may be null, which skips the schema- and index-dependent rules
/// (unknown-*, full-scan-no-index) and keeps the pure ones.
AnalysisResult AnalyzeQuery(const Query& query, GraphDb* db);

/// Nearest candidate to `name` by edit distance (case-insensitive),
/// or empty when nothing is within distance max(1, |name|/3 + 1).
/// Exposed for tests; AnalyzeQuery uses it for did-you-mean hints.
std::string NearestName(const std::string& name,
                        const std::vector<std::string>& candidates);

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_SEMANTIC_H_
