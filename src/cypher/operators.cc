#include "cypher/operators.h"

#include <algorithm>

namespace mbq::cypher {

Result<bool> Operator::NextTracked(Row* out) {
  uint64_t before = ctx_ != nullptr ? ctx_->db->db_hits() : 0;
  Result<bool> r = Next(out);
  if (ctx_ != nullptr) db_hits_ += ctx_->db->db_hits() - before;
  if (r.ok() && *r) ++rows_produced_;
  return r;
}

Status Operator::Drain(std::vector<Row>* rows) {
  Row row;
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, NextTracked(&row));
    if (!more) return Status::OK();
    rows->push_back(row);
  }
}

// ---------------------------------------------------------------- SingleRow

Status SingleRow::Open(ExecContext* ctx) {
  ctx_ = ctx;
  done_ = false;
  return Status::OK();
}

Result<bool> SingleRow::Next(Row* out) {
  if (done_) return false;
  done_ = true;
  if (ctx_->outer_row != nullptr) {
    *out = *ctx_->outer_row;
  } else {
    out->assign(width_, RtValue::Null());
  }
  return true;
}

// ------------------------------------------------------------ NodeLabelScan

Status NodeLabelScan::Open(ExecContext* ctx) {
  ctx_ = ctx;
  buffer_.clear();
  index_ = 0;
  auto label = ctx->db->FindLabel(label_);
  if (!label.ok()) return Status::OK();  // no such label: empty scan
  return ctx->db->ForEachNodeWithLabel(*label, [this](NodeId id) {
    buffer_.push_back(id);
    return true;
  });
}

Result<bool> NodeLabelScan::Next(Row* out) {
  if (index_ >= buffer_.size()) return false;
  if (ctx_->outer_row != nullptr) {
    *out = *ctx_->outer_row;
  } else {
    out->assign(width_, RtValue::Null());
  }
  (*out)[slot_] = RtValue::FromNode(buffer_[index_++]);
  return true;
}

// ------------------------------------------------------------ NodeIndexSeek

Status NodeIndexSeek::Open(ExecContext* ctx) {
  ctx_ = ctx;
  buffer_.clear();
  index_ = 0;
  auto label = ctx->db->FindLabel(label_);
  if (!label.ok()) return Status::OK();
  auto key = ctx->db->FindPropKey(property_);
  if (!key.ok()) return Status::OK();
  Row empty;
  SlotMap no_slots;
  MBQ_ASSIGN_OR_RETURN(RtValue value, EvalExpr(*value_, empty, no_slots, ctx));
  if (value.kind != RtValue::Kind::kValue) {
    return Status::InvalidArgument("index seek value must be a literal");
  }
  MBQ_ASSIGN_OR_RETURN(buffer_,
                       ctx->db->IndexLookup(*label, *key, value.value));
  return Status::OK();
}

Result<bool> NodeIndexSeek::Next(Row* out) {
  if (index_ >= buffer_.size()) return false;
  if (ctx_->outer_row != nullptr) {
    *out = *ctx_->outer_row;
  } else {
    out->assign(width_, RtValue::Null());
  }
  (*out)[slot_] = RtValue::FromNode(buffer_[index_++]);
  return true;
}

// ----------------------------------------------------------------- Expand

Status Expand::Open(ExecContext* ctx) {
  ctx_ = ctx;
  have_row_ = false;
  matches_.clear();
  match_index_ = 0;
  resolved_type_.reset();
  type_unknown_ = false;
  if (!rel_type_.empty()) {
    auto type = ctx->db->FindRelType(rel_type_);
    if (type.ok()) {
      resolved_type_ = *type;
    } else {
      type_unknown_ = true;
    }
  }
  return child_->Open(ctx);
}

Status Expand::RefillFromRow() {
  matches_.clear();
  match_index_ = 0;
  const RtValue& from = current_row_[from_slot_];
  if (from.kind != RtValue::Kind::kNode) {
    return Status::InvalidArgument("expand source is not a node");
  }
  NodeId bound_target = nodestore::kInvalidNode;
  if (into_bound_) {
    const RtValue& to = current_row_[to_slot_];
    if (to.kind != RtValue::Kind::kNode) {
      return Status::InvalidArgument("expand-into target is not a node");
    }
    bound_target = to.node;
  }
  return ctx_->db->ForEachRelationship(
      from.node, dir_, resolved_type_, [&](const GraphDb::RelInfo& rel) {
        if (!into_bound_ || rel.other == bound_target) {
          matches_.push_back(rel);
        }
        return true;
      });
}

Result<bool> Expand::Next(Row* out) {
  if (type_unknown_) return false;
  for (;;) {
    if (have_row_ && match_index_ < matches_.size()) {
      const GraphDb::RelInfo& rel = matches_[match_index_++];
      *out = current_row_;
      (*out)[to_slot_] = RtValue::FromNode(rel.other);
      if (rel_slot_.has_value()) (*out)[*rel_slot_] = RtValue::FromRel(rel.id);
      return true;
    }
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(&current_row_));
    if (!more) return false;
    have_row_ = true;
    MBQ_RETURN_IF_ERROR(RefillFromRow());
  }
}

// --------------------------------------------------------- VarLengthExpand

Status VarLengthExpand::Open(ExecContext* ctx) {
  ctx_ = ctx;
  have_row_ = false;
  reached_.clear();
  reach_index_ = 0;
  resolved_type_.reset();
  type_unknown_ = false;
  if (!rel_type_.empty()) {
    auto type = ctx->db->FindRelType(rel_type_);
    if (type.ok()) {
      resolved_type_ = *type;
    } else {
      type_unknown_ = true;
    }
  }
  return child_->Open(ctx);
}

Status VarLengthExpand::RefillFromRow() {
  reached_.clear();
  reach_index_ = 0;
  const RtValue& from = current_row_[from_slot_];
  if (from.kind != RtValue::Kind::kNode) {
    return Status::InvalidArgument("expand source is not a node");
  }
  // Depth-first path enumeration with per-path relationship uniqueness
  // (Cypher's var-length semantics): every distinct path of length in
  // [min,max] contributes its end node — the same end node can appear
  // many times (multiset semantics).
  std::vector<RelId> rel_stack;
  Status status = Status::OK();
  std::function<Status(NodeId, uint32_t)> dfs = [&](NodeId node,
                                                    uint32_t depth) -> Status {
    if (depth >= min_hops_ && depth > 0) reached_.push_back(node);
    if (depth >= max_hops_) return Status::OK();
    Status inner = ctx_->db->ForEachRelationship(
        node, dir_, resolved_type_, [&](const GraphDb::RelInfo& rel) {
          if (std::find(rel_stack.begin(), rel_stack.end(), rel.id) !=
              rel_stack.end()) {
            return true;  // relationship-unique within a path
          }
          rel_stack.push_back(rel.id);
          Status st = dfs(rel.other, depth + 1);
          rel_stack.pop_back();
          if (!st.ok()) {
            status = st;
            return false;
          }
          return true;
        });
    MBQ_RETURN_IF_ERROR(inner);
    return status;
  };
  return dfs(from.node, 0);
}

Result<bool> VarLengthExpand::Next(Row* out) {
  if (type_unknown_) return false;
  for (;;) {
    if (have_row_ && reach_index_ < reached_.size()) {
      *out = current_row_;
      (*out)[to_slot_] = RtValue::FromNode(reached_[reach_index_++]);
      return true;
    }
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(&current_row_));
    if (!more) return false;
    have_row_ = true;
    MBQ_RETURN_IF_ERROR(RefillFromRow());
  }
}

// ----------------------------------------------------------------- Filter

Status Filter::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> Filter::Next(Row* out) {
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(out));
    if (!more) return false;
    MBQ_ASSIGN_OR_RETURN(bool keep,
                         EvalPredicate(*predicate_, *out, *slots_, ctx_));
    if (keep) return true;
  }
}

// ------------------------------------------------------------- LabelFilter

Status LabelFilter::Open(ExecContext* ctx) {
  ctx_ = ctx;
  resolved_.reset();
  label_unknown_ = false;
  auto label = ctx->db->FindLabel(label_);
  if (label.ok()) {
    resolved_ = *label;
  } else {
    label_unknown_ = true;
  }
  return child_->Open(ctx);
}

Result<bool> LabelFilter::Next(Row* out) {
  if (label_unknown_) return false;
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(out));
    if (!more) return false;
    const RtValue& v = (*out)[slot_];
    if (v.kind != RtValue::Kind::kNode) continue;
    MBQ_ASSIGN_OR_RETURN(nodestore::LabelId label,
                         ctx_->db->NodeLabel(v.node));
    if (label == *resolved_) return true;
  }
}

// ---------------------------------------------------------- ShortestPathOp

Status ShortestPathOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  resolved_type_.reset();
  if (!rel_type_.empty()) {
    auto type = ctx->db->FindRelType(rel_type_);
    if (type.ok()) resolved_type_ = *type;
  }
  return child_->Open(ctx);
}

Result<bool> ShortestPathOp::Next(Row* out) {
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(out));
    if (!more) return false;
    const RtValue& src = (*out)[src_slot_];
    const RtValue& dst = (*out)[dst_slot_];
    if (src.kind != RtValue::Kind::kNode ||
        dst.kind != RtValue::Kind::kNode) {
      return Status::InvalidArgument("shortestPath endpoints must be nodes");
    }
    if (!resolved_type_.has_value() && !rel_type_.empty()) {
      return false;  // unknown relationship type: no paths
    }
    nodestore::BidirectionalShortestPath bfs(ctx_->db, resolved_type_, dir_);
    bfs.SetMaxHops(max_hops_);
    MBQ_ASSIGN_OR_RETURN(std::vector<NodeId> path,
                         bfs.Find(src.node, dst.node));
    if (path.empty()) continue;  // no path: row dropped
    (*out)[path_slot_] = RtValue::FromPath(std::move(path));
    return true;
  }
}

// --------------------------------------------------------------- Aggregate

Status Aggregate::Open(ExecContext* ctx) {
  ctx_ = ctx;
  materialized_ = false;
  output_.clear();
  index_ = 0;
  return child_->Open(ctx);
}

namespace {

/// Running state of one aggregate within one group.
struct AggState {
  uint64_t count = 0;
  int64_t isum = 0;
  double dsum = 0;
  bool saw_double = false;
  bool has_best = false;
  RtValue best;
  std::unordered_set<Row, RowHash, RowEq> distinct;
};

Status AccumulateValue(const Aggregate::AggItem& agg, const RtValue& v,
                       AggState* state) {
  switch (agg.func) {
    case AggFunc::kCount:
      ++state->count;
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (v.kind != RtValue::Kind::kValue) {
        return Status::InvalidArgument("sum/avg over a non-numeric value");
      }
      MBQ_ASSIGN_OR_RETURN(double d, v.value.ToNumber());
      if (v.value.type() == common::ValueType::kInt) {
        state->isum += v.value.AsInt();
      } else {
        state->saw_double = true;
        state->dsum += d;
      }
      ++state->count;
      return Status::OK();
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      bool better = !state->has_best ||
                    (agg.func == AggFunc::kMin
                         ? v.Compare(state->best) < 0
                         : v.Compare(state->best) > 0);
      if (better) {
        state->best = v;
        state->has_best = true;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled aggregate function");
}

Result<RtValue> FinalizeAgg(const Aggregate::AggItem& agg, AggState* state) {
  // Distinct aggregates buffer values in a set and fold at the end.
  AggState folded;
  if (agg.distinct) {
    if (agg.func == AggFunc::kCount) {
      return RtValue::FromValue(
          Value::Int(static_cast<int64_t>(state->distinct.size())));
    }
    for (const Row& row : state->distinct) {
      MBQ_RETURN_IF_ERROR(AccumulateValue(agg, row[0], &folded));
    }
    state = &folded;
  }
  switch (agg.func) {
    case AggFunc::kCount:
      return RtValue::FromValue(
          Value::Int(static_cast<int64_t>(state->count)));
    case AggFunc::kSum:
      if (state->saw_double) {
        return RtValue::FromValue(
            Value::Double(state->dsum + static_cast<double>(state->isum)));
      }
      return RtValue::FromValue(Value::Int(state->isum));
    case AggFunc::kMin:
    case AggFunc::kMax:
      return state->has_best ? state->best : RtValue::Null();
    case AggFunc::kAvg: {
      if (state->count == 0) return RtValue::Null();
      double total = state->dsum + static_cast<double>(state->isum);
      return RtValue::FromValue(
          Value::Double(total / static_cast<double>(state->count)));
    }
  }
  return Status::Internal("unhandled aggregate function");
}

}  // namespace

Status Aggregate::Materialize() {
  struct GroupState {
    Row keys;
    std::vector<AggState> aggs;
  };
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups;

  Row row;
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(&row));
    if (!more) break;
    Row keys;
    keys.reserve(group_exprs_.size());
    for (const Expr* e : group_exprs_) {
      MBQ_ASSIGN_OR_RETURN(RtValue v, EvalExpr(*e, row, *slots_, ctx_));
      keys.push_back(std::move(v));
    }
    auto [it, inserted] = groups.try_emplace(keys);
    GroupState& state = it->second;
    if (inserted) {
      state.keys = keys;
      state.aggs.resize(aggs_.size());
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const AggItem& agg = aggs_[a];
      if (agg.arg == nullptr) {  // COUNT(*)
        ++state.aggs[a].count;
        continue;
      }
      MBQ_ASSIGN_OR_RETURN(RtValue v, EvalExpr(*agg.arg, row, *slots_, ctx_));
      if (v.is_null()) continue;  // aggregates skip nulls
      if (agg.distinct) {
        state.aggs[a].distinct.insert(Row{v});
      } else {
        MBQ_RETURN_IF_ERROR(AccumulateValue(agg, v, &state.aggs[a]));
      }
    }
  }
  for (auto& [keys, state] : groups) {
    Row out = state.keys;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      MBQ_ASSIGN_OR_RETURN(RtValue v, FinalizeAgg(aggs_[a], &state.aggs[a]));
      out.push_back(std::move(v));
    }
    output_.push_back(std::move(out));
  }
  materialized_ = true;
  return Status::OK();
}

Result<bool> Aggregate::Next(Row* out) {
  if (!materialized_) MBQ_RETURN_IF_ERROR(Materialize());
  if (index_ >= output_.size()) return false;
  *out = output_[index_++];
  return true;
}

// -------------------------------------------------------------- Projection

Status Projection::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> Projection::Next(Row* out) {
  Row input;
  MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(&input));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const Expr* e : exprs_) {
    MBQ_ASSIGN_OR_RETURN(RtValue v, EvalExpr(*e, input, *slots_, ctx_));
    out->push_back(std::move(v));
  }
  return true;
}

// ------------------------------------------------------------------- Sort

Status Sort::Open(ExecContext* ctx) {
  ctx_ = ctx;
  materialized_ = false;
  output_.clear();
  index_ = 0;
  return child_->Open(ctx);
}

Result<bool> Sort::Next(Row* out) {
  if (!materialized_) {
    Row row;
    for (;;) {
      MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(&row));
      if (!more) break;
      output_.push_back(row);
    }
    std::stable_sort(output_.begin(), output_.end(),
                     [this](const Row& a, const Row& b) {
                       for (const Key& key : keys_) {
                         int c = a[key.column].Compare(b[key.column]);
                         if (c != 0) return key.ascending ? c < 0 : c > 0;
                       }
                       return false;
                     });
    materialized_ = true;
  }
  if (index_ >= output_.size()) return false;
  *out = output_[index_++];
  return true;
}

// ------------------------------------------------------------------ Limit

Status Limit::Open(ExecContext* ctx) {
  ctx_ = ctx;
  Row empty;
  SlotMap no_slots;
  MBQ_ASSIGN_OR_RETURN(RtValue v, EvalExpr(*count_expr_, empty, no_slots, ctx));
  if (v.kind != RtValue::Kind::kValue ||
      v.value.type() != common::ValueType::kInt || v.value.AsInt() < 0) {
    return Status::InvalidArgument("LIMIT requires a non-negative integer");
  }
  remaining_ = static_cast<uint64_t>(v.value.AsInt());
  return child_->Open(ctx);
}

Result<bool> Limit::Next(Row* out) {
  if (remaining_ == 0) return false;
  MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(out));
  if (!more) return false;
  --remaining_;
  return true;
}

// --------------------------------------------------------------- Distinct

Status Distinct::Open(ExecContext* ctx) {
  ctx_ = ctx;
  seen_.clear();
  return child_->Open(ctx);
}

Result<bool> Distinct::Next(Row* out) {
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(out));
    if (!more) return false;
    if (seen_.insert(*out).second) return true;
  }
}

// ------------------------------------------------------------------ Apply

Status Apply::Open(ExecContext* ctx) {
  ctx_ = ctx;
  have_left_ = false;
  return child_->Open(ctx);
}

Result<bool> Apply::Next(Row* out) {
  for (;;) {
    if (have_left_) {
      const Row* saved = ctx_->outer_row;
      ctx_->outer_row = &left_row_;
      Result<bool> more = right_->NextTracked(out);
      ctx_->outer_row = saved;
      MBQ_RETURN_IF_ERROR(more.status());
      if (*more) return true;
      have_left_ = false;
    }
    MBQ_ASSIGN_OR_RETURN(bool more_left, ChildNext(&left_row_));
    if (!more_left) return false;
    have_left_ = true;
    // Re-open the right side for this left row.
    const Row* saved = ctx_->outer_row;
    ctx_->outer_row = &left_row_;
    Status st = right_->Open(ctx_);
    ctx_->outer_row = saved;
    MBQ_RETURN_IF_ERROR(st);
  }
}

// ----------------------------------------------------------------- Helpers

std::string DescribePlanTree(const Operator& root, int indent) {
  std::string out(indent * 2, ' ');
  out += root.Describe();
  out += "  rows=" + std::to_string(root.rows_produced());
  out += " dbHits=" + std::to_string(root.db_hits());
  out += "\n";
  if (const auto* apply = dynamic_cast<const Apply*>(&root)) {
    if (apply->child() != nullptr) {
      out += DescribePlanTree(*apply->child(), indent + 1);
    }
    if (apply->right() != nullptr) {
      out += DescribePlanTree(*apply->right(), indent + 1);
    }
    return out;
  }
  if (root.child() != nullptr) {
    out += DescribePlanTree(*root.child(), indent + 1);
  }
  return out;
}

std::string DescribePlanShape(const Operator& root, int indent) {
  std::string out(indent * 2, ' ');
  out += root.Describe();
  out += "\n";
  if (const auto* apply = dynamic_cast<const Apply*>(&root)) {
    if (apply->child() != nullptr) {
      out += DescribePlanShape(*apply->child(), indent + 1);
    }
    if (apply->right() != nullptr) {
      out += DescribePlanShape(*apply->right(), indent + 1);
    }
    return out;
  }
  if (root.child() != nullptr) {
    out += DescribePlanShape(*root.child(), indent + 1);
  }
  return out;
}

}  // namespace mbq::cypher
