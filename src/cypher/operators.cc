#include "cypher/operators.h"

#include <algorithm>

#include "cache/adjacency_cache.h"
#include "cypher/parallel.h"
#include "nodestore/record_file.h"

namespace mbq::cypher {

Result<bool> Operator::NextTracked(Row* out) {
  // Thread-local deltas, not the database's global counter: parallel
  // worker pipelines each profile their own ops without seeing hits
  // charged by sibling threads.
  uint64_t before = nodestore::DbHitCounter::ThreadHits();
  Result<bool> r = Next(out);
  db_hits_ += nodestore::DbHitCounter::ThreadHits() - before;
  if (r.ok() && *r) ++rows_produced_;
  return r;
}

std::unique_ptr<Operator> Operator::CloneTree() const {
  return CloneWithChild(child_ != nullptr ? child_->CloneTree() : nullptr);
}

Status Operator::Drain(std::vector<Row>* rows) {
  Row row;
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, NextTracked(&row));
    if (!more) return Status::OK();
    rows->push_back(row);
  }
}

// ---------------------------------------------------------------- SingleRow

Status SingleRow::Open(ExecContext* ctx) {
  ctx_ = ctx;
  done_ = false;
  return Status::OK();
}

Result<bool> SingleRow::Next(Row* out) {
  if (done_) return false;
  done_ = true;
  if (ctx_->outer_row != nullptr) {
    *out = *ctx_->outer_row;
  } else {
    out->assign(width_, RtValue::Null());
  }
  return true;
}

std::unique_ptr<Operator> SingleRow::CloneWithChild(
    std::unique_ptr<Operator>) const {
  return std::make_unique<SingleRow>(width_);
}

// ------------------------------------------------------------ NodeLabelScan

Status NodeLabelScan::Open(ExecContext* ctx) {
  ctx_ = ctx;
  buffer_.clear();
  index_ = 0;
  auto label = ctx->db->FindLabel(label_);
  if (!label.ok()) return Status::OK();  // no such label: empty scan
  return ctx->db->ForEachNodeWithLabel(*label, [this](NodeId id) {
    buffer_.push_back(id);
    return true;
  });
}

Result<bool> NodeLabelScan::Next(Row* out) {
  if (index_ >= buffer_.size()) return false;
  if (ctx_->outer_row != nullptr) {
    *out = *ctx_->outer_row;
  } else {
    out->assign(width_, RtValue::Null());
  }
  (*out)[slot_] = RtValue::FromNode(buffer_[index_++]);
  return true;
}

std::unique_ptr<Operator> NodeLabelScan::CloneWithChild(
    std::unique_ptr<Operator>) const {
  return std::make_unique<NodeLabelScan>(slot_, width_, label_);
}

// ------------------------------------------------------------ NodeIndexSeek

Status NodeIndexSeek::Open(ExecContext* ctx) {
  ctx_ = ctx;
  buffer_.clear();
  index_ = 0;
  auto label = ctx->db->FindLabel(label_);
  if (!label.ok()) return Status::OK();
  auto key = ctx->db->FindPropKey(property_);
  if (!key.ok()) return Status::OK();
  Row empty;
  SlotMap no_slots;
  MBQ_ASSIGN_OR_RETURN(RtValue value, EvalExpr(*value_, empty, no_slots, ctx));
  if (value.kind != RtValue::Kind::kValue) {
    return Status::InvalidArgument("index seek value must be a literal");
  }
  MBQ_ASSIGN_OR_RETURN(buffer_,
                       ctx->db->IndexLookup(*label, *key, value.value));
  return Status::OK();
}

Result<bool> NodeIndexSeek::Next(Row* out) {
  if (index_ >= buffer_.size()) return false;
  if (ctx_->outer_row != nullptr) {
    *out = *ctx_->outer_row;
  } else {
    out->assign(width_, RtValue::Null());
  }
  (*out)[slot_] = RtValue::FromNode(buffer_[index_++]);
  return true;
}

std::unique_ptr<Operator> NodeIndexSeek::CloneWithChild(
    std::unique_ptr<Operator>) const {
  return std::make_unique<NodeIndexSeek>(slot_, width_, label_, property_,
                                         value_);
}

// ----------------------------------------------------------------- Expand

Status Expand::Open(ExecContext* ctx) {
  ctx_ = ctx;
  have_row_ = false;
  matches_.clear();
  match_index_ = 0;
  resolved_type_.reset();
  type_unknown_ = false;
  if (!rel_type_.empty()) {
    auto type = ctx->db->FindRelType(rel_type_);
    if (type.ok()) {
      resolved_type_ = *type;
    } else {
      type_unknown_ = true;
    }
  }
  return child_->Open(ctx);
}

Status Expand::RefillFromRow() {
  matches_.clear();
  match_index_ = 0;
  const RtValue& from = current_row_[from_slot_];
  if (from.kind != RtValue::Kind::kNode) {
    return Status::InvalidArgument("expand source is not a node");
  }
  NodeId bound_target = nodestore::kInvalidNode;
  if (into_bound_) {
    const RtValue& to = current_row_[to_slot_];
    if (to.kind != RtValue::Kind::kNode) {
      return Status::InvalidArgument("expand-into target is not a node");
    }
    bound_target = to.node;
  }
  // Hot adjacency cache: typed expansions replay a memoized (rel, other)
  // list instead of re-walking the chain — no record reads, no db hits.
  // Only typed expansions qualify; an untyped walk has no single epoch
  // domain to validate against.
  cache::AdjacencyCache* adj_cache = ctx_->adj_cache;
  if (adj_cache != nullptr && resolved_type_.has_value()) {
    int32_t etype = static_cast<int32_t>(*resolved_type_);
    uint8_t dir = static_cast<uint8_t>(dir_);
    if (auto entry = adj_cache->Get(from.node, etype, dir)) {
      for (size_t i = 0; i < entry->edges.size(); ++i) {
        if (into_bound_ && entry->neighbors[i] != bound_target) continue;
        GraphDb::RelInfo rel;
        rel.id = entry->edges[i];
        rel.type = *resolved_type_;
        rel.other = entry->neighbors[i];
        matches_.push_back(rel);
      }
      return Status::OK();
    }
    // Miss: one walk fills both the operator's matches and the cache
    // entry (unfiltered, so later ExpandAll and ExpandInto share it).
    cache::EpochStamp stamp =
        cache::CaptureStamp(ctx_->db->epochs(),
                            {cache::RelTypeDomain(*resolved_type_)},
                            /*use_global=*/false);
    auto entry = std::make_shared<cache::AdjacencyEntry>();
    MBQ_RETURN_IF_ERROR(ctx_->db->ForEachRelationship(
        from.node, dir_, resolved_type_, [&](const GraphDb::RelInfo& rel) {
          entry->edges.push_back(rel.id);
          entry->neighbors.push_back(rel.other);
          if (!into_bound_ || rel.other == bound_target) {
            matches_.push_back(rel);
          }
          return true;
        }));
    adj_cache->Put(from.node, etype, dir, std::move(entry), std::move(stamp));
    return Status::OK();
  }
  return ctx_->db->ForEachRelationship(
      from.node, dir_, resolved_type_, [&](const GraphDb::RelInfo& rel) {
        if (!into_bound_ || rel.other == bound_target) {
          matches_.push_back(rel);
        }
        return true;
      });
}

Result<bool> Expand::Next(Row* out) {
  if (type_unknown_) return false;
  for (;;) {
    if (have_row_ && match_index_ < matches_.size()) {
      const GraphDb::RelInfo& rel = matches_[match_index_++];
      *out = current_row_;
      (*out)[to_slot_] = RtValue::FromNode(rel.other);
      if (rel_slot_.has_value()) (*out)[*rel_slot_] = RtValue::FromRel(rel.id);
      return true;
    }
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(&current_row_));
    if (!more) return false;
    have_row_ = true;
    MBQ_RETURN_IF_ERROR(RefillFromRow());
  }
}

std::unique_ptr<Operator> Expand::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<Expand>(std::move(child), from_slot_, to_slot_,
                                  rel_slot_, rel_type_, dir_, into_bound_);
}

// --------------------------------------------------------- VarLengthExpand

Status VarLengthExpand::Open(ExecContext* ctx) {
  ctx_ = ctx;
  have_row_ = false;
  reached_.clear();
  reach_index_ = 0;
  resolved_type_.reset();
  type_unknown_ = false;
  if (!rel_type_.empty()) {
    auto type = ctx->db->FindRelType(rel_type_);
    if (type.ok()) {
      resolved_type_ = *type;
    } else {
      type_unknown_ = true;
    }
  }
  return child_->Open(ctx);
}

Status VarLengthExpand::RefillFromRow() {
  reached_.clear();
  reach_index_ = 0;
  const RtValue& from = current_row_[from_slot_];
  if (from.kind != RtValue::Kind::kNode) {
    return Status::InvalidArgument("expand source is not a node");
  }
  // Depth-first path enumeration with per-path relationship uniqueness
  // (Cypher's var-length semantics): every distinct path of length in
  // [min,max] contributes its end node — the same end node can appear
  // many times (multiset semantics).
  std::vector<RelId> rel_stack;
  Status status = Status::OK();
  std::function<Status(NodeId, uint32_t)> dfs = [&](NodeId node,
                                                    uint32_t depth) -> Status {
    if (depth >= min_hops_ && depth > 0) reached_.push_back(node);
    if (depth >= max_hops_) return Status::OK();
    Status inner = ctx_->db->ForEachRelationship(
        node, dir_, resolved_type_, [&](const GraphDb::RelInfo& rel) {
          if (std::find(rel_stack.begin(), rel_stack.end(), rel.id) !=
              rel_stack.end()) {
            return true;  // relationship-unique within a path
          }
          rel_stack.push_back(rel.id);
          Status st = dfs(rel.other, depth + 1);
          rel_stack.pop_back();
          if (!st.ok()) {
            status = st;
            return false;
          }
          return true;
        });
    MBQ_RETURN_IF_ERROR(inner);
    return status;
  };
  return dfs(from.node, 0);
}

Result<bool> VarLengthExpand::Next(Row* out) {
  if (type_unknown_) return false;
  for (;;) {
    if (have_row_ && reach_index_ < reached_.size()) {
      *out = current_row_;
      (*out)[to_slot_] = RtValue::FromNode(reached_[reach_index_++]);
      return true;
    }
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(&current_row_));
    if (!more) return false;
    have_row_ = true;
    MBQ_RETURN_IF_ERROR(RefillFromRow());
  }
}

std::unique_ptr<Operator> VarLengthExpand::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<VarLengthExpand>(std::move(child), from_slot_,
                                           to_slot_, rel_type_, dir_,
                                           min_hops_, max_hops_);
}

// ----------------------------------------------------------------- Filter

Status Filter::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> Filter::Next(Row* out) {
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(out));
    if (!more) return false;
    MBQ_ASSIGN_OR_RETURN(bool keep,
                         EvalPredicate(*predicate_, *out, *slots_, ctx_));
    if (keep) return true;
  }
}

std::unique_ptr<Operator> Filter::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<Filter>(std::move(child), predicate_, slots_);
}

// ------------------------------------------------------------- LabelFilter

Status LabelFilter::Open(ExecContext* ctx) {
  ctx_ = ctx;
  resolved_.reset();
  label_unknown_ = false;
  auto label = ctx->db->FindLabel(label_);
  if (label.ok()) {
    resolved_ = *label;
  } else {
    label_unknown_ = true;
  }
  return child_->Open(ctx);
}

Result<bool> LabelFilter::Next(Row* out) {
  if (label_unknown_) return false;
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(out));
    if (!more) return false;
    const RtValue& v = (*out)[slot_];
    if (v.kind != RtValue::Kind::kNode) continue;
    MBQ_ASSIGN_OR_RETURN(nodestore::LabelId label,
                         ctx_->db->NodeLabel(v.node));
    if (label == *resolved_) return true;
  }
}

std::unique_ptr<Operator> LabelFilter::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<LabelFilter>(std::move(child), slot_, label_);
}

// ---------------------------------------------------------- ShortestPathOp

Status ShortestPathOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  resolved_type_.reset();
  if (!rel_type_.empty()) {
    auto type = ctx->db->FindRelType(rel_type_);
    if (type.ok()) resolved_type_ = *type;
  }
  return child_->Open(ctx);
}

Result<bool> ShortestPathOp::Next(Row* out) {
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(out));
    if (!more) return false;
    const RtValue& src = (*out)[src_slot_];
    const RtValue& dst = (*out)[dst_slot_];
    if (src.kind != RtValue::Kind::kNode ||
        dst.kind != RtValue::Kind::kNode) {
      return Status::InvalidArgument("shortestPath endpoints must be nodes");
    }
    if (!resolved_type_.has_value() && !rel_type_.empty()) {
      return false;  // unknown relationship type: no paths
    }
    nodestore::BidirectionalShortestPath bfs(ctx_->db, resolved_type_, dir_);
    bfs.SetMaxHops(max_hops_);
    MBQ_ASSIGN_OR_RETURN(std::vector<NodeId> path,
                         bfs.Find(src.node, dst.node));
    if (path.empty()) continue;  // no path: row dropped
    (*out)[path_slot_] = RtValue::FromPath(std::move(path));
    return true;
  }
}

std::unique_ptr<Operator> ShortestPathOp::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<ShortestPathOp>(std::move(child), src_slot_,
                                          dst_slot_, path_slot_, rel_type_,
                                          dir_, max_hops_);
}

// --------------------------------------------------------------- Aggregate

Status Aggregate::Open(ExecContext* ctx) {
  ctx_ = ctx;
  materialized_ = false;
  groups_.clear();
  output_.clear();
  index_ = 0;
  return child_->Open(ctx);
}

namespace {

using AggState = Aggregate::AggState;

Status AccumulateValue(const Aggregate::AggItem& agg, const RtValue& v,
                       AggState* state) {
  switch (agg.func) {
    case AggFunc::kCount:
      ++state->count;
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (v.kind != RtValue::Kind::kValue) {
        return Status::InvalidArgument("sum/avg over a non-numeric value");
      }
      MBQ_ASSIGN_OR_RETURN(double d, v.value.ToNumber());
      if (v.value.type() == common::ValueType::kInt) {
        state->isum += v.value.AsInt();
      } else {
        state->saw_double = true;
        state->dsum += d;
      }
      ++state->count;
      return Status::OK();
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      bool better = !state->has_best ||
                    (agg.func == AggFunc::kMin
                         ? v.Compare(state->best) < 0
                         : v.Compare(state->best) > 0);
      if (better) {
        state->best = v;
        state->has_best = true;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled aggregate function");
}

Result<RtValue> FinalizeAgg(const Aggregate::AggItem& agg, AggState* state) {
  // Distinct aggregates buffer values in a set and fold at the end.
  AggState folded;
  if (agg.distinct) {
    if (agg.func == AggFunc::kCount) {
      return RtValue::FromValue(
          Value::Int(static_cast<int64_t>(state->distinct.size())));
    }
    for (const Row& row : state->distinct) {
      MBQ_RETURN_IF_ERROR(AccumulateValue(agg, row[0], &folded));
    }
    state = &folded;
  }
  switch (agg.func) {
    case AggFunc::kCount:
      return RtValue::FromValue(
          Value::Int(static_cast<int64_t>(state->count)));
    case AggFunc::kSum:
      if (state->saw_double) {
        return RtValue::FromValue(
            Value::Double(state->dsum + static_cast<double>(state->isum)));
      }
      return RtValue::FromValue(Value::Int(state->isum));
    case AggFunc::kMin:
    case AggFunc::kMax:
      return state->has_best ? state->best : RtValue::Null();
    case AggFunc::kAvg: {
      if (state->count == 0) return RtValue::Null();
      double total = state->dsum + static_cast<double>(state->isum);
      return RtValue::FromValue(
          Value::Double(total / static_cast<double>(state->count)));
    }
  }
  return Status::Internal("unhandled aggregate function");
}

}  // namespace

Status Aggregate::AccumulateRow(const Row& row, ExecContext* ctx) {
  Row keys;
  keys.reserve(group_exprs_.size());
  for (const Expr* e : group_exprs_) {
    MBQ_ASSIGN_OR_RETURN(RtValue v, EvalExpr(*e, row, *slots_, ctx));
    keys.push_back(std::move(v));
  }
  auto [it, inserted] = groups_.try_emplace(keys);
  GroupState& state = it->second;
  if (inserted) {
    state.keys = keys;
    state.aggs.resize(aggs_.size());
  }
  for (size_t a = 0; a < aggs_.size(); ++a) {
    const AggItem& agg = aggs_[a];
    if (agg.arg == nullptr) {  // COUNT(*)
      ++state.aggs[a].count;
      continue;
    }
    MBQ_ASSIGN_OR_RETURN(RtValue v, EvalExpr(*agg.arg, row, *slots_, ctx));
    if (v.is_null()) continue;  // aggregates skip nulls
    if (agg.distinct) {
      state.aggs[a].distinct.insert(Row{v});
    } else {
      MBQ_RETURN_IF_ERROR(AccumulateValue(agg, v, &state.aggs[a]));
    }
  }
  return Status::OK();
}

Status Aggregate::MergeFrom(Aggregate* other) {
  for (auto& [keys, theirs] : other->groups_) {
    auto [it, inserted] = groups_.try_emplace(keys);
    GroupState& ours = it->second;
    if (inserted) {
      ours = std::move(theirs);
      continue;
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      AggState& dst = ours.aggs[a];
      AggState& src = theirs.aggs[a];
      dst.count += src.count;
      dst.isum += src.isum;
      dst.dsum += src.dsum;
      dst.saw_double |= src.saw_double;
      if (src.has_best) {
        bool better =
            !dst.has_best || (aggs_[a].func == AggFunc::kMin
                                  ? src.best.Compare(dst.best) < 0
                                  : src.best.Compare(dst.best) > 0);
        if (better) {
          dst.best = std::move(src.best);
          dst.has_best = true;
        }
      }
      dst.distinct.merge(src.distinct);
    }
  }
  other->groups_.clear();
  return Status::OK();
}

Status Aggregate::FinalizeGroups() {
  for (auto& [keys, state] : groups_) {
    Row out = state.keys;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      MBQ_ASSIGN_OR_RETURN(RtValue v, FinalizeAgg(aggs_[a], &state.aggs[a]));
      out.push_back(std::move(v));
    }
    output_.push_back(std::move(out));
  }
  groups_.clear();
  materialized_ = true;
  return Status::OK();
}

std::unique_ptr<Operator> Aggregate::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<Aggregate>(std::move(child), group_exprs_, aggs_,
                                     slots_);
}

std::unique_ptr<Aggregate> Aggregate::CloneCollector() const {
  return std::make_unique<Aggregate>(nullptr, group_exprs_, aggs_, slots_);
}

Status Aggregate::Materialize() {
  if (ctx_->pool != nullptr && ctx_->threads > 1 &&
      ctx_->outer_row == nullptr) {
    MBQ_ASSIGN_OR_RETURN(bool consumed,
                         ParallelMaterializeAggregate(this, ctx_));
    if (consumed) return FinalizeGroups();
  }
  Row row;
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(&row));
    if (!more) break;
    MBQ_RETURN_IF_ERROR(AccumulateRow(row, ctx_));
  }
  return FinalizeGroups();
}

Result<bool> Aggregate::Next(Row* out) {
  if (!materialized_) MBQ_RETURN_IF_ERROR(Materialize());
  if (index_ >= output_.size()) return false;
  *out = output_[index_++];
  return true;
}

// -------------------------------------------------------------- Projection

Status Projection::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> Projection::Next(Row* out) {
  Row input;
  MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(&input));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const Expr* e : exprs_) {
    MBQ_ASSIGN_OR_RETURN(RtValue v, EvalExpr(*e, input, *slots_, ctx_));
    out->push_back(std::move(v));
  }
  return true;
}

std::unique_ptr<Operator> Projection::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<Projection>(std::move(child), exprs_, slots_);
}

// ------------------------------------------------------------------- Sort

Status Sort::Open(ExecContext* ctx) {
  ctx_ = ctx;
  materialized_ = false;
  output_.clear();
  index_ = 0;
  return child_->Open(ctx);
}

Result<bool> Sort::Next(Row* out) {
  if (!materialized_) {
    Row row;
    for (;;) {
      MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(&row));
      if (!more) break;
      output_.push_back(row);
    }
    std::stable_sort(output_.begin(), output_.end(),
                     [this](const Row& a, const Row& b) {
                       for (const Key& key : keys_) {
                         int c = a[key.column].Compare(b[key.column]);
                         if (c != 0) return key.ascending ? c < 0 : c > 0;
                       }
                       return false;
                     });
    materialized_ = true;
  }
  if (index_ >= output_.size()) return false;
  *out = output_[index_++];
  return true;
}

std::unique_ptr<Operator> Sort::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<Sort>(std::move(child), keys_);
}

// ------------------------------------------------------------------ Limit

Status Limit::Open(ExecContext* ctx) {
  ctx_ = ctx;
  Row empty;
  SlotMap no_slots;
  MBQ_ASSIGN_OR_RETURN(RtValue v, EvalExpr(*count_expr_, empty, no_slots, ctx));
  if (v.kind != RtValue::Kind::kValue ||
      v.value.type() != common::ValueType::kInt || v.value.AsInt() < 0) {
    return Status::InvalidArgument("LIMIT requires a non-negative integer");
  }
  remaining_ = static_cast<uint64_t>(v.value.AsInt());
  return child_->Open(ctx);
}

Result<bool> Limit::Next(Row* out) {
  if (remaining_ == 0) return false;
  MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(out));
  if (!more) return false;
  --remaining_;
  return true;
}

std::unique_ptr<Operator> Limit::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<Limit>(std::move(child), count_expr_, slots_);
}

// --------------------------------------------------------------- Distinct

Status Distinct::Open(ExecContext* ctx) {
  ctx_ = ctx;
  seen_.clear();
  return child_->Open(ctx);
}

Result<bool> Distinct::Next(Row* out) {
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(out));
    if (!more) return false;
    if (seen_.insert(*out).second) return true;
  }
}

std::unique_ptr<Operator> Distinct::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<Distinct>(std::move(child));
}

// ------------------------------------------------------------------ Apply

Status Apply::Open(ExecContext* ctx) {
  ctx_ = ctx;
  have_left_ = false;
  return child_->Open(ctx);
}

Result<bool> Apply::Next(Row* out) {
  for (;;) {
    if (have_left_) {
      const Row* saved = ctx_->outer_row;
      ctx_->outer_row = &left_row_;
      Result<bool> more = right_->NextTracked(out);
      ctx_->outer_row = saved;
      MBQ_RETURN_IF_ERROR(more.status());
      if (*more) return true;
      have_left_ = false;
    }
    MBQ_ASSIGN_OR_RETURN(bool more_left, ChildNext(&left_row_));
    if (!more_left) return false;
    have_left_ = true;
    // Re-open the right side for this left row.
    const Row* saved = ctx_->outer_row;
    ctx_->outer_row = &left_row_;
    Status st = right_->Open(ctx_);
    ctx_->outer_row = saved;
    MBQ_RETURN_IF_ERROR(st);
  }
}

std::unique_ptr<Operator> Apply::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<Apply>(std::move(child), right_->CloneTree());
}

// ---------------------------------------------------------- RowBufferSource

Status RowBufferSource::Open(ExecContext* ctx) {
  ctx_ = ctx;
  morsel_pos_ = 0;
  morsel_end_ = 0;
  return Status::OK();
}

Result<bool> RowBufferSource::Next(Row* out) {
  if (morsel_pos_ >= morsel_end_) {
    if (cursor_ == nullptr) {
      // Serve-all mode: one pass over the whole buffer.
      if (morsel_end_ != 0 || rows_->empty()) return false;
      morsel_pos_ = 0;
      morsel_end_ = rows_->size();
    } else {
      size_t begin = cursor_->fetch_add(grain_, std::memory_order_relaxed);
      if (begin >= rows_->size()) return false;
      morsel_pos_ = begin;
      morsel_end_ = std::min(begin + grain_, rows_->size());
    }
  }
  *out = (*rows_)[morsel_pos_++];
  return true;
}

std::unique_ptr<Operator> RowBufferSource::CloneWithChild(
    std::unique_ptr<Operator>) const {
  return std::make_unique<RowBufferSource>(rows_, cursor_, grain_);
}

// ----------------------------------------------------------------- Helpers

std::string DescribePlanTree(const Operator& root, int indent) {
  std::string out(indent * 2, ' ');
  out += root.Describe();
  out += "  rows=" + std::to_string(root.rows_produced());
  out += " dbHits=" + std::to_string(root.db_hits());
  if (root.parallel_workers() > 0) {
    out += " par=" + std::to_string(root.parallel_workers());
  }
  out += "\n";
  if (const auto* apply = dynamic_cast<const Apply*>(&root)) {
    if (apply->child() != nullptr) {
      out += DescribePlanTree(*apply->child(), indent + 1);
    }
    if (apply->right() != nullptr) {
      out += DescribePlanTree(*apply->right(), indent + 1);
    }
    return out;
  }
  if (root.child() != nullptr) {
    out += DescribePlanTree(*root.child(), indent + 1);
  }
  return out;
}

std::string DescribePlanShape(const Operator& root, int indent) {
  std::string out(indent * 2, ' ');
  out += root.Describe();
  out += "\n";
  if (const auto* apply = dynamic_cast<const Apply*>(&root)) {
    if (apply->child() != nullptr) {
      out += DescribePlanShape(*apply->child(), indent + 1);
    }
    if (apply->right() != nullptr) {
      out += DescribePlanShape(*apply->right(), indent + 1);
    }
    return out;
  }
  if (root.child() != nullptr) {
    out += DescribePlanShape(*root.child(), indent + 1);
  }
  return out;
}

}  // namespace mbq::cypher
