#include "cypher/write_ops.h"

#include <utility>

namespace mbq::cypher {

namespace {

/// Evaluated property/SET values must be scalars (or null — SET x.p =
/// null clears the property); nodes, rels and paths are not storable.
Result<Value> ScalarOf(const RtValue& v, const char* what) {
  switch (v.kind) {
    case RtValue::Kind::kNull:
      return Value::Null();
    case RtValue::Kind::kValue:
      return v.value;
    default:
      return Status::InvalidArgument(std::string(what) +
                                     " must evaluate to a scalar value");
  }
}

}  // namespace

Status WriteClause::Open(ExecContext* ctx) {
  ctx_ = ctx;
  done_ = false;
  nodes_created_ = 0;
  rels_created_ = 0;
  props_set_ = 0;
  nodes_deleted_ = 0;
  rels_deleted_ = 0;
  return child_->Open(ctx);
}

Result<bool> WriteClause::Next(Row* out) {
  if (done_) return false;
  done_ = true;
  // Materialize first, mutate second (see class comment).
  std::vector<Row> input;
  Row row;
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, ChildNext(&row));
    if (!more) break;
    input.push_back(row);
  }
  for (Row& r : input) {
    MBQ_RETURN_IF_ERROR(ApplyRow(&r));
  }
  out->clear();
  out->reserve(5);
  for (uint64_t v : {nodes_created_, rels_created_, props_set_,
                     nodes_deleted_, rels_deleted_}) {
    out->push_back(RtValue::FromValue(Value::Int(static_cast<int64_t>(v))));
  }
  return true;
}

Status WriteClause::ApplyRow(Row* row) {
  MBQ_RETURN_IF_ERROR(ApplyCreate(row));
  MBQ_RETURN_IF_ERROR(ApplySet(row));
  MBQ_RETURN_IF_ERROR(ApplyDelete(row));
  return Status::OK();
}

Status WriteClause::ApplyCreate(Row* row) {
  GraphDb* db = ctx_->db;
  for (const PatternPart& part : query_->create_patterns) {
    std::vector<NodeId> ids(part.nodes.size(), nodestore::kInvalidNode);
    for (size_t i = 0; i < part.nodes.size(); ++i) {
      const NodePattern& node = part.nodes[i];
      uint32_t slot = slots_->at(node.variable);
      const RtValue& bound = (*row)[slot];
      // A slot already holding a node is an endpoint reference (bound by
      // MATCH or by an earlier CREATE in this row); everything else is a
      // fresh node. Labels are get-or-create: writing a new label is how
      // the schema grows.
      if (bound.kind == RtValue::Kind::kNode) {
        ids[i] = bound.node;
        continue;
      }
      MBQ_ASSIGN_OR_RETURN(nodestore::LabelId label, db->Label(node.label));
      NodeId id = nodestore::kInvalidNode;
      MBQ_ASSIGN_OR_RETURN(id, db->CreateNode(label));
      ++nodes_created_;
      for (const auto& [key, value] : node.properties) {
        MBQ_ASSIGN_OR_RETURN(RtValue v,
                             EvalExpr(*value, *row, *slots_, ctx_));
        MBQ_ASSIGN_OR_RETURN(Value scalar, ScalarOf(v, "CREATE property"));
        MBQ_RETURN_IF_ERROR(db->SetNodeProperty(id, db->PropKey(key), scalar));
        ++props_set_;
      }
      (*row)[slot] = RtValue::FromNode(id);
      ids[i] = id;
    }
    for (size_t r = 0; r < part.rels.size(); ++r) {
      const RelPattern& rel = part.rels[r];
      NodeId src = ids[r];
      NodeId dst = ids[r + 1];
      if (rel.dir == RelPattern::Dir::kIn) std::swap(src, dst);
      MBQ_ASSIGN_OR_RETURN(nodestore::RelTypeId type, db->RelType(rel.type));
      RelId rid = nodestore::kInvalidRel;
      MBQ_ASSIGN_OR_RETURN(rid, db->CreateRelationship(type, src, dst));
      ++rels_created_;
      if (!rel.variable.empty()) {
        auto it = slots_->find(rel.variable);
        if (it != slots_->end()) (*row)[it->second] = RtValue::FromRel(rid);
      }
    }
  }
  return Status::OK();
}

Status WriteClause::ApplySet(Row* row) {
  GraphDb* db = ctx_->db;
  for (const SetItem& item : query_->set_items) {
    const RtValue& target = (*row)[slots_->at(item.variable)];
    if (target.kind == RtValue::Kind::kNull) continue;  // nothing matched
    MBQ_ASSIGN_OR_RETURN(RtValue v, EvalExpr(*item.value, *row, *slots_, ctx_));
    MBQ_ASSIGN_OR_RETURN(Value scalar, ScalarOf(v, "SET value"));
    nodestore::PropKeyId key = db->PropKey(item.property);
    switch (target.kind) {
      case RtValue::Kind::kNode:
        MBQ_RETURN_IF_ERROR(db->SetNodeProperty(target.node, key, scalar));
        break;
      case RtValue::Kind::kRel:
        MBQ_RETURN_IF_ERROR(db->SetRelProperty(target.rel, key, scalar));
        break;
      default:
        return Status::InvalidArgument("SET target '" + item.variable +
                                       "' is not a node or relationship");
    }
    ++props_set_;
  }
  return Status::OK();
}

Status WriteClause::ApplyDelete(Row* row) {
  GraphDb* db = ctx_->db;
  for (const DeleteItem& item : query_->delete_items) {
    const RtValue& target = (*row)[slots_->at(item.variable)];
    switch (target.kind) {
      case RtValue::Kind::kNull:
        continue;  // nothing matched
      case RtValue::Kind::kRel:
        // Idempotent within the query: MATCH can bind the same rel in
        // several rows, and a DETACH DELETE may have removed it already.
        if (!db->RelExists(target.rel)) continue;
        MBQ_RETURN_IF_ERROR(db->DeleteRelationship(target.rel));
        ++rels_deleted_;
        break;
      case RtValue::Kind::kNode:
        if (!db->NodeExists(target.node)) continue;
        MBQ_RETURN_IF_ERROR(item.detach ? db->DetachDeleteNode(target.node)
                                        : db->DeleteNode(target.node));
        ++nodes_deleted_;
        break;
      default:
        return Status::InvalidArgument("DELETE target '" + item.variable +
                                       "' is not a node or relationship");
    }
  }
  return Status::OK();
}

std::string WriteClause::Describe() const {
  return "Write(" + std::to_string(query_->create_patterns.size()) +
         " create, " + std::to_string(query_->set_items.size()) + " set, " +
         std::to_string(query_->delete_items.size()) + " delete)";
}

std::unique_ptr<Operator> WriteClause::CloneWithChild(
    std::unique_ptr<Operator> child) const {
  return std::make_unique<WriteClause>(std::move(child), query_, slots_);
}

}  // namespace mbq::cypher
