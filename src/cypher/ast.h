#ifndef MBQ_CYPHER_AST_H_
#define MBQ_CYPHER_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "cypher/diag.h"

namespace mbq::cypher {

using common::Value;

// ------------------------------------------------------------- Expressions

enum class ExprKind : uint8_t {
  kLiteral,       // 42, "abc", true
  kParameter,     // $name
  kVariable,      // u
  kProperty,      // u.uid
  kComparison,    // =, <>, <, <=, >, >=
  kAnd,
  kOr,
  kNot,
  kAggCall,       // COUNT/SUM/MIN/MAX/AVG(...)
  kLengthCall,    // length(p)
  kIdCall,        // id(u)
  kPatternPred,   // (a)-[:t]->(b) used as a predicate
};

/// Aggregate functions usable in RETURN items.
enum class AggFunc : uint8_t { kCount, kSum, kMin, kMax, kAvg };

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One expression node. A small closed union rather than a class
/// hierarchy: the planner and evaluator switch on `kind`.
struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;
  // kParameter
  std::string param_name;
  // kVariable / kProperty / kAggCall / kLengthCall / kIdCall
  std::string variable;
  // kProperty; also the aggregated property for kAggCall over u.prop
  std::string property;
  // kComparison
  CompareOp op = CompareOp::kEq;
  // kComparison/kAnd/kOr: children[0], children[1]; kNot: children[0]
  std::vector<ExprPtr> children;
  // kAggCall: children[0] is the aggregated expression (absent for
  // COUNT(*)); `variable` keeps the raw argument text for display.
  AggFunc agg_func = AggFunc::kCount;
  bool count_star = false;
  bool distinct = false;
  // kPatternPred: src -[:rel_type]-> dst (left/right from query text)
  std::string pattern_src;
  std::string pattern_rel_type;
  std::string pattern_dst;
  bool pattern_right_arrow = true;  // false for <-
  // Source position of the expression's first token. Unknown (line 0)
  // for expressions synthesized outside the parser (tests, planner).
  SourceSpan span;

  /// True if this expression contains an aggregate call.
  bool ContainsAggregate() const {
    if (kind == ExprKind::kAggCall) return true;
    for (const ExprPtr& c : children) {
      if (c->ContainsAggregate()) return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------- Patterns

/// (name:label {key: expr, ...})
struct NodePattern {
  std::string variable;  // may be empty (anonymous)
  std::string label;     // may be empty
  std::vector<std::pair<std::string, ExprPtr>> properties;
  SourceSpan span;        // position of the opening '('
  SourceSpan label_span;  // position of the label name, if present
};

/// -[:type]->, <-[:type]-, -[:type*min..max]->, -[:type]- (undirected)
struct RelPattern {
  std::string variable;  // may be empty
  std::string type;      // may be empty (any type)
  /// kOut: left-to-right arrow; kIn: right-to-left; kBoth: undirected.
  enum class Dir : uint8_t { kOut, kIn, kBoth } dir = Dir::kOut;
  /// Variable-length bounds; {1,1} is a plain single hop.
  uint32_t min_hops = 1;
  uint32_t max_hops = 1;
  SourceSpan span;       // position of the leading '-' or '<-'
  SourceSpan type_span;  // position of the type name, if present
};

/// A linear chain: node (rel node)*. `path_variable` is set for
/// `p = shortestPath((a)-[:t*..k]->(b))`.
struct PatternPart {
  std::string path_variable;  // may be empty
  bool shortest_path = false;
  std::vector<NodePattern> nodes;
  std::vector<RelPattern> rels;  // rels.size() == nodes.size() - 1
};

// ------------------------------------------------------------------ Query

struct ReturnItem {
  ExprPtr expr;
  std::string alias;  // display name; defaults to the expression text
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

// ----------------------------------------------------------- Write clauses

/// One assignment of a SET clause: `SET var.property = value`.
struct SetItem {
  std::string variable;
  std::string property;
  ExprPtr value;
  SourceSpan span;  // position of the variable
};

/// One target of a DELETE clause: `DELETE var` / `DETACH DELETE var`.
struct DeleteItem {
  std::string variable;
  bool detach = false;
  SourceSpan span;  // position of the variable
};

/// A parsed query. Read form:
///   MATCH <patterns> [WHERE <expr>]
///   RETURN [DISTINCT] <items> [ORDER BY <items>] [LIMIT <n>]
/// Write form (mutating clauses instead of RETURN; the result is one
/// summary row):
///   [MATCH <patterns> [WHERE <expr>]]
///   (CREATE <patterns> | SET <items> | [DETACH] DELETE <vars>)+
struct Query {
  std::vector<PatternPart> patterns;
  ExprPtr where;  // may be null
  bool return_distinct = false;
  std::vector<ReturnItem> return_items;
  std::vector<OrderItem> order_by;
  ExprPtr limit;  // may be null

  // Write clauses; any non-empty list marks the query as a write. The
  // executor applies them per matched row in clause order: CREATE, then
  // SET, then DELETE.
  std::vector<PatternPart> create_patterns;
  std::vector<SetItem> set_items;
  std::vector<DeleteItem> delete_items;

  bool IsWrite() const {
    return !create_patterns.empty() || !set_items.empty() ||
           !delete_items.empty();
  }
};

/// Builders used by the parser and by tests.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeParameter(std::string name);
ExprPtr MakeVariable(std::string name);
ExprPtr MakeProperty(std::string var, std::string prop);
ExprPtr MakeComparison(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeNot(ExprPtr operand);
ExprPtr MakeCount(std::string var, bool star, bool distinct);
ExprPtr MakeAggregate(AggFunc func, ExprPtr argument, bool distinct);

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_AST_H_
