#ifndef MBQ_CYPHER_DIAG_H_
#define MBQ_CYPHER_DIAG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mbq::cypher {

/// A position in the query text, shared by lexer/parser error messages
/// and the semantic analyzer's diagnostics. Line and column are 1-based;
/// line 0 marks an unknown position (e.g. a synthesized expression).
struct SourceSpan {
  size_t offset = 0;
  uint32_t line = 0;
  uint32_t column = 0;

  bool known() const { return line != 0; }
  /// "line L, column C" (or "<unknown position>").
  std::string ToString() const;
};

/// Computes the 1-based line/column of byte `offset` in `text`.
SourceSpan SpanAt(const std::string& text, size_t offset);

/// Diagnostic severity, ordered from mildest to most severe.
enum class Severity : uint8_t { kHint = 0, kWarning = 1, kError = 2 };

const char* SeverityName(Severity severity);

/// One finding of the semantic analyzer: a rule name (the lint
/// catalogue's stable identifier, e.g. "unknown-label"), a severity, a
/// human-readable message and the source span it anchors to.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string rule;
  std::string message;
  SourceSpan span;

  /// "error[unknown-label] line 1, column 8: unknown label 'usr' ...".
  std::string ToString() const;
};

/// The session's enforcement threshold for semantic diagnostics
/// (SessionOptions::lint_level). kOff never blocks; the other levels
/// refuse to plan/execute a query carrying a diagnostic at or above the
/// named severity. LINT and EXPLAIN are analysis verbs and always run.
enum class LintLevel : uint8_t {
  kOff = 0,      ///< analyze, report, never refuse
  kError = 1,    ///< strict mode: refuse error-level queries
  kWarning = 2,  ///< additionally refuse warnings
  kHint = 3,     ///< pedantic: refuse hints too
};

/// True when `level` refuses queries carrying `severity` diagnostics.
bool LintLevelBlocks(LintLevel level, Severity severity);

/// The analyzer's output: diagnostics in source order (most severe first
/// on ties is NOT guaranteed; callers sort if they need to).
struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;

  bool empty() const { return diagnostics.empty(); }
  /// Highest severity present; kHint when empty.
  Severity max_severity() const;
  bool has_errors() const { return max_severity() == Severity::kError; }
  /// True when `level` refuses a query with these diagnostics.
  bool BlockedAt(LintLevel level) const;
  /// One Diagnostic::ToString() line per finding (trailing newline).
  std::string ToText() const;
};

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_DIAG_H_
