#include "cypher/diag.h"

namespace mbq::cypher {

std::string SourceSpan::ToString() const {
  if (!known()) return "<unknown position>";
  return "line " + std::to_string(line) + ", column " + std::to_string(column);
}

SourceSpan SpanAt(const std::string& text, size_t offset) {
  SourceSpan span;
  span.offset = offset;
  span.line = 1;
  span.column = 1;
  size_t end = offset < text.size() ? offset : text.size();
  for (size_t i = 0; i < end; ++i) {
    if (text[i] == '\n') {
      ++span.line;
      span.column = 1;
    } else {
      ++span.column;
    }
  }
  return span;
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kHint:
      return "hint";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += "[";
  out += rule;
  out += "] ";
  if (span.known()) {
    out += span.ToString();
    out += ": ";
  }
  out += message;
  return out;
}

bool LintLevelBlocks(LintLevel level, Severity severity) {
  switch (level) {
    case LintLevel::kOff:
      return false;
    case LintLevel::kError:
      return severity >= Severity::kError;
    case LintLevel::kWarning:
      return severity >= Severity::kWarning;
    case LintLevel::kHint:
      return true;
  }
  return false;
}

Severity AnalysisResult::max_severity() const {
  Severity max = Severity::kHint;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity > max) max = d.severity;
  }
  return max;
}

bool AnalysisResult::BlockedAt(LintLevel level) const {
  for (const Diagnostic& d : diagnostics) {
    if (LintLevelBlocks(level, d.severity)) return true;
  }
  return false;
}

std::string AnalysisResult::ToText() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace mbq::cypher
