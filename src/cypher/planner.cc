#include "cypher/planner.h"

#include <algorithm>
#include <unordered_set>

#include "cache/epoch.h"
#include "cypher/write_ops.h"
#include "util/logging.h"

namespace mbq::cypher {

namespace {

/// Structural equality for the expression shapes that can appear both in
/// RETURN and ORDER BY (variables, properties, calls, literals, params).
bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kLiteral:
      return a.literal == b.literal;
    case ExprKind::kParameter:
      return a.param_name == b.param_name;
    case ExprKind::kVariable:
      return a.variable == b.variable;
    case ExprKind::kProperty:
      return a.variable == b.variable && a.property == b.property;
    case ExprKind::kAggCall:
      return a.agg_func == b.agg_func && a.variable == b.variable &&
             a.count_star == b.count_star && a.distinct == b.distinct;
    case ExprKind::kLengthCall:
    case ExprKind::kIdCall:
      return a.variable == b.variable;
    default:
      return false;
  }
}

/// Display text for a return item without an alias.
std::string ExprText(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal.ToString();
    case ExprKind::kParameter:
      return "$" + e.param_name;
    case ExprKind::kVariable:
      return e.variable;
    case ExprKind::kProperty:
      return e.variable + "." + e.property;
    case ExprKind::kAggCall: {
      const char* name = e.agg_func == AggFunc::kCount ? "count"
                         : e.agg_func == AggFunc::kSum ? "sum"
                         : e.agg_func == AggFunc::kMin ? "min"
                         : e.agg_func == AggFunc::kMax ? "max"
                                                       : "avg";
      if (e.count_star) return std::string(name) + "(*)";
      return std::string(name) + "(" + (e.distinct ? "DISTINCT " : "") +
             e.variable + ")";
    }
    case ExprKind::kLengthCall:
      return "length(" + e.variable + ")";
    case ExprKind::kIdCall:
      return "id(" + e.variable + ")";
    default:
      return "expr";
  }
}

nodestore::Direction ToDirection(RelPattern::Dir dir, bool reversed) {
  switch (dir) {
    case RelPattern::Dir::kOut:
      return reversed ? nodestore::Direction::kIncoming
                      : nodestore::Direction::kOutgoing;
    case RelPattern::Dir::kIn:
      return reversed ? nodestore::Direction::kOutgoing
                      : nodestore::Direction::kIncoming;
    case RelPattern::Dir::kBoth:
      return nodestore::Direction::kBoth;
  }
  return nodestore::Direction::kBoth;
}

/// Splits a WHERE tree into top-level conjuncts.
void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kAnd) {
    SplitConjuncts(e->children[0].get(), out);
    SplitConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

class PlanBuilder {
 public:
  PlanBuilder(Query query, GraphDb* db)
      : plan_(std::make_unique<PlannedQuery>()), db_(db) {
    plan_->ast = std::move(query);
  }

  Result<std::unique_ptr<PlannedQuery>> Build() {
    AssignSlots();
    // A CREATE-only query has no reading side; everything else plans its
    // MATCH/WHERE first.
    if (!ast().patterns.empty()) {
      MBQ_RETURN_IF_ERROR(PlanMatch());
      MBQ_RETURN_IF_ERROR(PlanWhere());
    }
    if (ast().IsWrite()) {
      MBQ_RETURN_IF_ERROR(PlanWrite());
    } else {
      MBQ_RETURN_IF_ERROR(PlanReturn());
    }
    return std::move(plan_);
  }

 private:
  Query& ast() { return plan_->ast; }

  uint32_t SlotFor(const std::string& name) {
    auto it = plan_->slots.find(name);
    if (it != plan_->slots.end()) return it->second;
    uint32_t slot = plan_->width++;
    plan_->slots.emplace(name, slot);
    return slot;
  }

  std::string FreshName() {
    return "  anon" + std::to_string(anon_counter_++);
  }

  void AssignSlots() {
    for (PatternPart& part : ast().patterns) {
      for (NodePattern& node : part.nodes) {
        if (node.variable.empty()) node.variable = FreshName();
        SlotFor(node.variable);
      }
      for (RelPattern& rel : part.rels) {
        if (!rel.variable.empty()) SlotFor(rel.variable);
      }
      if (part.shortest_path && part.path_variable.empty()) {
        part.path_variable = FreshName();
      }
      if (!part.path_variable.empty()) SlotFor(part.path_variable);
    }
    // Create-pattern variables get slots too: a node created for one row
    // is bound into the row so later rels/SETs in the same query see it.
    for (PatternPart& part : ast().create_patterns) {
      for (NodePattern& node : part.nodes) {
        if (node.variable.empty()) node.variable = FreshName();
        SlotFor(node.variable);
      }
      for (RelPattern& rel : part.rels) {
        if (!rel.variable.empty()) SlotFor(rel.variable);
      }
    }
  }

  /// Appends a filter checking `var.prop == value_expr` (inline property
  /// maps on non-anchor nodes).
  void AddPropertyFilter(const std::string& var, const std::string& prop,
                         const Expr* value) {
    // Clone the value expression shallowly (literals and params only).
    auto clone = std::make_unique<Expr>();
    clone->kind = value->kind;
    clone->literal = value->literal;
    clone->param_name = value->param_name;
    ExprPtr filter = MakeComparison(
        CompareOp::kEq, MakeProperty(var, prop), std::move(clone));
    current_ = std::make_unique<Filter>(std::move(current_), filter.get(),
                                        &plan_->slots);
    plan_->synthesized.push_back(std::move(filter));
  }

  void AddNodeConstraints(const NodePattern& node) {
    if (!node.label.empty()) {
      current_ = std::make_unique<LabelFilter>(std::move(current_),
                                               plan_->slots[node.variable],
                                               node.label);
    }
    for (const auto& [prop, value] : node.properties) {
      AddPropertyFilter(node.variable, prop, value.get());
    }
  }

  /// Index-seekable property of a node pattern, if any.
  Result<int> SeekablePropertyIndex(const NodePattern& node) {
    if (node.label.empty() || node.properties.empty()) return -1;
    auto label = db_->FindLabel(node.label);
    if (!label.ok()) return -1;
    for (size_t i = 0; i < node.properties.size(); ++i) {
      auto key = db_->FindPropKey(node.properties[i].first);
      if (key.ok() && db_->HasIndex(*label, *key)) return static_cast<int>(i);
    }
    return -1;
  }

  /// Plans the scan/seek for an anchor node into `current_`.
  Result<bool> PlanAnchor(const NodePattern& node) {
    uint32_t slot = plan_->slots[node.variable];
    MBQ_ASSIGN_OR_RETURN(int seek_prop, SeekablePropertyIndex(node));
    std::unique_ptr<Operator> scan;
    if (seek_prop >= 0) {
      scan = std::make_unique<NodeIndexSeek>(
          slot, plan_->width, node.label,
          node.properties[seek_prop].first,
          node.properties[seek_prop].second.get());
    } else if (!node.label.empty()) {
      scan = std::make_unique<NodeLabelScan>(slot, plan_->width, node.label);
    } else {
      return Status::InvalidArgument(
          "cannot plan anchor for unlabeled node '" + node.variable +
          "' — add a label");
    }
    if (current_ == nullptr) {
      current_ = std::move(scan);
    } else {
      current_ = std::make_unique<Apply>(std::move(current_), std::move(scan));
    }
    // Residual property constraints (the seek consumed at most one).
    for (size_t i = 0; i < node.properties.size(); ++i) {
      if (seek_prop >= 0 && static_cast<size_t>(i) ==
                                static_cast<size_t>(seek_prop)) {
        continue;
      }
      AddPropertyFilter(node.variable, node.properties[i].first,
                        node.properties[i].second.get());
    }
    return true;
  }

  /// Expands rel index `r` of `part`; `reversed` walks right-to-left.
  Status PlanExpandStep(const PatternPart& part, size_t r, bool reversed) {
    const RelPattern& rel = part.rels[r];
    const NodePattern& from = part.nodes[reversed ? r + 1 : r];
    const NodePattern& to = part.nodes[reversed ? r : r + 1];
    uint32_t from_slot = plan_->slots[from.variable];
    uint32_t to_slot = plan_->slots[to.variable];
    bool target_bound = bound_.count(to.variable) != 0;
    nodestore::Direction dir = ToDirection(rel.dir, reversed);

    if (rel.min_hops != 1 || rel.max_hops != 1) {
      if (target_bound) {
        return Status::NotImplemented(
            "variable-length expand into a bound node");
      }
      current_ = std::make_unique<VarLengthExpand>(
          std::move(current_), from_slot, to_slot, rel.type, dir,
          rel.min_hops, rel.max_hops);
    } else {
      std::optional<uint32_t> rel_slot;
      if (!rel.variable.empty()) rel_slot = plan_->slots[rel.variable];
      current_ = std::make_unique<Expand>(std::move(current_), from_slot,
                                          to_slot, rel_slot, rel.type, dir,
                                          target_bound);
    }
    if (!target_bound) {
      bound_.insert(to.variable);
      AddNodeConstraints(to);
    }
    return Status::OK();
  }

  Status PlanChainPart(const PatternPart& part) {
    // Anchor preference: an already-bound node; else the best scannable
    // node (index seek preferred over label scan).
    int anchor = -1;
    for (size_t i = 0; i < part.nodes.size(); ++i) {
      if (bound_.count(part.nodes[i].variable) != 0) {
        anchor = static_cast<int>(i);
        break;
      }
    }
    if (anchor < 0) {
      int best_score = -1;
      for (size_t i = 0; i < part.nodes.size(); ++i) {
        const NodePattern& node = part.nodes[i];
        MBQ_ASSIGN_OR_RETURN(int seek, SeekablePropertyIndex(node));
        int score = seek >= 0                ? 3
                    : !node.properties.empty() && !node.label.empty() ? 2
                    : !node.label.empty()    ? 1
                                             : 0;
        if (score > best_score) {
          best_score = score;
          anchor = static_cast<int>(i);
        }
      }
      const NodePattern& node = part.nodes[anchor];
      MBQ_RETURN_IF_ERROR(PlanAnchor(node).status());
      bound_.insert(node.variable);
      // Label was enforced by the scan; enforce nothing else here (the
      // anchor planner added residual property filters already).
    }
    // Expand right then left from the anchor.
    for (size_t r = anchor; r < part.rels.size(); ++r) {
      MBQ_RETURN_IF_ERROR(PlanExpandStep(part, r, /*reversed=*/false));
    }
    for (size_t r = anchor; r-- > 0;) {
      MBQ_RETURN_IF_ERROR(PlanExpandStep(part, r, /*reversed=*/true));
    }
    return Status::OK();
  }

  Status PlanShortestPathPart(const PatternPart& part) {
    if (part.nodes.size() != 2 || part.rels.size() != 1) {
      return Status::NotImplemented(
          "shortestPath expects a single-relationship pattern");
    }
    // Bind endpoints that aren't bound yet.
    for (size_t e = 0; e < 2; ++e) {
      const NodePattern& node = part.nodes[e];
      if (bound_.count(node.variable) != 0) continue;
      MBQ_RETURN_IF_ERROR(PlanAnchor(node).status());
      bound_.insert(node.variable);
    }
    const RelPattern& rel = part.rels[0];
    uint32_t src_slot = plan_->slots[part.nodes[0].variable];
    uint32_t dst_slot = plan_->slots[part.nodes[1].variable];
    uint32_t path_slot = SlotFor(part.path_variable);
    nodestore::Direction dir = ToDirection(rel.dir, /*reversed=*/false);
    // A kIn pattern is the reverse search.
    if (dir == nodestore::Direction::kIncoming) {
      std::swap(src_slot, dst_slot);
      dir = nodestore::Direction::kOutgoing;
    }
    current_ = std::make_unique<ShortestPathOp>(
        std::move(current_), src_slot, dst_slot, path_slot, rel.type, dir,
        rel.max_hops);
    return Status::OK();
  }

  Status PlanMatch() {
    // Plan chain parts first (shortest paths need bound endpoints).
    std::vector<const PatternPart*> chains;
    std::vector<const PatternPart*> shortest;
    for (const PatternPart& part : ast().patterns) {
      (part.shortest_path ? shortest : chains).push_back(&part);
    }
    // Order chains so that parts sharing variables with bound ones come
    // right after them (connected components stay together).
    std::vector<const PatternPart*> pending = chains;
    while (!pending.empty()) {
      size_t pick = 0;
      if (current_ != nullptr) {
        for (size_t i = 0; i < pending.size(); ++i) {
          bool shares = false;
          for (const NodePattern& n : pending[i]->nodes) {
            if (bound_.count(n.variable) != 0) {
              shares = true;
              break;
            }
          }
          if (shares) {
            pick = i;
            break;
          }
        }
      }
      MBQ_RETURN_IF_ERROR(PlanChainPart(*pending[pick]));
      pending.erase(pending.begin() + pick);
    }
    for (const PatternPart* part : shortest) {
      MBQ_RETURN_IF_ERROR(PlanShortestPathPart(*part));
    }
    if (current_ == nullptr) {
      return Status::InvalidArgument("empty MATCH");
    }
    return Status::OK();
  }

  Status PlanWhere() {
    std::vector<const Expr*> conjuncts;
    SplitConjuncts(ast().where.get(), &conjuncts);
    for (const Expr* conjunct : conjuncts) {
      current_ = std::make_unique<Filter>(std::move(current_), conjunct,
                                          &plan_->slots);
    }
    return Status::OK();
  }

  /// Roots the plan with the WriteClause operator: the reading side (or a
  /// SingleRow for bare CREATE) feeds it rows, it applies the mutating
  /// clauses and emits one summary row.
  Status PlanWrite() {
    plan_->is_write = true;
    if (current_ == nullptr) {
      current_ = std::make_unique<SingleRow>(plan_->width);
    }
    current_ = std::make_unique<WriteClause>(std::move(current_), &ast(),
                                             &plan_->slots);
    plan_->columns = {"nodes_created", "rels_created", "props_set",
                      "nodes_deleted", "rels_deleted"};
    plan_->root = std::move(current_);
    return Status::OK();
  }

  Status PlanReturn() {
    auto& items = ast().return_items;
    bool has_aggregates = false;
    for (const ReturnItem& item : items) {
      if (item.expr->ContainsAggregate()) has_aggregates = true;
    }

    // Output column layout: position per return item, plus hidden columns
    // for ORDER BY expressions not in the RETURN list.
    std::vector<const Expr*> column_exprs;  // pre-projection expressions
    std::vector<uint32_t> item_columns(items.size());

    if (has_aggregates) {
      std::vector<const Expr*> group_exprs;
      std::vector<Aggregate::AggItem> aggs;
      std::vector<bool> item_is_agg(items.size());
      std::vector<uint32_t> item_pos(items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        const Expr& e = *items[i].expr;
        if (e.kind == ExprKind::kAggCall) {
          item_is_agg[i] = true;
          item_pos[i] = static_cast<uint32_t>(aggs.size());
          Aggregate::AggItem agg;
          agg.arg = e.children.empty() ? nullptr : e.children[0].get();
          agg.func = e.agg_func;
          agg.distinct = e.distinct;
          aggs.push_back(std::move(agg));
        } else if (e.ContainsAggregate()) {
          return Status::NotImplemented(
              "aggregates must be top-level return items");
        } else {
          item_is_agg[i] = false;
          item_pos[i] = static_cast<uint32_t>(group_exprs.size());
          group_exprs.push_back(&e);
        }
      }
      uint32_t num_keys = static_cast<uint32_t>(group_exprs.size());
      current_ = std::make_unique<Aggregate>(std::move(current_),
                                             std::move(group_exprs),
                                             std::move(aggs), &plan_->slots);
      // Aggregate output columns: [keys..., counts...]. Map each return
      // item to its column via a synthetic column variable.
      for (size_t i = 0; i < items.size(); ++i) {
        uint32_t col = item_is_agg[i] ? num_keys + item_pos[i] : item_pos[i];
        item_columns[i] = col;
      }
      // Build the post-aggregation slot map (#c<N> -> N).
      uint32_t total = num_keys;
      for (const ReturnItem& item : items) {
        if (item.expr->kind == ExprKind::kAggCall) ++total;
      }
      for (uint32_t c = 0; c < total; ++c) {
        plan_->output_slots.emplace("#c" + std::to_string(c), c);
      }
      // Projection pulling the aggregate output into return order.
      std::vector<const Expr*> proj;
      for (size_t i = 0; i < items.size(); ++i) {
        ExprPtr var = MakeVariable("#c" + std::to_string(item_columns[i]));
        proj.push_back(var.get());
        plan_->synthesized.push_back(std::move(var));
      }
      // ORDER BY columns must reference return items (aliases or repeated
      // expressions) when aggregating.
      MBQ_RETURN_IF_ERROR(ResolveOrderColumns(items, &column_exprs));
      // Hidden ORDER BY expressions are not supported with aggregation.
      if (!column_exprs.empty()) {
        return Status::NotImplemented(
            "ORDER BY must reference returned columns when aggregating");
      }
      current_ = std::make_unique<Projection>(std::move(current_),
                                              std::move(proj),
                                              &plan_->output_slots);
    } else {
      std::vector<const Expr*> proj;
      for (size_t i = 0; i < items.size(); ++i) {
        item_columns[i] = static_cast<uint32_t>(i);
        proj.push_back(items[i].expr.get());
      }
      MBQ_RETURN_IF_ERROR(ResolveOrderColumns(items, &column_exprs));
      for (const Expr* hidden : column_exprs) proj.push_back(hidden);
      current_ = std::make_unique<Projection>(std::move(current_),
                                              std::move(proj), &plan_->slots);
    }

    if (ast().return_distinct) {
      if (!column_exprs.empty()) {
        return Status::NotImplemented(
            "DISTINCT with non-returned ORDER BY expressions");
      }
      current_ = std::make_unique<Distinct>(std::move(current_));
    }

    if (!order_columns_.empty()) {
      current_ = std::make_unique<Sort>(std::move(current_), order_columns_);
    }
    if (ast().limit != nullptr) {
      current_ = std::make_unique<Limit>(std::move(current_),
                                         ast().limit.get(), &plan_->slots);
    }
    // Trim hidden ORDER BY columns.
    if (!column_exprs.empty()) {
      std::vector<const Expr*> trim;
      for (size_t i = 0; i < items.size(); ++i) {
        ExprPtr var = MakeVariable("#c" + std::to_string(i));
        trim.push_back(var.get());
        plan_->synthesized.push_back(std::move(var));
      }
      for (uint32_t c = 0;
           c < items.size() + column_exprs.size(); ++c) {
        plan_->output_slots.emplace("#c" + std::to_string(c), c);
      }
      current_ = std::make_unique<Projection>(std::move(current_),
                                              std::move(trim),
                                              &plan_->output_slots);
    }

    for (const ReturnItem& item : items) {
      plan_->columns.push_back(item.alias.empty() ? ExprText(*item.expr)
                                                  : item.alias);
    }
    plan_->root = std::move(current_);
    return Status::OK();
  }

  /// Maps ORDER BY expressions to output columns; expressions not among
  /// the return items become hidden columns appended to `hidden`.
  Status ResolveOrderColumns(const std::vector<ReturnItem>& items,
                             std::vector<const Expr*>* hidden) {
    for (const OrderItem& order : ast().order_by) {
      int column = -1;
      // Alias reference?
      if (order.expr->kind == ExprKind::kVariable) {
        for (size_t i = 0; i < items.size(); ++i) {
          if (items[i].alias == order.expr->variable) {
            column = static_cast<int>(i);
            break;
          }
        }
      }
      // Structural match against a return item?
      if (column < 0) {
        for (size_t i = 0; i < items.size(); ++i) {
          if (ExprEquals(*items[i].expr, *order.expr)) {
            column = static_cast<int>(i);
            break;
          }
        }
      }
      if (column < 0) {
        column = static_cast<int>(items.size() + hidden->size());
        hidden->push_back(order.expr.get());
      }
      order_columns_.push_back(
          {static_cast<uint32_t>(column), order.ascending});
    }
    return Status::OK();
  }

  std::unique_ptr<PlannedQuery> plan_;
  GraphDb* db_;
  std::unique_ptr<Operator> current_;
  std::unordered_set<std::string> bound_;
  std::vector<Sort::Key> order_columns_;
  int anon_counter_ = 0;
};

/// Accumulates the rel-type domains of pattern predicates nested in an
/// expression tree.
void CollectExprDomains(const Expr& expr, GraphDb* db,
                        std::vector<uint32_t>* domains, bool* use_global) {
  if (expr.kind == ExprKind::kPatternPred) {
    if (expr.pattern_rel_type.empty()) {
      *use_global = true;
    } else if (auto type = db->FindRelType(expr.pattern_rel_type);
               type.ok()) {
      domains->push_back(cache::RelTypeDomain(*type));
    } else {
      *use_global = true;
    }
  }
  for (const ExprPtr& child : expr.children) {
    CollectExprDomains(*child, db, domains, use_global);
  }
}

/// Resolves the query's epoch footprint against the current schema. An
/// unlabelled node can be of any label (so any node write may change the
/// result), an untyped relationship likewise; a name the schema does not
/// know yet could be registered by a later write — all three degrade to
/// the global epoch rather than risk a stale cached result.
void ComputeEpochFootprint(const Query& ast, GraphDb* db, PlannedQuery* plan) {
  // Write queries never enter the result cache; the conservative global
  // footprint is only a backstop.
  bool use_global = ast.IsWrite();
  std::vector<uint32_t> domains;
  for (const PatternPart& part : ast.patterns) {
    for (const NodePattern& node : part.nodes) {
      if (node.label.empty()) {
        use_global = true;
      } else if (auto label = db->FindLabel(node.label); label.ok()) {
        domains.push_back(cache::LabelDomain(*label));
      } else {
        use_global = true;
      }
    }
    for (const RelPattern& rel : part.rels) {
      if (rel.type.empty()) {
        use_global = true;
      } else if (auto type = db->FindRelType(rel.type); type.ok()) {
        domains.push_back(cache::RelTypeDomain(*type));
      } else {
        use_global = true;
      }
    }
  }
  if (ast.where != nullptr) {
    CollectExprDomains(*ast.where, db, &domains, &use_global);
  }
  for (const ReturnItem& item : ast.return_items) {
    CollectExprDomains(*item.expr, db, &domains, &use_global);
  }
  for (const OrderItem& item : ast.order_by) {
    CollectExprDomains(*item.expr, db, &domains, &use_global);
  }
  std::sort(domains.begin(), domains.end());
  domains.erase(std::unique(domains.begin(), domains.end()), domains.end());
  plan->epoch_domains = std::move(domains);
  plan->epoch_use_global = use_global;
}

}  // namespace

std::string PlannedQuery::Explain() const {
  return root != nullptr ? DescribePlanTree(*root) : "<unplanned>";
}

Result<std::unique_ptr<PlannedQuery>> PlanQuery(Query query, GraphDb* db) {
  PlanBuilder builder(std::move(query), db);
  MBQ_ASSIGN_OR_RETURN(std::unique_ptr<PlannedQuery> plan, builder.Build());
  ComputeEpochFootprint(plan->ast, db, plan.get());
  return plan;
}

}  // namespace mbq::cypher
