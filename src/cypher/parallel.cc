#include "cypher/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cypher/operators.h"
#include "exec/thread_pool.h"
#include "nodestore/record_file.h"
#include "obs/metrics.h"

namespace mbq::cypher {

namespace {

/// Process-wide counters for the parallel executor; names are documented
/// in docs/OBSERVABILITY.md.
struct ParallelMetrics {
  obs::Counter* pipelines;
  obs::Counter* seed_rows;
  obs::Counter* worker_db_hits;

  static ParallelMetrics& Get() {
    static ParallelMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      ParallelMetrics m;
      m.pipelines =
          r.GetCounter("cypher.parallel.pipelines", "pipelines",
                       "aggregation pipelines executed morsel-parallel");
      m.seed_rows = r.GetCounter("cypher.parallel.seed_rows", "rows",
                                 "rows fanned out to worker pipelines");
      m.worker_db_hits =
          r.GetCounter("cypher.parallel.worker_db_hits", "records",
                       "db hits charged on non-session worker threads");
      return m;
    }();
    return m;
  }
};

bool IsParallelLeaf(const Operator* op) {
  return dynamic_cast<const NodeLabelScan*>(op) != nullptr ||
         dynamic_cast<const NodeIndexSeek*>(op) != nullptr ||
         dynamic_cast<const SingleRow*>(op) != nullptr;
}

bool IsParallelIntermediate(const Operator* op) {
  return dynamic_cast<const Expand*>(op) != nullptr ||
         dynamic_cast<const VarLengthExpand*>(op) != nullptr ||
         dynamic_cast<const Filter*>(op) != nullptr ||
         dynamic_cast<const LabelFilter*>(op) != nullptr;
}

std::shared_ptr<const std::vector<Row>> ShareRows(std::vector<Row> rows) {
  return std::make_shared<const std::vector<Row>>(std::move(rows));
}

}  // namespace

Result<bool> ParallelMaterializeAggregate(Aggregate* agg, ExecContext* ctx) {
  // ---------------------------------------------------- Chain validation
  // chain[0] is the aggregate's direct input; chain.back() sits just
  // above the leaf. Anything outside the allow-list (Apply, Sort, nested
  // Aggregate, ShortestPath, ...) keeps the pipeline sequential.
  std::vector<Operator*> chain;
  Operator* op = agg->child();
  while (op != nullptr && IsParallelIntermediate(op)) {
    chain.push_back(op);
    op = op->child();
  }
  if (op == nullptr || !IsParallelLeaf(op)) return false;
  Operator* leaf = op;

  // ------------------------------------------------------------ Seeding
  // The subtree is already Open()ed, so the leaf can be drained directly;
  // its rows/db-hits land on the leaf operator as in sequential runs.
  std::vector<Row> rows;
  MBQ_RETURN_IF_ERROR(leaf->Drain(&rows));

  // A one-row seed (the common IndexSeek anchor) gives no parallelism;
  // run lower pipeline stages sequentially until the row set fans out
  // enough to feed every worker a few morsels.
  const size_t min_fanout = static_cast<size_t>(ctx->threads) * 4;
  while (rows.size() < min_fanout && !chain.empty()) {
    Operator* stage = chain.back();
    std::unique_ptr<Operator> clone = stage->CloneWithChild(
        std::make_unique<RowBufferSource>(ShareRows(std::move(rows)),
                                          nullptr, 0));
    ExecContext seq_ctx = *ctx;
    seq_ctx.pool = nullptr;
    seq_ctx.threads = 1;
    MBQ_RETURN_IF_ERROR(clone->Open(&seq_ctx));
    std::vector<Row> expanded;
    MBQ_RETURN_IF_ERROR(clone->Drain(&expanded));
    stage->AbsorbStats(*clone);
    rows = std::move(expanded);
    chain.pop_back();
  }

  ParallelMetrics& metrics = ParallelMetrics::Get();
  metrics.pipelines->Inc();
  metrics.seed_rows->Inc(rows.size());

  if (rows.empty()) return true;  // nothing to aggregate

  // ----------------------------------------------------------- Fan-out
  const uint32_t workers = static_cast<uint32_t>(std::min<uint64_t>(
      ctx->threads, static_cast<uint64_t>(rows.size())));
  const size_t grain =
      std::max<size_t>(1, rows.size() / (static_cast<size_t>(workers) * 4));
  std::shared_ptr<const std::vector<Row>> buffer =
      ShareRows(std::move(rows));
  auto cursor = std::make_shared<std::atomic<size_t>>(0);

  std::vector<std::unique_ptr<Operator>> pipelines(workers);
  std::vector<std::vector<Operator*>> level_clones(workers);
  std::vector<std::unique_ptr<Aggregate>> collectors(workers);
  std::vector<ExecContext> worker_ctx(workers);
  std::vector<Status> statuses(workers, Status::OK());
  std::vector<uint64_t> hit_deltas(workers, 0);
  std::vector<std::thread::id> worker_tids(workers);

  for (uint32_t k = 0; k < workers; ++k) {
    std::unique_ptr<Operator> node =
        std::make_unique<RowBufferSource>(buffer, cursor, grain);
    level_clones[k].resize(chain.size());
    for (size_t i = chain.size(); i-- > 0;) {
      std::unique_ptr<Operator> parent =
          chain[i]->CloneWithChild(std::move(node));
      level_clones[k][i] = parent.get();
      node = std::move(parent);
    }
    pipelines[k] = std::move(node);
    collectors[k] = agg->CloneCollector();
    worker_ctx[k] = *ctx;
    worker_ctx[k].pool = nullptr;  // no nested parallelism
    worker_ctx[k].threads = 1;
  }

  const std::thread::id caller_tid = std::this_thread::get_id();
  ctx->pool->ParallelFor(0, workers, 1, [&](uint64_t begin, uint64_t end) {
    for (uint64_t k = begin; k < end; ++k) {
      uint64_t before = nodestore::DbHitCounter::ThreadHits();
      Status st = pipelines[k]->Open(&worker_ctx[k]);
      Row row;
      while (st.ok()) {
        Result<bool> more = pipelines[k]->NextTracked(&row);
        if (!more.ok()) {
          st = more.status();
          break;
        }
        if (!*more) break;
        st = collectors[k]->AccumulateRow(row, &worker_ctx[k]);
      }
      statuses[k] = st;
      hit_deltas[k] = nodestore::DbHitCounter::ThreadHits() - before;
      worker_tids[k] = std::this_thread::get_id();
    }
  });

  for (const Status& st : statuses) MBQ_RETURN_IF_ERROR(st);

  // ------------------------------------------------- Profile absorption
  // Worker-clone stats fold back into the plan's operators. Hits charged
  // on non-caller threads are invisible to the session thread's counter
  // deltas, so they are also surfaced through side_hits (query total) and
  // added to the aggregate's inclusive tally.
  for (size_t i = 0; i < chain.size(); ++i) {
    for (uint32_t k = 0; k < workers; ++k) {
      chain[i]->AbsorbStats(*level_clones[k][i]);
    }
    chain[i]->MarkParallel(workers);
  }
  uint64_t side = 0;
  for (uint32_t k = 0; k < workers; ++k) {
    if (worker_tids[k] != caller_tid) side += hit_deltas[k];
  }
  if (side > 0) {
    agg->AddDbHits(side);
    if (ctx->side_hits != nullptr) {
      ctx->side_hits->fetch_add(side, std::memory_order_relaxed);
    }
    metrics.worker_db_hits->Inc(side);
  }
  agg->MarkParallel(workers);

  // --------------------------------------------------------------- Merge
  for (uint32_t k = 0; k < workers; ++k) {
    MBQ_RETURN_IF_ERROR(agg->MergeFrom(collectors[k].get()));
  }
  return true;
}

}  // namespace mbq::cypher
