#ifndef MBQ_CYPHER_PLANNER_H_
#define MBQ_CYPHER_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "cypher/ast.h"
#include "cypher/operators.h"
#include "cypher/runtime.h"

namespace mbq::cypher {

/// A compiled, executable query: the operator tree plus everything it
/// borrows (the AST and synthesized expressions). Plans are cached by
/// query text and re-executed with fresh parameters; Open() resets all
/// operator state.
struct PlannedQuery {
  Query ast;                                // owned; operators point into it
  std::vector<ExprPtr> synthesized;         // planner-made filter exprs
  SlotMap slots;                            // variable -> slot
  SlotMap output_slots;                     // post-projection column refs
  uint32_t width = 0;                       // match-phase row width
  std::vector<std::string> columns;         // visible output column names
  std::unique_ptr<Operator> root;
  /// Epoch footprint for the result cache: the label/rel-type domains
  /// this query reads (cache::LabelDomain / cache::RelTypeDomain).
  /// `epoch_use_global` marks an inexact footprint — an unlabelled node,
  /// an untyped relationship, or a name unknown at plan time — in which
  /// case cached results validate against the global epoch instead (any
  /// write invalidates).
  std::vector<uint32_t> epoch_domains;
  bool epoch_use_global = false;
  /// True for CREATE/SET/DELETE queries: the root is a WriteClause
  /// operator emitting one summary row. The session runs these inside
  /// the engine's exclusive commit section and a store transaction, and
  /// never serves or stores them through the result cache.
  bool is_write = false;
  /// Semantic diagnostics from the analyzer pass (cypher/semantic.h),
  /// attached by the session at compile time; EXPLAIN/PROFILE prepend
  /// them and strict mode re-checks them on plan-cache hits.
  std::vector<Diagnostic> diagnostics;

  /// Renders the (profiled) plan tree.
  std::string Explain() const;
};

/// Compiles a parsed query against the database's current schema (index
/// availability decides between index seeks and label scans, as Cypher's
/// planner does).
Result<std::unique_ptr<PlannedQuery>> PlanQuery(Query query, GraphDb* db);

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_PLANNER_H_
