#ifndef MBQ_CYPHER_OPERATORS_H_
#define MBQ_CYPHER_OPERATORS_H_

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cypher/runtime.h"
#include "nodestore/traversal.h"

namespace mbq::cypher {

/// Pull-based physical operator. Open() resets state; Next() produces one
/// row or signals exhaustion. Every operator tracks the rows it produced
/// and the db hits charged while it was running (inclusive of its
/// children, since the counter delta spans the whole Next call), for
/// PROFILE output.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(ExecContext* ctx) = 0;
  /// Returns true and fills `out` with the next row, or false at the end.
  virtual Result<bool> Next(Row* out) = 0;
  /// Operator name with its key argument, e.g. "NodeIndexSeek(:user.uid)".
  virtual std::string Describe() const = 0;

  /// Fresh operator with the same configuration but pristine runtime
  /// state, over `child` (ignored by leaves). Cached plans are shared
  /// across threads, so every execution clones the plan tree first.
  virtual std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const = 0;

  /// Deep-clones this operator and its children.
  std::unique_ptr<Operator> CloneTree() const;

  uint64_t rows_produced() const { return rows_produced_; }
  uint64_t db_hits() const { return db_hits_; }
  Operator* child() const { return child_.get(); }

  /// Pulls everything into `rows` (testing / pipeline breakers).
  Status Drain(std::vector<Row>* rows);

  /// Folds a clone's profile back into this operator — how the parallel
  /// executor attributes worker-pipeline rows/db-hits to the plan ops the
  /// user sees in PROFILE.
  void AbsorbStats(const Operator& other) {
    rows_produced_ += other.rows_produced_;
    db_hits_ += other.db_hits_;
  }
  void AddDbHits(uint64_t hits) { db_hits_ += hits; }

  /// Annotates PROFILE output with the worker count that executed this
  /// operator (shown as `par=N`); 0 means sequential.
  void MarkParallel(uint32_t workers) { parallel_workers_ = workers; }
  uint32_t parallel_workers() const { return parallel_workers_; }

  /// Zeroes the rows/db-hits profile of this operator and its subtree —
  /// called per execution so PROFILE output covers one run.
  virtual void ResetStatsTree() {
    rows_produced_ = 0;
    db_hits_ = 0;
    parallel_workers_ = 0;
    if (child_ != nullptr) child_->ResetStatsTree();
  }

 protected:
  /// Helper for subclasses: pulls one row from the child while
  /// attributing its db hits to the child (the counter delta bookkeeping
  /// happens in the child's own NextTracked call).
  Result<bool> ChildNext(Row* out) { return child_->NextTracked(out); }

  std::unique_ptr<Operator> child_;
  ExecContext* ctx_ = nullptr;
  uint64_t rows_produced_ = 0;
  uint64_t db_hits_ = 0;
  uint32_t parallel_workers_ = 0;

 public:
  /// Next() wrapped with rows/db-hit accounting. The session calls this
  /// on the root; operators call it on their children via ChildNext.
  Result<bool> NextTracked(Row* out);
  void SetChild(std::unique_ptr<Operator> child) { child_ = std::move(child); }
};

/// Emits one empty row (the start of an expansion pipeline with no scan).
class SingleRow : public Operator {
 public:
  explicit SingleRow(uint32_t width) : width_(width) {}
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override { return "SingleRow"; }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  uint32_t width_;
  bool done_ = false;
};

/// Scans all nodes with a label via the label scan store.
class NodeLabelScan : public Operator {
 public:
  NodeLabelScan(uint32_t slot, uint32_t width, std::string label)
      : slot_(slot), width_(width), label_(std::move(label)) {}
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override {
    return "NodeByLabelScan(:" + label_ + ")";
  }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  uint32_t slot_;
  uint32_t width_;
  std::string label_;
  std::vector<NodeId> buffer_;
  size_t index_ = 0;
};

/// Seeks nodes by (label, property = value) through an index.
class NodeIndexSeek : public Operator {
 public:
  NodeIndexSeek(uint32_t slot, uint32_t width, std::string label,
                std::string property, const Expr* value)
      : slot_(slot),
        width_(width),
        label_(std::move(label)),
        property_(std::move(property)),
        value_(value) {}
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override {
    return "NodeIndexSeek(:" + label_ + "." + property_ + ")";
  }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  uint32_t slot_;
  uint32_t width_;
  std::string label_;
  std::string property_;
  const Expr* value_;
  std::vector<NodeId> buffer_;
  size_t index_ = 0;
};

/// Expands one hop from a bound node slot, writing the reached node (and
/// optionally the relationship) into new slots. With `into_bound` the
/// target slot is already bound and the expansion filters to it
/// (ExpandInto).
class Expand : public Operator {
 public:
  Expand(std::unique_ptr<Operator> child, uint32_t from_slot, uint32_t to_slot,
         std::optional<uint32_t> rel_slot, std::string rel_type,
         nodestore::Direction dir, bool into_bound)
      : from_slot_(from_slot),
        to_slot_(to_slot),
        rel_slot_(rel_slot),
        rel_type_(std::move(rel_type)),
        dir_(dir),
        into_bound_(into_bound) {
    child_ = std::move(child);
  }
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override {
    return std::string(into_bound_ ? "Expand(Into" : "Expand(All") +
           (rel_type_.empty() ? "" : ", :" + rel_type_) + ")";
  }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  Status RefillFromRow();

  uint32_t from_slot_;
  uint32_t to_slot_;
  std::optional<uint32_t> rel_slot_;
  std::string rel_type_;
  nodestore::Direction dir_;
  bool into_bound_;
  std::optional<nodestore::RelTypeId> resolved_type_;
  bool type_unknown_ = false;
  Row current_row_;
  bool have_row_ = false;
  std::vector<GraphDb::RelInfo> matches_;
  size_t match_index_ = 0;
};

/// Variable-length expansion ([*min..max]) with per-path node uniqueness.
class VarLengthExpand : public Operator {
 public:
  VarLengthExpand(std::unique_ptr<Operator> child, uint32_t from_slot,
                  uint32_t to_slot, std::string rel_type,
                  nodestore::Direction dir, uint32_t min_hops,
                  uint32_t max_hops)
      : from_slot_(from_slot),
        to_slot_(to_slot),
        rel_type_(std::move(rel_type)),
        dir_(dir),
        min_hops_(min_hops),
        max_hops_(max_hops) {
    child_ = std::move(child);
  }
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override {
    return "VarLengthExpand(:" + rel_type_ + "*" + std::to_string(min_hops_) +
           ".." + std::to_string(max_hops_) + ")";
  }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  Status RefillFromRow();

  uint32_t from_slot_;
  uint32_t to_slot_;
  std::string rel_type_;
  nodestore::Direction dir_;
  uint32_t min_hops_;
  uint32_t max_hops_;
  std::optional<nodestore::RelTypeId> resolved_type_;
  bool type_unknown_ = false;
  Row current_row_;
  bool have_row_ = false;
  std::vector<NodeId> reached_;  // targets for the current input row
  size_t reach_index_ = 0;
};

/// Keeps rows satisfying a predicate expression.
class Filter : public Operator {
 public:
  Filter(std::unique_ptr<Operator> child, const Expr* predicate,
         const SlotMap* slots)
      : predicate_(predicate), slots_(slots) {
    child_ = std::move(child);
  }
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override { return "Filter"; }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  const Expr* predicate_;
  const SlotMap* slots_;
};

/// Keeps rows whose slot holds a node with the given label.
class LabelFilter : public Operator {
 public:
  LabelFilter(std::unique_ptr<Operator> child, uint32_t slot,
              std::string label)
      : slot_(slot), label_(std::move(label)) {
    child_ = std::move(child);
  }
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override {
    return "Filter(label :" + label_ + ")";
  }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  uint32_t slot_;
  std::string label_;
  std::optional<nodestore::LabelId> resolved_;
  bool label_unknown_ = false;
};

/// Computes shortest paths between two bound node slots, writing the path
/// into a slot (rows with no path are dropped, as with Cypher's
/// shortestPath when the pattern is mandatory).
class ShortestPathOp : public Operator {
 public:
  ShortestPathOp(std::unique_ptr<Operator> child, uint32_t src_slot,
                 uint32_t dst_slot, uint32_t path_slot, std::string rel_type,
                 nodestore::Direction dir, uint32_t max_hops)
      : src_slot_(src_slot),
        dst_slot_(dst_slot),
        path_slot_(path_slot),
        rel_type_(std::move(rel_type)),
        dir_(dir),
        max_hops_(max_hops) {
    child_ = std::move(child);
  }
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override {
    return "ShortestPath(:" + rel_type_ + "*.." + std::to_string(max_hops_) +
           ")";
  }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  uint32_t src_slot_;
  uint32_t dst_slot_;
  uint32_t path_slot_;
  std::string rel_type_;
  nodestore::Direction dir_;
  uint32_t max_hops_;
  std::optional<nodestore::RelTypeId> resolved_type_;
};

/// Grouped aggregation (pipeline breaker). Output rows are
/// [group keys..., aggregate values...]. When the ExecContext carries a
/// thread pool and the input chain is a parallelizable pipeline (scans,
/// expands and filters only), Materialize fans the input out over worker
/// threads and merges the partial groups (see cypher/parallel.h).
class Aggregate : public Operator {
 public:
  struct AggItem {
    /// Aggregated expression; nullptr means COUNT(*).
    const Expr* arg = nullptr;
    AggFunc func = AggFunc::kCount;
    bool distinct = false;
  };

  /// Running state of one aggregate within one group.
  struct AggState {
    uint64_t count = 0;
    int64_t isum = 0;
    double dsum = 0;
    bool saw_double = false;
    bool has_best = false;
    RtValue best;
    std::unordered_set<Row, RowHash, RowEq> distinct;
  };
  struct GroupState {
    Row keys;
    std::vector<AggState> aggs;
  };

  Aggregate(std::unique_ptr<Operator> child,
            std::vector<const Expr*> group_exprs, std::vector<AggItem> aggs,
            const SlotMap* slots)
      : group_exprs_(std::move(group_exprs)),
        aggs_(std::move(aggs)),
        slots_(slots) {
    child_ = std::move(child);
  }
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override {
    return "EagerAggregation(" + std::to_string(group_exprs_.size()) +
           " keys, " + std::to_string(aggs_.size()) + " aggregates)";
  }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

  /// Childless clone used by worker threads as a partial-group collector.
  std::unique_ptr<Aggregate> CloneCollector() const;
  /// Folds `row` into the group table (ctx passed explicitly so worker
  /// threads can use their own context).
  Status AccumulateRow(const Row& row, ExecContext* ctx);
  /// Merges another collector's partial groups into this one.
  Status MergeFrom(Aggregate* other);
  /// Converts the group table into output rows.
  Status FinalizeGroups();

 private:
  Status Materialize();

  std::vector<const Expr*> group_exprs_;
  std::vector<AggItem> aggs_;
  const SlotMap* slots_;
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups_;
  bool materialized_ = false;
  std::vector<Row> output_;
  size_t index_ = 0;
};

/// Projects expressions into a fresh row layout (the RETURN clause).
class Projection : public Operator {
 public:
  Projection(std::unique_ptr<Operator> child,
             std::vector<const Expr*> exprs, const SlotMap* slots)
      : exprs_(std::move(exprs)), slots_(slots) {
    child_ = std::move(child);
  }
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override {
    return "Projection(" + std::to_string(exprs_.size()) + " columns)";
  }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  std::vector<const Expr*> exprs_;
  const SlotMap* slots_;
};

/// Sorts materialized rows by column indices (pipeline breaker).
class Sort : public Operator {
 public:
  struct Key {
    uint32_t column;
    bool ascending;
  };
  Sort(std::unique_ptr<Operator> child, std::vector<Key> keys)
      : keys_(std::move(keys)) {
    child_ = std::move(child);
  }
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override {
    return "Sort(" + std::to_string(keys_.size()) + " keys)";
  }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  std::vector<Key> keys_;
  bool materialized_ = false;
  std::vector<Row> output_;
  size_t index_ = 0;
};

/// Passes at most N rows through (early exit).
class Limit : public Operator {
 public:
  Limit(std::unique_ptr<Operator> child, const Expr* count_expr,
        const SlotMap* slots)
      : count_expr_(count_expr), slots_(slots) {
    child_ = std::move(child);
  }
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override { return "Limit"; }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  const Expr* count_expr_;
  const SlotMap* slots_;
  uint64_t remaining_ = 0;
};

/// Drops duplicate rows (hash-based).
class Distinct : public Operator {
 public:
  explicit Distinct(std::unique_ptr<Operator> child) {
    child_ = std::move(child);
  }
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override { return "Distinct"; }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  std::unordered_set<Row, RowHash, RowEq> seen_;
};

/// Nested-loop combination of two independent sub-plans: for every left
/// row, the right plan is re-opened and its rows merged in (slots are
/// disjoint; the merged row takes non-null slots from both sides).
class Apply : public Operator {
 public:
  Apply(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right)
      : right_(std::move(right)) {
    child_ = std::move(left);
  }
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override { return "Apply"; }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;
  Operator* right() const { return right_.get(); }
  void ResetStatsTree() override {
    Operator::ResetStatsTree();
    if (right_ != nullptr) right_->ResetStatsTree();
  }

 private:
  std::unique_ptr<Operator> right_;
  Row left_row_;
  bool have_left_ = false;
};

/// Replays rows from a shared in-memory buffer — the source under worker
/// pipelines in morsel-parallel execution. With a shared atomic cursor,
/// concurrent instances claim disjoint morsels of `grain` rows each; with
/// a null cursor a single instance serves the whole buffer in order.
class RowBufferSource : public Operator {
 public:
  RowBufferSource(std::shared_ptr<const std::vector<Row>> rows,
                  std::shared_ptr<std::atomic<size_t>> cursor, size_t grain)
      : rows_(std::move(rows)), cursor_(std::move(cursor)), grain_(grain) {}
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override { return "RowBuffer"; }
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  std::shared_ptr<const std::vector<Row>> rows_;
  std::shared_ptr<std::atomic<size_t>> cursor_;
  size_t grain_;
  size_t morsel_pos_ = 0;
  size_t morsel_end_ = 0;
};

/// Renders a plan tree as an indented string (PROFILE output).
std::string DescribePlanTree(const Operator& root, int indent = 0);

/// Renders the plan tree shape only — operator names without rows/db-hits
/// (EXPLAIN output: the query was compiled but never executed).
std::string DescribePlanShape(const Operator& root, int indent = 0);

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_OPERATORS_H_
