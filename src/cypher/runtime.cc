#include "cypher/runtime.h"

namespace mbq::cypher {

bool RtValue::Equals(const RtValue& other) const {
  return Compare(other) == 0;
}

int RtValue::Compare(const RtValue& other) const {
  if (kind != other.kind) {
    return static_cast<int>(kind) < static_cast<int>(other.kind) ? -1 : 1;
  }
  switch (kind) {
    case Kind::kNull:
      return 0;
    case Kind::kValue:
      return value.Compare(other.value);
    case Kind::kNode:
      return node == other.node ? 0 : (node < other.node ? -1 : 1);
    case Kind::kRel:
      return rel == other.rel ? 0 : (rel < other.rel ? -1 : 1);
    case Kind::kPath: {
      if (path.size() != other.path.size()) {
        return path.size() < other.path.size() ? -1 : 1;
      }
      for (size_t i = 0; i < path.size(); ++i) {
        if (path[i] != other.path[i]) return path[i] < other.path[i] ? -1 : 1;
      }
      return 0;
    }
  }
  return 0;
}

size_t RtValue::Hash() const {
  switch (kind) {
    case Kind::kNull:
      return 0;
    case Kind::kValue:
      return value.Hash();
    case Kind::kNode:
      return std::hash<uint64_t>()(node) ^ 0x1111;
    case Kind::kRel:
      return std::hash<uint64_t>()(rel) ^ 0x2222;
    case Kind::kPath: {
      size_t h = 0x3333;
      for (NodeId n : path) h = h * 31 + std::hash<uint64_t>()(n);
      return h;
    }
  }
  return 0;
}

std::string RtValue::ToString() const {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kValue:
      return value.ToString();
    case Kind::kNode:
      return "Node(" + std::to_string(node) + ")";
    case Kind::kRel:
      return "Rel(" + std::to_string(rel) + ")";
    case Kind::kPath: {
      std::string out = "Path(";
      for (size_t i = 0; i < path.size(); ++i) {
        if (i > 0) out += "->";
        out += std::to_string(path[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

Result<const RtValue*> LookupSlot(const std::string& variable, const Row& row,
                                  const SlotMap& slots) {
  auto it = slots.find(variable);
  if (it == slots.end()) {
    return Status::InvalidArgument("unbound variable: " + variable);
  }
  if (it->second >= row.size()) {
    return Status::Internal("slot out of range for " + variable);
  }
  return &row[it->second];
}

}  // namespace

Result<RtValue> EvalExpr(const Expr& expr, const Row& row,
                         const SlotMap& slots, ExecContext* ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return RtValue::FromValue(expr.literal);
    case ExprKind::kParameter: {
      auto it = ctx->params->find(expr.param_name);
      if (it == ctx->params->end()) {
        return Status::InvalidArgument("missing parameter $" +
                                       expr.param_name);
      }
      return RtValue::FromValue(it->second);
    }
    case ExprKind::kVariable: {
      MBQ_ASSIGN_OR_RETURN(const RtValue* v,
                           LookupSlot(expr.variable, row, slots));
      return *v;
    }
    case ExprKind::kProperty: {
      MBQ_ASSIGN_OR_RETURN(const RtValue* v,
                           LookupSlot(expr.variable, row, slots));
      if (v->kind == RtValue::Kind::kNode) {
        nodestore::PropKeyId key = ctx->db->PropKey(expr.property);
        MBQ_ASSIGN_OR_RETURN(Value value,
                             ctx->db->GetNodeProperty(v->node, key));
        return RtValue::FromValue(std::move(value));
      }
      if (v->kind == RtValue::Kind::kRel) {
        nodestore::PropKeyId key = ctx->db->PropKey(expr.property);
        MBQ_ASSIGN_OR_RETURN(Value value,
                             ctx->db->GetRelProperty(v->rel, key));
        return RtValue::FromValue(std::move(value));
      }
      return Status::InvalidArgument("property access on non-entity: " +
                                     expr.variable);
    }
    case ExprKind::kComparison: {
      MBQ_ASSIGN_OR_RETURN(RtValue lhs,
                           EvalExpr(*expr.children[0], row, slots, ctx));
      MBQ_ASSIGN_OR_RETURN(RtValue rhs,
                           EvalExpr(*expr.children[1], row, slots, ctx));
      if (lhs.is_null() || rhs.is_null()) return RtValue::Null();
      int c = lhs.Compare(rhs);
      bool result = false;
      switch (expr.op) {
        case CompareOp::kEq:
          result = c == 0;
          break;
        case CompareOp::kNe:
          result = c != 0;
          break;
        case CompareOp::kLt:
          result = c < 0;
          break;
        case CompareOp::kLe:
          result = c <= 0;
          break;
        case CompareOp::kGt:
          result = c > 0;
          break;
        case CompareOp::kGe:
          result = c >= 0;
          break;
      }
      return RtValue::FromValue(Value::Bool(result));
    }
    case ExprKind::kAnd: {
      MBQ_ASSIGN_OR_RETURN(bool lhs,
                           EvalPredicate(*expr.children[0], row, slots, ctx));
      if (!lhs) return RtValue::FromValue(Value::Bool(false));
      MBQ_ASSIGN_OR_RETURN(bool rhs,
                           EvalPredicate(*expr.children[1], row, slots, ctx));
      return RtValue::FromValue(Value::Bool(rhs));
    }
    case ExprKind::kOr: {
      MBQ_ASSIGN_OR_RETURN(bool lhs,
                           EvalPredicate(*expr.children[0], row, slots, ctx));
      if (lhs) return RtValue::FromValue(Value::Bool(true));
      MBQ_ASSIGN_OR_RETURN(bool rhs,
                           EvalPredicate(*expr.children[1], row, slots, ctx));
      return RtValue::FromValue(Value::Bool(rhs));
    }
    case ExprKind::kNot: {
      MBQ_ASSIGN_OR_RETURN(bool operand,
                           EvalPredicate(*expr.children[0], row, slots, ctx));
      return RtValue::FromValue(Value::Bool(!operand));
    }
    case ExprKind::kLengthCall: {
      MBQ_ASSIGN_OR_RETURN(const RtValue* v,
                           LookupSlot(expr.variable, row, slots));
      if (v->kind != RtValue::Kind::kPath) {
        return Status::InvalidArgument("length() expects a path");
      }
      return RtValue::FromValue(
          Value::Int(static_cast<int64_t>(v->path.size()) - 1));
    }
    case ExprKind::kIdCall: {
      MBQ_ASSIGN_OR_RETURN(const RtValue* v,
                           LookupSlot(expr.variable, row, slots));
      if (v->kind == RtValue::Kind::kNode) {
        return RtValue::FromValue(Value::Int(static_cast<int64_t>(v->node)));
      }
      if (v->kind == RtValue::Kind::kRel) {
        return RtValue::FromValue(Value::Int(static_cast<int64_t>(v->rel)));
      }
      return Status::InvalidArgument("id() expects a node or relationship");
    }
    case ExprKind::kPatternPred: {
      MBQ_ASSIGN_OR_RETURN(const RtValue* src,
                           LookupSlot(expr.pattern_src, row, slots));
      MBQ_ASSIGN_OR_RETURN(const RtValue* dst,
                           LookupSlot(expr.pattern_dst, row, slots));
      if (src->kind != RtValue::Kind::kNode ||
          dst->kind != RtValue::Kind::kNode) {
        return Status::InvalidArgument("pattern predicate on non-nodes");
      }
      std::optional<nodestore::RelTypeId> type;
      if (!expr.pattern_rel_type.empty()) {
        auto resolved = ctx->db->FindRelType(expr.pattern_rel_type);
        if (!resolved.ok()) {
          // Unknown relationship type: the pattern can never match.
          return RtValue::FromValue(Value::Bool(false));
        }
        type = *resolved;
      }
      bool found = false;
      NodeId target = dst->node;
      MBQ_RETURN_IF_ERROR(ctx->db->ForEachRelationship(
          src->node, nodestore::Direction::kOutgoing, type,
          [&](const GraphDb::RelInfo& rel) {
            if (rel.dst == target) {
              found = true;
              return false;
            }
            return true;
          }));
      return RtValue::FromValue(Value::Bool(found));
    }
    case ExprKind::kAggCall:
      return Status::Internal(
          "aggregate expression evaluated outside aggregation");
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const Row& row,
                           const SlotMap& slots, ExecContext* ctx) {
  MBQ_ASSIGN_OR_RETURN(RtValue v, EvalExpr(expr, row, slots, ctx));
  if (v.is_null()) return false;  // ternary logic: null is not true
  if (v.kind == RtValue::Kind::kValue &&
      v.value.type() == common::ValueType::kBool) {
    return v.value.AsBool();
  }
  return Status::InvalidArgument("predicate did not evaluate to a boolean");
}

}  // namespace mbq::cypher
