#ifndef MBQ_CYPHER_WRITE_OPS_H_
#define MBQ_CYPHER_WRITE_OPS_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cypher/operators.h"

namespace mbq::cypher {

/// The root operator of a write query (CREATE/SET/DELETE). It first
/// materializes the reading side completely — mutations must not race the
/// scans that feed them, and a node created for one row must never be
/// re-matched by a later one — then applies the mutating clauses to every
/// input row in clause order (CREATE, SET, DELETE) and emits exactly one
/// summary row:
///   [nodes_created, rels_created, props_set, nodes_deleted, rels_deleted]
///
/// Deletes are idempotent within the query (MATCH can bind the same node
/// in several rows); a failing clause aborts the query with the store
/// transaction the session wrapped around it still open, so everything
/// already applied rolls back.
class WriteClause : public Operator {
 public:
  WriteClause(std::unique_ptr<Operator> child, const Query* query,
              const SlotMap* slots)
      : query_(query), slots_(slots) {
    child_ = std::move(child);
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override;
  std::unique_ptr<Operator> CloneWithChild(
      std::unique_ptr<Operator> child) const override;

 private:
  Status ApplyRow(Row* row);
  Status ApplyCreate(Row* row);
  Status ApplySet(Row* row);
  Status ApplyDelete(Row* row);

  const Query* query_;
  const SlotMap* slots_;
  bool done_ = false;
  uint64_t nodes_created_ = 0;
  uint64_t rels_created_ = 0;
  uint64_t props_set_ = 0;
  uint64_t nodes_deleted_ = 0;
  uint64_t rels_deleted_ = 0;
};

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_WRITE_OPS_H_
