#ifndef MBQ_CYPHER_PARSER_H_
#define MBQ_CYPHER_PARSER_H_

#include <string>

#include "cypher/ast.h"
#include "util/result.h"

namespace mbq::cypher {

/// Parses one read query. Supported surface (sufficient for the paper's
/// whole workload):
///
///   MATCH <pattern> [, <pattern>]*
///   [WHERE <boolean expression>]
///   RETURN [DISTINCT] <expr> [AS alias] [, ...]
///   [ORDER BY <expr> [ASC|DESC] [, ...]]
///   [LIMIT <int-or-param>]
///
/// Patterns are linear chains of (node)-[rel]->(node) elements with
/// optional labels, inline property maps, variable-length hops
/// ([:t*min..max]) and `p = shortestPath((a)-[:t*..k]->(b))`. WHERE
/// supports comparisons, AND/OR/NOT, property access, parameters and
/// pattern predicates like `NOT (a)-[:follows]->(c)`.
Result<Query> ParseQuery(const std::string& text);

}  // namespace mbq::cypher

#endif  // MBQ_CYPHER_PARSER_H_
