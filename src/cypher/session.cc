#include "cypher/session.h"

#include "cypher/parser.h"

namespace mbq::cypher {

Result<const PlannedQuery*> CypherSession::Prepare(const std::string& query) {
  auto it = plan_cache_.find(query);
  if (plan_cache_enabled_ && it != plan_cache_.end()) {
    ++plan_cache_hits_;
    last_prepare_was_cache_hit_ = true;
    return const_cast<const PlannedQuery*>(it->second.get());
  }
  ++plan_cache_misses_;
  last_prepare_was_cache_hit_ = false;
  MBQ_ASSIGN_OR_RETURN(Query ast, ParseQuery(query));
  MBQ_ASSIGN_OR_RETURN(std::unique_ptr<PlannedQuery> plan,
                       PlanQuery(std::move(ast), db_));
  const PlannedQuery* raw = plan.get();
  if (plan_cache_enabled_) {
    plan_cache_[query] = std::move(plan);
  } else {
    // Keep the most recent uncached plan alive for the caller.
    uncached_plan_ = std::move(plan);
  }
  return raw;
}

Result<QueryResult> CypherSession::Run(const std::string& query,
                                       const Params& params) {
  MBQ_ASSIGN_OR_RETURN(const PlannedQuery* plan, Prepare(query));
  bool cached = last_prepare_was_cache_hit_;

  ExecContext ctx;
  ctx.db = db_;
  ctx.params = &params;

  QueryResult result;
  result.columns = plan->columns;
  result.plan_cached = cached;

  uint64_t hits_before = db_->db_hits();
  Operator* root = plan->root.get();
  root->ResetStatsTree();
  MBQ_RETURN_IF_ERROR(root->Open(&ctx));
  Row row;
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, root->NextTracked(&row));
    if (!more) break;
    result.rows.push_back(row);
  }
  result.db_hits = db_->db_hits() - hits_before;
  result.profile = plan->Explain();
  return result;
}

}  // namespace mbq::cypher
