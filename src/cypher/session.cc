#include "cypher/session.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>

#include "cache/epoch.h"
#include "cypher/parser.h"
#include "cypher/semantic.h"
#include "exec/thread_pool.h"
#include "nodestore/record_file.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "util/string_util.h"

namespace mbq::cypher {

namespace {

/// Session-level metrics, shared by every CypherSession in the process
/// (the registry deduplicates by name).
struct SessionMetrics {
  obs::Counter* queries;
  obs::Counter* rows_returned;
  obs::Counter* db_hits;
  obs::Counter* plan_cache_hits;
  obs::Counter* plan_cache_misses;
  obs::Histogram* query_latency;
  obs::Counter* lint_runs;
  obs::Counter* lint_diagnostics;
  obs::Counter* lint_rejected;
  obs::Counter* slow_captured;
  obs::Counter* writes;

  static SessionMetrics& Get() {
    static SessionMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      SessionMetrics m;
      m.queries = r.GetCounter("cypher.queries", "queries",
                               "queries executed (EXPLAIN/LINT excluded)");
      m.rows_returned =
          r.GetCounter("cypher.rows_returned", "rows", "result rows produced");
      m.db_hits = r.GetCounter("cypher.db_hits", "records",
                               "record accesses charged to queries");
      m.plan_cache_hits =
          r.GetCounter("cypher.plan_cache.hits", "hits",
                       "Prepare() served from the plan cache");
      m.plan_cache_misses =
          r.GetCounter("cypher.plan_cache.misses", "misses",
                       "Prepare() that had to parse and plan");
      m.query_latency = r.GetHistogram("cypher.query_latency", "ns",
                                       "wall time per executed query");
      m.lint_runs = r.GetCounter("cypher.lint.runs", "queries",
                                 "LINT verb invocations");
      m.lint_diagnostics =
          r.GetCounter("cypher.lint.diagnostics", "diagnostics",
                       "semantic diagnostics emitted at compile/lint time");
      m.lint_rejected = r.GetCounter("cypher.lint.rejected", "queries",
                                     "queries refused by strict lint mode");
      m.slow_captured =
          r.GetCounter("cypher.slow.captured", "queries",
                       "executions at/over the slow-query threshold, "
                       "captured by the flight recorder");
      m.writes = r.GetCounter("cypher.writes", "queries",
                              "write queries (CREATE/SET/DELETE) executed");
      return m;
    }();
    return m;
  }
};

/// Strips a leading case-insensitive keyword (followed by whitespace)
/// from `query`; returns true and advances past it on a match.
bool ConsumeVerb(std::string_view* query, std::string_view verb) {
  if (query->size() <= verb.size()) return false;
  for (size_t i = 0; i < verb.size(); ++i) {
    char c = (*query)[i];
    if (std::toupper(static_cast<unsigned char>(c)) != verb[i]) return false;
  }
  char next = (*query)[verb.size()];
  if (!std::isspace(static_cast<unsigned char>(next))) return false;
  query->remove_prefix(verb.size());
  *query = TrimString(*query);
  return true;
}

}  // namespace

size_t CypherSession::CachedResult::ByteSize() const {
  size_t bytes = profile.size();
  for (const std::string& c : columns) bytes += c.size() + sizeof(std::string);
  // Rows hold RtValues whose payloads (strings, paths) we approximate by
  // the slot footprint — good enough for an eviction budget.
  for (const Row& r : rows) bytes += r.size() * sizeof(RtValue);
  return bytes;
}

CypherSession::CypherSession(GraphDb* db) : db_(db) {
  slow_query_millis_.store(obs::DefaultSlowQueryMillis(),
                           std::memory_order_relaxed);
  // Opt-in default parallelism: sessions stay sequential unless the
  // process sets CYPHER_THREADS (or the embedder calls SetThreads).
  if (const char* env = std::getenv("CYPHER_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v > 0 && v <= 256) {
      threads_.store(static_cast<uint32_t>(v), std::memory_order_relaxed);
    }
  }
}

void CypherSession::SetThreads(uint32_t threads, exec::ThreadPool* pool) {
  threads_.store(threads == 0 ? 1 : threads, std::memory_order_relaxed);
  pool_.store(pool, std::memory_order_relaxed);
}

void CypherSession::Configure(const SessionOptions& options) {
  if (options.threads != 0) {
    SetThreads(options.threads, options.pool);
  } else if (options.pool != nullptr) {
    pool_.store(options.pool, std::memory_order_relaxed);
  }
  SetPlanCacheEnabled(options.plan_cache);
  SetLintLevel(options.lint_level);
  if (options.slow_query_millis >= 0) {
    SetSlowQueryMillis(static_cast<uint64_t>(options.slow_query_millis));
  }
  if (options.result_cache) {
    cache::ResultCache<CachedResult>::Options rc;
    rc.capacity = options.result_cache_capacity;
    result_cache_ =
        std::make_unique<cache::ResultCache<CachedResult>>(rc, &db_->epochs());
  } else {
    result_cache_.reset();
  }
  if (options.adjacency_cache) {
    cache::AdjacencyCache::Options ac;
    ac.capacity = options.adjacency_cache_capacity;
    ac.min_degree = options.adjacency_min_degree;
    adj_cache_ = std::make_unique<cache::AdjacencyCache>(ac, &db_->epochs());
  } else {
    adj_cache_.reset();
  }
}

std::string CypherSession::ResultCacheKey(const std::string& body,
                                          const Params& params) {
  std::string key = cache::CanonicalQueryText(body);
  if (!params.empty()) {
    std::vector<const std::pair<const std::string, Value>*> sorted;
    sorted.reserve(params.size());
    for (const auto& kv : params) sorted.push_back(&kv);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    for (const auto* kv : sorted) {
      key += '\n';
      key += kv->first;
      key += '=';
      // Type tag keeps Int(1) and String("1") distinct keys.
      key += std::to_string(static_cast<int>(kv->second.type()));
      key += ':';
      key += kv->second.ToString();
    }
  }
  return key;
}

Status CypherSession::LintGate(
    const std::vector<Diagnostic>& diagnostics) const {
  if (lint_level_ == LintLevel::kOff) return Status::OK();
  for (const Diagnostic& d : diagnostics) {
    if (LintLevelBlocks(lint_level_, d.severity)) {
      SessionMetrics::Get().lint_rejected->Inc();
      return Status::InvalidArgument(
          "query rejected by strict lint mode: " + d.ToString() +
          " (run LINT <query> for the full report)");
    }
  }
  return Status::OK();
}

Result<std::shared_ptr<const PlannedQuery>> CypherSession::PrepareShared(
    const std::string& query, bool* cache_hit, bool enforce_lint) {
  // The lock covers parse+analyze+plan, so a second thread racing on the
  // same uncached text blocks here and then takes the cache hit below —
  // single-flight compilation, never two plans for one text.
  util::ScopedLock lock(mu_);
  *cache_hit = false;
  auto it = plan_cache_.find(query);
  if (plan_cache_enabled_ && it != plan_cache_.end()) {
    plan_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    SessionMetrics::Get().plan_cache_hits->Inc();
    last_prepare_was_cache_hit_ = true;
    *cache_hit = true;
    // A plan cached by a lenient compile (EXPLAIN, lint_level off) still
    // carries its diagnostics; strict mode re-checks them on every hit.
    if (enforce_lint) MBQ_RETURN_IF_ERROR(LintGate(it->second->diagnostics));
    return std::shared_ptr<const PlannedQuery>(it->second);
  }
  plan_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  SessionMetrics::Get().plan_cache_misses->Inc();
  last_prepare_was_cache_hit_ = false;
  MBQ_ASSIGN_OR_RETURN(Query ast, ParseQuery(query));
  // The semantic pass sits between parser and planner: strict mode
  // refuses blocked queries here, before any planning work.
  AnalysisResult analysis = AnalyzeQuery(ast, db_);
  SessionMetrics::Get().lint_diagnostics->Inc(analysis.diagnostics.size());
  if (enforce_lint) MBQ_RETURN_IF_ERROR(LintGate(analysis.diagnostics));
  MBQ_ASSIGN_OR_RETURN(std::unique_ptr<PlannedQuery> plan,
                       PlanQuery(std::move(ast), db_));
  plan->diagnostics = std::move(analysis.diagnostics);
  std::shared_ptr<PlannedQuery> shared = std::move(plan);
  if (plan_cache_enabled_) {
    plan_cache_[query] = shared;
  } else {
    // Keep the most recent uncached plan alive for the caller.
    uncached_plan_ = shared;
  }
  return std::shared_ptr<const PlannedQuery>(shared);
}

Result<const PlannedQuery*> CypherSession::Prepare(const std::string& query) {
  bool cache_hit = false;
  MBQ_ASSIGN_OR_RETURN(std::shared_ptr<const PlannedQuery> plan,
                       PrepareShared(query, &cache_hit,
                                     /*enforce_lint=*/false));
  return plan.get();
}

Result<QueryResult> CypherSession::Lint(const std::string& query) {
  SessionMetrics& metrics = SessionMetrics::Get();
  metrics.lint_runs->Inc();
  AnalysisResult analysis;
  auto parsed = ParseQuery(query);
  if (!parsed.ok()) {
    // Lexer/parser failures become a diagnostic row (their messages
    // already carry line:column spans) so :lint always renders a report.
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = "parse-error";
    d.message = parsed.status().message();
    analysis.diagnostics.push_back(std::move(d));
  } else {
    analysis = AnalyzeQuery(*parsed, db_);
  }
  metrics.lint_diagnostics->Inc(analysis.diagnostics.size());
  QueryResult result;
  result.lint_only = true;
  result.columns = {"severity", "rule", "at", "message"};
  for (const Diagnostic& d : analysis.diagnostics) {
    Row row;
    row.push_back(RtValue::FromValue(Value::String(SeverityName(d.severity))));
    row.push_back(RtValue::FromValue(Value::String(d.rule)));
    row.push_back(RtValue::FromValue(
        Value::String(d.span.known() ? d.span.ToString() : "")));
    row.push_back(RtValue::FromValue(Value::String(d.message)));
    result.rows.push_back(std::move(row));
  }
  result.profile = analysis.ToText();
  return result;
}

Result<QueryResult> CypherSession::Run(const std::string& query,
                                       const Params& params) {
  std::string_view text = TrimString(query);
  bool profiled = ConsumeVerb(&text, "PROFILE");
  bool explain_only = !profiled && ConsumeVerb(&text, "EXPLAIN");
  std::string body(text);

  // Analysis-only verb: never plans, executes, touches the result cache
  // or bumps the cypher.query.* metrics (mirroring EXPLAIN's bypass).
  if (!profiled && !explain_only && ConsumeVerb(&text, "LINT")) {
    return Lint(std::string(text));
  }

  SessionMetrics& metrics = SessionMetrics::Get();

  // Result-cache probe before any parsing: a hit needs neither a plan nor
  // an execution. EXPLAIN always goes to the planner (it reports shape,
  // not rows).
  cache::ResultCache<CachedResult>* rcache = result_cache_.get();
  std::string result_key;
  if (rcache != nullptr && !explain_only) {
    result_key = ResultCacheKey(body, params);
    if (std::shared_ptr<const CachedResult> hit = rcache->Get(result_key)) {
      QueryResult result;
      result.columns = hit->columns;
      result.rows = hit->rows;
      result.db_hits = 0;
      result.plan_cached = true;
      result.result_cached = true;
      result.profiled = profiled;
      result.profile = "cache=hit\n" + hit->profile;
      metrics.queries->Inc();
      metrics.rows_returned->Inc(result.rows.size());
      return result;
    }
  }

  bool cached = false;
  MBQ_ASSIGN_OR_RETURN(std::shared_ptr<const PlannedQuery> plan,
                       PrepareShared(body, &cached,
                                     /*enforce_lint=*/!explain_only));

  // EXPLAIN/PROFILE lead with the compile-time diagnostics; execution
  // results keep their plain plan tree.
  std::string diagnostics_text;
  for (const Diagnostic& d : plan->diagnostics) {
    diagnostics_text += d.ToString();
    diagnostics_text += '\n';
  }

  QueryResult result;
  result.columns = plan->columns;
  result.plan_cached = cached;
  result.profiled = profiled;
  result.explain_only = explain_only;

  if (explain_only) {
    result.profile = diagnostics_text + DescribePlanShape(*plan->root);
    return result;
  }

  // Stamp the epochs BEFORE executing: a write that lands mid-execution
  // invalidates the entry we are about to insert, never the other way.
  // Write queries never enter the result cache, so they skip the stamp.
  cache::EpochStamp stamp;
  if (rcache != nullptr && !plan->is_write) {
    stamp = cache::CaptureStamp(db_->epochs(), plan->epoch_domains,
                                plan->epoch_use_global);
  }

  // With the live write path attached, reads and writes synchronize
  // through the engine's snapshot registry: reads hold it shared for the
  // whole execution (never observing a half-applied batch), writes hold
  // it exclusively — the same commit section WriteBatch commits use — and
  // additionally run inside a store transaction so a failing clause rolls
  // the whole query back.
  store::SnapshotRegistry* snapshots =
      snapshots_.load(std::memory_order_acquire);
  std::optional<store::SnapshotRegistry::ReadSnapshot> read_guard;
  std::optional<store::SnapshotRegistry::CommitGuard> write_guard;
  std::optional<GraphDb::Transaction> tx;
  if (snapshots != nullptr) {
    if (plan->is_write) {
      write_guard.emplace(snapshots->BeginCommit());
    } else {
      read_guard.emplace(snapshots->OpenSnapshot());
    }
  }
  if (plan->is_write) tx.emplace(db_);

  // The session is an ingress: execute under a trace context (a child of
  // any adopted RPC context, a fresh root otherwise) so the query's span
  // — and every remote call a shard fan-out makes — shares one trace id.
  obs::ScopedTraceContext trace(obs::ChildOrRootContext());
  obs::TraceSpan latency(metrics.query_latency);
  uint32_t threads = threads_.load(std::memory_order_relaxed);
  if (threads == 0) threads = 1;
  // Write plans are inherently sequential (they mutate the store row by
  // row inside the exclusive section).
  if (plan->is_write) threads = 1;
  // Register with the live-query table (/queries, :queries) for the
  // duration of the execution.
  obs::ActiveQueryScope active(&obs::QueryRegistry::Global(), body, "cypher",
                               threads);

  ExecContext ctx;
  ctx.db = db_;
  ctx.params = &params;
  if (threads > 1) {
    exec::ThreadPool* pool = pool_.load(std::memory_order_relaxed);
    ctx.pool = pool != nullptr ? pool : &exec::ThreadPool::Default();
    ctx.threads = threads;
  }
  std::atomic<uint64_t> side_hits{0};
  ctx.side_hits = &side_hits;
  ctx.adj_cache = adj_cache_.get();

  // The cached plan tree is shared across threads and never executed
  // directly — each run drives a private clone.
  std::unique_ptr<Operator> root = plan->root->CloneTree();
  uint64_t hits_before = nodestore::DbHitCounter::ThreadHits();
  MBQ_RETURN_IF_ERROR(root->Open(&ctx));
  Row row;
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, root->NextTracked(&row));
    if (!more) break;
    result.rows.push_back(row);
    // Live progress for /queries: relaxed stores, unsynchronized reads.
    active.SetRows(result.rows.size());
    active.SetDbHits(nodestore::DbHitCounter::ThreadHits() - hits_before);
  }
  result.db_hits = nodestore::DbHitCounter::ThreadHits() - hits_before +
                   side_hits.load(std::memory_order_relaxed);
  result.profile = DescribePlanTree(*root);
  active.SetDbHits(result.db_hits);

  // A write query's effects become durable store state here; an error
  // anywhere above destroyed `tx` active, rolling every clause back.
  if (tx.has_value()) {
    MBQ_RETURN_IF_ERROR(tx->Commit());
    metrics.writes->Inc();
  }

  double elapsed_millis = active.ElapsedMillis();
  obs::SpanRecorder::Global().Record(body, "cypher", active.start_nanos(),
                                     active.ElapsedNanos());
  if (obs::IsSlowQuery(elapsed_millis,
                       slow_query_millis_.load(std::memory_order_relaxed))) {
    obs::SlowQuery slow;
    slow.query = body;
    slow.engine = "cypher";
    slow.millis = elapsed_millis;
    slow.db_hits = result.db_hits;
    slow.rows = result.rows.size();
    slow.threads = threads;
    slow.cache = rcache != nullptr ? "miss" : "off";
    slow.epoch = db_->epochs().GlobalEpoch();
    slow.diagnostics = plan->diagnostics.size();
    slow.profile = result.profile;
    obs::FlightRecorder::Global().Record(std::move(slow));
    metrics.slow_captured->Inc();
  }

  if (rcache != nullptr && !plan->is_write) {
    auto payload = std::make_shared<CachedResult>();
    payload->columns = result.columns;
    payload->rows = result.rows;
    payload->profile = result.profile;
    size_t bytes = payload->ByteSize();
    result.profile = "cache=miss\n" + result.profile;
    rcache->Put(result_key, std::move(payload), bytes, std::move(stamp));
  }

  // After the payload capture, so cached profiles stay plain (a result-
  // cache hit skips compilation and has no diagnostics to show).
  if (profiled && !diagnostics_text.empty()) {
    result.profile = diagnostics_text + result.profile;
  }

  metrics.queries->Inc();
  metrics.rows_returned->Inc(result.rows.size());
  metrics.db_hits->Inc(result.db_hits);
  return result;
}

}  // namespace mbq::cypher
