#include "cypher/session.h"

#include <cctype>

#include "cypher/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace mbq::cypher {

namespace {

/// Session-level metrics, shared by every CypherSession in the process
/// (the registry deduplicates by name).
struct SessionMetrics {
  obs::Counter* queries;
  obs::Counter* rows_returned;
  obs::Counter* db_hits;
  obs::Counter* plan_cache_hits;
  obs::Counter* plan_cache_misses;
  obs::Histogram* query_latency;

  static SessionMetrics& Get() {
    static SessionMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      SessionMetrics m;
      m.queries = r.GetCounter("cypher.queries", "queries",
                               "queries executed (EXPLAIN excluded)");
      m.rows_returned =
          r.GetCounter("cypher.rows_returned", "rows", "result rows produced");
      m.db_hits = r.GetCounter("cypher.db_hits", "records",
                               "record accesses charged to queries");
      m.plan_cache_hits =
          r.GetCounter("cypher.plan_cache.hits", "hits",
                       "Prepare() served from the plan cache");
      m.plan_cache_misses =
          r.GetCounter("cypher.plan_cache.misses", "misses",
                       "Prepare() that had to parse and plan");
      m.query_latency = r.GetHistogram("cypher.query_latency", "ns",
                                       "wall time per executed query");
      return m;
    }();
    return m;
  }
};

/// Strips a leading case-insensitive keyword (followed by whitespace)
/// from `query`; returns true and advances past it on a match.
bool ConsumeVerb(std::string_view* query, std::string_view verb) {
  if (query->size() <= verb.size()) return false;
  for (size_t i = 0; i < verb.size(); ++i) {
    char c = (*query)[i];
    if (std::toupper(static_cast<unsigned char>(c)) != verb[i]) return false;
  }
  char next = (*query)[verb.size()];
  if (!std::isspace(static_cast<unsigned char>(next))) return false;
  query->remove_prefix(verb.size());
  *query = TrimString(*query);
  return true;
}

}  // namespace

Result<const PlannedQuery*> CypherSession::Prepare(const std::string& query) {
  auto it = plan_cache_.find(query);
  if (plan_cache_enabled_ && it != plan_cache_.end()) {
    ++plan_cache_hits_;
    SessionMetrics::Get().plan_cache_hits->Inc();
    last_prepare_was_cache_hit_ = true;
    return const_cast<const PlannedQuery*>(it->second.get());
  }
  ++plan_cache_misses_;
  SessionMetrics::Get().plan_cache_misses->Inc();
  last_prepare_was_cache_hit_ = false;
  MBQ_ASSIGN_OR_RETURN(Query ast, ParseQuery(query));
  MBQ_ASSIGN_OR_RETURN(std::unique_ptr<PlannedQuery> plan,
                       PlanQuery(std::move(ast), db_));
  const PlannedQuery* raw = plan.get();
  if (plan_cache_enabled_) {
    plan_cache_[query] = std::move(plan);
  } else {
    // Keep the most recent uncached plan alive for the caller.
    uncached_plan_ = std::move(plan);
  }
  return raw;
}

Result<QueryResult> CypherSession::Run(const std::string& query,
                                       const Params& params) {
  std::string_view text = TrimString(query);
  bool profiled = ConsumeVerb(&text, "PROFILE");
  bool explain_only = !profiled && ConsumeVerb(&text, "EXPLAIN");
  std::string body(text);

  MBQ_ASSIGN_OR_RETURN(const PlannedQuery* plan, Prepare(body));
  bool cached = last_prepare_was_cache_hit_;

  QueryResult result;
  result.columns = plan->columns;
  result.plan_cached = cached;
  result.profiled = profiled;
  result.explain_only = explain_only;

  if (explain_only) {
    result.profile = DescribePlanShape(*plan->root);
    return result;
  }

  SessionMetrics& metrics = SessionMetrics::Get();
  obs::TraceSpan latency(metrics.query_latency);

  ExecContext ctx;
  ctx.db = db_;
  ctx.params = &params;

  uint64_t hits_before = db_->db_hits();
  Operator* root = plan->root.get();
  root->ResetStatsTree();
  MBQ_RETURN_IF_ERROR(root->Open(&ctx));
  Row row;
  for (;;) {
    MBQ_ASSIGN_OR_RETURN(bool more, root->NextTracked(&row));
    if (!more) break;
    result.rows.push_back(row);
  }
  result.db_hits = db_->db_hits() - hits_before;
  result.profile = plan->Explain();

  metrics.queries->Inc();
  metrics.rows_returned->Inc(result.rows.size());
  metrics.db_hits->Inc(result.db_hits);
  return result;
}

}  // namespace mbq::cypher
