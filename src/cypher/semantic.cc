#include "cypher/semantic.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace mbq::cypher {

namespace {

using common::ValueType;

/// What a pattern binds a name to.
enum class BindKind : uint8_t { kNode, kRel, kPath };

struct Binding {
  BindKind kind;
  SourceSpan span;       // first binding site
  std::string label;     // first non-empty label/type seen for the name
  uint32_t pattern_uses = 0;
  uint32_t expr_uses = 0;
};

/// Case-insensitive Levenshtein distance, banded: stops caring past
/// `limit` (returns limit + 1).
uint32_t EditDistance(const std::string& a, const std::string& b,
                      uint32_t limit) {
  const size_t m = a.size(), n = b.size();
  if (m > n) return EditDistance(b, a, limit);
  if (n - m > limit) return limit + 1;
  std::vector<uint32_t> row(m + 1);
  for (size_t i = 0; i <= m; ++i) row[i] = static_cast<uint32_t>(i);
  for (size_t j = 1; j <= n; ++j) {
    uint32_t prev = row[0];
    row[0] = static_cast<uint32_t>(j);
    uint32_t best = row[0];
    for (size_t i = 1; i <= m; ++i) {
      uint32_t del = row[i] + 1;
      uint32_t ins = row[i - 1] + 1;
      char ca = static_cast<char>(
          std::tolower(static_cast<unsigned char>(a[i - 1])));
      char cb = static_cast<char>(
          std::tolower(static_cast<unsigned char>(b[j - 1])));
      uint32_t sub = prev + (ca == cb ? 0 : 1);
      prev = row[i];
      row[i] = std::min({del, ins, sub});
      best = std::min(best, row[i]);
    }
    if (best > limit) return limit + 1;
  }
  return row[m];
}

/// " (did you mean 'x'?)" or "".
std::string DidYouMean(const std::string& name,
                       const std::vector<std::string>& candidates) {
  std::string nearest = NearestName(name, candidates);
  if (nearest.empty()) return "";
  return " (did you mean '" + nearest + "'?)";
}

/// The analysis pass. One instance per query; collects bindings, then
/// walks patterns and expressions emitting diagnostics in rule order.
class Analyzer {
 public:
  Analyzer(const Query& query, GraphDb* db) : query_(query), db_(db) {}

  AnalysisResult Run() {
    CollectBindings();
    CheckPatterns();
    CheckExpressions();
    CheckWriteClauses();
    CheckAnchors();
    CheckConnectivity();
    // Write queries legitimately bind-and-mutate without "using" the
    // binding in an expression; the hygiene hint would be pure noise.
    if (!query_.IsWrite()) CheckUnusedBindings();
    return std::move(result_);
  }

 private:
  void Add(Severity severity, const char* rule, std::string message,
           SourceSpan span) {
    Diagnostic d;
    d.severity = severity;
    d.rule = rule;
    d.message = std::move(message);
    d.span = span;
    result_.diagnostics.push_back(std::move(d));
  }

  void Bind(const std::string& name, BindKind kind, SourceSpan span,
            const std::string& label) {
    if (name.empty()) return;
    auto [it, inserted] = bindings_.emplace(name, Binding{kind, span, label});
    ++it->second.pattern_uses;
    if (!inserted && it->second.label.empty()) it->second.label = label;
  }

  void CollectBindings() {
    for (const PatternPart& part : query_.patterns) {
      if (!part.path_variable.empty()) {
        SourceSpan span =
            part.nodes.empty() ? SourceSpan{} : part.nodes.front().span;
        Bind(part.path_variable, BindKind::kPath, span, "");
      }
      for (const NodePattern& node : part.nodes) {
        Bind(node.variable, BindKind::kNode, node.span, node.label);
      }
      for (const RelPattern& rel : part.rels) {
        Bind(rel.variable, BindKind::kRel, rel.span, rel.type);
      }
    }
    // CREATE patterns bind too (a later SET may target a created node).
    for (const PatternPart& part : query_.create_patterns) {
      for (const NodePattern& node : part.nodes) {
        Bind(node.variable, BindKind::kNode, node.span, node.label);
      }
      for (const RelPattern& rel : part.rels) {
        Bind(rel.variable, BindKind::kRel, rel.span, rel.type);
      }
    }
  }

  std::vector<std::string> BindingNames() const {
    std::vector<std::string> names;
    names.reserve(bindings_.size());
    for (const auto& [name, binding] : bindings_) names.push_back(name);
    return names;
  }

  // ------------------------------------------------------- Pattern rules

  void CheckPatterns() {
    for (const PatternPart& part : query_.patterns) {
      for (const NodePattern& node : part.nodes) {
        if (db_ != nullptr && !node.label.empty() &&
            !db_->FindLabel(node.label).ok()) {
          Add(Severity::kError, "unknown-label",
              "unknown label '" + node.label + "'" +
                  DidYouMean(node.label, db_->LabelNames()) +
                  "; the match can never produce rows",
              node.label_span);
        }
        for (const auto& [key, value] : node.properties) {
          CheckPropertyKey(key, node.span);
          CheckExpr(*value, /*aggregates_allowed=*/false);
        }
      }
      for (const RelPattern& rel : part.rels) {
        if (db_ != nullptr && !rel.type.empty() &&
            !db_->FindRelType(rel.type).ok()) {
          Add(Severity::kError, "unknown-rel-type",
              "unknown relationship type '" + rel.type + "'" +
                  DidYouMean(rel.type, db_->RelTypeNames()) +
                  "; the match can never produce rows",
              rel.type_span);
        }
        if (rel.max_hops == UINT32_MAX && !part.shortest_path) {
          Add(Severity::kWarning, "unbounded-varlength-path",
              "variable-length pattern has no upper bound; expansion may "
              "visit the whole graph (add '*..k')",
              rel.span);
        }
      }
    }
  }

  void CheckPropertyKey(const std::string& key, SourceSpan span) {
    if (db_ == nullptr || key.empty()) return;
    if (db_->FindPropKey(key).ok()) return;
    Add(Severity::kWarning, "unknown-property",
        "property '" + key + "' was never written" +
            DidYouMean(key, db_->PropKeyNames()) +
            "; the comparison is always against null",
        span);
  }

  // ---------------------------------------------------- Expression rules

  void CheckExpressions() {
    if (query_.where != nullptr) {
      CheckExpr(*query_.where, /*aggregates_allowed=*/false);
    }
    for (const ReturnItem& item : query_.return_items) {
      CheckExpr(*item.expr, /*aggregates_allowed=*/true);
    }
    for (const OrderItem& item : query_.order_by) {
      CheckExpr(*item.expr, /*aggregates_allowed=*/true);
    }
    if (query_.limit != nullptr) {
      CheckExpr(*query_.limit, /*aggregates_allowed=*/false);
    }
  }

  // -------------------------------------------------- Write-clause rules

  void CheckWriteClauses() {
    // Names the reading part binds: a create-pattern node reusing one is
    // an endpoint reference, a fresh name creates a new node.
    std::unordered_set<std::string> bound;
    for (const PatternPart& part : query_.patterns) {
      for (const NodePattern& node : part.nodes) {
        if (!node.variable.empty()) bound.insert(node.variable);
      }
    }
    for (const PatternPart& part : query_.create_patterns) {
      for (const NodePattern& node : part.nodes) {
        bool reused = !node.variable.empty() && bound.count(node.variable);
        if (reused) {
          if (!node.label.empty() || !node.properties.empty()) {
            Add(Severity::kError, "create-bound-variable",
                "'" + node.variable + "' is already bound; a bound node in "
                "CREATE cannot carry a label or properties",
                node.span);
          }
          continue;
        }
        if (node.label.empty()) {
          Add(Severity::kError, "create-unlabelled-node",
              "created nodes need a label (records are filed by label)",
              node.span);
        }
        if (!node.variable.empty()) bound.insert(node.variable);
        for (const auto& [key, value] : node.properties) {
          CheckExpr(*value, /*aggregates_allowed=*/false);
        }
      }
      for (const RelPattern& rel : part.rels) {
        if (rel.type.empty()) {
          Add(Severity::kError, "create-untyped-rel",
              "created relationships need a type", rel.span);
        }
        if (rel.min_hops != 1 || rel.max_hops != 1) {
          Add(Severity::kError, "create-varlength-rel",
              "cannot CREATE a variable-length relationship", rel.span);
        }
        if (rel.dir == RelPattern::Dir::kBoth) {
          Add(Severity::kError, "create-undirected-rel",
              "created relationships need a direction (-> or <-)", rel.span);
        }
      }
    }
    for (const SetItem& item : query_.set_items) {
      CheckVariableRef(item.variable, item.span);
      CheckExpr(*item.value, /*aggregates_allowed=*/false);
      auto it = bindings_.find(item.variable);
      if (it != bindings_.end() && it->second.kind == BindKind::kPath) {
        Add(Severity::kError, "set-on-path",
            "cannot SET a property on path '" + item.variable + "'",
            item.span);
      }
    }
    for (const DeleteItem& item : query_.delete_items) {
      CheckVariableRef(item.variable, item.span);
      auto it = bindings_.find(item.variable);
      if (it != bindings_.end() && it->second.kind == BindKind::kPath) {
        Add(Severity::kError, "delete-path",
            "cannot DELETE path '" + item.variable + "'", item.span);
      }
    }
  }

  void CheckVariableRef(const std::string& name, SourceSpan span) {
    if (name.empty()) return;
    auto it = bindings_.find(name);
    if (it == bindings_.end()) {
      Add(Severity::kError, "undefined-variable",
          "variable '" + name + "' is not defined in any pattern" +
              DidYouMean(name, BindingNames()),
          span);
      return;
    }
    ++it->second.expr_uses;
  }

  void CheckExpr(const Expr& expr, bool aggregates_allowed) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
      case ExprKind::kParameter:
        return;
      case ExprKind::kVariable:
      case ExprKind::kLengthCall:
      case ExprKind::kIdCall:
        CheckVariableRef(expr.variable, expr.span);
        return;
      case ExprKind::kProperty:
        CheckVariableRef(expr.variable, expr.span);
        CheckPropertyKey(expr.property, expr.span);
        return;
      case ExprKind::kPatternPred:
        CheckVariableRef(expr.pattern_src, expr.span);
        CheckVariableRef(expr.pattern_dst, expr.span);
        if (db_ != nullptr && !expr.pattern_rel_type.empty() &&
            !db_->FindRelType(expr.pattern_rel_type).ok()) {
          Add(Severity::kError, "unknown-rel-type",
              "unknown relationship type '" + expr.pattern_rel_type + "'" +
                  DidYouMean(expr.pattern_rel_type, db_->RelTypeNames()) +
                  "; the predicate can never hold",
              expr.span);
        }
        return;
      case ExprKind::kAggCall:
        if (!aggregates_allowed) {
          Add(Severity::kError, "aggregate-in-where",
              "aggregate functions are only allowed in RETURN and ORDER BY",
              expr.span);
        }
        for (const ExprPtr& child : expr.children) {
          CheckExpr(*child, /*aggregates_allowed=*/false);
        }
        return;
      case ExprKind::kComparison: {
        CheckExpr(*expr.children[0], aggregates_allowed);
        CheckExpr(*expr.children[1], aggregates_allowed);
        InferredType lhs = InferExprType(*expr.children[0], query_);
        InferredType rhs = InferExprType(*expr.children[1], query_);
        if (!Comparable(lhs, rhs)) {
          Add(Severity::kError, "type-mismatch",
              std::string("comparison between ") + InferredTypeName(lhs) +
                  " and " + InferredTypeName(rhs) + " can never be true",
              expr.span);
        }
        return;
      }
      case ExprKind::kAnd:
      case ExprKind::kOr:
      case ExprKind::kNot:
        for (const ExprPtr& child : expr.children) {
          CheckExpr(*child, aggregates_allowed);
        }
        return;
    }
  }

  static bool IsNumeric(InferredType t) {
    return t == InferredType::kInt || t == InferredType::kDouble;
  }
  static bool Comparable(InferredType lhs, InferredType rhs) {
    if (lhs == InferredType::kAny || rhs == InferredType::kAny) return true;
    if (lhs == rhs) return true;
    return IsNumeric(lhs) && IsNumeric(rhs);
  }

  // ----------------------------------------------- Plan-shape rules

  /// Equality filters per variable: inline `{key: v}` maps and top-level
  /// WHERE conjuncts of the form `var.key = x` / `x = var.key`.
  struct Filter {
    std::string key;
    SourceSpan span;
    bool from_where;
  };

  void CollectWhereFilters(
      const Expr& expr,
      std::unordered_map<std::string, std::vector<Filter>>* filters) {
    if (expr.kind == ExprKind::kAnd) {
      CollectWhereFilters(*expr.children[0], filters);
      CollectWhereFilters(*expr.children[1], filters);
      return;
    }
    if (expr.kind != ExprKind::kComparison || expr.op != CompareOp::kEq) {
      return;
    }
    for (const ExprPtr& side : expr.children) {
      if (side->kind == ExprKind::kProperty) {
        (*filters)[side->variable].push_back(
            {side->property, side->span, /*from_where=*/true});
      }
    }
  }

  /// Mirrors the planner's anchor choice (planner.cc PlanChainPart): a
  /// part expanding from an already-bound variable needs no scan; an
  /// index-seekable inline property scores 3, label+props 2, label 1,
  /// bare node 0. Warns when the winning anchor filters on properties
  /// the planner cannot turn into an index seek.
  void CheckAnchors() {
    if (db_ == nullptr) return;
    std::unordered_map<std::string, std::vector<Filter>> where_filters;
    if (query_.where != nullptr) {
      CollectWhereFilters(*query_.where, &where_filters);
    }
    std::unordered_set<std::string> bound;
    for (const PatternPart& part : query_.patterns) {
      if (part.nodes.empty()) continue;
      bool has_bound_anchor = false;
      for (const NodePattern& node : part.nodes) {
        if (!node.variable.empty() && bound.count(node.variable) != 0) {
          has_bound_anchor = true;
          break;
        }
      }
      if (!has_bound_anchor) {
        const NodePattern* anchor = &part.nodes.front();
        int best_score = -1;
        for (const NodePattern& node : part.nodes) {
          int score = AnchorScore(node);
          if (score > best_score) {
            best_score = score;
            anchor = &node;
          }
        }
        WarnUnindexedAnchor(*anchor, best_score, where_filters);
      }
      if (!part.path_variable.empty()) bound.insert(part.path_variable);
      for (const NodePattern& node : part.nodes) {
        if (!node.variable.empty()) bound.insert(node.variable);
      }
      for (const RelPattern& rel : part.rels) {
        if (!rel.variable.empty()) bound.insert(rel.variable);
      }
    }
  }

  int AnchorScore(const NodePattern& node) {
    if (!node.label.empty() && !node.properties.empty()) {
      auto label = db_->FindLabel(node.label);
      if (label.ok()) {
        for (const auto& [key, value] : node.properties) {
          auto prop = db_->FindPropKey(key);
          if (prop.ok() && db_->HasIndex(*label, *prop)) return 3;
        }
      }
      return 2;
    }
    if (!node.label.empty()) return 1;
    return 0;
  }

  void WarnUnindexedAnchor(
      const NodePattern& anchor, int score,
      const std::unordered_map<std::string, std::vector<Filter>>&
          where_filters) {
    if (score >= 3) return;  // index seek
    std::vector<Filter> filters;
    for (const auto& [key, value] : anchor.properties) {
      filters.push_back({key, anchor.span, /*from_where=*/false});
    }
    if (!anchor.variable.empty()) {
      auto it = where_filters.find(anchor.variable);
      if (it != where_filters.end()) {
        filters.insert(filters.end(), it->second.begin(), it->second.end());
      }
    }
    if (filters.empty()) return;
    std::string shown = anchor.variable.empty() ? "" : anchor.variable + ".";
    if (anchor.label.empty()) {
      Add(Severity::kWarning, "full-scan-no-index",
          "equality filter on '" + shown + filters.front().key +
              "' anchors an unlabelled node; the match scans the whole "
              "node store (add a label)",
          filters.front().span);
      return;
    }
    auto label = db_->FindLabel(anchor.label);
    if (!label.ok()) return;  // unknown-label already reported
    for (const Filter& filter : filters) {
      auto prop = db_->FindPropKey(filter.key);
      bool indexed = prop.ok() && db_->HasIndex(*label, *prop);
      if (!indexed) {
        Add(Severity::kWarning, "full-scan-no-index",
            "filter on '" + shown + filter.key + "' is not backed by an "
            "index; the match scans all " +
                std::to_string(db_->CountNodesWithLabel(*label)) + " :" +
                anchor.label + " nodes (CREATE INDEX on :" + anchor.label +
                "(" + filter.key + ") to seek)",
            filter.span);
      } else if (filter.from_where) {
        Add(Severity::kWarning, "full-scan-no-index",
            ":" + anchor.label + "(" + filter.key + ") is indexed but the "
            "planner only seeks inline property maps; write (" +
                anchor.variable + ":" + anchor.label + " {" + filter.key +
                ": ...}) to use it",
            filter.span);
      }
    }
  }

  /// Disconnected pattern parts multiply row counts (the planner nests
  /// one scan inside the other). Parts are connected by shared variables
  /// or by a WHERE pattern predicate bridging them.
  void CheckConnectivity() {
    const size_t parts = query_.patterns.size();
    if (parts < 2) return;
    std::vector<size_t> parent(parts);
    for (size_t i = 0; i < parts; ++i) parent[i] = i;
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };

    std::unordered_map<std::string, size_t> owner;
    auto link_var = [&](const std::string& name, size_t part) {
      if (name.empty()) return;
      auto [it, inserted] = owner.emplace(name, part);
      if (!inserted) unite(it->second, part);
    };
    for (size_t i = 0; i < parts; ++i) {
      const PatternPart& part = query_.patterns[i];
      link_var(part.path_variable, i);
      for (const NodePattern& node : part.nodes) link_var(node.variable, i);
      for (const RelPattern& rel : part.rels) link_var(rel.variable, i);
    }
    if (query_.where != nullptr) LinkPatternPreds(*query_.where, owner, unite);
    // A CREATE pattern bridging two matched parts connects them — the
    // cartesian product is exactly what the write wants (e.g. MATCH two
    // users, CREATE a follows edge between them).
    for (const PatternPart& part : query_.create_patterns) {
      size_t first = SIZE_MAX;
      for (const NodePattern& node : part.nodes) {
        if (node.variable.empty()) continue;
        auto it = owner.find(node.variable);
        if (it == owner.end()) continue;
        if (first == SIZE_MAX) {
          first = it->second;
        } else {
          unite(first, it->second);
        }
      }
    }

    std::unordered_set<size_t> reported;
    size_t first_root = find(0);
    for (size_t i = 1; i < parts; ++i) {
      size_t root = find(i);
      if (root == first_root || !reported.insert(root).second) continue;
      SourceSpan span = query_.patterns[i].nodes.empty()
                            ? SourceSpan{}
                            : query_.patterns[i].nodes.front().span;
      Add(Severity::kWarning, "cartesian-product",
          "pattern part " + std::to_string(i + 1) + " shares no variable "
          "with the preceding parts; the match builds a cartesian product",
          span);
    }
  }

  template <typename Unite>
  void LinkPatternPreds(const Expr& expr,
                        std::unordered_map<std::string, size_t>& owner,
                        Unite& unite) {
    if (expr.kind == ExprKind::kPatternPred) {
      auto src = owner.find(expr.pattern_src);
      auto dst = owner.find(expr.pattern_dst);
      if (src != owner.end() && dst != owner.end()) {
        unite(src->second, dst->second);
      }
      return;
    }
    for (const ExprPtr& child : expr.children) {
      LinkPatternPreds(*child, owner, unite);
    }
  }

  // -------------------------------------------------------- Hygiene

  void CheckUnusedBindings() {
    for (const auto& [name, binding] : bindings_) {
      if (binding.pattern_uses > 1 || binding.expr_uses > 0) continue;
      Add(Severity::kHint, "unused-binding",
          "'" + name + "' is bound but never used; anonymize it or return "
          "it",
          binding.span);
    }
  }

  const Query& query_;
  GraphDb* db_;
  AnalysisResult result_;
  std::unordered_map<std::string, Binding> bindings_;
};

}  // namespace

const char* InferredTypeName(InferredType type) {
  switch (type) {
    case InferredType::kAny:
      return "any";
    case InferredType::kBool:
      return "boolean";
    case InferredType::kInt:
      return "integer";
    case InferredType::kDouble:
      return "float";
    case InferredType::kString:
      return "string";
    case InferredType::kNode:
      return "node";
    case InferredType::kRel:
      return "relationship";
    case InferredType::kPath:
      return "path";
  }
  return "any";
}

InferredType InferExprType(const Expr& expr, const Query& query) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      switch (expr.literal.type()) {
        case ValueType::kBool:
          return InferredType::kBool;
        case ValueType::kInt:
          return InferredType::kInt;
        case ValueType::kDouble:
          return InferredType::kDouble;
        case ValueType::kString:
          return InferredType::kString;
        case ValueType::kNull:
          return InferredType::kAny;
      }
      return InferredType::kAny;
    case ExprKind::kParameter:
    case ExprKind::kProperty:
      return InferredType::kAny;  // runtime-typed
    case ExprKind::kVariable: {
      for (const PatternPart& part : query.patterns) {
        if (!part.path_variable.empty() &&
            part.path_variable == expr.variable) {
          return InferredType::kPath;
        }
        for (const NodePattern& node : part.nodes) {
          if (node.variable == expr.variable) return InferredType::kNode;
        }
        for (const RelPattern& rel : part.rels) {
          if (rel.variable == expr.variable) return InferredType::kRel;
        }
      }
      return InferredType::kAny;
    }
    case ExprKind::kComparison:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
    case ExprKind::kPatternPred:
      return InferredType::kBool;
    case ExprKind::kAggCall:
      return expr.agg_func == AggFunc::kCount ? InferredType::kInt
                                              : InferredType::kAny;
    case ExprKind::kLengthCall:
    case ExprKind::kIdCall:
      return InferredType::kInt;
  }
  return InferredType::kAny;
}

std::string NearestName(const std::string& name,
                        const std::vector<std::string>& candidates) {
  uint32_t limit = std::max<uint32_t>(
      1, static_cast<uint32_t>(name.size()) / 3 + 1);
  std::string best;
  uint32_t best_distance = limit + 1;
  for (const std::string& candidate : candidates) {
    if (candidate == name) continue;
    uint32_t d = EditDistance(name, candidate, limit);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

AnalysisResult AnalyzeQuery(const Query& query, GraphDb* db) {
  return Analyzer(query, db).Run();
}

}  // namespace mbq::cypher
