#ifndef MBQ_TWITTER_CSV_EXPORT_H_
#define MBQ_TWITTER_CSV_EXPORT_H_

#include <string>

#include "twitter/dataset.h"
#include "util/status.h"

namespace mbq::twitter {

/// File names written by ExportCsv — the "same source files" both
/// engines' batch loaders consume (paper §3.2).
struct CsvFiles {
  static constexpr const char* kUsers = "users.csv";
  static constexpr const char* kTweets = "tweets.csv";
  static constexpr const char* kHashtags = "hashtags.csv";
  static constexpr const char* kFollows = "follows.csv";
  static constexpr const char* kPosts = "posts.csv";
  static constexpr const char* kRetweets = "retweets.csv";
  static constexpr const char* kMentions = "mentions.csv";
  static constexpr const char* kTags = "tags.csv";
};

/// Writes the dataset as CSV files under `dir` (which must exist).
Status ExportCsv(const Dataset& dataset, const std::string& dir);

}  // namespace mbq::twitter

#endif  // MBQ_TWITTER_CSV_EXPORT_H_
