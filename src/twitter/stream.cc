#include "twitter/stream.h"

#include <algorithm>

namespace mbq::twitter {

UpdateStream::UpdateStream(const Dataset& base, StreamMix mix, uint64_t seed)
    : mix_(mix),
      rng_(seed),
      user_popularity_(std::max<uint64_t>(1, base.users.size()), 0.9),
      next_uid_(static_cast<int64_t>(base.users.size())),
      next_tid_(static_cast<int64_t>(base.tweets.size())),
      num_hashtags_(static_cast<int64_t>(base.hashtags.size())) {
  // Track every existing follow edge (no double-follows), and seed the
  // unfollow pool with a sample of them.
  for (const auto& [src, dst] : base.follows) {
    follow_keys_.insert((static_cast<uint64_t>(src) << 32) |
                        static_cast<uint32_t>(dst));
  }
  size_t sample = std::min<size_t>(base.follows.size(), 50000);
  for (size_t i = 0; i < sample && !base.follows.empty(); ++i) {
    live_follows_.push_back(
        base.follows[rng_.NextBounded(base.follows.size())]);
  }
  std::sort(live_follows_.begin(), live_follows_.end());
  live_follows_.erase(
      std::unique(live_follows_.begin(), live_follows_.end()),
      live_follows_.end());
}

int64_t UpdateStream::PickUser() {
  // Popularity-skewed among the founding population, uniform among the
  // newcomers the stream itself created.
  if (next_uid_ > static_cast<int64_t>(user_popularity_.n()) &&
      rng_.NextBool(0.3)) {
    return rng_.NextInRange(static_cast<int64_t>(user_popularity_.n()),
                            next_uid_ - 1);
  }
  return static_cast<int64_t>(user_popularity_.Sample(rng_));
}

int64_t UpdateStream::PickTweet() {
  // Recency-biased: microblog interactions target fresh content.
  int64_t window = std::min<int64_t>(next_tid_, 5000);
  return next_tid_ - 1 - rng_.NextInRange(0, window - 1);
}

StreamEvent UpdateStream::Next() {
  StreamEvent event;
  double total = mix_.new_user + mix_.new_follow + mix_.unfollow +
                 mix_.new_tweet + mix_.new_mention + mix_.new_tag +
                 mix_.new_retweet;
  double roll = rng_.NextDouble() * total;

  auto take = [&roll](double weight) {
    if (roll < weight) return true;
    roll -= weight;
    return false;
  };

  // Degenerate stream states fall through to safe event kinds.
  bool have_tweets = next_tid_ > 0;
  bool have_live_follows = !live_follows_.empty();

  if (take(mix_.new_user)) {
    event.kind = StreamEvent::Kind::kNewUser;
    event.uid = next_uid_++;
    return event;
  }
  if (take(mix_.new_follow)) {
    // Retry a bounded number of times to find a fresh (src, dst) pair;
    // degrade to a tweet if the neighbourhood is saturated.
    for (int attempt = 0; attempt < 16; ++attempt) {
      int64_t src = PickUser();
      int64_t dst = PickUser();
      if (src == dst) continue;
      uint64_t key = (static_cast<uint64_t>(src) << 32) |
                     static_cast<uint32_t>(dst);
      if (!follow_keys_.insert(key).second) continue;
      event.kind = StreamEvent::Kind::kNewFollow;
      event.src_uid = src;
      event.dst_uid = dst;
      live_follows_.push_back({src, dst});
      return event;
    }
    event.kind = StreamEvent::Kind::kNewTweet;
    event.uid = PickUser();
    event.tid = next_tid_++;
    event.text = "live tweet " + std::to_string(event.tid);
    return event;
  }
  if (take(mix_.unfollow) && have_live_follows) {
    event.kind = StreamEvent::Kind::kUnfollow;
    size_t pick = rng_.NextBounded(live_follows_.size());
    event.src_uid = live_follows_[pick].first;
    event.dst_uid = live_follows_[pick].second;
    live_follows_[pick] = live_follows_.back();
    live_follows_.pop_back();
    follow_keys_.erase((static_cast<uint64_t>(event.src_uid) << 32) |
                       static_cast<uint32_t>(event.dst_uid));
    return event;
  }
  if (take(mix_.new_tweet) || !have_tweets) {
    event.kind = StreamEvent::Kind::kNewTweet;
    event.uid = PickUser();
    event.tid = next_tid_++;
    event.text = "live tweet " + std::to_string(event.tid);
    return event;
  }
  if (take(mix_.new_mention)) {
    event.kind = StreamEvent::Kind::kNewMention;
    event.tid = PickTweet();
    event.dst_uid = PickUser();
    return event;
  }
  if (take(mix_.new_tag)) {
    event.kind = StreamEvent::Kind::kNewTag;
    event.tid = PickTweet();
    event.text = "stream_tag" +
                 std::to_string(rng_.NextBounded(
                     std::max<int64_t>(8, num_hashtags_)));
    return event;
  }
  // kNewRetweet (also the fallthrough tail of the distribution).
  event.kind = StreamEvent::Kind::kNewRetweet;
  event.tid = next_tid_++;
  event.orig_tid = PickTweet() % std::max<int64_t>(1, event.tid);
  if (event.orig_tid < 0) event.orig_tid = 0;
  event.uid = PickUser();
  event.text = "rt " + std::to_string(event.tid);
  return event;
}

std::vector<StreamEvent> UpdateStream::Take(size_t n) {
  std::vector<StreamEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) events.push_back(Next());
  return events;
}

}  // namespace mbq::twitter
