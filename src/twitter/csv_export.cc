#include "twitter/csv_export.h"

#include "common/csv.h"

namespace mbq::twitter {

using common::CsvWriter;

Status ExportCsv(const Dataset& dataset, const std::string& dir) {
  {
    MBQ_ASSIGN_OR_RETURN(
        CsvWriter w,
        CsvWriter::Create(dir + "/" + CsvFiles::kUsers,
                          {"uid", "screen_name", "followers_count"}));
    for (const auto& u : dataset.users) {
      MBQ_RETURN_IF_ERROR(w.WriteRow({std::to_string(u.uid), u.screen_name,
                                      std::to_string(u.followers_count)}));
    }
    MBQ_RETURN_IF_ERROR(w.Flush());
  }
  {
    MBQ_ASSIGN_OR_RETURN(CsvWriter w,
                         CsvWriter::Create(dir + "/" + CsvFiles::kTweets,
                                           {"tid", "text"}));
    for (const auto& t : dataset.tweets) {
      MBQ_RETURN_IF_ERROR(w.WriteRow({std::to_string(t.tid), t.text}));
    }
    MBQ_RETURN_IF_ERROR(w.Flush());
  }
  {
    MBQ_ASSIGN_OR_RETURN(CsvWriter w,
                         CsvWriter::Create(dir + "/" + CsvFiles::kHashtags,
                                           {"hid", "tag"}));
    for (const auto& h : dataset.hashtags) {
      MBQ_RETURN_IF_ERROR(w.WriteRow({std::to_string(h.hid), h.tag}));
    }
    MBQ_RETURN_IF_ERROR(w.Flush());
  }
  auto write_edges =
      [&](const char* file, const char* src_col, const char* dst_col,
          const std::vector<std::pair<int64_t, int64_t>>& edges) -> Status {
    MBQ_ASSIGN_OR_RETURN(
        CsvWriter w, CsvWriter::Create(dir + "/" + file, {src_col, dst_col}));
    for (const auto& [src, dst] : edges) {
      MBQ_RETURN_IF_ERROR(
          w.WriteRow({std::to_string(src), std::to_string(dst)}));
    }
    return w.Flush();
  };
  MBQ_RETURN_IF_ERROR(
      write_edges(CsvFiles::kFollows, "src_uid", "dst_uid", dataset.follows));
  std::vector<std::pair<int64_t, int64_t>> posts;
  posts.reserve(dataset.tweets.size());
  for (const auto& t : dataset.tweets) posts.emplace_back(t.poster_uid, t.tid);
  MBQ_RETURN_IF_ERROR(write_edges(CsvFiles::kPosts, "uid", "tid", posts));
  MBQ_RETURN_IF_ERROR(
      write_edges(CsvFiles::kRetweets, "tid", "orig_tid", dataset.retweets));
  MBQ_RETURN_IF_ERROR(
      write_edges(CsvFiles::kMentions, "tid", "uid", dataset.mentions));
  MBQ_RETURN_IF_ERROR(
      write_edges(CsvFiles::kTags, "tid", "hid", dataset.tags));
  return Status::OK();
}

}  // namespace mbq::twitter
