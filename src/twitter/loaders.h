#ifndef MBQ_TWITTER_LOADERS_H_
#define MBQ_TWITTER_LOADERS_H_

#include <string>

#include "bitmapstore/graph.h"
#include "nodestore/batch_importer.h"
#include "nodestore/graph_db.h"
#include "twitter/dataset.h"

namespace mbq::twitter {

/// Resolved schema handles after loading the record-store engine.
struct NodestoreHandles {
  nodestore::LabelId user, tweet, hashtag;
  nodestore::RelTypeId follows, posts, retweets, mentions, tags;
  nodestore::PropKeyId uid, screen_name, followers_count, tid, text, hid, tag;
};

/// Resolved schema handles after loading the bitmap-store engine.
struct BitmapHandles {
  bitmapstore::TypeId user, tweet, hashtag;
  bitmapstore::TypeId follows, posts, retweets, mentions, tags;
  bitmapstore::AttrId uid, screen_name, followers_count, tid, text, hid, tag;
};

/// Loads the dataset straight into a GraphDb (no CSV round trip) and
/// builds the paper's indexes (unique ids per node type, plus
/// followers_count and tag). For import-timing experiments use
/// BatchImporter with BuildImportSpec instead.
Result<NodestoreHandles> LoadIntoNodestore(const Dataset& dataset,
                                           nodestore::GraphDb* db);

/// Resolves handles on a GraphDb that is already loaded with the schema.
Result<NodestoreHandles> ResolveNodestoreHandles(nodestore::GraphDb* db);

/// Loads the dataset straight into a bitmap-store Graph with the same
/// schema and attribute kinds.
Result<BitmapHandles> LoadIntoBitmapstore(const Dataset& dataset,
                                          bitmapstore::Graph* graph);

/// Resolves handles on a bitmap-store Graph already carrying the schema.
Result<BitmapHandles> ResolveBitmapHandles(const bitmapstore::Graph& graph);

/// The `neo4j-import`-style spec over the CSVs written by ExportCsv.
nodestore::ImportSpec BuildImportSpec(bool with_retweets);

/// The Sparksee-style load script over the same CSVs.
std::string BuildLoadScript(bool with_retweets);

}  // namespace mbq::twitter

#endif  // MBQ_TWITTER_LOADERS_H_
