#ifndef MBQ_TWITTER_SCHEMA_H_
#define MBQ_TWITTER_SCHEMA_H_

namespace mbq::twitter {

/// Names of the paper's schema (Figure 1): three node types and five edge
/// types. Both engines are loaded with exactly this schema.
namespace schema {

inline constexpr char kUser[] = "user";
inline constexpr char kTweet[] = "tweet";
inline constexpr char kHashtag[] = "hashtag";

inline constexpr char kFollows[] = "follows";    // user -> user
inline constexpr char kPosts[] = "posts";        // user -> tweet
inline constexpr char kRetweets[] = "retweets";  // tweet -> original tweet
inline constexpr char kMentions[] = "mentions";  // tweet -> user
inline constexpr char kTags[] = "tags";          // tweet -> hashtag

// user attributes
inline constexpr char kUid[] = "uid";
inline constexpr char kScreenName[] = "screen_name";
inline constexpr char kFollowersCount[] = "followers_count";
// tweet attributes
inline constexpr char kTid[] = "tid";
inline constexpr char kText[] = "text";
// hashtag attributes
inline constexpr char kHid[] = "hid";
inline constexpr char kTag[] = "tag";

}  // namespace schema
}  // namespace mbq::twitter

#endif  // MBQ_TWITTER_SCHEMA_H_
