#include "twitter/loaders.h"

#include <unordered_map>

#include "twitter/csv_export.h"
#include "twitter/schema.h"

namespace mbq::twitter {

namespace ns = schema;
using common::Value;

Result<NodestoreHandles> ResolveNodestoreHandles(nodestore::GraphDb* db) {
  NodestoreHandles h;
  MBQ_ASSIGN_OR_RETURN(h.user, db->Label(ns::kUser));
  MBQ_ASSIGN_OR_RETURN(h.tweet, db->Label(ns::kTweet));
  MBQ_ASSIGN_OR_RETURN(h.hashtag, db->Label(ns::kHashtag));
  MBQ_ASSIGN_OR_RETURN(h.follows, db->RelType(ns::kFollows));
  MBQ_ASSIGN_OR_RETURN(h.posts, db->RelType(ns::kPosts));
  MBQ_ASSIGN_OR_RETURN(h.retweets, db->RelType(ns::kRetweets));
  MBQ_ASSIGN_OR_RETURN(h.mentions, db->RelType(ns::kMentions));
  MBQ_ASSIGN_OR_RETURN(h.tags, db->RelType(ns::kTags));
  h.uid = db->PropKey(ns::kUid);
  h.screen_name = db->PropKey(ns::kScreenName);
  h.followers_count = db->PropKey(ns::kFollowersCount);
  h.tid = db->PropKey(ns::kTid);
  h.text = db->PropKey(ns::kText);
  h.hid = db->PropKey(ns::kHid);
  h.tag = db->PropKey(ns::kTag);
  return h;
}

Result<NodestoreHandles> LoadIntoNodestore(const Dataset& dataset,
                                           nodestore::GraphDb* db) {
  MBQ_ASSIGN_OR_RETURN(NodestoreHandles h, ResolveNodestoreHandles(db));

  std::unordered_map<int64_t, nodestore::NodeId> user_ids;
  std::unordered_map<int64_t, nodestore::NodeId> tweet_ids;
  std::unordered_map<int64_t, nodestore::NodeId> hashtag_ids;
  user_ids.reserve(dataset.users.size());
  tweet_ids.reserve(dataset.tweets.size());

  for (const auto& u : dataset.users) {
    MBQ_ASSIGN_OR_RETURN(nodestore::NodeId id, db->CreateNode(h.user));
    MBQ_RETURN_IF_ERROR(db->SetNodeProperty(id, h.uid, Value::Int(u.uid)));
    MBQ_RETURN_IF_ERROR(
        db->SetNodeProperty(id, h.screen_name, Value::String(u.screen_name)));
    MBQ_RETURN_IF_ERROR(db->SetNodeProperty(
        id, h.followers_count, Value::Int(u.followers_count)));
    user_ids[u.uid] = id;
  }
  for (const auto& t : dataset.tweets) {
    MBQ_ASSIGN_OR_RETURN(nodestore::NodeId id, db->CreateNode(h.tweet));
    MBQ_RETURN_IF_ERROR(db->SetNodeProperty(id, h.tid, Value::Int(t.tid)));
    MBQ_RETURN_IF_ERROR(db->SetNodeProperty(id, h.text,
                                            Value::String(t.text)));
    tweet_ids[t.tid] = id;
  }
  for (const auto& ht : dataset.hashtags) {
    MBQ_ASSIGN_OR_RETURN(nodestore::NodeId id, db->CreateNode(h.hashtag));
    MBQ_RETURN_IF_ERROR(db->SetNodeProperty(id, h.hid, Value::Int(ht.hid)));
    MBQ_RETURN_IF_ERROR(db->SetNodeProperty(id, h.tag,
                                            Value::String(ht.tag)));
    hashtag_ids[ht.hid] = id;
  }

  for (const auto& [src, dst] : dataset.follows) {
    MBQ_RETURN_IF_ERROR(
        db->CreateRelationship(h.follows, user_ids[src], user_ids[dst])
            .status());
  }
  for (const auto& t : dataset.tweets) {
    MBQ_RETURN_IF_ERROR(
        db->CreateRelationship(h.posts, user_ids[t.poster_uid],
                               tweet_ids[t.tid])
            .status());
  }
  for (const auto& [re, orig] : dataset.retweets) {
    MBQ_RETURN_IF_ERROR(
        db->CreateRelationship(h.retweets, tweet_ids[re], tweet_ids[orig])
            .status());
  }
  for (const auto& [tid, uid] : dataset.mentions) {
    MBQ_RETURN_IF_ERROR(
        db->CreateRelationship(h.mentions, tweet_ids[tid], user_ids[uid])
            .status());
  }
  for (const auto& [tid, hid] : dataset.tags) {
    MBQ_RETURN_IF_ERROR(
        db->CreateRelationship(h.tags, tweet_ids[tid], hashtag_ids[hid])
            .status());
  }

  // The paper's indexes: "indexes on all unique node identifiers", plus
  // the ones the selection and co-occurrence queries need.
  MBQ_RETURN_IF_ERROR(db->CreateIndex(h.user, h.uid, /*unique=*/true));
  MBQ_RETURN_IF_ERROR(db->CreateIndex(h.tweet, h.tid, /*unique=*/true));
  MBQ_RETURN_IF_ERROR(db->CreateIndex(h.hashtag, h.hid, /*unique=*/true));
  MBQ_RETURN_IF_ERROR(db->CreateIndex(h.hashtag, h.tag, /*unique=*/true));
  MBQ_RETURN_IF_ERROR(
      db->CreateIndex(h.user, h.followers_count, /*unique=*/false));
  MBQ_RETURN_IF_ERROR(db->ComputeDenseNodes().status());
  MBQ_RETURN_IF_ERROR(db->Flush());
  return h;
}

Result<BitmapHandles> ResolveBitmapHandles(const bitmapstore::Graph& graph) {
  BitmapHandles h;
  MBQ_ASSIGN_OR_RETURN(h.user, graph.FindType(ns::kUser));
  MBQ_ASSIGN_OR_RETURN(h.tweet, graph.FindType(ns::kTweet));
  MBQ_ASSIGN_OR_RETURN(h.hashtag, graph.FindType(ns::kHashtag));
  MBQ_ASSIGN_OR_RETURN(h.follows, graph.FindType(ns::kFollows));
  MBQ_ASSIGN_OR_RETURN(h.posts, graph.FindType(ns::kPosts));
  MBQ_ASSIGN_OR_RETURN(h.retweets, graph.FindType(ns::kRetweets));
  MBQ_ASSIGN_OR_RETURN(h.mentions, graph.FindType(ns::kMentions));
  MBQ_ASSIGN_OR_RETURN(h.tags, graph.FindType(ns::kTags));
  MBQ_ASSIGN_OR_RETURN(h.uid, graph.FindAttribute(h.user, ns::kUid));
  MBQ_ASSIGN_OR_RETURN(h.screen_name,
                       graph.FindAttribute(h.user, ns::kScreenName));
  MBQ_ASSIGN_OR_RETURN(h.followers_count,
                       graph.FindAttribute(h.user, ns::kFollowersCount));
  MBQ_ASSIGN_OR_RETURN(h.tid, graph.FindAttribute(h.tweet, ns::kTid));
  MBQ_ASSIGN_OR_RETURN(h.text, graph.FindAttribute(h.tweet, ns::kText));
  MBQ_ASSIGN_OR_RETURN(h.hid, graph.FindAttribute(h.hashtag, ns::kHid));
  MBQ_ASSIGN_OR_RETURN(h.tag, graph.FindAttribute(h.hashtag, ns::kTag));
  return h;
}

Result<BitmapHandles> LoadIntoBitmapstore(const Dataset& dataset,
                                          bitmapstore::Graph* graph) {
  using bitmapstore::AttributeKind;
  using common::ValueType;
  BitmapHandles h;
  MBQ_ASSIGN_OR_RETURN(h.user, graph->NewNodeType(ns::kUser));
  MBQ_ASSIGN_OR_RETURN(h.tweet, graph->NewNodeType(ns::kTweet));
  MBQ_ASSIGN_OR_RETURN(h.hashtag, graph->NewNodeType(ns::kHashtag));
  MBQ_ASSIGN_OR_RETURN(h.follows, graph->NewEdgeType(ns::kFollows));
  MBQ_ASSIGN_OR_RETURN(h.posts, graph->NewEdgeType(ns::kPosts));
  MBQ_ASSIGN_OR_RETURN(h.retweets, graph->NewEdgeType(ns::kRetweets));
  MBQ_ASSIGN_OR_RETURN(h.mentions, graph->NewEdgeType(ns::kMentions));
  MBQ_ASSIGN_OR_RETURN(h.tags, graph->NewEdgeType(ns::kTags));
  MBQ_ASSIGN_OR_RETURN(
      h.uid, graph->NewAttribute(h.user, ns::kUid, ValueType::kInt,
                                 AttributeKind::kUnique));
  MBQ_ASSIGN_OR_RETURN(
      h.screen_name, graph->NewAttribute(h.user, ns::kScreenName,
                                         ValueType::kString,
                                         AttributeKind::kBasic));
  MBQ_ASSIGN_OR_RETURN(
      h.followers_count,
      graph->NewAttribute(h.user, ns::kFollowersCount, ValueType::kInt,
                          AttributeKind::kIndexed));
  MBQ_ASSIGN_OR_RETURN(
      h.tid, graph->NewAttribute(h.tweet, ns::kTid, ValueType::kInt,
                                 AttributeKind::kUnique));
  MBQ_ASSIGN_OR_RETURN(
      h.text, graph->NewAttribute(h.tweet, ns::kText, ValueType::kString,
                                  AttributeKind::kBasic));
  MBQ_ASSIGN_OR_RETURN(
      h.hid, graph->NewAttribute(h.hashtag, ns::kHid, ValueType::kInt,
                                 AttributeKind::kUnique));
  MBQ_ASSIGN_OR_RETURN(
      h.tag, graph->NewAttribute(h.hashtag, ns::kTag, ValueType::kString,
                                 AttributeKind::kUnique));

  std::unordered_map<int64_t, bitmapstore::Oid> user_ids;
  std::unordered_map<int64_t, bitmapstore::Oid> tweet_ids;
  std::unordered_map<int64_t, bitmapstore::Oid> hashtag_ids;
  user_ids.reserve(dataset.users.size());
  tweet_ids.reserve(dataset.tweets.size());

  for (const auto& u : dataset.users) {
    MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid id, graph->NewNode(h.user));
    MBQ_RETURN_IF_ERROR(graph->SetAttribute(id, h.uid, Value::Int(u.uid)));
    MBQ_RETURN_IF_ERROR(
        graph->SetAttribute(id, h.screen_name, Value::String(u.screen_name)));
    MBQ_RETURN_IF_ERROR(graph->SetAttribute(id, h.followers_count,
                                            Value::Int(u.followers_count)));
    user_ids[u.uid] = id;
  }
  for (const auto& t : dataset.tweets) {
    MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid id, graph->NewNode(h.tweet));
    MBQ_RETURN_IF_ERROR(graph->SetAttribute(id, h.tid, Value::Int(t.tid)));
    MBQ_RETURN_IF_ERROR(
        graph->SetAttribute(id, h.text, Value::String(t.text)));
    tweet_ids[t.tid] = id;
  }
  for (const auto& ht : dataset.hashtags) {
    MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid id, graph->NewNode(h.hashtag));
    MBQ_RETURN_IF_ERROR(graph->SetAttribute(id, h.hid, Value::Int(ht.hid)));
    MBQ_RETURN_IF_ERROR(graph->SetAttribute(id, h.tag,
                                            Value::String(ht.tag)));
    hashtag_ids[ht.hid] = id;
  }

  for (const auto& [src, dst] : dataset.follows) {
    MBQ_RETURN_IF_ERROR(
        graph->NewEdge(h.follows, user_ids[src], user_ids[dst]).status());
  }
  for (const auto& t : dataset.tweets) {
    MBQ_RETURN_IF_ERROR(
        graph->NewEdge(h.posts, user_ids[t.poster_uid], tweet_ids[t.tid])
            .status());
  }
  for (const auto& [re, orig] : dataset.retweets) {
    MBQ_RETURN_IF_ERROR(
        graph->NewEdge(h.retweets, tweet_ids[re], tweet_ids[orig]).status());
  }
  for (const auto& [tid, uid] : dataset.mentions) {
    MBQ_RETURN_IF_ERROR(
        graph->NewEdge(h.mentions, tweet_ids[tid], user_ids[uid]).status());
  }
  for (const auto& [tid, hid] : dataset.tags) {
    MBQ_RETURN_IF_ERROR(
        graph->NewEdge(h.tags, tweet_ids[tid], hashtag_ids[hid]).status());
  }
  MBQ_RETURN_IF_ERROR(graph->Flush());
  return h;
}

nodestore::ImportSpec BuildImportSpec(bool with_retweets) {
  nodestore::ImportSpec spec;
  spec.nodes.push_back({CsvFiles::kUsers, ns::kUser,
                        {ns::kUid, ns::kScreenName, ns::kFollowersCount}});
  spec.nodes.push_back({CsvFiles::kTweets, ns::kTweet, {ns::kTid, ns::kText}});
  spec.nodes.push_back(
      {CsvFiles::kHashtags, ns::kHashtag, {ns::kHid, ns::kTag}});
  spec.rels.push_back(
      {CsvFiles::kFollows, ns::kFollows, ns::kUser, ns::kUser});
  spec.rels.push_back({CsvFiles::kPosts, ns::kPosts, ns::kUser, ns::kTweet});
  if (with_retweets) {
    spec.rels.push_back(
        {CsvFiles::kRetweets, ns::kRetweets, ns::kTweet, ns::kTweet});
  }
  spec.rels.push_back(
      {CsvFiles::kMentions, ns::kMentions, ns::kTweet, ns::kUser});
  spec.rels.push_back({CsvFiles::kTags, ns::kTags, ns::kTweet, ns::kHashtag});
  spec.indexes.push_back({ns::kUser, ns::kUid, true});
  spec.indexes.push_back({ns::kTweet, ns::kTid, true});
  spec.indexes.push_back({ns::kHashtag, ns::kHid, true});
  spec.indexes.push_back({ns::kHashtag, ns::kTag, true});
  spec.indexes.push_back({ns::kUser, ns::kFollowersCount, false});
  return spec;
}

std::string BuildLoadScript(bool with_retweets) {
  std::string s;
  s += "CREATE NODE user\n";
  s += "CREATE NODE tweet\n";
  s += "CREATE NODE hashtag\n";
  s += "CREATE EDGE follows\n";
  s += "CREATE EDGE posts\n";
  s += "CREATE EDGE retweets\n";
  s += "CREATE EDGE mentions\n";
  s += "CREATE EDGE tags\n";
  s += "ATTRIBUTE user.uid INT UNIQUE\n";
  s += "ATTRIBUTE user.screen_name STRING BASIC\n";
  s += "ATTRIBUTE user.followers_count INT INDEXED\n";
  s += "ATTRIBUTE tweet.tid INT UNIQUE\n";
  s += "ATTRIBUTE tweet.text STRING BASIC\n";
  s += "ATTRIBUTE hashtag.hid INT UNIQUE\n";
  s += "ATTRIBUTE hashtag.tag STRING UNIQUE\n";
  s += "LOAD NODES \"users.csv\" INTO user COLUMNS uid, screen_name, "
      "followers_count\n";
  s += "LOAD NODES \"tweets.csv\" INTO tweet COLUMNS tid, text\n";
  s += "LOAD NODES \"hashtags.csv\" INTO hashtag COLUMNS hid, tag\n";
  s += "LOAD EDGES \"follows.csv\" INTO follows FROM user.uid TO user.uid\n";
  s += "LOAD EDGES \"posts.csv\" INTO posts FROM user.uid TO tweet.tid\n";
  if (with_retweets) {
    s += "LOAD EDGES \"retweets.csv\" INTO retweets FROM tweet.tid TO "
        "tweet.tid\n";
  }
  s += "LOAD EDGES \"mentions.csv\" INTO mentions FROM tweet.tid TO "
      "user.uid\n";
  s += "LOAD EDGES \"tags.csv\" INTO tags FROM tweet.tid TO hashtag.hid\n";
  return s;
}

}  // namespace mbq::twitter
