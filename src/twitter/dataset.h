#ifndef MBQ_TWITTER_DATASET_H_
#define MBQ_TWITTER_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace mbq::twitter {

/// Parameters of the synthetic Twitter crawl. Defaults mirror the shape
/// of the paper's dataset (Li et al. KDD'12, Table 1): ~11.5 follows per
/// user, roughly one tweet per user overall (a ~5% active subset posting
/// 20 tweets each, the paper's per-user retention), 0.46 mentions and
/// 0.30 tags per tweet, and one hashtag per ~40 users. Scale with
/// `num_users`; every ratio tracks it.
struct DatasetSpec {
  uint64_t num_users = 20000;
  double follows_per_user = 11.5;
  double active_user_fraction = 0.05;
  uint32_t tweets_per_active_user = 20;
  double mentions_per_tweet = 0.46;
  double tags_per_tweet = 0.30;
  /// Fraction of tweets that are retweets of an earlier tweet. The
  /// paper's crawl lacked retweet information (its retweets edges are
  /// missing); the generator can supply them, enabling the derived
  /// queries of §3.3 — set to 0 for strict paper parity.
  double retweet_fraction = 0.1;
  /// Popularity skew of follow targets / mention targets / hashtags.
  double follow_zipf = 0.9;
  double mention_zipf = 0.9;
  double hashtag_zipf = 1.0;
  uint64_t seed = 42;
};

/// A fully materialized synthetic crawl.
struct Dataset {
  struct User {
    int64_t uid;
    std::string screen_name;
    int64_t followers_count;  // in-degree in the follows graph
  };
  struct Tweet {
    int64_t tid;
    int64_t poster_uid;
    std::string text;
  };
  struct Hashtag {
    int64_t hid;
    std::string tag;
  };

  std::vector<User> users;
  std::vector<Tweet> tweets;
  std::vector<Hashtag> hashtags;
  std::vector<std::pair<int64_t, int64_t>> follows;   // uid -> uid
  std::vector<std::pair<int64_t, int64_t>> mentions;  // tid -> uid
  std::vector<std::pair<int64_t, int64_t>> tags;      // tid -> hid
  std::vector<std::pair<int64_t, int64_t>> retweets;  // tid -> original tid

  uint64_t NumNodes() const {
    return users.size() + tweets.size() + hashtags.size();
  }
  uint64_t NumEdges() const {
    // posts edges are implicit: one per tweet.
    return follows.size() + tweets.size() + mentions.size() + tags.size() +
           retweets.size();
  }
};

/// Generates a dataset deterministically from `spec.seed`.
Dataset GenerateDataset(const DatasetSpec& spec);

/// Prints the Table 1 shape: per-type node and relationship counts.
struct DatasetCounts {
  uint64_t users, tweets, hashtags;
  uint64_t follows, posts, retweets, mentions, tags;
  uint64_t total_nodes, total_edges;
};
DatasetCounts CountDataset(const Dataset& dataset);

}  // namespace mbq::twitter

#endif  // MBQ_TWITTER_DATASET_H_
