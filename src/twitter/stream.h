#ifndef MBQ_TWITTER_STREAM_H_
#define MBQ_TWITTER_STREAM_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "twitter/dataset.h"
#include "util/rng.h"

namespace mbq::twitter {

/// A single microblog event. The paper's future work asks to "simulate
/// the true real-time nature of microblogs" by generating the graph
/// on-the-fly with new incoming users, tweets and follow relationships;
/// this is that event stream.
struct StreamEvent {
  enum class Kind : uint8_t {
    kNewUser,     // uid
    kNewFollow,   // src_uid -> dst_uid
    kUnfollow,    // src_uid -x- dst_uid (an existing follow)
    kNewTweet,    // tid by poster_uid, with text
    kNewMention,  // tid mentions dst_uid
    kNewTag,      // tid tagged with hashtag text
    kNewRetweet,  // tid retweets orig_tid
  };

  Kind kind;
  int64_t uid = -1;       // kNewUser / poster of kNewTweet
  int64_t src_uid = -1;   // kNewFollow / kUnfollow
  int64_t dst_uid = -1;   // kNewFollow / kUnfollow / kNewMention target
  int64_t tid = -1;       // tweet id for tweet-scoped events
  int64_t orig_tid = -1;  // kNewRetweet
  std::string text;       // tweet text / hashtag text
};

/// Relative frequency of each event kind per generated event.
struct StreamMix {
  double new_user = 0.02;
  double new_follow = 0.45;
  double unfollow = 0.03;
  double new_tweet = 0.30;
  double new_mention = 0.12;
  double new_tag = 0.06;
  double new_retweet = 0.02;
};

/// Generates a deterministic, referentially consistent update stream on
/// top of an existing dataset: every follow/mention references a user
/// that exists at that point of the stream, every tweet-scoped event a
/// tweet that exists, and every unfollow an edge that is present.
class UpdateStream {
 public:
  /// Events extend `base` (its users/tweets/hashtags seed the id space).
  UpdateStream(const Dataset& base, StreamMix mix, uint64_t seed);

  /// Generates the next event.
  StreamEvent Next();

  /// Convenience: a batch of `n` events.
  std::vector<StreamEvent> Take(size_t n);

  int64_t num_users() const { return next_uid_; }
  int64_t num_tweets() const { return next_tid_; }

 private:
  int64_t PickUser();
  int64_t PickTweet();

  StreamMix mix_;
  Rng rng_;
  ZipfSampler user_popularity_;
  int64_t next_uid_;
  int64_t next_tid_;
  int64_t num_hashtags_;
  /// Live follow edges eligible for unfollow (sampled reservoir).
  std::vector<std::pair<int64_t, int64_t>> live_follows_;
  /// Every follow edge in existence — a user cannot follow twice, so
  /// kNewFollow events never duplicate an existing edge.
  std::unordered_set<uint64_t> follow_keys_;
};

}  // namespace mbq::twitter

#endif  // MBQ_TWITTER_STREAM_H_
