#include "twitter/dataset.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace mbq::twitter {

namespace {

const char* const kWords[] = {
    "graph",   "query",   "data",    "tweet",   "social",  "stream",
    "follow",  "network", "index",   "engine",  "latency", "cache",
    "cypher",  "bitmap",  "node",    "edge",    "path",    "degree",
    "mention", "trend",   "topic",   "viral",   "post",    "update",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

std::string MakeTweetText(Rng& rng, int64_t tid) {
  std::string text = "t" + std::to_string(tid) + ":";
  uint64_t words = 4 + rng.NextBounded(12);
  for (uint64_t i = 0; i < words; ++i) {
    text += ' ';
    text += kWords[rng.NextBounded(kNumWords)];
  }
  return text;
}

}  // namespace

Dataset GenerateDataset(const DatasetSpec& spec) {
  MBQ_CHECK(spec.num_users > 0);
  Rng rng(spec.seed);
  Dataset out;

  // ------------------------------------------------------------- Users
  out.users.resize(spec.num_users);
  for (uint64_t i = 0; i < spec.num_users; ++i) {
    out.users[i].uid = static_cast<int64_t>(i);
    out.users[i].screen_name = "user_" + std::to_string(i);
    out.users[i].followers_count = 0;
  }

  // ----------------------------------------------------------- Follows
  // Target popularity is Zipf over a random permutation of users (so uid
  // order doesn't encode popularity); per-user out-degree is exponential-
  // ish around the mean, giving the long tail the queries stress.
  std::vector<uint64_t> popularity_rank(spec.num_users);
  for (uint64_t i = 0; i < spec.num_users; ++i) popularity_rank[i] = i;
  rng.Shuffle(popularity_rank);
  ZipfSampler follow_targets(spec.num_users, spec.follow_zipf);

  out.follows.reserve(static_cast<size_t>(
      static_cast<double>(spec.num_users) * spec.follows_per_user));
  std::unordered_set<uint64_t> seen;
  for (uint64_t u = 0; u < spec.num_users; ++u) {
    // Geometric-ish out-degree with the configured mean.
    double mean = spec.follows_per_user;
    uint64_t degree = 0;
    while (rng.NextDouble() < mean / (mean + 1.0) &&
           degree < spec.num_users - 1) {
      ++degree;
    }
    seen.clear();
    for (uint64_t k = 0; k < degree; ++k) {
      uint64_t target = popularity_rank[follow_targets.Sample(rng)];
      if (target == u || !seen.insert(target).second) continue;
      out.follows.emplace_back(static_cast<int64_t>(u),
                               static_cast<int64_t>(target));
      ++out.users[target].followers_count;
    }
  }

  // ------------------------------------------------------------ Tweets
  uint64_t active_users = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(spec.num_users) *
                               spec.active_user_fraction));
  // Active users are the most-followed ones plus a random sample — in
  // real crawls posting activity correlates with popularity.
  std::vector<uint64_t> posters;
  posters.reserve(active_users);
  for (uint64_t i = 0; i < active_users; ++i) {
    if (i < active_users / 2) {
      posters.push_back(popularity_rank[i]);  // most popular ranks
    } else {
      posters.push_back(rng.NextBounded(spec.num_users));
    }
  }
  std::sort(posters.begin(), posters.end());
  posters.erase(std::unique(posters.begin(), posters.end()), posters.end());

  int64_t next_tid = 0;
  for (uint64_t poster : posters) {
    for (uint32_t t = 0; t < spec.tweets_per_active_user; ++t) {
      Dataset::Tweet tweet;
      tweet.tid = next_tid++;
      tweet.poster_uid = static_cast<int64_t>(poster);
      tweet.text = MakeTweetText(rng, tweet.tid);
      out.tweets.push_back(std::move(tweet));
    }
  }

  // ---------------------------------------------------------- Hashtags
  uint64_t num_hashtags = std::max<uint64_t>(8, spec.num_users / 40);
  out.hashtags.resize(num_hashtags);
  for (uint64_t h = 0; h < num_hashtags; ++h) {
    out.hashtags[h].hid = static_cast<int64_t>(h);
    out.hashtags[h].tag =
        std::string(kWords[h % kNumWords]) + std::to_string(h);
  }
  ZipfSampler hashtag_picker(num_hashtags, spec.hashtag_zipf);
  ZipfSampler mention_targets(spec.num_users, spec.mention_zipf);

  // ----------------------------------------------- Mentions, tags, RTs
  // Mentions and tags are bursty: most tweets carry none, but a tweet
  // that has any tends to have several (group mentions, hashtag storms).
  // This is what creates the co-occurrence pairs Q3.1/Q3.2 count — with
  // at most one mention per tweet the co-mention query would be empty.
  constexpr double kBurstMean = 2.4;          // mean size of a burst
  constexpr double kBurstContinue = 1.0 - 1.0 / kBurstMean;
  auto burst_count = [&rng](double mean_per_tweet) -> uint64_t {
    if (!rng.NextBool(mean_per_tweet / kBurstMean)) return 0;
    uint64_t count = 1;
    while (rng.NextBool(kBurstContinue) && count < 16) ++count;
    return count;
  };
  for (const Dataset::Tweet& tweet : out.tweets) {
    uint64_t num_mentions = burst_count(spec.mentions_per_tweet);
    for (uint64_t k = 0; k < num_mentions; ++k) {
      uint64_t target = popularity_rank[mention_targets.Sample(rng)];
      if (static_cast<int64_t>(target) != tweet.poster_uid) {
        out.mentions.emplace_back(tweet.tid, static_cast<int64_t>(target));
      }
    }
    uint64_t num_tags = burst_count(spec.tags_per_tweet);
    for (uint64_t k = 0; k < num_tags; ++k) {
      uint64_t h = hashtag_picker.Sample(rng);
      out.tags.emplace_back(tweet.tid, static_cast<int64_t>(h));
    }
    if (tweet.tid > 0 && rng.NextBool(spec.retweet_fraction)) {
      int64_t original = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(tweet.tid)));
      out.retweets.emplace_back(tweet.tid, original);
    }
  }

  // De-duplicate mentions/tags per tweet (multigraph allows them, but the
  // paper's reconstruction from text yields unique pairs).
  auto dedupe = [](std::vector<std::pair<int64_t, int64_t>>& edges) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  };
  dedupe(out.mentions);
  dedupe(out.tags);

  return out;
}

DatasetCounts CountDataset(const Dataset& dataset) {
  DatasetCounts c;
  c.users = dataset.users.size();
  c.tweets = dataset.tweets.size();
  c.hashtags = dataset.hashtags.size();
  c.follows = dataset.follows.size();
  c.posts = dataset.tweets.size();
  c.retweets = dataset.retweets.size();
  c.mentions = dataset.mentions.size();
  c.tags = dataset.tags.size();
  c.total_nodes = c.users + c.tweets + c.hashtags;
  c.total_edges = c.follows + c.posts + c.retweets + c.mentions + c.tags;
  return c;
}

}  // namespace mbq::twitter
