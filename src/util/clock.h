#ifndef MBQ_UTIL_CLOCK_H_
#define MBQ_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mbq {

/// Time source abstraction. The storage substrate charges simulated I/O
/// latency to a VirtualClock so that cache-behaviour experiments are
/// deterministic and laptop-scale, while the workload driver measures real
/// wall time with a WallClock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds since an arbitrary epoch.
  virtual uint64_t NowNanos() const = 0;

  /// Advances the clock by `nanos`. Wall clocks sleep-free no-op this in
  /// favour of real time passing; virtual clocks add it to their counter.
  virtual void AdvanceNanos(uint64_t nanos) = 0;
};

/// Reads the steady (monotonic) system clock; AdvanceNanos is a no-op.
class WallClock : public Clock {
 public:
  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void AdvanceNanos(uint64_t) override {}
};

/// A counter that only moves when explicitly advanced. Used by the
/// simulated disk to model HDD latency deterministically. Atomic so
/// benches can read SimulatedIoNanos while reader threads charge I/O.
class VirtualClock : public Clock {
 public:
  uint64_t NowNanos() const override {
    return now_nanos_.load(std::memory_order_relaxed);
  }
  void AdvanceNanos(uint64_t nanos) override {
    now_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_nanos_{0};
};

/// Measures elapsed time against a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock)
      : clock_(clock), start_nanos_(clock.NowNanos()) {}

  void Restart() { start_nanos_ = clock_.NowNanos(); }
  uint64_t ElapsedNanos() const { return clock_.NowNanos() - start_nanos_; }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  const Clock& clock_;
  uint64_t start_nanos_;
};

}  // namespace mbq

#endif  // MBQ_UTIL_CLOCK_H_
