#ifndef MBQ_UTIL_THREAD_ANNOTATIONS_H_
#define MBQ_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety annotations (docs/STATIC_ANALYSIS.md, "Concurrency
// analysis"). Dependency-free: on Clang with -Wthread-safety the macros
// expand to the capability attributes and every GUARDED_BY field and
// REQUIRES contract becomes a compile-time property; on every other
// compiler they expand to nothing, so the annotated tree builds
// identically under GCC.
//
// The annotated mutex types live in util/lock_rank.h (RankedMutex,
// RankedSharedMutex and their guards); annotate data with:
//
//   util::RankedMutex mu_{util::LockRank::kStore, "mystore.mu"};
//   std::vector<Row> rows_ MBQ_GUARDED_BY(mu_);
//   void CompactLocked() MBQ_REQUIRES(mu_);
//
// and lock through util::ScopedLock / util::RankedLock /
// util::SharedScopedLock so both the static analysis and the runtime
// lock-rank checker observe every acquisition.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MBQ_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MBQ_THREAD_ANNOTATION
#define MBQ_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex", "shared_mutex", "role").
#define MBQ_CAPABILITY(x) MBQ_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (std::lock_guard shape).
#define MBQ_SCOPED_CAPABILITY MBQ_THREAD_ANNOTATION(scoped_lockable)

/// The field or method may only be accessed while holding the given
/// capability (exclusively for writes, at least shared for reads).
#define MBQ_GUARDED_BY(x) MBQ_THREAD_ANNOTATION(guarded_by(x))

/// Like MBQ_GUARDED_BY but for the data a pointer points to.
#define MBQ_PT_GUARDED_BY(x) MBQ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that this mutex must be acquired after / before the listed
/// mutexes (a static cousin of the runtime lock-rank order).
#define MBQ_ACQUIRED_AFTER(...) MBQ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define MBQ_ACQUIRED_BEFORE(...) \
  MBQ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// The function must be called with the listed capabilities held
/// (exclusive / shared), and does not release them.
#define MBQ_REQUIRES(...) \
  MBQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MBQ_REQUIRES_SHARED(...) \
  MBQ_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (and the caller must not hold it).
#define MBQ_ACQUIRE(...) MBQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MBQ_ACQUIRE_SHARED(...) \
  MBQ_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (which the caller must hold).
#define MBQ_RELEASE(...) MBQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MBQ_RELEASE_SHARED(...) \
  MBQ_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define MBQ_RELEASE_GENERIC(...) \
  MBQ_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define MBQ_TRY_ACQUIRE(...) \
  MBQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MBQ_TRY_ACQUIRE_SHARED(...) \
  MBQ_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// The function must be called with the listed capabilities NOT held
/// (deadlock guard for self-locking public entry points).
#define MBQ_EXCLUDES(...) MBQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (for the analysis only) that the capability is held — used on
/// runtime-checked paths the analysis cannot follow.
#define MBQ_ASSERT_CAPABILITY(x) MBQ_THREAD_ANNOTATION(assert_capability(x))
#define MBQ_ASSERT_SHARED_CAPABILITY(x) \
  MBQ_THREAD_ANNOTATION(assert_shared_capability(x))

/// The function returns a reference to the given capability.
#define MBQ_RETURN_CAPABILITY(x) MBQ_THREAD_ANNOTATION(lock_returned(x))

/// Turns the analysis off for one function — reserved for code that is
/// correct but beyond the analysis (lock ownership transferred through
/// objects, locks released around syscalls). Every use carries a comment
/// saying why.
#define MBQ_NO_THREAD_SAFETY_ANALYSIS \
  MBQ_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // MBQ_UTIL_THREAD_ANNOTATIONS_H_
