#ifndef MBQ_UTIL_STRING_UTIL_H_
#define MBQ_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace mbq {

/// Splits `text` on `sep`, keeping empty fields. "a,,b" -> {"a", "", "b"}.
std::vector<std::string_view> SplitString(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view TrimString(std::string_view text);

/// Parses a base-10 signed integer occupying the whole of `text`.
Result<int64_t> ParseInt64(std::string_view text);

/// Parses a base-10 double occupying the whole of `text`.
Result<double> ParseDouble(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string ToLowerAscii(std::string_view text);

/// Joins `parts` with `sep` between elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Escapes a CSV field (quotes it if it contains separator/quote/newline).
std::string CsvEscape(std::string_view field, char sep = ',');

}  // namespace mbq

#endif  // MBQ_UTIL_STRING_UTIL_H_
