#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace mbq {

namespace {

// SplitMix64, used to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s));
}

double ZipfSampler::H(double x) const {
  // Integral of 1/x^s; special-cased for s == 1.
  if (std::fabs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::fabs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  for (;;) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= threshold_) return k - 1;
    if (u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
      return k - 1;
    }
  }
}

}  // namespace mbq
