#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace mbq {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_log_level)) return;
  std::string text = stream_.str();
  std::fprintf(stderr, "%s\n", text.c_str());
}

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "[FATAL %s:%d] CHECK failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace mbq
