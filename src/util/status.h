#ifndef MBQ_UTIL_STATUS_H_
#define MBQ_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace mbq {

/// Error categories used across the library. Mirrors the coarse taxonomy
/// used by Arrow/RocksDB style status objects.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kIoError,
  kNotImplemented,
  kFailedPrecondition,
  kAborted,
  kInternal,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that can fail. The library does not throw
/// exceptions; every fallible public operation returns a Status or a
/// Result<T> (see result.h).
///
/// Status is cheap to copy in the OK case (a single pointer compare against
/// null); error states carry a heap-allocated message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<Rep> rep_;
};

}  // namespace mbq

/// Propagates a non-OK Status from the enclosing function.
#define MBQ_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::mbq::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // MBQ_UTIL_STATUS_H_
