#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace mbq {

std::vector<std::string_view> SplitString(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimString(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Result<int64_t> ParseInt64(std::string_view text) {
  int64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc() || ptr != last || text.empty()) {
    return Status::InvalidArgument("not an integer: '" + std::string(text) +
                                   "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  // std::from_chars for double is unreliable across libstdc++ versions for
  // all formats; strtod on a bounded copy is simpler and correct.
  if (text.empty()) return Status::InvalidArgument("empty double");
  std::string buf(text);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string CsvEscape(std::string_view field, char sep) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace mbq
