#ifndef MBQ_UTIL_RNG_H_
#define MBQ_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mbq {

/// Deterministic 64-bit PRNG (xoshiro256**). All randomized behaviour in
/// the library (dataset generation, workload parameter sampling, simulated
/// disk jitter) flows through this type so runs are reproducible from a
/// single seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Samples from a Zipf(s, n) distribution over ranks {0, ..., n-1} using
/// the rejection-inversion method of Hörmann & Derflinger, O(1) per draw.
/// Rank 0 is the most probable element.
///
/// Twitter follower counts, hashtag popularity and mention frequency are
/// all heavy-tailed; the paper's dataset (Li et al. KDD'12) exhibits the
/// same skew, which is what drives the query-cost spread in Figure 4.
class ZipfSampler {
 public:
  /// `n` elements with exponent `s` (> 0). s near 1 matches social graphs.
  ZipfSampler(uint64_t n, double s);

  /// Draws a rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace mbq

#endif  // MBQ_UTIL_RNG_H_
