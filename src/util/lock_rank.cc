#include "util/lock_rank.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mbq::util {
namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("MBQ_LOCK_RANK");
  if (env != nullptr && std::strcmp(env, "0") == 0) return false;
#if defined(MBQ_LOCK_RANK_DISABLE)
  return false;
#else
  return true;
#endif
}()};
std::atomic<bool> g_abort{true};
std::atomic<uint64_t> g_checks{0};
std::atomic<uint64_t> g_violations{0};

/// Per-thread stack of held ranked locks. Fixed-size: the hierarchy has
/// 12 ranks and strict descent bounds real depth at 12; a deeper stack
/// means a violation already fired in count-only mode, so overflow just
/// stops recording.
struct Held {
  LockRank rank;
  const char* name;
};
constexpr size_t kMaxHeld = 32;
thread_local Held t_held[kMaxHeld];
thread_local size_t t_depth = 0;

}  // namespace

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kRing:
      return "kRing";
    case LockRank::kDriver:
      return "kDriver";
    case LockRank::kPool:
      return "kPool";
    case LockRank::kDisk:
      return "kDisk";
    case LockRank::kBufferCache:
      return "kBufferCache";
    case LockRank::kCache:
      return "kCache";
    case LockRank::kObs:
      return "kObs";
    case LockRank::kStore:
      return "kStore";
    case LockRank::kWal:
      return "kWal";
    case LockRank::kSnapshot:
      return "kSnapshot";
    case LockRank::kSession:
      return "kSession";
    case LockRank::kRpc:
      return "kRpc";
  }
  return "?";
}

bool LockRankChecksEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void SetLockRankChecksEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void SetLockRankAbortOnViolation(bool abort_on_violation) {
  g_abort.store(abort_on_violation, std::memory_order_relaxed);
}

uint64_t LockRankChecks() { return g_checks.load(std::memory_order_relaxed); }

uint64_t LockRankViolations() {
  return g_violations.load(std::memory_order_relaxed);
}

size_t LockRankHeldDepth() { return t_depth; }

namespace lockrank_internal {

#if !defined(MBQ_LOCK_RANK_DISABLE)

void OnAcquire(LockRank rank, const char* name) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  g_checks.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < t_depth; ++i) {
    if (static_cast<int>(t_held[i].rank) > static_cast<int>(rank)) continue;
    g_violations.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(
        stderr,
        "lock-rank violation: acquiring \"%s\" (rank %d %s) while holding "
        "\"%s\" (rank %d %s); acquisition order must strictly descend the "
        "hierarchy in util/lock_rank.h\n",
        name, static_cast<int>(rank), LockRankName(rank), t_held[i].name,
        static_cast<int>(t_held[i].rank), LockRankName(t_held[i].rank));
    if (g_abort.load(std::memory_order_relaxed)) std::abort();
    break;  // count-only mode: one violation per acquisition
  }
  if (t_depth < kMaxHeld) {
    t_held[t_depth].rank = rank;
    t_held[t_depth].name = name;
    ++t_depth;
  }
}

void OnRelease(LockRank rank, const char* name) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  for (size_t i = t_depth; i > 0; --i) {
    if (t_held[i - 1].rank != rank || t_held[i - 1].name != name) continue;
    for (size_t j = i - 1; j + 1 < t_depth; ++j) t_held[j] = t_held[j + 1];
    --t_depth;
    return;
  }
  // Not held by this thread: the lock's owning guard migrated here (a
  // moved ReadSnapshot/CommitGuard) or checking was toggled mid-hold.
}

#endif  // !defined(MBQ_LOCK_RANK_DISABLE)

}  // namespace lockrank_internal
}  // namespace mbq::util
