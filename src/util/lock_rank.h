#ifndef MBQ_UTIL_LOCK_RANK_H_
#define MBQ_UTIL_LOCK_RANK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace mbq::util {

/// The repo-wide lock hierarchy (docs/STATIC_ANALYSIS.md has the full
/// table with rationale). The rule is strict descent: a thread may
/// acquire a mutex only while every lock it already holds has a strictly
/// HIGHER rank — outermost locks carry the highest ranks, leaves the
/// lowest, and re-acquiring any mutex of a held rank (including the same
/// mutex, shared or exclusive) is an inversion. Acquiring up the table
/// is how deadlock cycles form; the runtime checker traps the first such
/// acquisition and names both sites.
///
/// Derived from the real nesting chains, innermost first:
///   ring < driver < pool < disk < buffer cache < cache < obs < store
///        < wal < snapshot < session < rpc
///
/// Two orderings deserve a note. The obs registry ranks ABOVE the
/// storage tier because a metrics scrape holds the registry mutex while
/// pull providers read component stats (buffer-cache shard locks, the
/// disk mutex, the driver accumulator). The WAL ranks BELOW the snapshot
/// registry because the commit protocol stages the WAL record inside the
/// exclusive commit section (WAL order == apply order, docs/WRITES.md) —
/// the WAL mutex is therefore an inner lock of a commit.
enum class LockRank : int {
  /// Introspection rings & slots (flight recorder, span ring, query
  /// table slots): recordable from any context, never call out.
  kRing = 10,
  /// Load-driver accounting; scraped by an obs provider, so it must sit
  /// below kObs.
  kDriver = 20,
  /// Thread-pool wake/queue mutexes; tasks always run with no pool lock
  /// held, so pool internals never reach back into the engine tiers.
  kPool = 30,
  /// SimulatedDisk: the single-head device model, a pure leaf under the
  /// storage tier.
  kDisk = 40,
  /// BufferCache shards: a miss reads the disk while the shard lock is
  /// held, so the shard lock must rank above kDisk.
  kBufferCache = 50,
  /// ShardedLruCache shards (result/adjacency caches): bump lock-free
  /// obs counters only, never nest further.
  kCache = 55,
  /// MetricsRegistry: Snapshot() holds it while providers walk the
  /// storage/driver tiers below.
  kObs = 60,
  /// DeltaStore journal: journaled inside the commit section; checkdb
  /// walks base-store state (buffer cache, disk) under it.
  kStore = 65,
  /// Delta WAL staging/group-commit: staged inside the commit section,
  /// hence below kSnapshot; may create obs metrics on first use.
  kWal = 70,
  /// SnapshotRegistry commit/read sections: a commit applies to the base
  /// store, stages the WAL and journals the delta while holding it.
  kSnapshot = 80,
  /// Cypher session state (plan cache, lint level): held across
  /// parse/plan, which may read the store catalogue.
  kSession = 90,
  /// RPC client exchange serialization: outermost by design — nothing
  /// in-process is ever held around a remote call.
  kRpc = 100,
};

/// Spec name of a rank ("kDisk", ...) for violation reports and docs.
const char* LockRankName(LockRank rank);

/// Runtime toggles. Checking defaults to ON wherever the machinery is
/// compiled in (everything except -DMBQ_LOCK_RANK_DISABLE=1 release
/// builds) unless the MBQ_LOCK_RANK environment variable says 0.
/// Violations abort by default, naming both sites; tests flip the abort
/// switch to count violations instead (the lockrank.violations metric).
bool LockRankChecksEnabled();
void SetLockRankChecksEnabled(bool enabled);
void SetLockRankAbortOnViolation(bool abort_on_violation);

/// Monotonic totals, exported as `lockrank.checks` / `lockrank.violations`
/// gauges by obs::MetricsRegistry::Snapshot().
uint64_t LockRankChecks();
uint64_t LockRankViolations();

/// Locks currently held by the calling thread (tests).
size_t LockRankHeldDepth();

namespace lockrank_internal {

#if !defined(MBQ_LOCK_RANK_DISABLE)
/// Pre-acquisition check: traps (or counts) an out-of-order acquisition
/// BEFORE the underlying lock call, so a would-be deadlock aborts with
/// both site names instead of hanging. Then records the hold.
void OnAcquire(LockRank rank, const char* name);
/// Drops the most recent matching hold. A miss is ignored: guard objects
/// (snapshots, commit guards) may legally migrate across threads.
void OnRelease(LockRank rank, const char* name);
#else
inline void OnAcquire(LockRank, const char*) {}
inline void OnRelease(LockRank, const char*) {}
#endif

}  // namespace lockrank_internal

/// std::mutex drop-in carrying a lock rank and a site name. Meets
/// Lockable, so std::condition_variable_any and std::unique_lock work,
/// but lock through ScopedLock / RankedLock so the Clang thread-safety
/// analysis sees the acquisition too.
class MBQ_CAPABILITY("mutex") RankedMutex {
 public:
  RankedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() MBQ_ACQUIRE() {
    lockrank_internal::OnAcquire(rank_, name_);
    mu_.lock();
  }
  void unlock() MBQ_RELEASE() {
    mu_.unlock();
    lockrank_internal::OnRelease(rank_, name_);
  }
  bool try_lock() MBQ_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockrank_internal::OnAcquire(rank_, name_);
    return true;
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// std::shared_mutex drop-in with the same rank discipline for both
/// modes: a shared acquisition must also descend the hierarchy, and no
/// reacquisition of a held mutex is allowed in either mode (shared-then-
/// exclusive self-deadlocks; shared-then-shared is UB under contention —
/// a writer queued between the two acquisitions deadlocks all three).
class MBQ_CAPABILITY("shared_mutex") RankedSharedMutex {
 public:
  RankedSharedMutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}
  RankedSharedMutex(const RankedSharedMutex&) = delete;
  RankedSharedMutex& operator=(const RankedSharedMutex&) = delete;

  void lock() MBQ_ACQUIRE() {
    lockrank_internal::OnAcquire(rank_, name_);
    mu_.lock();
  }
  void unlock() MBQ_RELEASE() {
    mu_.unlock();
    lockrank_internal::OnRelease(rank_, name_);
  }
  bool try_lock() MBQ_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockrank_internal::OnAcquire(rank_, name_);
    return true;
  }

  void lock_shared() MBQ_ACQUIRE_SHARED() {
    lockrank_internal::OnAcquire(rank_, name_);
    mu_.lock_shared();
  }
  void unlock_shared() MBQ_RELEASE_SHARED() {
    mu_.unlock_shared();
    lockrank_internal::OnRelease(rank_, name_);
  }
  bool try_lock_shared() MBQ_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    lockrank_internal::OnAcquire(rank_, name_);
    return true;
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// std::lock_guard equivalent over RankedMutex.
class MBQ_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(RankedMutex& mu) MBQ_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~ScopedLock() MBQ_RELEASE() { mu_.unlock(); }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  RankedMutex& mu_;
};

/// std::unique_lock equivalent over RankedMutex: lockable/unlockable
/// mid-scope and BasicLockable itself, so it is the lock argument for
/// std::condition_variable_any::wait (which unlocks and relocks through
/// these methods, keeping the rank bookkeeping exact across waits).
class MBQ_SCOPED_CAPABILITY RankedLock {
 public:
  explicit RankedLock(RankedMutex& mu) MBQ_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    owned_ = true;
  }
  ~RankedLock() MBQ_RELEASE() {
    if (owned_) mu_->unlock();
  }

  RankedLock(const RankedLock&) = delete;
  RankedLock& operator=(const RankedLock&) = delete;

  void lock() MBQ_ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }
  void unlock() MBQ_RELEASE() {
    owned_ = false;
    mu_->unlock();
  }
  bool owns_lock() const { return owned_; }
  RankedMutex* mutex() const { return mu_; }

 private:
  RankedMutex* mu_;
  bool owned_ = false;
};

/// Shared-mode std::lock_guard equivalent over RankedSharedMutex.
class MBQ_SCOPED_CAPABILITY SharedScopedLock {
 public:
  explicit SharedScopedLock(RankedSharedMutex& mu) MBQ_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedScopedLock() MBQ_RELEASE_GENERIC() { mu_.unlock_shared(); }

  SharedScopedLock(const SharedScopedLock&) = delete;
  SharedScopedLock& operator=(const SharedScopedLock&) = delete;

 private:
  RankedSharedMutex& mu_;
};

/// Exclusive-mode std::lock_guard equivalent over RankedSharedMutex.
class MBQ_SCOPED_CAPABILITY ExclusiveScopedLock {
 public:
  explicit ExclusiveScopedLock(RankedSharedMutex& mu) MBQ_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock();
  }
  ~ExclusiveScopedLock() MBQ_RELEASE() { mu_.unlock(); }

  ExclusiveScopedLock(const ExclusiveScopedLock&) = delete;
  ExclusiveScopedLock& operator=(const ExclusiveScopedLock&) = delete;

 private:
  RankedSharedMutex& mu_;
};

}  // namespace mbq::util

#endif  // MBQ_UTIL_LOCK_RANK_H_
