#include "util/status.h"

namespace mbq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace mbq
