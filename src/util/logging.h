#ifndef MBQ_UTIL_LOGGING_H_
#define MBQ_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace mbq {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level emitted to stderr (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Collects one log statement and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Prints the failed expression to stderr and aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

}  // namespace internal_logging
}  // namespace mbq

/// Usage: MBQ_INFO() << "imported " << n << " nodes";
#define MBQ_LOG_STREAM(level)                                    \
  ::mbq::internal_logging::LogMessage(::mbq::LogLevel::k##level, \
                                      __FILE__, __LINE__)        \
      .stream()

#define MBQ_DEBUG() MBQ_LOG_STREAM(Debug)
#define MBQ_INFO() MBQ_LOG_STREAM(Info)
#define MBQ_WARN() MBQ_LOG_STREAM(Warn)
#define MBQ_ERROR() MBQ_LOG_STREAM(Error)

/// Internal invariant check, active in all build types. Prints the failed
/// expression and aborts; used for programmer errors, never for input
/// validation (which returns Status).
#define MBQ_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::mbq::internal_logging::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                                 \
  } while (0)

#endif  // MBQ_UTIL_LOGGING_H_
