#ifndef MBQ_UTIL_RESULT_H_
#define MBQ_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace mbq {

/// Either a value of type T or a non-OK Status. Modeled on arrow::Result.
///
/// A Result constructed from an OK status is a programming error and is
/// converted to an Internal error so that callers never observe an
/// "errorless failure".
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The status: OK if a value is held.
  Status status() const { return ok() ? Status::OK() : status_; }

  /// The held value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `alternative` if this result failed.
  T value_or(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace mbq

/// Evaluates an expression returning Result<T>; assigns its value to `lhs`
/// on success, propagates the Status otherwise.
#define MBQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define MBQ_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define MBQ_ASSIGN_OR_RETURN_NAME(x, y) MBQ_ASSIGN_OR_RETURN_CONCAT(x, y)

#define MBQ_ASSIGN_OR_RETURN(lhs, rexpr) \
  MBQ_ASSIGN_OR_RETURN_IMPL(             \
      MBQ_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

#endif  // MBQ_UTIL_RESULT_H_
