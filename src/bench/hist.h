#ifndef MBQ_BENCH_HIST_H_
#define MBQ_BENCH_HIST_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>

namespace mbq::bench::driver {

/// A plain (non-atomic) log-linear latency histogram with the exact
/// bucket layout of obs::Histogram — each power-of-two segment split
/// into 32 sub-buckets, ~3% relative quantile error. Each driver client
/// thread records into its own instance; the coordinator merges them
/// after the run (Merge is exact: buckets add). Replaying a merged
/// histogram into an obs::Histogram via ForEachBucket lands every count
/// in the same bucket it came from, so the exported percentiles match.
class LatencyHistogram {
 public:
  static constexpr uint32_t kSubBits = 5;
  static constexpr uint32_t kSub = 1u << kSubBits;  // 32
  static constexpr uint32_t kNumBuckets = kSub + (64 - kSubBits) * kSub;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)] += 1;
    count_ += 1;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  void Merge(const LatencyHistogram& other) {
    for (uint32_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0 : static_cast<double>(sum_) / count_;
  }

  /// Value at quantile `q` in [0, 1], linearly interpolated within the
  /// containing bucket. 0 when empty.
  double Quantile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    double target = q * static_cast<double>(count_);
    double cum = 0;
    for (uint32_t i = 0; i < kNumBuckets; ++i) {
      uint64_t in_bucket = buckets_[i];
      if (in_bucket == 0) continue;
      if (cum + static_cast<double>(in_bucket) >= target) {
        double frac = (target - cum) / static_cast<double>(in_bucket);
        return static_cast<double>(BucketLow(i)) +
               frac * static_cast<double>(BucketWidth(i));
      }
      cum += static_cast<double>(in_bucket);
    }
    return static_cast<double>(max_);
  }

  /// Visits every non-empty bucket as (representative value, count).
  /// The representative is the bucket's inclusive lower bound.
  void ForEachBucket(
      const std::function<void(uint64_t value, uint64_t count)>& fn) const {
    for (uint32_t i = 0; i < kNumBuckets; ++i) {
      if (buckets_[i] != 0) fn(BucketLow(i), buckets_[i]);
    }
  }

 private:
  static uint32_t BucketIndex(uint64_t value) {
    if (value < kSub) return static_cast<uint32_t>(value);
    uint32_t s = 63 - static_cast<uint32_t>(std::countl_zero(value));
    uint32_t sub =
        static_cast<uint32_t>(value >> (s - kSubBits)) - kSub;  // [0, kSub)
    uint32_t index = kSub + (s - kSubBits) * kSub + sub;
    return std::min(index, kNumBuckets - 1);
  }
  static uint64_t BucketLow(uint32_t index) {
    if (index < kSub) return index;
    uint32_t seg = (index - kSub) / kSub;
    uint32_t sub = (index - kSub) % kSub;
    return static_cast<uint64_t>(kSub + sub) << seg;
  }
  static uint64_t BucketWidth(uint32_t index) {
    if (index < kSub) return 1;
    return uint64_t{1} << ((index - kSub) / kSub);
  }

  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace mbq::bench::driver

#endif  // MBQ_BENCH_HIST_H_
