#include "bench/driver.h"

#include <chrono>
#include <cmath>
#include <thread>

namespace mbq::bench::driver {

namespace {

constexpr double kNanosPerSecond = 1e9;

// A request counts as late only when it missed its intended time by
// more than this. OS sleep granularity wakes a real clock a few tens of
// microseconds past every deadline; with no (or tiny) slack, "late" reads
// 100% at any rate and carry no signal.
constexpr uint64_t kLateSlackNanos = 1000 * 1000;

uint64_t ExponentialGapNanos(Rng& rng, double mean_nanos) {
  // Inverse-CDF draw; NextDouble() < 1 keeps the log argument positive.
  double u = rng.NextDouble();
  double gap = -std::log(1.0 - u) * mean_nanos;
  return static_cast<uint64_t>(gap);
}

}  // namespace

uint64_t SteadyDriverClock::NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SteadyDriverClock::SleepUntilNanos(uint64_t deadline_nanos) {
  std::chrono::steady_clock::time_point deadline{
      std::chrono::nanoseconds(deadline_nanos)};
  if (std::chrono::steady_clock::now() >= deadline) return;
  std::this_thread::sleep_until(deadline);
}

Result<Arrival> ParseArrival(const std::string& name) {
  if (name == "uniform") return Arrival::kUniform;
  if (name == "poisson") return Arrival::kPoisson;
  return Status::InvalidArgument("unknown arrival process '" + name +
                                 "' (expected uniform|poisson)");
}

const char* ArrivalName(Arrival arrival) {
  return arrival == Arrival::kUniform ? "uniform" : "poisson";
}

struct LoadDriver::ClientResult {
  std::vector<TemplateReport> templates;  // mix order
  LatencyHistogram latency_micros;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t late = 0;
  uint64_t last_completion_nanos = 0;
  std::vector<RecordedCall> calls;
};

LoadDriver::LoadDriver(core::MicroblogEngine* engine, const WorkloadMix& mix,
                       const core::ParamUniverse& universe,
                       const DriverOptions& options, DriverClock* clock)
    : engine_(engine),
      mix_(mix),
      universe_(universe),
      options_(options),
      clock_(clock) {
  if (clock_ == nullptr) {
    owned_clock_ = std::make_unique<SteadyDriverClock>();
    clock_ = owned_clock_.get();
  }
}

void LoadDriver::RunClient(uint32_t client, ClientResult* result) {
  result->templates.resize(mix_.entries.size());
  for (size_t i = 0; i < mix_.entries.size(); ++i) {
    result->templates[i].name = mix_.entries[i].template_name;
  }

  CallStream stream(mix_, universe_, options_.seed, client);
  // The schedule rng is separate from the parameter stream so Poisson
  // gap draws never perturb which calls get issued.
  Rng schedule_rng(options_.seed * 0x9E3779B97F4A7C15ull + 0x5C4EDull +
                   client);

  const double per_client_rate = options_.rate_qps / options_.clients;
  const double mean_gap_nanos = kNanosPerSecond / per_client_rate;
  const uint64_t base = clock_->NowNanos();
  const uint64_t horizon =
      options_.duration_seconds > 0
          ? base + static_cast<uint64_t>(options_.duration_seconds *
                                         kNanosPerSecond)
          : UINT64_MAX;
  uint64_t quota = UINT64_MAX;
  if (options_.max_requests > 0) {
    quota = options_.max_requests / options_.clients +
            (client < options_.max_requests % options_.clients ? 1 : 0);
  }
  // Uniform clients are phase-shifted by one inter-arrival gap at the
  // *aggregate* rate so the superposed stream is evenly spaced, not
  // `clients` coincident bursts.
  const uint64_t phase = static_cast<uint64_t>(
      client * (kNanosPerSecond / options_.rate_qps));

  uint64_t seq = 0;
  uint64_t intended = base + phase;
  if (options_.arrival == Arrival::kPoisson) {
    intended = base + ExponentialGapNanos(schedule_rng, mean_gap_nanos);
  }
  while (seq < quota && intended < horizon) {
    // Materialize the call before sleeping: parameter generation cost
    // must not eat into the schedule.
    auto [entry_index, spec] = stream.Next();
    clock_->SleepUntilNanos(intended);
    uint64_t sent = clock_->NowNanos();
    bool late = sent > intended + kLateSlackNanos;

    Result<core::CallOutcome> outcome = core::DispatchCall(*engine_, spec);
    uint64_t done = clock_->NowNanos();
    result->last_completion_nanos =
        std::max(result->last_completion_nanos, done);

    // Coordinated-omission correction: latency is charged from the
    // intended send time, so time spent queued behind a stalled engine
    // counts against the tail.
    uint64_t latency_micros = (done - intended) / 1000;
    TemplateReport& tr = result->templates[entry_index];
    tr.requests += 1;
    result->requests += 1;
    if (late) {
      tr.late += 1;
      result->late += 1;
    }
    if (outcome.ok()) {
      tr.latency_micros.Record(latency_micros);
      result->latency_micros.Record(latency_micros);
    } else {
      tr.errors += 1;
      result->errors += 1;
    }
    if (options_.record_outcomes) {
      RecordedCall rec;
      rec.client = client;
      rec.seq = seq;
      rec.entry_index = entry_index;
      rec.spec = spec;
      rec.status = outcome.ok() ? Status::OK() : outcome.status();
      if (outcome.ok()) rec.outcome = *outcome;
      result->calls.push_back(std::move(rec));
    }

    ++seq;
    if (options_.arrival == Arrival::kPoisson) {
      intended += ExponentialGapNanos(schedule_rng, mean_gap_nanos);
    } else {
      intended = base + phase +
                 static_cast<uint64_t>(static_cast<double>(seq) *
                                       mean_gap_nanos);
    }
  }
}

Result<DriverReport> LoadDriver::Run() {
  if (engine_ == nullptr) {
    return Status::InvalidArgument("driver: engine is null");
  }
  if (mix_.entries.empty()) {
    return Status::InvalidArgument("driver: empty workload mix");
  }
  if (!(options_.rate_qps > 0)) {
    return Status::InvalidArgument("driver: rate must be > 0");
  }
  if (options_.clients == 0) {
    return Status::InvalidArgument("driver: clients must be >= 1");
  }
  if (options_.duration_seconds <= 0 && options_.max_requests == 0) {
    return Status::InvalidArgument(
        "driver: need a duration or a request cap");
  }

  const uint64_t base = clock_->NowNanos();
  std::vector<ClientResult> results(options_.clients);
  std::vector<std::thread> threads;
  threads.reserve(options_.clients);
  for (uint32_t c = 0; c < options_.clients; ++c) {
    threads.emplace_back([this, c, &results] { RunClient(c, &results[c]); });
  }
  for (std::thread& t : threads) t.join();

  DriverReport report;
  report.rate_qps = options_.rate_qps;
  report.templates.resize(mix_.entries.size());
  for (size_t i = 0; i < mix_.entries.size(); ++i) {
    report.templates[i].name = mix_.entries[i].template_name;
  }
  uint64_t last_completion = base;
  for (ClientResult& r : results) {
    report.requests += r.requests;
    report.errors += r.errors;
    report.late += r.late;
    report.latency_micros.Merge(r.latency_micros);
    for (size_t i = 0; i < report.templates.size(); ++i) {
      TemplateReport& dst = report.templates[i];
      const TemplateReport& src = r.templates[i];
      dst.requests += src.requests;
      dst.errors += src.errors;
      dst.late += src.late;
      dst.latency_micros.Merge(src.latency_micros);
    }
    last_completion = std::max(last_completion, r.last_completion_nanos);
    if (options_.record_outcomes) {
      report.calls.insert(report.calls.end(),
                          std::make_move_iterator(r.calls.begin()),
                          std::make_move_iterator(r.calls.end()));
    }
  }
  report.wall_seconds =
      static_cast<double>(last_completion - base) / kNanosPerSecond;
  report.achieved_qps = report.wall_seconds > 0
                            ? static_cast<double>(report.requests) /
                                  report.wall_seconds
                            : 0;
  return report;
}

DriverMetricsPublisher::DriverMetricsPublisher(obs::MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Default()) {
  // One provider for the publisher's whole lifetime. The registry sums
  // retained gauges across unregisters, so re-registering per Publish
  // would double-count a rate sweep's qps gauges.
  provider_ = obs::ScopedProvider(registry_, [this](obs::MetricsSink* sink) {
    util::ScopedLock lock(mu_);
    if (!has_report_) return;
    sink->Gauge("driver.qps", last_.achieved_qps, "1/s");
    sink->Gauge("driver.rate_target_qps", last_.rate_qps, "1/s");
    for (const TemplateReport& tr : last_.templates) {
      if (last_.wall_seconds > 0) {
        sink->Gauge("driver." + tr.name + ".qps",
                    static_cast<double>(tr.requests) / last_.wall_seconds,
                    "1/s");
      }
    }
  });
}

void DriverMetricsPublisher::Publish(const DriverReport& report) {
  registry_->GetCounter("driver.requests", "1", "load-driver requests issued")
      ->Inc(report.requests);
  registry_->GetCounter("driver.errors", "1", "load-driver failed requests")
      ->Inc(report.errors);
  registry_
      ->GetCounter("driver.late", "1",
                   "requests issued after their intended send time")
      ->Inc(report.late);
  auto replay = [](obs::Histogram* hist, const LatencyHistogram& src) {
    src.ForEachBucket([hist](uint64_t value, uint64_t count) {
      for (uint64_t i = 0; i < count; ++i) hist->Record(value);
    });
  };
  replay(registry_->GetHistogram(
             "driver.latency_micros", "us",
             "end-to-end latency from intended send time (CO-safe)"),
         report.latency_micros);
  for (const TemplateReport& tr : report.templates) {
    replay(registry_->GetHistogram("driver." + tr.name + ".latency_micros",
                                   "us",
                                   "per-template CO-safe latency"),
           tr.latency_micros);
  }
  util::ScopedLock lock(mu_);
  // Keep per-template rows from earlier reports visible in the gauge
  // provider only via the latest report; counters above are cumulative.
  last_ = report;
  last_.calls.clear();
  has_report_ = true;
}

}  // namespace mbq::bench::driver
