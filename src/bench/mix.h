#ifndef MBQ_BENCH_MIX_H_
#define MBQ_BENCH_MIX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/calls.h"
#include "util/result.h"
#include "util/rng.h"

namespace mbq::bench::driver {

/// Parameter distributions a mix entry can ask for.
enum class Dist {
  kUniform,  ///< uniform over the universe
  kZipf,     ///< skewed towards popular users / heavily used tags
};

/// One line of a workload mix: a query template plus its weight and
/// parameter-generator configuration. Weights are relative (they need
/// not sum to anything); the driver normalizes.
struct MixEntry {
  std::string template_name;
  double weight = 1.0;
  Dist uid_dist = Dist::kUniform;
  Dist tag_dist = Dist::kZipf;
  int64_t n = 10;          ///< top-n limit for ranking templates
  int64_t threshold = -1;  ///< select_users; -1 = universe's p90 default
  uint32_t max_hops = 3;   ///< shortest_path bound
};

/// A named workload: what mbqbench drives at a target rate.
struct WorkloadMix {
  std::string name;
  std::vector<MixEntry> entries;
};

/// A query template the mix file can reference: its name, the Table 2
/// call it compiles to, and which parameters it consumes. The TAO/
/// LinkBench assoc shapes are templates too — they map onto the same
/// engine surface (docs/BENCHMARKS.md has the mapping table).
struct TemplateInfo {
  const char* name;
  core::CallKind kind;
  bool uses_uid;
  bool uses_pair;       ///< two distinct uids (shortest-path shapes)
  bool uses_tag;
  bool uses_n;
  bool uses_threshold;
  uint32_t fixed_hops;  ///< 0 = honour MixEntry::max_hops
  const char* what;     ///< one-line description for --help / docs
  bool uses_tid = false;  ///< a bulk-loaded tweet id (add_mention)
  /// Write template (post_tweet, follow, ...): needs an engine opened
  /// with enable_writes, and makes read results time-dependent — the
  /// verifier treats reads in such a mix as non-deterministic.
  bool is_write = false;
};

/// The full template registry, and lookup by name (null when unknown).
const std::vector<TemplateInfo>& Templates();
const TemplateInfo* FindTemplate(const std::string& name);

/// True when any entry of `mix` references a write template — the
/// driver must open its engine with EngineOptions.enable_writes.
bool MixHasWrites(const WorkloadMix& mix);

/// Parses the text mix format:
///
///   # comment / blank lines ignored
///   <template> <weight> [key=value ...]
///
/// with keys uid=uniform|zipf, tag=uniform|zipf, n=<int>,
/// threshold=<int>, hops=<int>. Fails with InvalidArgument naming the
/// offending line for unknown templates, non-positive or non-numeric
/// weights, unknown keys, malformed values, and empty mixes.
Result<WorkloadMix> ParseMix(const std::string& text, const std::string& name);

/// Renders a mix back into the text format ParseMix accepts
/// (round-trips: ParseMix(FormatMix(m)) == m).
std::string FormatMix(const WorkloadMix& mix);

/// Built-in suites: "ldbc" (LDBC SNB Interactive-style short reads +
/// Table 2 navigation), "tao" (TAO/LinkBench assoc-style read mix) and
/// "churn" (90% reads / 10% live writes through the delta store —
/// docs/WRITES.md). Unknown names fail with InvalidArgument listing the
/// valid ones.
Result<WorkloadMix> BuiltinSuite(const std::string& name);
std::vector<std::string> BuiltinSuiteNames();

/// Draws template indices with probability proportional to weight.
class MixSampler {
 public:
  explicit MixSampler(const WorkloadMix& mix);
  size_t Pick(Rng& rng) const;

 private:
  std::vector<double> cumulative_;
};

/// Materializes one call from a mix entry: draws every parameter the
/// template consumes from `rng` via the universe's generators.
core::CallSpec MaterializeCall(const MixEntry& entry,
                               const core::ParamUniverse& universe, Rng& rng);

/// The deterministic per-client request stream: template picks and
/// parameter draws for client `client` all derive from (seed, client),
/// independent of timing, thread scheduling and the other clients — so
/// a test can regenerate exactly the calls a driver client issued.
class CallStream {
 public:
  CallStream(const WorkloadMix& mix, const core::ParamUniverse& universe,
             uint64_t seed, uint32_t client);

  /// The next call: (index into mix.entries, materialized spec).
  std::pair<size_t, core::CallSpec> Next();

 private:
  const WorkloadMix& mix_;
  const core::ParamUniverse& universe_;
  MixSampler sampler_;
  Rng rng_;
};

}  // namespace mbq::bench::driver

#endif  // MBQ_BENCH_MIX_H_
