#ifndef MBQ_BENCH_DRIVER_H_
#define MBQ_BENCH_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/hist.h"
#include "bench/mix.h"
#include "core/calls.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "util/lock_rank.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace mbq::bench::driver {

/// The driver's time source. Client threads need both "what time is
/// it" and "block until t"; tests inject a fake where SleepUntilNanos
/// jumps the clock forward and the fake engine charges service time by
/// advancing it, making pacing and coordinated-omission accounting
/// fully deterministic.
class DriverClock {
 public:
  virtual ~DriverClock() = default;
  virtual uint64_t NowNanos() = 0;
  /// Returns at or after `deadline_nanos`; immediately when already
  /// past.
  virtual void SleepUntilNanos(uint64_t deadline_nanos) = 0;
};

/// Real time: steady_clock + sleep_until.
class SteadyDriverClock final : public DriverClock {
 public:
  uint64_t NowNanos() override;
  void SleepUntilNanos(uint64_t deadline_nanos) override;
};

/// Deterministic test clock. Thread-safe: the driver client sleeps by
/// jumping the clock to the deadline; a fake engine models service
/// time with AdvanceNanos.
class FakeDriverClock final : public DriverClock {
 public:
  uint64_t NowNanos() override {
    return now_.load(std::memory_order_relaxed);
  }
  void SleepUntilNanos(uint64_t deadline_nanos) override {
    uint64_t now = now_.load(std::memory_order_relaxed);
    while (now < deadline_nanos &&
           !now_.compare_exchange_weak(now, deadline_nanos,
                                       std::memory_order_relaxed)) {
    }
  }
  void AdvanceNanos(uint64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_{0};
};

/// Request arrival process. Open-loop either way: intended send times
/// never depend on when earlier responses came back.
enum class Arrival {
  kUniform,  ///< evenly spaced at the target rate
  kPoisson,  ///< exponential gaps (memoryless, the honest default)
};

Result<Arrival> ParseArrival(const std::string& name);
const char* ArrivalName(Arrival arrival);

struct DriverOptions {
  double rate_qps = 1000;      ///< total across all clients
  uint32_t clients = 4;        ///< client threads
  double duration_seconds = 5; ///< intended-time horizon (see below)
  /// Cap on total issued requests; 0 = horizon only. Split across
  /// clients round-robin (client c issues ceil/floor so the caps sum).
  uint64_t max_requests = 0;
  Arrival arrival = Arrival::kPoisson;
  uint64_t seed = 1;
  /// Record every call's spec and outcome (differential testing).
  bool record_outcomes = false;
};

/// One issued request, kept only under record_outcomes.
struct RecordedCall {
  uint32_t client = 0;
  uint64_t seq = 0;  ///< per-client sequence number
  size_t entry_index = 0;
  core::CallSpec spec;
  Status status;
  core::CallOutcome outcome;  ///< valid when status.ok()
};

/// Per-template results. Latencies are coordinated-omission-safe: each
/// sample is (completion time - *intended* send time) in microseconds,
/// so a stalled engine inflates the recorded tail exactly as it would
/// inflate a real client's wait, instead of silently de-scheduling the
/// requests that would have queued behind the stall.
struct TemplateReport {
  std::string name;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t late = 0;  ///< issued after their intended time
  LatencyHistogram latency_micros;
};

struct DriverReport {
  double rate_qps = 0;       ///< target
  double wall_seconds = 0;   ///< first intended send to last completion
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t late = 0;
  double achieved_qps = 0;
  LatencyHistogram latency_micros;         ///< all templates merged
  std::vector<TemplateReport> templates;   ///< mix order
  std::vector<RecordedCall> calls;         ///< when record_outcomes
};

/// The open-loop load driver. Run() spawns `clients` threads; each
/// follows its own deterministic schedule (the superposition meets the
/// target rate), issues calls from its CallStream and records into
/// thread-local histograms which Run() merges into the report.
///
/// Scheduling is open-loop: a client computes request j's intended
/// send time from the arrival process alone, sleeps until then, and
/// charges the latency from the intended time even when the previous
/// request overran (the coordinated-omission correction). The run
/// covers every request whose intended time falls inside the horizon,
/// so a saturated engine takes longer than duration_seconds of wall
/// time rather than quietly dropping load.
class LoadDriver {
 public:
  /// `engine` and `universe` are borrowed and must outlive the driver.
  /// `clock` is borrowed too; null uses a process-wide SteadyDriverClock.
  LoadDriver(core::MicroblogEngine* engine, const WorkloadMix& mix,
             const core::ParamUniverse& universe,
             const DriverOptions& options, DriverClock* clock = nullptr);

  Result<DriverReport> Run();

 private:
  struct ClientResult;
  void RunClient(uint32_t client, ClientResult* result);

  core::MicroblogEngine* engine_;
  WorkloadMix mix_;
  const core::ParamUniverse& universe_;
  DriverOptions options_;
  DriverClock* clock_;
  std::unique_ptr<DriverClock> owned_clock_;
};

/// Publishes driver reports to a metrics registry (default registry
/// when null):
///  - counters `driver.requests` / `driver.errors` / `driver.late`;
///  - histograms `driver.latency_micros` and
///    `driver.<template>.latency_micros`, replayed bucket-exact from
///    the report;
///  - gauges `driver.qps`, `driver.rate_target_qps` and
///    `driver.<template>.qps` via a live provider reflecting the most
///    recent report (a rate sweep exports its last point).
/// Keep the publisher alive until metrics are exported; its provider
/// retains final values on destruction.
class DriverMetricsPublisher {
 public:
  explicit DriverMetricsPublisher(obs::MetricsRegistry* registry = nullptr);

  void Publish(const DriverReport& report);

 private:
  obs::MetricsRegistry* registry_;
  /// LockRank::kDriver: the provider lambda locks it during a metrics
  /// scrape (under the kObs registry mutex), so it must rank below kObs.
  util::RankedMutex mu_{util::LockRank::kDriver, "bench.driver.publisher"};
  DriverReport last_ MBQ_GUARDED_BY(mu_);
  bool has_report_ MBQ_GUARDED_BY(mu_) = false;
  obs::ScopedProvider provider_;
};

}  // namespace mbq::bench::driver

#endif  // MBQ_BENCH_DRIVER_H_
