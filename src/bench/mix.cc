#include "bench/mix.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace mbq::bench::driver {

using core::CallKind;
using core::CallSpec;

const std::vector<TemplateInfo>& Templates() {
  // hops: 0 = honour the mix entry; non-zero pins the template's bound.
  static const std::vector<TemplateInfo>* kTemplates =
      new std::vector<TemplateInfo>{
          {"select_users", CallKind::kSelectUsers, false, false, false, false,
           true, 0, "Q1.1: users above a follower-count threshold"},
          {"followees", CallKind::kFollowees, true, false, false, false, false,
           0, "Q2.1: adjacency read, all followees of a user"},
          {"tweets_of_followees", CallKind::kTweetsOfFollowees, true, false,
           false, false, false, 0, "Q2.2: tweets posted by followees"},
          {"hashtags_of_followees", CallKind::kHashtagsOfFollowees, true,
           false, false, false, false, 0, "Q2.3: hashtags used by followees"},
          {"co_mentioned", CallKind::kTopCoMentioned, true, false, false, true,
           false, 0, "Q3.1: top-n co-mentioned users"},
          {"co_tags", CallKind::kTopCoTags, false, false, true, true, false, 0,
           "Q3.2: top-n co-occurring hashtags"},
          {"rec_followees", CallKind::kRecFollowees, true, false, false, true,
           false, 0, "Q4.1: recommend followees of followees"},
          {"rec_followers", CallKind::kRecFollowers, true, false, false, true,
           false, 0, "Q4.2: recommend followers of followees"},
          {"influence_current", CallKind::kCurrentInfluence, true, false,
           false, true, false, 0, "Q5.1: mentioners who already follow"},
          {"influence_potential", CallKind::kPotentialInfluence, true, false,
           false, true, false, 0, "Q5.2: mentioners who do not follow"},
          {"shortest_path", CallKind::kShortestPath, false, true, false,
           false, false, 0, "Q6.1: bounded follows-path between two users"},
          // TAO/LinkBench assoc shapes, mapped onto the same surface
          // (docs/BENCHMARKS.md documents the mapping).
          {"assoc_range", CallKind::kFollowees, true, false, false, false,
           false, 0, "TAO assoc_range(follows, uid): the adjacency list"},
          {"assoc_count", CallKind::kFollowees, true, false, false, false,
           false, 0, "TAO assoc_count(follows, uid): adjacency cardinality"},
          {"obj_get", CallKind::kFollowees, true, false, false, false, false,
           0, "TAO obj_get(uid): point read of one user's edge header"},
          {"assoc_get", CallKind::kShortestPath, false, true, false, false,
           false, 1, "TAO assoc_get(follows, a, b): edge-existence check"},
          // Live writes (docs/WRITES.md): need enable_writes at open.
          {"post_tweet", CallKind::kPostTweet, true, false, false, false,
           false, 0, "W1.1: post a new tweet for a user", false, true},
          {"follow", CallKind::kFollow, false, true, false, false, false, 0,
           "W2.1: add a follows edge between two users", false, true},
          {"unfollow", CallKind::kUnfollow, false, true, false, false, false,
           0, "W2.2: remove a follows edge (tombstone)", false, true},
          {"add_mention", CallKind::kAddMention, true, false, false, false,
           false, 0, "W3.1: mention a user from an existing tweet", true,
           true},
      };
  return *kTemplates;
}

const TemplateInfo* FindTemplate(const std::string& name) {
  for (const TemplateInfo& info : Templates()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

bool MixHasWrites(const WorkloadMix& mix) {
  for (const MixEntry& e : mix.entries) {
    const TemplateInfo* info = FindTemplate(e.template_name);
    if (info != nullptr && info->is_write) return true;
  }
  return false;
}

namespace {

Status MixError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("mix line " + std::to_string(line_no) + ": " +
                                 what);
}

Result<Dist> ParseDist(const std::string& value) {
  if (value == "uniform") return Dist::kUniform;
  if (value == "zipf") return Dist::kZipf;
  return Status::InvalidArgument("expected uniform|zipf, got '" + value + "'");
}

Result<int64_t> ParseInt(const std::string& value) {
  char* end = nullptr;
  long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("expected an integer, got '" + value + "'");
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Result<WorkloadMix> ParseMix(const std::string& text,
                             const std::string& name) {
  WorkloadMix mix;
  mix.name = name;
  std::istringstream lines(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    // Strip comments, then tokenize on whitespace.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string template_name;
    if (!(tokens >> template_name)) continue;  // blank / comment-only

    const TemplateInfo* info = FindTemplate(template_name);
    if (info == nullptr) {
      return MixError(line_no, "unknown template '" + template_name + "'");
    }
    MixEntry entry;
    entry.template_name = template_name;

    std::string weight_token;
    if (!(tokens >> weight_token)) {
      return MixError(line_no, "missing weight after '" + template_name + "'");
    }
    char* end = nullptr;
    entry.weight = std::strtod(weight_token.c_str(), &end);
    if (end == weight_token.c_str() || *end != '\0' ||
        !(entry.weight > 0) || !(entry.weight < 1e12)) {
      return MixError(line_no, "bad weight '" + weight_token +
                                   "' (must be a positive number)");
    }

    std::string kv;
    while (tokens >> kv) {
      size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        return MixError(line_no, "expected key=value, got '" + kv + "'");
      }
      std::string key = kv.substr(0, eq);
      std::string value = kv.substr(eq + 1);
      if (key == "uid") {
        Result<Dist> dist = ParseDist(value);
        if (!dist.ok()) return MixError(line_no, dist.status().message());
        entry.uid_dist = *dist;
      } else if (key == "tag") {
        Result<Dist> dist = ParseDist(value);
        if (!dist.ok()) return MixError(line_no, dist.status().message());
        entry.tag_dist = *dist;
      } else if (key == "n") {
        Result<int64_t> v = ParseInt(value);
        if (!v.ok()) return MixError(line_no, v.status().message());
        if (*v < 1) return MixError(line_no, "n must be >= 1");
        entry.n = *v;
      } else if (key == "threshold") {
        Result<int64_t> v = ParseInt(value);
        if (!v.ok()) return MixError(line_no, v.status().message());
        entry.threshold = *v;
      } else if (key == "hops") {
        Result<int64_t> v = ParseInt(value);
        if (!v.ok()) return MixError(line_no, v.status().message());
        if (*v < 1 || *v > 16) {
          return MixError(line_no, "hops must be in [1, 16]");
        }
        entry.max_hops = static_cast<uint32_t>(*v);
      } else {
        return MixError(line_no, "unknown key '" + key + "'");
      }
    }
    mix.entries.push_back(std::move(entry));
  }
  if (mix.entries.empty()) {
    return Status::InvalidArgument("mix '" + name + "' has no entries");
  }
  return mix;
}

std::string FormatMix(const WorkloadMix& mix) {
  std::string out = "# mix: " + mix.name + "\n";
  for (const MixEntry& e : mix.entries) {
    const TemplateInfo* info = FindTemplate(e.template_name);
    char weight[64];
    std::snprintf(weight, sizeof(weight), "%g", e.weight);
    out += e.template_name + " " + weight;
    if (info != nullptr) {
      if (info->uses_uid || info->uses_pair) {
        out += std::string(" uid=") +
               (e.uid_dist == Dist::kZipf ? "zipf" : "uniform");
      }
      if (info->uses_tag) {
        out += std::string(" tag=") +
               (e.tag_dist == Dist::kZipf ? "zipf" : "uniform");
      }
      if (info->uses_n) out += " n=" + std::to_string(e.n);
      if (info->uses_threshold && e.threshold >= 0) {
        out += " threshold=" + std::to_string(e.threshold);
      }
      if (info->kind == CallKind::kShortestPath && info->fixed_hops == 0) {
        out += " hops=" + std::to_string(e.max_hops);
      }
    }
    out += "\n";
  }
  return out;
}

Result<WorkloadMix> BuiltinSuite(const std::string& name) {
  // LDBC SNB Interactive-style: dominated by short reads (profile /
  // friends / posts-of-friends lookups) with a tail of navigational
  // complex reads — IC1-like friend recommendation, IC13-like shortest
  // path — mapped onto the Table 2 surface. Weights follow the SNB
  // interactive short/complex split (short reads outnumber complex
  // reads roughly 4:1).
  static const char* kLdbc =
      "followees            25 uid=uniform\n"
      "tweets_of_followees  20 uid=uniform\n"
      "hashtags_of_followees 8 uid=uniform\n"
      "obj_get              15 uid=uniform\n"
      "co_mentioned          6 uid=zipf n=10\n"
      "co_tags               5 tag=zipf n=10\n"
      "rec_followees         8 uid=uniform n=10\n"
      "rec_followers         4 uid=uniform n=10\n"
      "influence_current     3 uid=zipf n=10\n"
      "influence_potential   2 uid=zipf n=10\n"
      "shortest_path         3 uid=uniform hops=3\n"
      "select_users          1\n";
  // TAO/LinkBench assoc-style: the published TAO read mix —
  // assoc_range 40.9%, obj_get 28.9%, assoc_get 15.7%, assoc_count
  // 11.7% — renormalized over the four read shapes. Association reads
  // hit popular users (zipf), point reads are uniform.
  static const char* kTao =
      "assoc_range  42 uid=zipf\n"
      "obj_get      30 uid=uniform\n"
      "assoc_get    16 uid=zipf\n"
      "assoc_count  12 uid=zipf\n";
  // Live read/write churn: the common social-network serving shape —
  // ~90% reads, ~10% writes (TAO reports 99.8% reads; 90/10 stresses
  // the write path hard enough to surface snapshot and invalidation
  // bugs at bench scale). Writes skew towards popular accounts the way
  // reads do: hot users gain followers and mentions fastest.
  static const char* kChurn =
      "followees            28 uid=uniform\n"
      "tweets_of_followees  20 uid=uniform\n"
      "hashtags_of_followees 8 uid=uniform\n"
      "co_mentioned          8 uid=zipf n=10\n"
      "rec_followees         8 uid=uniform n=10\n"
      "influence_current     6 uid=zipf n=10\n"
      "shortest_path         6 uid=uniform hops=3\n"
      "select_users          6\n"
      "post_tweet            4 uid=zipf\n"
      "follow                3 uid=uniform\n"
      "add_mention           2 uid=zipf\n"
      "unfollow              1 uid=uniform\n";
  if (name == "ldbc") return ParseMix(kLdbc, "ldbc");
  if (name == "tao") return ParseMix(kTao, "tao");
  if (name == "churn") return ParseMix(kChurn, "churn");
  return Status::InvalidArgument("unknown suite '" + name +
                                 "' (builtin: ldbc, tao, churn)");
}

std::vector<std::string> BuiltinSuiteNames() {
  return {"ldbc", "tao", "churn"};
}

MixSampler::MixSampler(const WorkloadMix& mix) {
  double total = 0;
  cumulative_.reserve(mix.entries.size());
  for (const MixEntry& e : mix.entries) {
    total += e.weight;
    cumulative_.push_back(total);
  }
}

size_t MixSampler::Pick(Rng& rng) const {
  if (cumulative_.empty()) return 0;
  double target = rng.NextDouble() * cumulative_.back();
  for (size_t i = 0; i < cumulative_.size(); ++i) {
    if (target < cumulative_[i]) return i;
  }
  return cumulative_.size() - 1;
}

core::CallSpec MaterializeCall(const MixEntry& entry,
                               const core::ParamUniverse& universe,
                               Rng& rng) {
  const TemplateInfo* info = FindTemplate(entry.template_name);
  CallSpec spec;
  if (info == nullptr) return spec;
  spec.kind = info->kind;
  bool zipf_uid = entry.uid_dist == Dist::kZipf;
  if (info->uses_tid) {
    // add_mention: a = an existing tweet, b = the mentioned user.
    spec.a = universe.SampleTid(rng);
    spec.b = universe.SampleUid(rng, zipf_uid);
  } else if (info->uses_pair) {
    auto [a, b] = universe.SampleUidPair(rng, zipf_uid);
    spec.a = a;
    spec.b = b;
    spec.max_hops = info->fixed_hops != 0 ? info->fixed_hops : entry.max_hops;
  } else if (info->uses_uid) {
    spec.a = universe.SampleUid(rng, zipf_uid);
  }
  if (info->uses_tag) {
    spec.tag = universe.SampleTag(rng, entry.tag_dist == Dist::kZipf);
  }
  if (info->uses_n) spec.n = entry.n;
  if (info->uses_threshold) {
    spec.threshold =
        entry.threshold >= 0 ? entry.threshold : universe.FollowerThreshold();
  }
  return spec;
}

CallStream::CallStream(const WorkloadMix& mix,
                       const core::ParamUniverse& universe, uint64_t seed,
                       uint32_t client)
    : mix_(mix),
      universe_(universe),
      sampler_(mix),
      rng_(seed * 0x9E3779B97F4A7C15ull + 0xC0FFEE + client) {}

std::pair<size_t, core::CallSpec> CallStream::Next() {
  size_t index = sampler_.Pick(rng_);
  return {index, MaterializeCall(mix_.entries[index], universe_, rng_)};
}

}  // namespace mbq::bench::driver
