#ifndef MBQ_CORE_WORKLOAD_H_
#define MBQ_CORE_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/engine.h"
#include "twitter/dataset.h"
#include "util/rng.h"

namespace mbq::core {

/// Outcome of the paper's timing protocol (§3.3): "We start executing a
/// query and once the cache is warmed-up and the execution time is
/// stabilized, we report the average execution time over 10 subsequent
/// runs." Time is wall clock plus the engine's simulated device time.
struct TimingResult {
  double avg_millis = 0;
  double first_run_millis = 0;  // includes cache warm-up
  double min_millis = 0;
  double max_millis = 0;
  uint64_t rows = 0;  // rows returned by the last run
};

/// A query under measurement: runs once, returns the row count.
using TimedQuery = std::function<Result<uint64_t>()>;

/// Measures `query` with `warmup` unmeasured runs followed by `runs`
/// timed runs. `io_nanos` reads the engine's simulated-device clock so
/// modelled I/O time is included; pass nullptr for wall-clock only.
Result<TimingResult> MeasureQuery(const TimedQuery& query, uint32_t warmup,
                                  uint32_t runs,
                                  const std::function<uint64_t()>& io_nanos);

/// Parameter selection helpers: the paper bins its Figure 4 x-axes by
/// result cardinality, mention degree, or path length. These compute the
/// ground-truth metric from the generated dataset.

/// (metric, uid): number of tweets mentioning each user (Q3.1/Q5 x-axis).
std::vector<std::pair<int64_t, int64_t>> UsersByMentionCount(
    const twitter::Dataset& dataset);

/// (metric, uid): out-degree in follows (drives Q2/Q4 fan-out).
std::vector<std::pair<int64_t, int64_t>> UsersByFolloweeCount(
    const twitter::Dataset& dataset);

/// (metric, uid): in-degree in follows (Q1 threshold calibration).
std::vector<std::pair<int64_t, int64_t>> UsersByFollowerCount(
    const twitter::Dataset& dataset);

/// (metric, tag): tweets carrying each hashtag (Q3.2 parameter).
std::vector<std::pair<int64_t, std::string>> HashtagsByUse(
    const twitter::Dataset& dataset);

/// Picks `per_bin` uids whose metric falls into each of the given
/// [lo, hi) bins. Entries are (metric, uid) as produced above.
std::vector<std::vector<int64_t>> PickUsersInBins(
    const std::vector<std::pair<int64_t, int64_t>>& metric_uid,
    const std::vector<std::pair<int64_t, int64_t>>& bins, size_t per_bin,
    Rng& rng);

}  // namespace mbq::core

#endif  // MBQ_CORE_WORKLOAD_H_
