#ifndef MBQ_CORE_NODESTORE_ENGINE_H_
#define MBQ_CORE_NODESTORE_ENGINE_H_

#include <memory>
#include <string>

#include "core/engine.h"
#include "core/updates.h"
#include "core/write_path.h"
#include "cypher/session.h"
#include "nodestore/graph_db.h"

namespace mbq::core {

/// The declarative side of the study: every Table 2 query is a
/// parameterized mini-Cypher string executed through CypherSession, so
/// plan caching, db-hit profiling and operator behaviour match what the
/// paper observed on Neo4j. The exact query texts are exposed as
/// constants for the phrasing ablations.
class NodestoreEngine : public MicroblogEngine {
 public:
  explicit NodestoreEngine(nodestore::GraphDb* db) : db_(db), session_(db) {}

  std::string name() const override { return "nodestore-cypher"; }

  Result<ValueRows> SelectUsersByFollowerCount(int64_t threshold) override;
  Result<ValueRows> FolloweesOf(int64_t uid) override;
  Result<ValueRows> TweetsOfFollowees(int64_t uid) override;
  Result<ValueRows> HashtagsUsedByFollowees(int64_t uid) override;
  Result<ValueRows> TopCoMentionedUsers(int64_t uid, int64_t n) override;
  Result<ValueRows> TopCoOccurringHashtags(const std::string& tag,
                                           int64_t n) override;
  Result<ValueRows> RecommendFolloweesOfFollowees(int64_t uid,
                                                  int64_t n) override;
  Result<ValueRows> RecommendFollowersOfFollowees(int64_t uid,
                                                  int64_t n) override;
  Result<ValueRows> CurrentInfluence(int64_t uid, int64_t n) override;
  Result<ValueRows> PotentialInfluence(int64_t uid, int64_t n) override;
  Result<int64_t> ShortestPathLength(int64_t uid_a, int64_t uid_b,
                                     uint32_t max_hops) override;

  /// Cold-cache reset: drops the store's page caches and empties the
  /// session's result and adjacency caches (the plan cache is left alone —
  /// the ablation toggles it separately via SetPlanCacheEnabled).
  Status DropCaches() override {
    session_.ClearReadCaches();
    return db_->DropCaches();
  }

  /// Morsel-parallel Cypher execution for eligible pipelines (delegates
  /// to CypherSession::SetThreads).
  void SetThreads(uint32_t threads, exec::ThreadPool* pool = nullptr) override {
    session_.SetThreads(threads, pool);
  }

  /// Full session tuning surface (threads + plan/result/adjacency caches).
  void Configure(const cypher::SessionOptions& options) {
    session_.Configure(options);
  }

  /// Turns the live write path on: resolves the schema handles, builds
  /// the update applier and the EngineWriter (replaying the WAL when
  /// `config.wal_dir` points at an existing log), and routes the Cypher
  /// session's reads/writes through the snapshot registry. `base` is the
  /// bulk-loaded dataset the writer extends (borrowed; only id-space
  /// sizes are read, at open).
  Status EnableWrites(const WriteConfig& config, const twitter::Dataset& base);

  WritableEngine* AsWritable() override { return writer_.get(); }

  cypher::CypherSession& session() { return session_; }
  nodestore::GraphDb* db() { return db_; }

  /// The three phrasings of the recommendation query discussed in §4:
  /// (a) a depth-2 variable-length expansion, (b) collecting intermediate
  /// results and checking them against depth 2 (the paper's fastest), and
  /// (c) expanding to depth 2 and removing depth-1 friends afterwards.
  static const char* kRecommendVariantA;
  static const char* kRecommendVariantB;
  static const char* kRecommendVariantC;

 private:
  Result<ValueRows> RunToRows(const std::string& query,
                              const cypher::Params& params);

  nodestore::GraphDb* db_;
  cypher::CypherSession session_;
  std::unique_ptr<NodestoreUpdateApplier> applier_;
  std::unique_ptr<EngineWriter> writer_;
};

}  // namespace mbq::core

#endif  // MBQ_CORE_NODESTORE_ENGINE_H_
