#include "core/remote_engine.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace mbq::core {

namespace {

/// Large enough to never clip a result, small enough to stay an int64:
/// the limit shards are asked for when the aggregator needs the full
/// count list to merge exactly.
constexpr int64_t kUnboundedN = int64_t{1} << 30;

/// One shard exchange as seen by the aggregator: its round trip plus the
/// timing summary the shard sent back (reply_nanos == 0 when the reply
/// came back bare — an untraced exchange or an old peer).
struct ShardSample {
  uint32_t shard = 0;
  uint64_t rtt_nanos = 0;
  rpc::ShardTiming timing;
};

/// The samples of the remote call currently executing on this thread;
/// installed by RemoteCallTracker, filled by RemoteEngine::CallShard.
thread_local std::vector<ShardSample>* g_call_samples = nullptr;

/// Lazy per-shard round-trip histograms. The names are dynamic
/// ("rpc.shard." + i + ".latency"); docs/OBSERVABILITY.md documents the
/// family as `rpc.shard.<i>.latency` and check_docs_links.sh knows the
/// prefix.
obs::Histogram* ShardLatency(uint32_t shard) {
  return obs::MetricsRegistry::Default().GetHistogram(
      "rpc.shard." + std::to_string(shard) + ".latency", "us",
      "Aggregator-measured round-trip time of calls to this shard");
}

/// RAII accounting for one public RemoteEngine call: opens a child trace
/// scope (or mints a root when the call *is* the ingress), registers in
/// the active-query table, collects per-shard samples, and on exit
/// records the call span and — when the call crossed the slow threshold —
/// a FlightRecorder capture whose profile is the per-shard breakdown the
/// /slow endpoint shows.
class RemoteCallTracker {
 public:
  explicit RemoteCallTracker(std::string name)
      : name_(std::move(name)),
        trace_scope_(obs::ChildOrRootContext()),
        active_(&obs::QueryRegistry::Global(), name_, "remote", 1),
        previous_(g_call_samples) {
    g_call_samples = &samples_;
  }

  ~RemoteCallTracker() {
    g_call_samples = previous_;
    uint64_t elapsed = active_.ElapsedNanos();
    obs::SpanRecorder::Global().Record(name_, "rpc", active_.start_nanos(),
                                       elapsed);
    double millis = static_cast<double>(elapsed) / 1e6;
    if (!obs::IsSlowQuery(millis, obs::DefaultSlowQueryMillis())) return;
    obs::SlowQuery capture;
    capture.query = name_;
    capture.engine = "remote";
    capture.millis = millis;
    capture.threads = 1;
    capture.profile = Breakdown();
    obs::FlightRecorder::Global().Record(std::move(capture));
  }

  RemoteCallTracker(const RemoteCallTracker&) = delete;
  RemoteCallTracker& operator=(const RemoteCallTracker&) = delete;

 private:
  /// One line per shard exchange: where the shard said the time went,
  /// with the network share as rtt - reply.
  std::string Breakdown() const {
    std::string out;
    char buf[192];
    for (const ShardSample& s : samples_) {
      double rtt = static_cast<double>(s.rtt_nanos) / 1e6;
      if (s.timing.reply_nanos != 0) {
        std::snprintf(
            buf, sizeof(buf),
            "shard %u: rtt=%.3fms queue=%.3fms execute=%.3fms "
            "serialize=%.3fms reply=%.3fms network=%.3fms\n",
            s.shard, rtt, static_cast<double>(s.timing.queue_nanos) / 1e6,
            static_cast<double>(s.timing.execute_nanos) / 1e6,
            static_cast<double>(s.timing.serialize_nanos) / 1e6,
            static_cast<double>(s.timing.reply_nanos) / 1e6,
            static_cast<double>(s.rtt_nanos -
                                std::min(s.rtt_nanos,
                                         s.timing.reply_nanos)) /
                1e6);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "shard %u: rtt=%.3fms (no shard timing)\n", s.shard,
                      rtt);
      }
      out += buf;
    }
    return out;
  }

  std::string name_;
  obs::ScopedTraceContext trace_scope_;
  obs::ActiveQueryScope active_;
  std::vector<ShardSample>* previous_;
  std::vector<ShardSample> samples_;
};

struct AggregatorMetrics {
  obs::Counter* routed_calls;
  obs::Counter* fanout_calls;
  obs::Counter* merged_rows;

  static AggregatorMetrics Get() {
    static AggregatorMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      AggregatorMetrics out;
      out.routed_calls =
          reg.GetCounter("rpc.aggregator.routed_calls", "requests",
                         "Navigation calls answered by a single shard");
      out.fanout_calls =
          reg.GetCounter("rpc.aggregator.fanout_calls", "requests",
                         "Navigation calls fanned out to every shard");
      out.merged_rows =
          reg.GetCounter("rpc.aggregator.merged_rows", "rows",
                         "Per-shard result rows consumed by merge steps");
      return out;
    }();
    return m;
  }
};

}  // namespace

Result<RemoteEngine::ShardAddress> ParseShardAddress(
    const std::string& spec) {
  RemoteEngine::ShardAddress addr;
  addr.host = "127.0.0.1";
  std::string port_part = spec;
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    addr.host = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
    if (addr.host.empty()) addr.host = "127.0.0.1";
  }
  Result<int64_t> port = ParseInt64(port_part);
  if (!port.ok() || *port < 1 || *port > 65535) {
    return Status::InvalidArgument("bad shard address \"" + spec +
                                   "\" (want host:port)");
  }
  addr.port = static_cast<uint16_t>(*port);
  return addr;
}

RemoteEngine::RemoteEngine(
    std::vector<std::unique_ptr<rpc::RpcClient>> shards,
    Partitioner partitioner)
    : shards_(std::move(shards)), partitioner_(partitioner) {}

Result<std::unique_ptr<RemoteEngine>> RemoteEngine::Connect(
    const std::vector<ShardAddress>& shards, int timeout_millis) {
  if (shards.empty()) {
    return Status::InvalidArgument("remote engine needs at least one shard");
  }
  std::vector<std::unique_ptr<rpc::RpcClient>> clients(shards.size());
  for (const ShardAddress& addr : shards) {
    rpc::RpcClient::Options options;
    options.host = addr.host;
    options.port = addr.port;
    options.timeout_millis = timeout_millis;
    std::unique_ptr<rpc::RpcClient> client;
    MBQ_ASSIGN_OR_RETURN(client, rpc::RpcClient::Connect(options));
    const rpc::HelloReply& info = client->server_info();
    if (info.num_shards != shards.size()) {
      return Status::FailedPrecondition(
          addr.host + ":" + std::to_string(addr.port) + " expects " +
          std::to_string(info.num_shards) + " shards, but " +
          std::to_string(shards.size()) + " were addressed");
    }
    if (info.shard_id >= shards.size()) {
      return Status::FailedPrecondition(
          "shard id " + std::to_string(info.shard_id) + " out of range");
    }
    if (clients[info.shard_id] != nullptr) {
      return Status::FailedPrecondition(
          "two addresses answer as shard " + std::to_string(info.shard_id));
    }
    clients[info.shard_id] = std::move(client);
  }
  const rpc::HelloReply& first = clients[0]->server_info();
  for (const auto& client : clients) {
    const rpc::HelloReply& info = client->server_info();
    if (info.partition != first.partition ||
        info.num_users != first.num_users) {
      return Status::FailedPrecondition(
          "shards disagree on partitioning (" +
          std::string(PartitionKindName(
              static_cast<PartitionKind>(info.partition))) +
          "/" + std::to_string(info.num_users) + " vs " +
          std::string(PartitionKindName(
              static_cast<PartitionKind>(first.partition))) +
          "/" + std::to_string(first.num_users) + ")");
    }
  }
  if (first.partition > static_cast<uint8_t>(PartitionKind::kRange)) {
    return Status::FailedPrecondition(
        "shards report unknown partition kind " +
        std::to_string(static_cast<int>(first.partition)));
  }
  Partitioner partitioner(static_cast<PartitionKind>(first.partition),
                          static_cast<uint32_t>(clients.size()),
                          first.num_users);
  return std::unique_ptr<RemoteEngine>(
      new RemoteEngine(std::move(clients), partitioner));
}

std::string RemoteEngine::name() const {
  return "remote(" + std::to_string(shards_.size()) + " shard" +
         (shards_.size() == 1 ? "" : "s") + ", " +
         PartitionKindName(partitioner_.kind()) + ")";
}

Result<rpc::Frame> RemoteEngine::CallShard(uint32_t shard,
                                           const rpc::Frame& request) {
  rpc::ShardTiming timing;
  uint64_t start_nanos = WallClock().NowNanos();
  Result<rpc::Frame> reply = shards_[shard]->Call(request, &timing);
  uint64_t rtt_nanos = WallClock().NowNanos() - start_nanos;
  ShardLatency(shard)->Record(rtt_nanos / 1000);
  if (g_call_samples != nullptr) {
    ShardSample sample;
    sample.shard = shard;
    sample.rtt_nanos = rtt_nanos;
    sample.timing = timing;
    g_call_samples->push_back(sample);
  }
  return reply;
}

Result<ValueRows> RemoteEngine::CallRows(uint32_t shard,
                                         const rpc::CallRequest& req) {
  AggregatorMetrics::Get().routed_calls->Inc();
  rpc::Frame reply;
  MBQ_ASSIGN_OR_RETURN(reply, CallShard(shard, rpc::EncodeCall(req)));
  return rpc::DecodeRowsReply(reply);
}

Result<std::vector<ValueRows>> RemoteEngine::FanOutRows(
    const rpc::CallRequest& req) {
  AggregatorMetrics::Get().fanout_calls->Inc();
  std::vector<ValueRows> per_shard;
  per_shard.reserve(shards_.size());
  rpc::Frame request = rpc::EncodeCall(req);
  size_t failures = 0;
  Status first_error;
  for (uint32_t shard = 0; shard < shards_.size(); ++shard) {
    Result<rpc::Frame> reply = CallShard(shard, request);
    Result<ValueRows> rows =
        reply.ok() ? rpc::DecodeRowsReply(*reply) : reply.status();
    if (!rows.ok()) {
      // Transport and corruption failures abort the fan-out. NotFound is
      // an application answer ("no such hashtag"); the replicated
      // catalog means the shards agree on it, so it only propagates when
      // they all say it.
      if (!rows.status().IsNotFound()) return rows.status();
      if (failures++ == 0) first_error = rows.status();
      per_shard.emplace_back();
      continue;
    }
    per_shard.push_back(*std::move(rows));
  }
  if (failures == shards_.size()) return first_error;
  return per_shard;
}

Result<ValueRows> RemoteEngine::FanOutCounts(const rpc::CallRequest& req,
                                             int64_t n) {
  rpc::CallRequest unbounded = req;
  unbounded.arg = kUnboundedN;
  std::vector<ValueRows> per_shard;
  MBQ_ASSIGN_OR_RETURN(per_shard, FanOutRows(unbounded));
  // Sum per-key counts across shards. Tweets are disjoint and the counts
  // are per-tweet, so addition is the exact global count; TopNCounts
  // then applies the same deterministic ranking the local engines use.
  std::map<common::Value, int64_t> totals;
  uint64_t merged = 0;
  for (const ValueRows& rows : per_shard) {
    merged += rows.size();
    for (const ValueRow& row : rows) {
      if (row.size() != 2 || row[1].type() != common::ValueType::kInt) {
        return Status::Corruption(
            "count merge expects (key, int64 count) rows");
      }
      totals[row[0]] += row[1].AsInt();
    }
  }
  AggregatorMetrics::Get().merged_rows->Inc(merged);
  std::vector<std::pair<common::Value, int64_t>> counts;
  counts.reserve(totals.size());
  for (auto& [key, count] : totals) counts.emplace_back(key, count);
  return TopNCounts(counts, n);
}

Result<ValueRows> RemoteEngine::SelectUsersByFollowerCount(
    int64_t threshold) {
  RemoteCallTracker tracker("remote.select_users_by_follower_count");
  // Users are replicated; spread repeated scans over the shards.
  rpc::CallRequest req;
  req.call = rpc::NavCall::kSelectUsersByFollowerCount;
  req.uid = threshold;
  uint32_t shard = static_cast<uint32_t>(
      static_cast<uint64_t>(threshold) % shards_.size());
  return CallRows(shard, req);
}

Result<ValueRows> RemoteEngine::FolloweesOf(int64_t uid) {
  RemoteCallTracker tracker("remote.followees_of");
  rpc::CallRequest req;
  req.call = rpc::NavCall::kFolloweesOf;
  req.uid = uid;
  return CallRows(partitioner_.OwnerShard(uid), req);
}

Result<ValueRows> RemoteEngine::TweetsOfFollowees(int64_t uid) {
  RemoteCallTracker tracker("remote.tweets_of_followees");
  rpc::CallRequest req;
  req.call = rpc::NavCall::kTweetsOfFollowees;
  req.uid = uid;
  std::vector<ValueRows> per_shard;
  MBQ_ASSIGN_OR_RETURN(per_shard, FanOutRows(req));
  // Tweets are disjoint across shards and every shard sees the full
  // follows graph, so plain concatenation reproduces the single-process
  // multiset exactly (including per-path duplicates).
  ValueRows merged;
  for (ValueRows& rows : per_shard) {
    merged.insert(merged.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
  }
  AggregatorMetrics::Get().merged_rows->Inc(merged.size());
  return merged;
}

Result<ValueRows> RemoteEngine::HashtagsUsedByFollowees(int64_t uid) {
  RemoteCallTracker tracker("remote.hashtags_used_by_followees");
  rpc::CallRequest req;
  req.call = rpc::NavCall::kHashtagsUsedByFollowees;
  req.uid = uid;
  std::vector<ValueRows> per_shard;
  MBQ_ASSIGN_OR_RETURN(per_shard, FanOutRows(req));
  // Each shard reports the distinct hashtags of its tweet slice; the
  // same tag can surface on several shards, so the union re-deduplicates.
  ValueRows merged;
  for (ValueRows& rows : per_shard) {
    merged.insert(merged.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
  }
  AggregatorMetrics::Get().merged_rows->Inc(merged.size());
  SortRows(&merged);
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

Result<ValueRows> RemoteEngine::TopCoMentionedUsers(int64_t uid, int64_t n) {
  RemoteCallTracker tracker("remote.top_co_mentioned_users");
  rpc::CallRequest req;
  req.call = rpc::NavCall::kTopCoMentionedUsers;
  req.uid = uid;
  return FanOutCounts(req, n);
}

Result<ValueRows> RemoteEngine::TopCoOccurringHashtags(const std::string& tag,
                                                       int64_t n) {
  RemoteCallTracker tracker("remote.top_co_occurring_hashtags");
  rpc::CallRequest req;
  req.call = rpc::NavCall::kTopCoOccurringHashtags;
  req.tag = tag;
  return FanOutCounts(req, n);
}

Result<ValueRows> RemoteEngine::RecommendFolloweesOfFollowees(int64_t uid,
                                                              int64_t n) {
  RemoteCallTracker tracker("remote.recommend_followees_of_followees");
  rpc::CallRequest req;
  req.call = rpc::NavCall::kRecommendFolloweesOfFollowees;
  req.uid = uid;
  req.arg = n;
  return CallRows(partitioner_.OwnerShard(uid), req);
}

Result<ValueRows> RemoteEngine::RecommendFollowersOfFollowees(int64_t uid,
                                                              int64_t n) {
  RemoteCallTracker tracker("remote.recommend_followers_of_followees");
  rpc::CallRequest req;
  req.call = rpc::NavCall::kRecommendFollowersOfFollowees;
  req.uid = uid;
  req.arg = n;
  return CallRows(partitioner_.OwnerShard(uid), req);
}

Result<ValueRows> RemoteEngine::CurrentInfluence(int64_t uid, int64_t n) {
  RemoteCallTracker tracker("remote.current_influence");
  rpc::CallRequest req;
  req.call = rpc::NavCall::kCurrentInfluence;
  req.uid = uid;
  return FanOutCounts(req, n);
}

Result<ValueRows> RemoteEngine::PotentialInfluence(int64_t uid, int64_t n) {
  RemoteCallTracker tracker("remote.potential_influence");
  rpc::CallRequest req;
  req.call = rpc::NavCall::kPotentialInfluence;
  req.uid = uid;
  return FanOutCounts(req, n);
}

Result<int64_t> RemoteEngine::ShortestPathLength(int64_t uid_a, int64_t uid_b,
                                                 uint32_t max_hops) {
  RemoteCallTracker tracker("remote.shortest_path_length");
  rpc::CallRequest req;
  req.call = rpc::NavCall::kShortestPathLength;
  req.uid = uid_a;
  req.arg = uid_b;
  req.max_hops = max_hops;
  AggregatorMetrics::Get().routed_calls->Inc();
  rpc::Frame reply;
  MBQ_ASSIGN_OR_RETURN(
      reply, CallShard(partitioner_.OwnerShard(uid_a), rpc::EncodeCall(req)));
  return rpc::DecodeIntReply(reply);
}

Status RemoteEngine::DropCaches() {
  for (uint32_t shard = 0; shard < shards_.size(); ++shard) {
    rpc::Frame reply;
    MBQ_ASSIGN_OR_RETURN(
        reply, CallShard(shard, rpc::EmptyFrame(rpc::MsgType::kDropCaches)));
    if (reply.type != static_cast<uint8_t>(rpc::MsgType::kOkReply)) {
      return Status::Corruption(
          std::string("rpc: expected kOkReply, got ") +
          rpc::MsgTypeName(reply.type));
    }
  }
  return Status::OK();
}

Result<rpc::QueryReply> RemoteEngine::Query(const rpc::QueryRequest& req) {
  RemoteCallTracker tracker("remote.query");
  if (req.merge == rpc::QueryMerge::kRoute) {
    if (req.route_shard >= shards_.size()) {
      return Status::InvalidArgument(
          "route shard " + std::to_string(req.route_shard) +
          " out of range (have " + std::to_string(shards_.size()) + ")");
    }
    AggregatorMetrics::Get().routed_calls->Inc();
    rpc::Frame reply;
    MBQ_ASSIGN_OR_RETURN(reply,
                         CallShard(req.route_shard, rpc::EncodeQuery(req)));
    return rpc::DecodeQueryReply(reply);
  }
  AggregatorMetrics::Get().fanout_calls->Inc();
  rpc::Frame request = rpc::EncodeQuery(req);
  rpc::QueryReply merged;
  bool have_columns = false;
  for (uint32_t shard = 0; shard < shards_.size(); ++shard) {
    rpc::Frame reply;
    MBQ_ASSIGN_OR_RETURN(reply, CallShard(shard, request));
    rpc::QueryReply part;
    MBQ_ASSIGN_OR_RETURN(part, rpc::DecodeQueryReply(reply));
    if (!have_columns) {
      merged.columns = std::move(part.columns);
      have_columns = true;
    } else if (part.columns != merged.columns) {
      return Status::Corruption("shards returned different query columns");
    }
    merged.rows.insert(merged.rows.end(),
                       std::make_move_iterator(part.rows.begin()),
                       std::make_move_iterator(part.rows.end()));
  }
  AggregatorMetrics::Get().merged_rows->Inc(merged.rows.size());
  if (req.merge == rpc::QueryMerge::kDistinct) {
    SortRows(&merged.rows);
    merged.rows.erase(std::unique(merged.rows.begin(), merged.rows.end()),
                      merged.rows.end());
  }
  return merged;
}

}  // namespace mbq::core
