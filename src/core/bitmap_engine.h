#ifndef MBQ_CORE_BITMAP_ENGINE_H_
#define MBQ_CORE_BITMAP_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "bitmapstore/graph.h"
#include "bitmapstore/shortest_path.h"
#include "cache/adjacency_cache.h"
#include "core/engine.h"
#include "core/updates.h"
#include "core/write_path.h"
#include "obs/introspect.h"
#include "twitter/loaders.h"

namespace mbq::exec {
class ThreadPool;
}  // namespace mbq::exec

namespace mbq::core {

/// The imperative side of the study: each Table 2 query is a hand-written
/// sequence of navigation operations (select, neighbors, explode) against
/// the bitmap store, with counts kept in a map and sorted client-side —
/// the paper's Sparksee methodology, including its limitations (no
/// multi-predicate filtering, no server-side LIMIT).
class BitmapEngine : public MicroblogEngine {
 public:
  BitmapEngine(bitmapstore::Graph* graph, twitter::BitmapHandles handles)
      : graph_(graph), h_(handles) {}

  std::string name() const override { return "bitmapstore-navigation"; }

  Result<ValueRows> SelectUsersByFollowerCount(int64_t threshold) override;
  Result<ValueRows> FolloweesOf(int64_t uid) override;
  Result<ValueRows> TweetsOfFollowees(int64_t uid) override;
  Result<ValueRows> HashtagsUsedByFollowees(int64_t uid) override;
  Result<ValueRows> TopCoMentionedUsers(int64_t uid, int64_t n) override;
  Result<ValueRows> TopCoOccurringHashtags(const std::string& tag,
                                           int64_t n) override;
  Result<ValueRows> RecommendFolloweesOfFollowees(int64_t uid,
                                                  int64_t n) override;
  Result<ValueRows> RecommendFollowersOfFollowees(int64_t uid,
                                                  int64_t n) override;
  Result<ValueRows> CurrentInfluence(int64_t uid, int64_t n) override;
  Result<ValueRows> PotentialInfluence(int64_t uid, int64_t n) override;
  Result<int64_t> ShortestPathLength(int64_t uid_a, int64_t uid_b,
                                     uint32_t max_hops) override;

  /// Cold-cache reset: drops the store's page cache and empties the hot
  /// adjacency cache layered on it.
  Status DropCaches() override {
    if (adj_cache_ != nullptr) adj_cache_->Clear();
    return graph_->DropCaches();
  }

  /// Fans the per-element Neighbors loops of the heavy queries (Q3-Q5)
  /// out over `threads` workers; 1 (default) keeps everything sequential.
  /// `pool` is borrowed; null uses exec::ThreadPool::Default().
  void SetThreads(uint32_t threads, exec::ThreadPool* pool = nullptr) override;

  /// Turns the hot adjacency cache on (capacity 0 turns it off): every
  /// single-node Neighbors call the Table 2 queries issue is memoized,
  /// validated against the edge type's epoch. Safe across the worker
  /// threads of SetThreads — the cache is internally sharded and locked.
  void EnableAdjacencyCache(size_t capacity, uint64_t min_degree);
  bool adjacency_cache_enabled() const { return adj_cache_ != nullptr; }
  cache::CacheStats adjacency_cache_stats() const {
    return adj_cache_ != nullptr ? adj_cache_->stats() : cache::CacheStats{};
  }

  /// Turns the live write path on: builds the update applier and the
  /// EngineWriter (replaying the WAL when `config.wal_dir` points at an
  /// existing log). `base` is the bulk-loaded dataset the writer extends
  /// (borrowed; only id-space sizes are read, at open).
  Status EnableWrites(const WriteConfig& config, const twitter::Dataset& base);

  WritableEngine* AsWritable() override { return writer_.get(); }

  bitmapstore::Graph* graph() { return graph_; }
  const twitter::BitmapHandles& handles() const { return h_; }

  /// Navigation calls taking at least this many milliseconds are captured
  /// by the slow-query flight recorder (served at /slow, shell :slow).
  /// 0 captures every call; the default comes from MBQ_SLOW_QUERY_MILLIS
  /// (else 50 ms).
  void SetSlowQueryMillis(uint64_t millis) { slow_query_millis_ = millis; }
  uint64_t slow_query_millis() const { return slow_query_millis_; }

 private:
  /// Shared-lock snapshot covering one navigation call when the live
  /// write path is on (readers never observe a half-applied batch); a
  /// no-op guard for read-only engines.
  store::SnapshotRegistry::ReadSnapshot OpenReadSnapshot() const {
    return writer_ != nullptr ? writer_->snapshots().OpenSnapshot()
                              : store::SnapshotRegistry::ReadSnapshot();
  }

  Result<bitmapstore::Oid> UserByUid(int64_t uid) const;
  /// Neighbors() through the adjacency cache when enabled; identical
  /// result set either way (entries replay the store's own output).
  Result<bitmapstore::Objects> NeighborsCached(
      bitmapstore::Oid node, bitmapstore::TypeId etype,
      bitmapstore::EdgesDirection dir) const;
  /// For every element of `sources`, counts the neighbors reached via
  /// (etype, dir) — skipping `exclude` — into one map. Splits the source
  /// set across worker threads when SetThreads enabled parallelism;
  /// reads share the immutable bitmaps and the sharded page cache.
  Result<std::unordered_map<bitmapstore::Oid, int64_t>> CountNeighborsPerSource(
      const bitmapstore::Objects& sources, bitmapstore::TypeId etype,
      bitmapstore::EdgesDirection dir, bitmapstore::Oid exclude);
  /// Shared Q4 core: for each 1-step followee, gather `second_hop`
  /// neighbors, count candidates, drop direct followees and self.
  Result<ValueRows> Recommend(int64_t uid, int64_t n,
                              bitmapstore::EdgesDirection second_hop);
  /// Shared Q5 core: count mentioners of `uid`, keep (or drop) those who
  /// follow `uid`.
  Result<ValueRows> Influence(int64_t uid, int64_t n, bool keep_followers);

  bitmapstore::Graph* graph_;
  twitter::BitmapHandles h_;
  uint32_t threads_ = 1;
  uint64_t slow_query_millis_ = obs::DefaultSlowQueryMillis();
  exec::ThreadPool* pool_ = nullptr;
  std::unique_ptr<cache::AdjacencyCache> adj_cache_;
  std::unique_ptr<BitmapUpdateApplier> applier_;
  std::unique_ptr<EngineWriter> writer_;
};

}  // namespace mbq::core

#endif  // MBQ_CORE_BITMAP_ENGINE_H_
