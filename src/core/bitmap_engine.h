#ifndef MBQ_CORE_BITMAP_ENGINE_H_
#define MBQ_CORE_BITMAP_ENGINE_H_

#include <string>

#include "bitmapstore/graph.h"
#include "bitmapstore/shortest_path.h"
#include "core/engine.h"
#include "twitter/loaders.h"

namespace mbq::core {

/// The imperative side of the study: each Table 2 query is a hand-written
/// sequence of navigation operations (select, neighbors, explode) against
/// the bitmap store, with counts kept in a map and sorted client-side —
/// the paper's Sparksee methodology, including its limitations (no
/// multi-predicate filtering, no server-side LIMIT).
class BitmapEngine : public MicroblogEngine {
 public:
  BitmapEngine(bitmapstore::Graph* graph, twitter::BitmapHandles handles)
      : graph_(graph), h_(handles) {}

  std::string name() const override { return "bitmapstore-navigation"; }

  Result<ValueRows> SelectUsersByFollowerCount(int64_t threshold) override;
  Result<ValueRows> FolloweesOf(int64_t uid) override;
  Result<ValueRows> TweetsOfFollowees(int64_t uid) override;
  Result<ValueRows> HashtagsUsedByFollowees(int64_t uid) override;
  Result<ValueRows> TopCoMentionedUsers(int64_t uid, int64_t n) override;
  Result<ValueRows> TopCoOccurringHashtags(const std::string& tag,
                                           int64_t n) override;
  Result<ValueRows> RecommendFolloweesOfFollowees(int64_t uid,
                                                  int64_t n) override;
  Result<ValueRows> RecommendFollowersOfFollowees(int64_t uid,
                                                  int64_t n) override;
  Result<ValueRows> CurrentInfluence(int64_t uid, int64_t n) override;
  Result<ValueRows> PotentialInfluence(int64_t uid, int64_t n) override;
  Result<int64_t> ShortestPathLength(int64_t uid_a, int64_t uid_b,
                                     uint32_t max_hops) override;

  Status DropCaches() override { return graph_->DropCaches(); }

  bitmapstore::Graph* graph() { return graph_; }
  const twitter::BitmapHandles& handles() const { return h_; }

 private:
  Result<bitmapstore::Oid> UserByUid(int64_t uid) const;
  /// Shared Q4 core: for each 1-step followee, gather `second_hop`
  /// neighbors, count candidates, drop direct followees and self.
  Result<ValueRows> Recommend(int64_t uid, int64_t n,
                              bitmapstore::EdgesDirection second_hop);
  /// Shared Q5 core: count mentioners of `uid`, keep (or drop) those who
  /// follow `uid`.
  Result<ValueRows> Influence(int64_t uid, int64_t n, bool keep_followers);

  bitmapstore::Graph* graph_;
  twitter::BitmapHandles h_;
};

}  // namespace mbq::core

#endif  // MBQ_CORE_BITMAP_ENGINE_H_
