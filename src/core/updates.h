#ifndef MBQ_CORE_UPDATES_H_
#define MBQ_CORE_UPDATES_H_

#include <unordered_map>

#include "bitmapstore/graph.h"
#include "nodestore/graph_db.h"
#include "twitter/loaders.h"
#include "twitter/stream.h"

namespace mbq::core {

/// Applies a live update stream (twitter::UpdateStream) to the record
/// store. Each batch runs in one transaction — the paper's future-work
/// question is exactly whether the systems "handle update workloads",
/// and transactional batching is how the record store would take them.
class NodestoreUpdateApplier {
 public:
  /// The database must already carry the schema (handles resolvable) and
  /// the base dataset the stream extends.
  NodestoreUpdateApplier(nodestore::GraphDb* db,
                         const twitter::NodestoreHandles& handles,
                         const twitter::Dataset& base);

  /// Applies `events` in one transaction.
  Status ApplyBatch(const std::vector<twitter::StreamEvent>& events);

  uint64_t events_applied() const { return events_applied_; }

 private:
  Status ApplyOne(const twitter::StreamEvent& event);
  Result<nodestore::NodeId> UserNode(int64_t uid);
  Result<nodestore::NodeId> TweetNode(int64_t tid);
  Result<nodestore::NodeId> HashtagNode(const std::string& tag);

  nodestore::GraphDb* db_;
  twitter::NodestoreHandles h_;
  std::unordered_map<int64_t, nodestore::NodeId> users_;
  std::unordered_map<int64_t, nodestore::NodeId> tweets_;
  std::unordered_map<std::string, nodestore::NodeId> hashtags_;
  int64_t next_hid_;
  uint64_t events_applied_ = 0;
};

/// Applies the same stream to the bitmap store (no transactions — the
/// engine applies updates in place, as Sparksee does).
class BitmapUpdateApplier {
 public:
  BitmapUpdateApplier(bitmapstore::Graph* graph,
                      const twitter::BitmapHandles& handles,
                      const twitter::Dataset& base);

  Status ApplyBatch(const std::vector<twitter::StreamEvent>& events);

  uint64_t events_applied() const { return events_applied_; }

 private:
  Status ApplyOne(const twitter::StreamEvent& event);
  Result<bitmapstore::Oid> UserNode(int64_t uid);
  Result<bitmapstore::Oid> TweetNode(int64_t tid);
  Result<bitmapstore::Oid> HashtagNode(const std::string& tag);

  bitmapstore::Graph* graph_;
  twitter::BitmapHandles h_;
  std::unordered_map<int64_t, bitmapstore::Oid> users_;
  std::unordered_map<int64_t, bitmapstore::Oid> tweets_;
  std::unordered_map<std::string, bitmapstore::Oid> hashtags_;
  int64_t next_hid_;
  uint64_t events_applied_ = 0;
};

}  // namespace mbq::core

#endif  // MBQ_CORE_UPDATES_H_
