#ifndef MBQ_CORE_REMOTE_ENGINE_H_
#define MBQ_CORE_REMOTE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/partition.h"
#include "rpc/client.h"
#include "rpc/messages.h"

namespace mbq::core {

/// A MicroblogEngine whose data lives in remote shard daemons. Presents
/// the exact local interface, so CypherSession wrappers, caches, linting
/// and the introspection plane neither know nor care that calls leave
/// the process; this is also what `mbqd --aggregate` serves behind
/// ShardService.
///
/// Call routing (docs/CLUSTER.md has the full merge table):
///  - follows-only calls (Q2.1, Q4.1, Q4.2, Q6.1) and the replicated
///    user scan (Q1.1) route to a single shard — the social skeleton is
///    replicated, every shard has the whole answer;
///  - activity-anchored calls fan out to every shard and merge: plain
///    concatenation for Q2.2 (tweets are disjoint), distinct-union for
///    Q2.3, and count-sum + TopNCounts re-rank for Q3.x/Q5.x (per-tweet
///    counts over disjoint tweet sets sum exactly).
class RemoteEngine : public MicroblogEngine {
 public:
  struct ShardAddress {
    std::string host;
    uint16_t port = 0;
  };

  /// Dials every shard, validates the topology they report (distinct
  /// shard ids 0..N-1, consistent shard count, partition kind and user
  /// count) and orders clients by shard id. One address pointing at an
  /// aggregator is just the N=1 case.
  static Result<std::unique_ptr<RemoteEngine>> Connect(
      const std::vector<ShardAddress>& shards, int timeout_millis = 30000);

  std::string name() const override;

  Result<ValueRows> SelectUsersByFollowerCount(int64_t threshold) override;
  Result<ValueRows> FolloweesOf(int64_t uid) override;
  Result<ValueRows> TweetsOfFollowees(int64_t uid) override;
  Result<ValueRows> HashtagsUsedByFollowees(int64_t uid) override;
  Result<ValueRows> TopCoMentionedUsers(int64_t uid, int64_t n) override;
  Result<ValueRows> TopCoOccurringHashtags(const std::string& tag,
                                           int64_t n) override;
  Result<ValueRows> RecommendFolloweesOfFollowees(int64_t uid,
                                                  int64_t n) override;
  Result<ValueRows> RecommendFollowersOfFollowees(int64_t uid,
                                                  int64_t n) override;
  Result<ValueRows> CurrentInfluence(int64_t uid, int64_t n) override;
  Result<ValueRows> PotentialInfluence(int64_t uid, int64_t n) override;
  Result<int64_t> ShortestPathLength(int64_t uid_a, int64_t uid_b,
                                     uint32_t max_hops) override;

  /// Fans out to every shard; fails on the first shard that fails.
  Status DropCaches() override;

  /// The cluster plane is read-only: writes stay single-node until the
  /// reserved kWriteBatch frame (docs/CLUSTER.md) is implemented, so the
  /// remote kind never exposes a write surface — callers that probe
  /// AsWritable() fail cleanly instead of hanging on an unanswered frame.
  WritableEngine* AsWritable() override { return nullptr; }

  /// Remote mini-Cypher: kRoute passes one shard's reply through,
  /// kConcat/kDistinct fan out and merge rows. Fails with NotImplemented
  /// when a shard has no Cypher surface (bitmap engines).
  Result<rpc::QueryReply> Query(const rpc::QueryRequest& req);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  const Partitioner& partitioner() const { return partitioner_; }

 private:
  explicit RemoteEngine(std::vector<std::unique_ptr<rpc::RpcClient>> shards,
                        Partitioner partitioner);

  /// Every shard exchange funnels through here: measures the round trip
  /// into the per-shard `rpc.shard.<i>.latency` histogram and hands the
  /// RTT + the shard's reply-envelope timing to the active call tracker
  /// (remote_engine.cc), which is what /slow breakdowns are built from.
  Result<rpc::Frame> CallShard(uint32_t shard, const rpc::Frame& request);

  /// One kCall to one shard, rows reply expected.
  Result<ValueRows> CallRows(uint32_t shard, const rpc::CallRequest& req);
  /// Fan out a kCall to every shard; per-shard NotFound is tolerated
  /// (and returned) only when every shard reports it — with a replicated
  /// catalog the shards always agree on existence.
  Result<std::vector<ValueRows>> FanOutRows(const rpc::CallRequest& req);
  /// Fan out, then sum (key, count) rows by key and re-rank with
  /// TopNCounts — the exact-merge path for Q3.x/Q5.x.
  Result<ValueRows> FanOutCounts(const rpc::CallRequest& req, int64_t n);

  std::vector<std::unique_ptr<rpc::RpcClient>> shards_;  // by shard id
  Partitioner partitioner_;
};

/// Parses "host:port" (or just "port", implying 127.0.0.1).
Result<RemoteEngine::ShardAddress> ParseShardAddress(const std::string& spec);

}  // namespace mbq::core

#endif  // MBQ_CORE_REMOTE_ENGINE_H_
