#include "core/partition.h"

#include <cassert>
#include <unordered_set>

namespace mbq::core {

const char* PartitionKindName(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kNone: return "none";
    case PartitionKind::kHash: return "hash";
    case PartitionKind::kRange: return "range";
  }
  return "unknown";
}

Result<PartitionKind> ParsePartitionKind(const std::string& name) {
  if (name == "none") return PartitionKind::kNone;
  if (name == "hash") return PartitionKind::kHash;
  if (name == "range") return PartitionKind::kRange;
  return Status::InvalidArgument("unknown partition kind \"" + name +
                                 "\" (want none|hash|range)");
}

Partitioner::Partitioner(PartitionKind kind, uint32_t num_shards,
                         uint64_t num_users)
    : kind_(kind), num_shards_(num_shards == 0 ? 1 : num_shards),
      num_users_(num_users) {
  if (kind_ == PartitionKind::kNone) num_shards_ = 1;
}

uint64_t Partitioner::RangeStart(uint32_t shard) const {
  uint64_t base = num_users_ / num_shards_;
  uint64_t rem = num_users_ % num_shards_;
  // The first `rem` shards take one extra user each.
  return static_cast<uint64_t>(shard) * base +
         (shard < rem ? shard : rem);
}

uint32_t Partitioner::OwnerShard(int64_t uid) const {
  if (kind_ == PartitionKind::kNone || num_shards_ == 1) return 0;
  uint64_t u = static_cast<uint64_t>(uid < 0 ? -(uid + 1) : uid);
  if (kind_ == PartitionKind::kHash) {
    return static_cast<uint32_t>(u % num_shards_);
  }
  // Range: binary-search-free block math; clamp out-of-range uids to the
  // last shard so they route somewhere deterministic.
  if (u >= num_users_) return num_shards_ - 1;
  uint64_t base = num_users_ / num_shards_;
  uint64_t rem = num_users_ % num_shards_;
  uint64_t fat = (base + 1) * rem;  // users held by the first `rem` shards
  if (base == 0) return static_cast<uint32_t>(u);  // more shards than users
  if (u < fat) return static_cast<uint32_t>(u / (base + 1));
  return static_cast<uint32_t>(rem + (u - fat) / base);
}

uint64_t Partitioner::GlobalToLocal(int64_t uid) const {
  uint64_t u = static_cast<uint64_t>(uid);
  switch (kind_) {
    case PartitionKind::kNone: return u;
    case PartitionKind::kHash: return u / num_shards_;
    case PartitionKind::kRange: return u - RangeStart(OwnerShard(uid));
  }
  return u;
}

int64_t Partitioner::LocalToGlobal(uint32_t shard, uint64_t local) const {
  switch (kind_) {
    case PartitionKind::kNone: return static_cast<int64_t>(local);
    case PartitionKind::kHash:
      return static_cast<int64_t>(local * num_shards_ + shard);
    case PartitionKind::kRange:
      return static_cast<int64_t>(RangeStart(shard) + local);
  }
  return static_cast<int64_t>(local);
}

uint64_t Partitioner::OwnedCount(uint32_t shard) const {
  if (kind_ == PartitionKind::kNone) return num_users_;
  if (kind_ == PartitionKind::kHash) {
    uint64_t base = num_users_ / num_shards_;
    return base + (static_cast<uint64_t>(shard) < num_users_ % num_shards_
                       ? 1
                       : 0);
  }
  uint64_t base = num_users_ / num_shards_;
  return base +
         (static_cast<uint64_t>(shard) < num_users_ % num_shards_ ? 1 : 0);
}

twitter::Dataset MakeShardSlice(const twitter::Dataset& full,
                                const Partitioner& partitioner,
                                uint32_t shard_id,
                                SliceCounts* counts) {
  twitter::Dataset slice;
  SliceCounts local_counts;

  // Social skeleton: replicated verbatim. followers_count was
  // precomputed over the full follows graph, so replicated users carry
  // the globally correct value and Q1.1 answers identically everywhere.
  slice.users = full.users;
  slice.follows = full.follows;
  slice.hashtags = full.hashtags;
  for (const twitter::Dataset::User& user : full.users) {
    if (partitioner.OwnerShard(user.uid) == shard_id) {
      ++local_counts.owned_users;
    }
  }

  // Activity slice: a tweet and all its edges live on its poster's shard.
  std::unordered_set<int64_t> owned_tids;
  for (const twitter::Dataset::Tweet& tweet : full.tweets) {
    if (partitioner.OwnerShard(tweet.poster_uid) != shard_id) continue;
    owned_tids.insert(tweet.tid);
    slice.tweets.push_back(tweet);
  }
  local_counts.tweets = slice.tweets.size();
  for (const auto& [tid, uid] : full.mentions) {
    if (owned_tids.count(tid) == 0) continue;
    slice.mentions.emplace_back(tid, uid);
  }
  local_counts.mentions = slice.mentions.size();
  for (const auto& [tid, hid] : full.tags) {
    if (owned_tids.count(tid) == 0) continue;
    slice.tags.emplace_back(tid, hid);
  }
  local_counts.tags = slice.tags.size();
  for (const auto& [tid, original] : full.retweets) {
    if (owned_tids.count(tid) == 0) continue;
    // A retweet of a tweet on another shard would need a ghost node for
    // its target; ghosts would add phantom posts edges and break the
    // disjoint-activity invariant, so cross-shard retweets are dropped.
    if (owned_tids.count(original) == 0) {
      ++local_counts.dropped_retweets;
      continue;
    }
    slice.retweets.emplace_back(tid, original);
  }
  local_counts.retweets = slice.retweets.size();

  if (counts != nullptr) *counts = local_counts;
  return slice;
}

}  // namespace mbq::core
