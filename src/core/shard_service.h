#ifndef MBQ_CORE_SHARD_SERVICE_H_
#define MBQ_CORE_SHARD_SERVICE_H_

#include <functional>

#include "core/engine.h"
#include "rpc/messages.h"

namespace mbq::core {

/// Server-side dispatch: decodes request frames, invokes a
/// MicroblogEngine, encodes reply frames. The same service backs both
/// `mbqd` roles — a shard (engine = local engine over its slice) and the
/// aggregator (engine = RemoteEngine over N shards) — which is what lets
/// a client treat the aggregator as just another shard.
class ShardService {
 public:
  /// Executes a kQuery request (mini-Cypher). Shards back this with
  /// their CypherSession; the aggregator backs it with
  /// RemoteEngine::Query. Null answers kQuery with NotImplemented
  /// (bitmap shards have no Cypher surface).
  using QueryFn =
      std::function<Result<rpc::QueryReply>(const rpc::QueryRequest&)>;

  /// `engine` is borrowed and must outlive the service. `info` is what
  /// kHello is answered with.
  ShardService(MicroblogEngine* engine, rpc::HelloReply info,
               QueryFn query_fn = nullptr);

  /// The rpc::RpcServer::Handler: every request type in, one reply
  /// frame out. Errors become kError frames, never exceptions.
  ///
  /// A kTracedEnvelope request is unwrapped here: the wire context is
  /// adopted for the dispatch (so every span and per-call histogram the
  /// engine records belongs to the caller's trace), the server section
  /// lands in the span ring as "rpc.server.<inner type>", and the reply
  /// is re-wrapped with a ShardTiming breakdown of where the time went.
  rpc::Frame Handle(const rpc::Frame& request);

 private:
  Result<rpc::Frame> Dispatch(const rpc::Frame& request);
  Result<rpc::Frame> DispatchCall(const rpc::CallRequest& req);
  rpc::Frame HandleEnvelope(const rpc::Frame& request, uint64_t entry_nanos);

  MicroblogEngine* engine_;
  rpc::HelloReply info_;
  QueryFn query_fn_;
};

}  // namespace mbq::core

#endif  // MBQ_CORE_SHARD_SERVICE_H_
