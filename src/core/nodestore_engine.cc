#include "core/nodestore_engine.h"

namespace mbq::core {

using cypher::Params;
using cypher::QueryResult;
using cypher::RtValue;

namespace {

/// Table 2 query texts (mini-Cypher). Ties are broken on the grouping
/// key so both engines return identical top-n sets.
constexpr char kQ1Select[] =
    "MATCH (u:user) WHERE u.followers_count > $t RETURN u.uid";

constexpr char kQ21Followees[] =
    "MATCH (a:user {uid: $uid})-[:follows]->(f:user) RETURN f.uid";

constexpr char kQ22FolloweeTweets[] =
    "MATCH (a:user {uid: $uid})-[:follows]->(f:user)-[:posts]->(t:tweet) "
    "RETURN t.tid";

constexpr char kQ23FolloweeHashtags[] =
    "MATCH (a:user {uid: $uid})-[:follows]->(f:user)-[:posts]->(t:tweet)"
    "-[:tags]->(h:hashtag) RETURN DISTINCT h.tag";

constexpr char kQ31CoMentions[] =
    "MATCH (a:user {uid: $uid})<-[:mentions]-(t:tweet)-[:mentions]->(b:user) "
    "WHERE b.uid <> $uid "
    "RETURN b.uid, count(t) AS c ORDER BY c DESC, b.uid ASC LIMIT $n";

constexpr char kQ32CoHashtags[] =
    "MATCH (h:hashtag {tag: $tag})<-[:tags]-(t:tweet)-[:tags]->(g:hashtag) "
    "WHERE g.tag <> $tag "
    "RETURN g.tag, count(t) AS c ORDER BY c DESC, g.tag ASC LIMIT $n";

constexpr char kQ41Recommend[] =
    "MATCH (a:user {uid: $uid})-[:follows]->(f:user)-[:follows]->(c:user) "
    "WHERE c.uid <> $uid AND NOT (a)-[:follows]->(c) "
    "RETURN c.uid, count(f) AS cnt ORDER BY cnt DESC, c.uid ASC LIMIT $n";

constexpr char kQ42Recommend[] =
    "MATCH (a:user {uid: $uid})-[:follows]->(f:user)<-[:follows]-(c:user) "
    "WHERE c.uid <> $uid AND NOT (a)-[:follows]->(c) "
    "RETURN c.uid, count(f) AS cnt ORDER BY cnt DESC, c.uid ASC LIMIT $n";

constexpr char kQ51CurrentInfluence[] =
    "MATCH (a:user {uid: $uid})<-[:mentions]-(t:tweet)<-[:posts]-(u:user) "
    "WHERE u.uid <> $uid AND (u)-[:follows]->(a) "
    "RETURN u.uid, count(t) AS c ORDER BY c DESC, u.uid ASC LIMIT $n";

constexpr char kQ52PotentialInfluence[] =
    "MATCH (a:user {uid: $uid})<-[:mentions]-(t:tweet)<-[:posts]-(u:user) "
    "WHERE u.uid <> $uid AND NOT (u)-[:follows]->(a) "
    "RETURN u.uid, count(t) AS c ORDER BY c DESC, u.uid ASC LIMIT $n";

}  // namespace

const char* NodestoreEngine::kRecommendVariantA =
    "MATCH (a:user {uid: $uid})-[:follows*2..2]->(c:user) "
    "WHERE c.uid <> $uid AND NOT (a)-[:follows]->(c) "
    "RETURN c.uid, count(*) AS cnt ORDER BY cnt DESC, c.uid ASC LIMIT $n";

const char* NodestoreEngine::kRecommendVariantB = kQ41Recommend;

const char* NodestoreEngine::kRecommendVariantC =
    "MATCH (a:user {uid: $uid})-[:follows*1..2]->(c:user) "
    "WHERE c.uid <> $uid AND NOT (a)-[:follows]->(c) "
    "RETURN c.uid, count(*) AS cnt ORDER BY cnt DESC, c.uid ASC LIMIT $n";

Result<ValueRows> NodestoreEngine::RunToRows(const std::string& query,
                                             const Params& params) {
  MBQ_ASSIGN_OR_RETURN(QueryResult result, session_.Run(query, params));
  ValueRows rows;
  rows.reserve(result.rows.size());
  for (const cypher::Row& row : result.rows) {
    ValueRow out;
    out.reserve(row.size());
    for (const RtValue& v : row) {
      switch (v.kind) {
        case RtValue::Kind::kNull:
          out.push_back(Value::Null());
          break;
        case RtValue::Kind::kValue:
          out.push_back(v.value);
          break;
        default:
          return Status::Internal(
              "workload query returned a non-scalar column");
      }
    }
    rows.push_back(std::move(out));
  }
  return rows;
}

Result<ValueRows> NodestoreEngine::SelectUsersByFollowerCount(
    int64_t threshold) {
  return RunToRows(kQ1Select, {{"t", Value::Int(threshold)}});
}

Result<ValueRows> NodestoreEngine::FolloweesOf(int64_t uid) {
  return RunToRows(kQ21Followees, {{"uid", Value::Int(uid)}});
}

Result<ValueRows> NodestoreEngine::TweetsOfFollowees(int64_t uid) {
  return RunToRows(kQ22FolloweeTweets, {{"uid", Value::Int(uid)}});
}

Result<ValueRows> NodestoreEngine::HashtagsUsedByFollowees(int64_t uid) {
  return RunToRows(kQ23FolloweeHashtags, {{"uid", Value::Int(uid)}});
}

Result<ValueRows> NodestoreEngine::TopCoMentionedUsers(int64_t uid,
                                                       int64_t n) {
  return RunToRows(kQ31CoMentions,
                   {{"uid", Value::Int(uid)}, {"n", Value::Int(n)}});
}

Result<ValueRows> NodestoreEngine::TopCoOccurringHashtags(
    const std::string& tag, int64_t n) {
  return RunToRows(kQ32CoHashtags,
                   {{"tag", Value::String(tag)}, {"n", Value::Int(n)}});
}

Result<ValueRows> NodestoreEngine::RecommendFolloweesOfFollowees(int64_t uid,
                                                                 int64_t n) {
  return RunToRows(kQ41Recommend,
                   {{"uid", Value::Int(uid)}, {"n", Value::Int(n)}});
}

Result<ValueRows> NodestoreEngine::RecommendFollowersOfFollowees(int64_t uid,
                                                                 int64_t n) {
  return RunToRows(kQ42Recommend,
                   {{"uid", Value::Int(uid)}, {"n", Value::Int(n)}});
}

Result<ValueRows> NodestoreEngine::CurrentInfluence(int64_t uid, int64_t n) {
  return RunToRows(kQ51CurrentInfluence,
                   {{"uid", Value::Int(uid)}, {"n", Value::Int(n)}});
}

Result<ValueRows> NodestoreEngine::PotentialInfluence(int64_t uid, int64_t n) {
  return RunToRows(kQ52PotentialInfluence,
                   {{"uid", Value::Int(uid)}, {"n", Value::Int(n)}});
}

Result<int64_t> NodestoreEngine::ShortestPathLength(int64_t uid_a,
                                                    int64_t uid_b,
                                                    uint32_t max_hops) {
  std::string query =
      "MATCH (a:user {uid: $a}), (b:user {uid: $b}), "
      "p = shortestPath((a)-[:follows*.." +
      std::to_string(max_hops) + "]->(b)) RETURN length(p)";
  MBQ_ASSIGN_OR_RETURN(
      ValueRows rows,
      RunToRows(query, {{"a", Value::Int(uid_a)}, {"b", Value::Int(uid_b)}}));
  if (rows.empty()) return -1;
  return rows[0][0].AsInt();
}

Status NodestoreEngine::EnableWrites(const WriteConfig& config,
                                     const twitter::Dataset& base) {
  MBQ_ASSIGN_OR_RETURN(twitter::NodestoreHandles handles,
                       twitter::ResolveNodestoreHandles(db_));
  applier_ = std::make_unique<NodestoreUpdateApplier>(db_, handles, base);
  WriteConfig seeded = config;
  if (seeded.first_fresh_tid == 0) {
    seeded.first_fresh_tid = static_cast<int64_t>(base.tweets.size());
  }
  MBQ_ASSIGN_OR_RETURN(
      writer_,
      EngineWriter::Open(seeded, &db_->mutable_epochs(),
                         [this](const std::vector<twitter::StreamEvent>& ev) {
                           return applier_->ApplyBatch(ev);
                         }));
  // Cypher reads open shared snapshots, CREATE/SET/DELETE queries run in
  // the exclusive commit section — same discipline as WriteBatch commits.
  session_.SetSnapshotRegistry(&writer_->snapshots());
  return Status::OK();
}

}  // namespace mbq::core
