#include "core/shard_service.h"

#include <chrono>
#include <cstring>
#include <mutex>

#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "util/clock.h"

namespace mbq::core {

namespace {

/// Per-call latency histograms, indexed by NavCall wire value. The names
/// are spelled out literally so the docs link checker can hold
/// docs/OBSERVABILITY.md to account for every one of them.
obs::Histogram* CallLatency(rpc::NavCall call) {
  static obs::Histogram* table[12] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    auto hist = [&reg](const char* name) {
      return reg.GetHistogram(name, "us",
                              "Server-side latency of this navigation call");
    };
    table[1] = hist("rpc.call.select_users_by_follower_count.latency");
    table[2] = hist("rpc.call.followees_of.latency");
    table[3] = hist("rpc.call.tweets_of_followees.latency");
    table[4] = hist("rpc.call.hashtags_used_by_followees.latency");
    table[5] = hist("rpc.call.top_co_mentioned_users.latency");
    table[6] = hist("rpc.call.top_co_occurring_hashtags.latency");
    table[7] = hist("rpc.call.recommend_followees_of_followees.latency");
    table[8] = hist("rpc.call.recommend_followers_of_followees.latency");
    table[9] = hist("rpc.call.current_influence.latency");
    table[10] = hist("rpc.call.potential_influence.latency");
    table[11] = hist("rpc.call.shortest_path_length.latency");
  });
  return table[static_cast<uint8_t>(call)];
}

}  // namespace

namespace {

/// Overwrites the four ShardTiming words of an encoded reply envelope in
/// place. Timing can only be final *after* the envelope is encoded (the
/// serialize component is the encode itself), so the encoder writes
/// zeros and this patches the fixed-offset slot: 25 bytes of ids + flags
/// precede it (docs/CLUSTER.md).
void PatchEnvelopeTiming(rpc::Frame* frame, const rpc::ShardTiming& timing) {
  constexpr size_t kTimingOffset = 8 + 8 + 8 + 1;
  const uint64_t words[4] = {timing.queue_nanos, timing.execute_nanos,
                             timing.serialize_nanos, timing.reply_nanos};
  if (frame->body.size() < kTimingOffset + sizeof(words)) return;
  for (size_t w = 0; w < 4; ++w) {
    for (size_t b = 0; b < 8; ++b) {
      frame->body[kTimingOffset + w * 8 + b] =
          static_cast<uint8_t>(words[w] >> (b * 8));
    }
  }
}

}  // namespace

ShardService::ShardService(MicroblogEngine* engine, rpc::HelloReply info,
                           QueryFn query_fn)
    : engine_(engine), info_(std::move(info)), query_fn_(std::move(query_fn)) {}

rpc::Frame ShardService::Handle(const rpc::Frame& request) {
  uint64_t entry_nanos = WallClock().NowNanos();
  if (request.type == static_cast<uint8_t>(rpc::MsgType::kTracedEnvelope)) {
    return HandleEnvelope(request, entry_nanos);
  }
  // Bare kCall/kQuery frames are an ingress in their own right (an
  // untraced client, or an old peer): mint a root context so the local
  // spans — and any fan-out the aggregator's engine performs — are still
  // stitched under one trace id.
  if (request.type == static_cast<uint8_t>(rpc::MsgType::kCall) ||
      request.type == static_cast<uint8_t>(rpc::MsgType::kQuery)) {
    obs::ScopedTraceContext scope(obs::MintTraceContext());
    Result<rpc::Frame> reply = Dispatch(request);
    if (reply.ok()) return *std::move(reply);
    return rpc::EncodeError(reply.status());
  }
  Result<rpc::Frame> reply = Dispatch(request);
  if (reply.ok()) return *std::move(reply);
  return rpc::EncodeError(reply.status());
}

rpc::Frame ShardService::HandleEnvelope(const rpc::Frame& request,
                                        uint64_t entry_nanos) {
  Result<rpc::TracedEnvelope> env = rpc::DecodeTracedEnvelope(request);
  if (!env.ok()) return rpc::EncodeError(env.status());
  obs::TraceMetrics::Get().envelope_received->Inc();

  // Adopt the wire context: same trace, the sender's span as parent, a
  // fresh span for the server section.
  obs::TraceContext ctx;
  ctx.trace_hi = env->trace_hi;
  ctx.trace_lo = env->trace_lo;
  ctx.parent_span_id = env->span_id;
  ctx.span_id = obs::NextSpanId();
  ctx.sampled = env->sampled;
  obs::ScopedTraceContext scope(ctx);
  obs::TraceMetrics::Get().adopted->Inc();

  uint64_t dispatch_nanos = WallClock().NowNanos();
  Result<rpc::Frame> inner_reply = Dispatch(env->inner);
  rpc::Frame reply_frame = inner_reply.ok()
                               ? *std::move(inner_reply)
                               : rpc::EncodeError(inner_reply.status());
  uint64_t done_nanos = WallClock().NowNanos();
  obs::SpanRecorder::Global().Record(
      std::string("rpc.server.") + rpc::MsgTypeName(env->inner.type), "rpc",
      entry_nanos, done_nanos - entry_nanos);

  // A near-cap reply goes back bare rather than blowing kMaxBodyBytes;
  // the client treats it as a reply with no timing.
  if (reply_frame.body.size() + 64 >= rpc::kMaxBodyBytes) return reply_frame;

  rpc::TracedEnvelope reply_env;
  reply_env.trace_hi = env->trace_hi;
  reply_env.trace_lo = env->trace_lo;
  reply_env.span_id = ctx.span_id;
  reply_env.sampled = env->sampled;
  reply_env.has_timing = true;  // encoded as zeros, patched below
  reply_env.inner = std::move(reply_frame);
  rpc::Frame out = rpc::EncodeTracedEnvelope(reply_env);
  uint64_t encoded_nanos = WallClock().NowNanos();
  rpc::ShardTiming timing;
  timing.queue_nanos = dispatch_nanos - entry_nanos;
  timing.execute_nanos = done_nanos - dispatch_nanos;
  timing.serialize_nanos = encoded_nanos - done_nanos;
  timing.reply_nanos = encoded_nanos - entry_nanos;
  PatchEnvelopeTiming(&out, timing);
  return out;
}

Result<rpc::Frame> ShardService::Dispatch(const rpc::Frame& request) {
  switch (static_cast<rpc::MsgType>(request.type)) {
    case rpc::MsgType::kHello:
      return rpc::EncodeHelloReply(info_);
    case rpc::MsgType::kPing:
      return rpc::EmptyFrame(rpc::MsgType::kPong);
    case rpc::MsgType::kCall: {
      rpc::CallRequest req;
      MBQ_ASSIGN_OR_RETURN(req, rpc::DecodeCall(request));
      return DispatchCall(req);
    }
    case rpc::MsgType::kQuery: {
      if (!query_fn_) {
        return Status::NotImplemented(
            "this shard's engine has no mini-Cypher surface");
      }
      rpc::QueryRequest req;
      MBQ_ASSIGN_OR_RETURN(req, rpc::DecodeQuery(request));
      rpc::QueryReply reply;
      MBQ_ASSIGN_OR_RETURN(reply, query_fn_(req));
      return rpc::EncodeQueryReply(reply);
    }
    case rpc::MsgType::kDropCaches:
      MBQ_RETURN_IF_ERROR(engine_->DropCaches());
      return rpc::EmptyFrame(rpc::MsgType::kOkReply);
    case rpc::MsgType::kWriteBatch:
      // Reserved in protocol version 1 (docs/CLUSTER.md): the wire value
      // is assigned so peers agree on its meaning, but no shard applies
      // remote writes yet — replicated commit needs cross-shard ordering
      // the single-node WAL does not provide.
      return Status::NotImplemented(
          "rpc: kWriteBatch is reserved — cluster writes are not "
          "implemented; open the engine locally with enable_writes");
    default:
      return Status::NotImplemented(
          std::string("rpc: server cannot handle ") +
          rpc::MsgTypeName(request.type) + " frames");
  }
}

Result<rpc::Frame> ShardService::DispatchCall(const rpc::CallRequest& req) {
  auto start = std::chrono::steady_clock::now();
  Result<rpc::Frame> reply = [&]() -> Result<rpc::Frame> {
    auto rows = [](Result<ValueRows> r) -> Result<rpc::Frame> {
      MBQ_RETURN_IF_ERROR(r.status());
      return rpc::EncodeRowsReply(*std::move(r));
    };
    switch (req.call) {
      case rpc::NavCall::kSelectUsersByFollowerCount:
        return rows(engine_->SelectUsersByFollowerCount(req.uid));
      case rpc::NavCall::kFolloweesOf:
        return rows(engine_->FolloweesOf(req.uid));
      case rpc::NavCall::kTweetsOfFollowees:
        return rows(engine_->TweetsOfFollowees(req.uid));
      case rpc::NavCall::kHashtagsUsedByFollowees:
        return rows(engine_->HashtagsUsedByFollowees(req.uid));
      case rpc::NavCall::kTopCoMentionedUsers:
        return rows(engine_->TopCoMentionedUsers(req.uid, req.arg));
      case rpc::NavCall::kTopCoOccurringHashtags:
        return rows(engine_->TopCoOccurringHashtags(req.tag, req.arg));
      case rpc::NavCall::kRecommendFolloweesOfFollowees:
        return rows(engine_->RecommendFolloweesOfFollowees(req.uid, req.arg));
      case rpc::NavCall::kRecommendFollowersOfFollowees:
        return rows(engine_->RecommendFollowersOfFollowees(req.uid, req.arg));
      case rpc::NavCall::kCurrentInfluence:
        return rows(engine_->CurrentInfluence(req.uid, req.arg));
      case rpc::NavCall::kPotentialInfluence:
        return rows(engine_->PotentialInfluence(req.uid, req.arg));
      case rpc::NavCall::kShortestPathLength: {
        int64_t length;
        MBQ_ASSIGN_OR_RETURN(
            length, engine_->ShortestPathLength(
                        req.uid, req.arg,
                        static_cast<uint32_t>(req.max_hops)));
        return rpc::EncodeIntReply(length);
      }
    }
    return Status::Corruption("rpc: unknown navigation call");
  }();
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  if (obs::Histogram* hist = CallLatency(req.call)) {
    hist->Record(static_cast<uint64_t>(elapsed.count()));
  }
  return reply;
}

}  // namespace mbq::core
