#ifndef MBQ_CORE_ENGINE_H_
#define MBQ_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "util/result.h"

namespace mbq::nodestore {
class GraphDb;
}  // namespace mbq::nodestore
namespace mbq::bitmapstore {
class Graph;
}  // namespace mbq::bitmapstore
namespace mbq::twitter {
struct BitmapHandles;
}  // namespace mbq::twitter
namespace mbq::exec {
class ThreadPool;
}  // namespace mbq::exec
namespace mbq::twitter {
struct Dataset;
}  // namespace mbq::twitter
namespace mbq::store {
class WriteBatch;
class SnapshotRegistry;
class DeltaStore;
class Wal;
}  // namespace mbq::store

namespace mbq::core {

using common::Value;

/// Engine-neutral result rows, so the two implementations can be compared
/// for agreement and timed identically.
using ValueRow = std::vector<Value>;
using ValueRows = std::vector<ValueRow>;

/// The live write surface of an engine, discovered — never dynamic_cast —
/// via MicroblogEngine::AsWritable(). The Table 2 surface stays read-only;
/// engines opened with EngineOptions.enable_writes additionally expose
/// this extension, which funnels every mutation (a typed single op or a
/// packed group) through one WriteBatch commit path: WAL staging, the
/// exclusive snapshot section, base-store apply, delta journaling (see
/// docs/WRITES.md).
class WritableEngine {
 public:
  virtual ~WritableEngine() = default;

  /// Applies `batch` atomically with respect to snapshot readers: a
  /// concurrent read observes all of the batch or none of it. Taken by
  /// value — the commit path assigns fresh tweet ids in place. Empty
  /// batches are a no-op. On return the batch is durable (when a WAL is
  /// configured) and visible to every subsequent read on this engine.
  virtual Status Commit(store::WriteBatch batch) = 0;

  /// Typed single-op writes — the live half of the Table 2 surface.
  /// Each builds a one-op WriteBatch and commits it, so single ops and
  /// group commit share one path. PostTweet assigns the new tweet id
  /// internally (ids continue past the bulk-loaded dataset).
  Status PostTweet(int64_t uid, std::string text = std::string());
  Status Follow(int64_t src_uid, int64_t dst_uid);
  Status Unfollow(int64_t src_uid, int64_t dst_uid);
  Status AddMention(int64_t tid, int64_t uid);

  /// Snapshot coordination: reads open shared snapshots here, commits
  /// run exclusive (store/delta/snapshot.h).
  virtual store::SnapshotRegistry& snapshots() = 0;
  /// The append-only journal of committed ops (introspection, checkdb).
  virtual const store::DeltaStore& delta() const = 0;
  /// The engine's write-ahead log; null when opened without wal_dir.
  virtual const store::Wal* wal() const = 0;
  /// The next tweet id PostTweet would assign.
  virtual int64_t next_tid() const = 0;
};

/// The paper's Table 2 workload, one method per exemplar query, exposed
/// uniformly over both engines. Implementations:
///  - NodestoreEngine executes declarative mini-Cypher (what the paper
///    ran on Neo4j);
///  - BitmapEngine drives the imperative navigation API, maintaining
///    counts in a map and sorting client-side (what the paper did with
///    Sparksee, whose API "does not provide the functionality to limit
///    the returned results").
class MicroblogEngine {
 public:
  virtual ~MicroblogEngine() = default;

  virtual std::string name() const = 0;

  /// Q1.1: users with followers_count greater than `threshold`.
  virtual Result<ValueRows> SelectUsersByFollowerCount(int64_t threshold) = 0;
  /// Q2.1: uids of all followees of `uid`.
  virtual Result<ValueRows> FolloweesOf(int64_t uid) = 0;
  /// Q2.2: tids of all tweets posted by followees of `uid`.
  virtual Result<ValueRows> TweetsOfFollowees(int64_t uid) = 0;
  /// Q2.3: distinct hashtags used by followees of `uid`.
  virtual Result<ValueRows> HashtagsUsedByFollowees(int64_t uid) = 0;
  /// Q3.1: top-n users most co-mentioned with `uid` -> (uid, count).
  virtual Result<ValueRows> TopCoMentionedUsers(int64_t uid, int64_t n) = 0;
  /// Q3.2: top-n hashtags co-occurring with `tag` -> (tag, count).
  virtual Result<ValueRows> TopCoOccurringHashtags(const std::string& tag,
                                                   int64_t n) = 0;
  /// Q4.1: top-n followees of `uid`'s followees not already followed.
  virtual Result<ValueRows> RecommendFolloweesOfFollowees(int64_t uid,
                                                          int64_t n) = 0;
  /// Q4.2: top-n followers of `uid`'s followees not already followed.
  virtual Result<ValueRows> RecommendFollowersOfFollowees(int64_t uid,
                                                          int64_t n) = 0;
  /// Q5.1: top-n mentioners of `uid` who already follow `uid` (current
  /// influence).
  virtual Result<ValueRows> CurrentInfluence(int64_t uid, int64_t n) = 0;
  /// Q5.2: top-n mentioners of `uid` who do not follow `uid` (potential
  /// influence).
  virtual Result<ValueRows> PotentialInfluence(int64_t uid, int64_t n) = 0;
  /// Q6.1: follows-path length between two users, or -1 when none exists
  /// within `max_hops` (the paper bounds the search at 3 hops).
  virtual Result<int64_t> ShortestPathLength(int64_t uid_a, int64_t uid_b,
                                             uint32_t max_hops) = 0;

  /// Drops page caches — and any read caches layered on them — for
  /// cold-cache experiments.
  virtual Status DropCaches() = 0;

  /// Worker count for the engine's parallel paths; the base implementation
  /// is a no-op so engines without a parallel mode satisfy the interface.
  /// `pool` is borrowed and must outlive the engine; null uses the
  /// process-wide default pool.
  virtual void SetThreads(uint32_t threads, exec::ThreadPool* pool = nullptr) {
    (void)threads;
    (void)pool;
  }

  /// The engine's live write surface, or null for read-only engines
  /// (the default, and always for EngineKind::kRemote — cluster writes
  /// are reserved wire protocol, see docs/CLUSTER.md). Callers branch on
  /// this instead of dynamic_cast so the read/write split stays an API
  /// decision, not an RTTI one.
  virtual WritableEngine* AsWritable() { return nullptr; }
};

/// Which Table 2 implementation OpenEngine builds.
enum class EngineKind {
  kNodestore,  ///< declarative mini-Cypher over the record store
  kBitmap,     ///< imperative navigation over the bitmap store
  kRemote,     ///< RPC fan-out to mbqd shard daemons (docs/CLUSTER.md)
};

/// The one configuration surface for constructing engines. Callers fill
/// the store pointers for the kind they open (`db` for kNodestore;
/// `graph` + `handles` for kBitmap) and tune the shared knobs; benches
/// and tests go through this instead of the concrete constructors, so new
/// knobs reach every harness without touching call sites.
struct EngineOptions {
  /// Record store (required for EngineKind::kNodestore).
  nodestore::GraphDb* db = nullptr;
  /// Bitmap store and its loaded type/attribute handles (required for
  /// EngineKind::kBitmap). `handles` is copied at open.
  bitmapstore::Graph* graph = nullptr;
  const twitter::BitmapHandles* handles = nullptr;

  /// Worker count for parallel paths; 1 is fully sequential. `pool` is
  /// borrowed (null = process default).
  uint32_t threads = 1;
  exec::ThreadPool* pool = nullptr;

  /// Query result cache (nodestore only: it memoizes Cypher results).
  bool result_cache = false;
  size_t result_cache_capacity = 256;  // entries
  /// Hot adjacency cache (both engines).
  bool adjacency_cache = false;
  size_t adjacency_cache_capacity = 4096;  // entries
  uint64_t adjacency_min_degree = 8;

  /// Shard daemons to dial (required for EngineKind::kRemote). Each
  /// entry is "host:port" or just "port" (implying loopback); one entry
  /// per shard, order does not matter — shards are sorted by the id
  /// they report at hello time.
  std::vector<std::string> shard_addresses;
  /// Per-syscall RPC timeout towards the shards.
  int rpc_timeout_millis = 30000;

  /// Live write path (kNodestore / kBitmap only). When set, the opened
  /// engine exposes WritableEngine via AsWritable() and every read runs
  /// under a shared snapshot. Requires `dataset` — the bulk-loaded base
  /// the writer extends (it seeds fresh tweet/hashtag id allocation).
  bool enable_writes = false;
  const twitter::Dataset* dataset = nullptr;
  /// Directory for the group-commit WAL; empty commits without logging
  /// (tests, throwaway benches). See docs/WRITES.md for the format.
  std::string wal_dir;
  /// How long a commit lingers so concurrent committers share one fsync.
  uint32_t group_commit_window_micros = 0;
};

/// Builds an engine of `kind` configured per `options`. Fails with
/// InvalidArgument when the stores the kind needs are missing.
Result<std::unique_ptr<MicroblogEngine>> OpenEngine(
    EngineKind kind, const EngineOptions& options);

/// Canonicalizes rows for cross-engine comparison: sorts lexicographically.
void SortRows(ValueRows* rows);

/// Top-n helper with deterministic tie-breaking (count desc, then key
/// asc) shared by both engines so results agree exactly.
ValueRows TopNCounts(const std::vector<std::pair<Value, int64_t>>& counts,
                     int64_t n);

}  // namespace mbq::core

#endif  // MBQ_CORE_ENGINE_H_
