#include "core/engine.h"

#include <algorithm>

#include "core/bitmap_engine.h"
#include "core/nodestore_engine.h"
#include "core/remote_engine.h"
#include "core/write_path.h"
#include "cypher/session.h"
#include "twitter/dataset.h"

namespace mbq::core {

namespace {

/// Shared by the two local kinds: validates the write knobs and builds
/// the WriteConfig EnableWrites expects.
Result<WriteConfig> WriteConfigFrom(const EngineOptions& options) {
  if (options.dataset == nullptr) {
    return Status::InvalidArgument(
        "OpenEngine: enable_writes needs EngineOptions.dataset (the "
        "bulk-loaded base the writer extends)");
  }
  WriteConfig config;
  config.wal_dir = options.wal_dir;
  config.group_commit_window_micros = options.group_commit_window_micros;
  return config;
}

}  // namespace

Result<std::unique_ptr<MicroblogEngine>> OpenEngine(
    EngineKind kind, const EngineOptions& options) {
  switch (kind) {
    case EngineKind::kNodestore: {
      if (options.db == nullptr) {
        return Status::InvalidArgument(
            "OpenEngine(kNodestore) needs EngineOptions.db");
      }
      auto engine = std::make_unique<NodestoreEngine>(options.db);
      cypher::SessionOptions session;
      session.threads = options.threads == 0 ? 1 : options.threads;
      session.pool = options.pool;
      session.result_cache = options.result_cache;
      session.result_cache_capacity = options.result_cache_capacity;
      session.adjacency_cache = options.adjacency_cache;
      session.adjacency_cache_capacity = options.adjacency_cache_capacity;
      session.adjacency_min_degree = options.adjacency_min_degree;
      engine->Configure(session);
      if (options.enable_writes) {
        MBQ_ASSIGN_OR_RETURN(WriteConfig config, WriteConfigFrom(options));
        MBQ_RETURN_IF_ERROR(engine->EnableWrites(config, *options.dataset));
      }
      return std::unique_ptr<MicroblogEngine>(std::move(engine));
    }
    case EngineKind::kBitmap: {
      if (options.graph == nullptr || options.handles == nullptr) {
        return Status::InvalidArgument(
            "OpenEngine(kBitmap) needs EngineOptions.graph and .handles");
      }
      auto engine =
          std::make_unique<BitmapEngine>(options.graph, *options.handles);
      engine->SetThreads(options.threads, options.pool);
      if (options.adjacency_cache) {
        engine->EnableAdjacencyCache(options.adjacency_cache_capacity,
                                     options.adjacency_min_degree);
      }
      if (options.enable_writes) {
        MBQ_ASSIGN_OR_RETURN(WriteConfig config, WriteConfigFrom(options));
        MBQ_RETURN_IF_ERROR(engine->EnableWrites(config, *options.dataset));
      }
      return std::unique_ptr<MicroblogEngine>(std::move(engine));
    }
    case EngineKind::kRemote: {
      if (options.enable_writes) {
        return Status::NotImplemented(
            "OpenEngine(kRemote): the cluster plane is read-only — "
            "kWriteBatch frames are reserved but unimplemented "
            "(docs/CLUSTER.md)");
      }
      if (options.shard_addresses.empty()) {
        return Status::InvalidArgument(
            "OpenEngine(kRemote) needs EngineOptions.shard_addresses");
      }
      std::vector<RemoteEngine::ShardAddress> shards;
      shards.reserve(options.shard_addresses.size());
      for (const std::string& spec : options.shard_addresses) {
        RemoteEngine::ShardAddress addr;
        MBQ_ASSIGN_OR_RETURN(addr, ParseShardAddress(spec));
        shards.push_back(std::move(addr));
      }
      std::unique_ptr<RemoteEngine> engine;
      MBQ_ASSIGN_OR_RETURN(
          engine, RemoteEngine::Connect(shards, options.rpc_timeout_millis));
      return std::unique_ptr<MicroblogEngine>(std::move(engine));
    }
  }
  return Status::InvalidArgument("unknown EngineKind");
}

void SortRows(ValueRows* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const ValueRow& a, const ValueRow& b) {
              for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
                int c = a[i].Compare(b[i]);
                if (c != 0) return c < 0;
              }
              return a.size() < b.size();
            });
}

ValueRows TopNCounts(const std::vector<std::pair<Value, int64_t>>& counts,
                     int64_t n) {
  std::vector<std::pair<Value, int64_t>> sorted = counts;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first.Compare(b.first) < 0;
            });
  if (n >= 0 && sorted.size() > static_cast<size_t>(n)) {
    sorted.resize(static_cast<size_t>(n));
  }
  ValueRows rows;
  rows.reserve(sorted.size());
  for (auto& [key, count] : sorted) {
    rows.push_back({std::move(key), Value::Int(count)});
  }
  return rows;
}

}  // namespace mbq::core
