#include "core/engine.h"

#include <algorithm>

namespace mbq::core {

void SortRows(ValueRows* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const ValueRow& a, const ValueRow& b) {
              for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
                int c = a[i].Compare(b[i]);
                if (c != 0) return c < 0;
              }
              return a.size() < b.size();
            });
}

ValueRows TopNCounts(const std::vector<std::pair<Value, int64_t>>& counts,
                     int64_t n) {
  std::vector<std::pair<Value, int64_t>> sorted = counts;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first.Compare(b.first) < 0;
            });
  if (n >= 0 && sorted.size() > static_cast<size_t>(n)) {
    sorted.resize(static_cast<size_t>(n));
  }
  ValueRows rows;
  rows.reserve(sorted.size());
  for (auto& [key, count] : sorted) {
    rows.push_back({std::move(key), Value::Int(count)});
  }
  return rows;
}

}  // namespace mbq::core
