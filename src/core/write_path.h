#ifndef MBQ_CORE_WRITE_PATH_H_
#define MBQ_CORE_WRITE_PATH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "store/delta/delta_store.h"
#include "store/delta/snapshot.h"
#include "store/delta/wal.h"
#include "store/delta/write_batch.h"
#include "twitter/stream.h"
#include "util/result.h"

namespace mbq::cache {
class EpochRegistry;
}  // namespace mbq::cache

namespace mbq::core {

/// Write-path knobs, mirrored from EngineOptions by OpenEngine.
struct WriteConfig {
  /// WAL directory; empty runs without a log (no crash durability).
  std::string wal_dir;
  uint32_t group_commit_window_micros = 0;
  /// First tweet id PostTweet may assign — one past the bulk-loaded
  /// dataset (WAL replay pushes it further past any replayed tid).
  int64_t first_fresh_tid = 0;
};

/// The one WritableEngine implementation, shared by both backends: each
/// engine supplies an `ApplyFn` that folds a batch's events into its
/// base store, and EngineWriter wraps it with the commit protocol —
///
///   assign fresh tweet ids
///   -> exclusive snapshot section (readers drain, none can start)
///        apply to base store   (epoch bumps invalidate PR 3 caches)
///        stage the WAL record  (WAL order == apply order)
///        journal into the delta store at the new commit epoch
///   -> section ends (commit epoch publishes)
///   -> group-commit fsync (batched across concurrent committers)
///
/// Apply failures surface before anything is logged or journaled: a
/// batch that did not apply is not in the WAL, so replay-on-open only
/// ever re-applies batches that succeeded.
class EngineWriter : public WritableEngine {
 public:
  using ApplyFn =
      std::function<Status(const std::vector<twitter::StreamEvent>&)>;

  /// Opens the writer: opens/replays the WAL (when configured), re-applies
  /// every recovered batch through `apply`, and seeds tweet id allocation
  /// past both the dataset and the replayed tail. `epochs` is the
  /// engine's per-domain registry (borrowed, may be null).
  static Result<std::unique_ptr<EngineWriter>> Open(
      const WriteConfig& config, cache::EpochRegistry* epochs, ApplyFn apply);

  Status Commit(store::WriteBatch batch) override;

  store::SnapshotRegistry& snapshots() override { return snapshots_; }
  const store::DeltaStore& delta() const override { return delta_; }
  const store::Wal* wal() const override { return wal_.get(); }
  int64_t next_tid() const override {
    return next_tid_.load(std::memory_order_relaxed);
  }
  /// Batches recovered by WAL replay at open.
  uint64_t replayed_batches() const { return replayed_batches_; }

 private:
  EngineWriter(cache::EpochRegistry* epochs, ApplyFn apply,
               int64_t first_fresh_tid)
      : snapshots_(epochs), apply_(std::move(apply)),
        next_tid_(first_fresh_tid) {}

  /// Lowers batch ops onto the existing update-stream appliers.
  static std::vector<twitter::StreamEvent> ToEvents(
      const store::WriteBatch& batch);

  store::SnapshotRegistry snapshots_;
  store::DeltaStore delta_;
  std::unique_ptr<store::Wal> wal_;
  ApplyFn apply_;
  std::atomic<int64_t> next_tid_;
  uint64_t replayed_batches_ = 0;
};

}  // namespace mbq::core

#endif  // MBQ_CORE_WRITE_PATH_H_
