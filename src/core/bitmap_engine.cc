#include "core/bitmap_engine.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cache/epoch.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace mbq::core {

using bitmapstore::EdgesDirection;
using bitmapstore::Objects;
using bitmapstore::Oid;

namespace {

/// RAII introspection for one navigation call: registers it with the
/// live-query table, records a trace span on exit, and feeds the slow
/// flight recorder when the call crosses the engine's threshold. The
/// navigation API has no plan tree, so the "profile" of a capture is the
/// call description itself.
class QueryTracker {
 public:
  QueryTracker(bitmapstore::Graph* graph, std::string call, uint32_t threads,
               uint64_t slow_millis)
      : graph_(graph),
        call_(std::move(call)),
        threads_(threads),
        slow_millis_(slow_millis),
        trace_scope_(obs::ChildOrRootContext()),
        scope_(&obs::QueryRegistry::Global(), call_, "bitmap", threads) {}

  QueryTracker(const QueryTracker&) = delete;
  QueryTracker& operator=(const QueryTracker&) = delete;

  void SetRows(uint64_t rows) {
    rows_ = rows;
    scope_.SetRows(rows);
  }

  ~QueryTracker() {
    double elapsed_millis = scope_.ElapsedMillis();
    obs::SpanRecorder::Global().Record(call_, "bitmap", scope_.start_nanos(),
                                       scope_.ElapsedNanos());
    if (!obs::IsSlowQuery(elapsed_millis, slow_millis_)) return;
    obs::SlowQuery slow;
    slow.query = call_;
    slow.engine = "bitmap";
    slow.millis = elapsed_millis;
    slow.rows = rows_;
    slow.threads = threads_;
    slow.cache = "off";
    slow.epoch = graph_->epochs().GlobalEpoch();
    obs::FlightRecorder::Global().Record(std::move(slow));
    static obs::Counter* captured = obs::MetricsRegistry::Default().GetCounter(
        "bitmapstore.slow.captured", "queries",
        "navigation calls at/over the slow-query threshold, captured by "
        "the flight recorder");
    captured->Inc();
  }

 private:
  bitmapstore::Graph* graph_;
  std::string call_;
  uint32_t threads_;
  uint64_t slow_millis_;
  uint64_t rows_ = 0;
  /// Each navigation call is an ingress: it runs under a trace context
  /// so its span carries request identity (declared before scope_ so the
  /// context outlives the span recording in ~QueryTracker).
  obs::ScopedTraceContext trace_scope_;
  obs::ActiveQueryScope scope_;
};

std::string DescribeCall(const char* name, int64_t arg) {
  return std::string(name) + "(" + std::to_string(arg) + ")";
}

std::string DescribeCall(const char* name, int64_t a, int64_t b) {
  return std::string(name) + "(" + std::to_string(a) + ", " +
         std::to_string(b) + ")";
}

}  // namespace

void BitmapEngine::SetThreads(uint32_t threads, exec::ThreadPool* pool) {
  threads_ = threads == 0 ? 1 : threads;
  pool_ = pool;
}

void BitmapEngine::EnableAdjacencyCache(size_t capacity,
                                        uint64_t min_degree) {
  if (capacity == 0) {
    adj_cache_.reset();
    return;
  }
  cache::AdjacencyCache::Options options;
  options.capacity = capacity;
  options.min_degree = min_degree;
  adj_cache_ =
      std::make_unique<cache::AdjacencyCache>(options, &graph_->epochs());
}

Result<Objects> BitmapEngine::NeighborsCached(Oid node,
                                              bitmapstore::TypeId etype,
                                              EdgesDirection dir) const {
  if (adj_cache_ == nullptr) return graph_->Neighbors(node, etype, dir);
  uint8_t d = static_cast<uint8_t>(dir);
  if (auto entry = adj_cache_->Get(node, etype, d)) {
    Objects out;
    for (uint64_t other : entry->neighbors) {
      out.Add(static_cast<Oid>(other));
    }
    return out;
  }
  // Stamp before the walk: a write landing mid-walk invalidates the entry
  // at Put() rather than caching a torn read.
  cache::EpochStamp stamp = cache::CaptureStamp(
      graph_->epochs(), {cache::TypeDomain(etype)}, /*use_global=*/false);
  MBQ_ASSIGN_OR_RETURN(Objects nbrs, graph_->Neighbors(node, etype, dir));
  auto entry = std::make_shared<cache::AdjacencyEntry>();
  entry->neighbors.reserve(nbrs.Count());
  nbrs.ForEach([&](uint32_t other) { entry->neighbors.push_back(other); });
  adj_cache_->Put(node, etype, d, std::move(entry), std::move(stamp));
  return nbrs;
}

Result<std::unordered_map<Oid, int64_t>> BitmapEngine::CountNeighborsPerSource(
    const Objects& sources, bitmapstore::TypeId etype, EdgesDirection dir,
    Oid exclude) {
  std::unordered_map<Oid, int64_t> counts;
  if (threads_ <= 1) {
    Status status = Status::OK();
    sources.ForEach([&](uint32_t src) -> bool {
      auto nbrs = NeighborsCached(src, etype, dir);
      if (!nbrs.ok()) {
        status = nbrs.status();
        return false;
      }
      nbrs->ForEach([&](uint32_t other) {
        if (other != exclude) ++counts[other];
      });
      return true;
    });
    MBQ_RETURN_IF_ERROR(status);
    return counts;
  }
  // Parallel across source elements: workers count into private maps and
  // merge under one lock. Neighbors() is read-only over the immutable
  // bitmaps and the sharded page cache, so concurrent calls are safe.
  std::vector<Oid> elems = sources.ToVector();
  exec::ThreadPool& pool =
      pool_ != nullptr ? *pool_ : exec::ThreadPool::Default();
  // kPool: merged into from worker tasks that hold no other lock (the
  // cached neighbor reads complete before the merge section starts).
  util::RankedMutex mu{util::LockRank::kPool, "core.bitmap.merge"};
  Status first_error = Status::OK();
  uint64_t grain = std::max<uint64_t>(
      1, elems.size() / (static_cast<uint64_t>(threads_) * 4));
  pool.ParallelFor(0, elems.size(), grain, [&](uint64_t begin, uint64_t end) {
    std::unordered_map<Oid, int64_t> local;
    Status st = Status::OK();
    for (uint64_t i = begin; i < end && st.ok(); ++i) {
      auto nbrs = NeighborsCached(elems[i], etype, dir);
      if (!nbrs.ok()) {
        st = nbrs.status();
        break;
      }
      nbrs->ForEach([&](uint32_t other) {
        if (other != exclude) ++local[other];
      });
    }
    util::ScopedLock lock(mu);
    if (!st.ok() && first_error.ok()) first_error = st;
    for (const auto& [oid, count] : local) counts[oid] += count;
  });
  MBQ_RETURN_IF_ERROR(first_error);
  return counts;
}

Result<Oid> BitmapEngine::UserByUid(int64_t uid) const {
  MBQ_ASSIGN_OR_RETURN(Oid user,
                       graph_->FindObject(h_.uid, Value::Int(uid)));
  if (user == bitmapstore::kInvalidOid) {
    return Status::NotFound("no user with uid " + std::to_string(uid));
  }
  return user;
}

Result<ValueRows> BitmapEngine::SelectUsersByFollowerCount(int64_t threshold) {
  QueryTracker tracker(graph_,
                       DescribeCall("SelectUsersByFollowerCount", threshold),
                       threads_, slow_query_millis_);
  auto snapshot = OpenReadSnapshot();
  MBQ_ASSIGN_OR_RETURN(Objects users,
                       graph_->Select(h_.followers_count,
                                      bitmapstore::Condition::kGreater,
                                      Value::Int(threshold)));
  ValueRows rows;
  Status status = Status::OK();
  users.ForEach([&](uint32_t oid) -> bool {
    auto uid = graph_->GetAttribute(oid, h_.uid);
    if (!uid.ok()) {
      status = uid.status();
      return false;
    }
    rows.push_back({*uid});
    return true;
  });
  MBQ_RETURN_IF_ERROR(status);
  tracker.SetRows(rows.size());
  return rows;
}

Result<ValueRows> BitmapEngine::FolloweesOf(int64_t uid) {
  QueryTracker tracker(graph_, DescribeCall("FolloweesOf", uid), threads_,
                       slow_query_millis_);
  auto snapshot = OpenReadSnapshot();
  MBQ_ASSIGN_OR_RETURN(Oid user, UserByUid(uid));
  MBQ_ASSIGN_OR_RETURN(
      Objects followees,
      NeighborsCached(user, h_.follows, EdgesDirection::kOutgoing));
  ValueRows rows;
  Status status = Status::OK();
  followees.ForEach([&](uint32_t oid) -> bool {
    auto value = graph_->GetAttribute(oid, h_.uid);
    if (!value.ok()) {
      status = value.status();
      return false;
    }
    rows.push_back({*value});
    return true;
  });
  MBQ_RETURN_IF_ERROR(status);
  tracker.SetRows(rows.size());
  return rows;
}

Result<ValueRows> BitmapEngine::TweetsOfFollowees(int64_t uid) {
  QueryTracker tracker(graph_, DescribeCall("TweetsOfFollowees", uid),
                       threads_, slow_query_millis_);
  auto snapshot = OpenReadSnapshot();
  MBQ_ASSIGN_OR_RETURN(Oid user, UserByUid(uid));
  MBQ_ASSIGN_OR_RETURN(
      Objects followees,
      NeighborsCached(user, h_.follows, EdgesDirection::kOutgoing));
  // NOTE: the Cypher side enumerates one row per (followee, tweet) path;
  // tweet posters are unique, so the sets coincide.
  MBQ_ASSIGN_OR_RETURN(
      Objects tweets,
      graph_->Neighbors(followees, h_.posts, EdgesDirection::kOutgoing));
  ValueRows rows;
  Status status = Status::OK();
  tweets.ForEach([&](uint32_t oid) -> bool {
    auto value = graph_->GetAttribute(oid, h_.tid);
    if (!value.ok()) {
      status = value.status();
      return false;
    }
    rows.push_back({*value});
    return true;
  });
  MBQ_RETURN_IF_ERROR(status);
  tracker.SetRows(rows.size());
  return rows;
}

Result<ValueRows> BitmapEngine::HashtagsUsedByFollowees(int64_t uid) {
  QueryTracker tracker(graph_, DescribeCall("HashtagsUsedByFollowees", uid),
                       threads_, slow_query_millis_);
  auto snapshot = OpenReadSnapshot();
  MBQ_ASSIGN_OR_RETURN(Oid user, UserByUid(uid));
  MBQ_ASSIGN_OR_RETURN(
      Objects followees,
      NeighborsCached(user, h_.follows, EdgesDirection::kOutgoing));
  MBQ_ASSIGN_OR_RETURN(
      Objects tweets,
      graph_->Neighbors(followees, h_.posts, EdgesDirection::kOutgoing));
  MBQ_ASSIGN_OR_RETURN(
      Objects hashtags,
      graph_->Neighbors(tweets, h_.tags, EdgesDirection::kOutgoing));
  ValueRows rows;
  Status status = Status::OK();
  hashtags.ForEach([&](uint32_t oid) -> bool {
    auto value = graph_->GetAttribute(oid, h_.tag);
    if (!value.ok()) {
      status = value.status();
      return false;
    }
    rows.push_back({*value});
    return true;
  });
  MBQ_RETURN_IF_ERROR(status);
  tracker.SetRows(rows.size());
  return rows;
}

Result<ValueRows> BitmapEngine::TopCoMentionedUsers(int64_t uid, int64_t n) {
  QueryTracker tracker(graph_, DescribeCall("TopCoMentionedUsers", uid, n),
                       threads_, slow_query_millis_);
  auto snapshot = OpenReadSnapshot();
  MBQ_ASSIGN_OR_RETURN(Oid user, UserByUid(uid));
  // Step 1: tweets mentioning A. Step 2: other users those tweets
  // mention, counted in a map (the paper's two-step co-occurrence plan).
  MBQ_ASSIGN_OR_RETURN(
      Objects tweets,
      NeighborsCached(user, h_.mentions, EdgesDirection::kIngoing));
  MBQ_ASSIGN_OR_RETURN(auto counts,
                       CountNeighborsPerSource(tweets, h_.mentions,
                                               EdgesDirection::kOutgoing,
                                               user));
  std::vector<std::pair<Value, int64_t>> keyed;
  keyed.reserve(counts.size());
  for (const auto& [oid, count] : counts) {
    MBQ_ASSIGN_OR_RETURN(Value key, graph_->GetAttribute(oid, h_.uid));
    keyed.emplace_back(std::move(key), count);
  }
  ValueRows top = TopNCounts(keyed, n);
  tracker.SetRows(top.size());
  return top;
}

Result<ValueRows> BitmapEngine::TopCoOccurringHashtags(const std::string& tag,
                                                       int64_t n) {
  QueryTracker tracker(graph_,
                       "TopCoOccurringHashtags(\"" + tag + "\", " +
                           std::to_string(n) + ")",
                       threads_, slow_query_millis_);
  auto snapshot = OpenReadSnapshot();
  MBQ_ASSIGN_OR_RETURN(Oid hashtag,
                       graph_->FindObject(h_.tag, Value::String(tag)));
  if (hashtag == bitmapstore::kInvalidOid) {
    return Status::NotFound("no hashtag " + tag);
  }
  MBQ_ASSIGN_OR_RETURN(
      Objects tweets,
      NeighborsCached(hashtag, h_.tags, EdgesDirection::kIngoing));
  MBQ_ASSIGN_OR_RETURN(auto counts,
                       CountNeighborsPerSource(tweets, h_.tags,
                                               EdgesDirection::kOutgoing,
                                               hashtag));
  std::vector<std::pair<Value, int64_t>> keyed;
  keyed.reserve(counts.size());
  for (const auto& [oid, count] : counts) {
    MBQ_ASSIGN_OR_RETURN(Value key, graph_->GetAttribute(oid, h_.tag));
    keyed.emplace_back(std::move(key), count);
  }
  ValueRows top = TopNCounts(keyed, n);
  tracker.SetRows(top.size());
  return top;
}

Result<ValueRows> BitmapEngine::Recommend(int64_t uid, int64_t n,
                                          EdgesDirection second_hop) {
  MBQ_ASSIGN_OR_RETURN(Oid user, UserByUid(uid));
  MBQ_ASSIGN_OR_RETURN(
      Objects followees,
      NeighborsCached(user, h_.follows, EdgesDirection::kOutgoing));
  // "A separate neighbours call has to be executed for each 1-step
  // followee of A" — the per-followee loop the paper calls expensive.
  MBQ_ASSIGN_OR_RETURN(auto counts,
                       CountNeighborsPerSource(followees, h_.follows,
                                               second_hop,
                                               bitmapstore::kInvalidOid));
  // Remove A itself and anyone A already follows.
  counts.erase(user);
  followees.ForEach([&](uint32_t followee) { counts.erase(followee); });
  std::vector<std::pair<Value, int64_t>> keyed;
  keyed.reserve(counts.size());
  for (const auto& [oid, count] : counts) {
    MBQ_ASSIGN_OR_RETURN(Value key, graph_->GetAttribute(oid, h_.uid));
    keyed.emplace_back(std::move(key), count);
  }
  return TopNCounts(keyed, n);
}

Result<ValueRows> BitmapEngine::RecommendFolloweesOfFollowees(int64_t uid,
                                                              int64_t n) {
  QueryTracker tracker(graph_,
                       DescribeCall("RecommendFolloweesOfFollowees", uid, n),
                       threads_, slow_query_millis_);
  auto snapshot = OpenReadSnapshot();
  MBQ_ASSIGN_OR_RETURN(ValueRows rows,
                       Recommend(uid, n, EdgesDirection::kOutgoing));
  tracker.SetRows(rows.size());
  return rows;
}

Result<ValueRows> BitmapEngine::RecommendFollowersOfFollowees(int64_t uid,
                                                              int64_t n) {
  QueryTracker tracker(graph_,
                       DescribeCall("RecommendFollowersOfFollowees", uid, n),
                       threads_, slow_query_millis_);
  auto snapshot = OpenReadSnapshot();
  MBQ_ASSIGN_OR_RETURN(ValueRows rows,
                       Recommend(uid, n, EdgesDirection::kIngoing));
  tracker.SetRows(rows.size());
  return rows;
}

Result<ValueRows> BitmapEngine::Influence(int64_t uid, int64_t n,
                                          bool keep_followers) {
  MBQ_ASSIGN_OR_RETURN(Oid user, UserByUid(uid));
  // Users who mentioned A: tweets mentioning A, then their posters,
  // counted per poster.
  MBQ_ASSIGN_OR_RETURN(
      Objects tweets,
      NeighborsCached(user, h_.mentions, EdgesDirection::kIngoing));
  MBQ_ASSIGN_OR_RETURN(auto counts,
                       CountNeighborsPerSource(tweets, h_.posts,
                                               EdgesDirection::kIngoing,
                                               user));
  // "Removing (or retaining) the users who are already following A."
  MBQ_ASSIGN_OR_RETURN(
      Objects followers,
      NeighborsCached(user, h_.follows, EdgesDirection::kIngoing));
  std::vector<std::pair<Value, int64_t>> keyed;
  for (const auto& [oid, count] : counts) {
    if (followers.Contains(oid) != keep_followers) continue;
    MBQ_ASSIGN_OR_RETURN(Value key, graph_->GetAttribute(oid, h_.uid));
    keyed.emplace_back(std::move(key), count);
  }
  return TopNCounts(keyed, n);
}

Result<ValueRows> BitmapEngine::CurrentInfluence(int64_t uid, int64_t n) {
  QueryTracker tracker(graph_, DescribeCall("CurrentInfluence", uid, n),
                       threads_, slow_query_millis_);
  auto snapshot = OpenReadSnapshot();
  MBQ_ASSIGN_OR_RETURN(ValueRows rows,
                       Influence(uid, n, /*keep_followers=*/true));
  tracker.SetRows(rows.size());
  return rows;
}

Result<ValueRows> BitmapEngine::PotentialInfluence(int64_t uid, int64_t n) {
  QueryTracker tracker(graph_, DescribeCall("PotentialInfluence", uid, n),
                       threads_, slow_query_millis_);
  auto snapshot = OpenReadSnapshot();
  MBQ_ASSIGN_OR_RETURN(ValueRows rows,
                       Influence(uid, n, /*keep_followers=*/false));
  tracker.SetRows(rows.size());
  return rows;
}

Result<int64_t> BitmapEngine::ShortestPathLength(int64_t uid_a, int64_t uid_b,
                                                 uint32_t max_hops) {
  QueryTracker tracker(graph_, DescribeCall("ShortestPathLength", uid_a, uid_b),
                       threads_, slow_query_millis_);
  auto snapshot = OpenReadSnapshot();
  tracker.SetRows(1);
  MBQ_ASSIGN_OR_RETURN(Oid a, UserByUid(uid_a));
  MBQ_ASSIGN_OR_RETURN(Oid b, UserByUid(uid_b));
  bitmapstore::SinglePairShortestPathBFS bfs(graph_, a, b);
  bfs.AddEdgeType(h_.follows, EdgesDirection::kOutgoing);
  bfs.SetMaximumHops(max_hops);
  MBQ_RETURN_IF_ERROR(bfs.Run());
  if (!bfs.Exists()) return -1;
  return static_cast<int64_t>(bfs.GetCost());
}

Status BitmapEngine::EnableWrites(const WriteConfig& config,
                                  const twitter::Dataset& base) {
  applier_ = std::make_unique<BitmapUpdateApplier>(graph_, h_, base);
  WriteConfig seeded = config;
  if (seeded.first_fresh_tid == 0) {
    seeded.first_fresh_tid = static_cast<int64_t>(base.tweets.size());
  }
  MBQ_ASSIGN_OR_RETURN(
      writer_,
      EngineWriter::Open(seeded, &graph_->mutable_epochs(),
                         [this](const std::vector<twitter::StreamEvent>& ev) {
                           return applier_->ApplyBatch(ev);
                         }));
  return Status::OK();
}

}  // namespace mbq::core
