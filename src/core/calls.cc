#include "core/calls.h"

#include <algorithm>

#include "core/workload.h"
#include "obs/trace_context.h"

namespace mbq::core {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
  return h;
}

/// Order-insensitive only after SortRows: the digest hashes rows in
/// their canonical order, with a per-row separator so row boundaries
/// matter.
uint64_t DigestRows(const ValueRows& rows) {
  uint64_t h = kFnvOffset;
  for (const ValueRow& row : rows) {
    h = MixHash(h, 0x9E3779B97F4A7C15ull);  // row separator
    for (const Value& v : row) {
      h = MixHash(h, static_cast<uint64_t>(v.Hash()));
    }
  }
  return h;
}

Result<CallOutcome> OutcomeOf(Result<ValueRows> rows) {
  if (!rows.ok()) return rows.status();
  SortRows(&*rows);
  CallOutcome outcome;
  outcome.rows = rows->size();
  outcome.digest = DigestRows(*rows);
  return outcome;
}

}  // namespace

const char* CallKindName(CallKind kind) {
  switch (kind) {
    case CallKind::kSelectUsers: return "Q1.1";
    case CallKind::kFollowees: return "Q2.1";
    case CallKind::kTweetsOfFollowees: return "Q2.2";
    case CallKind::kHashtagsOfFollowees: return "Q2.3";
    case CallKind::kTopCoMentioned: return "Q3.1";
    case CallKind::kTopCoTags: return "Q3.2";
    case CallKind::kRecFollowees: return "Q4.1";
    case CallKind::kRecFollowers: return "Q4.2";
    case CallKind::kCurrentInfluence: return "Q5.1";
    case CallKind::kPotentialInfluence: return "Q5.2";
    case CallKind::kShortestPath: return "Q6.1";
    case CallKind::kPostTweet: return "W1.1";
    case CallKind::kFollow: return "W2.1";
    case CallKind::kUnfollow: return "W2.2";
    case CallKind::kAddMention: return "W3.1";
  }
  return "?";
}

bool IsWriteCall(CallKind kind) {
  switch (kind) {
    case CallKind::kPostTweet:
    case CallKind::kFollow:
    case CallKind::kUnfollow:
    case CallKind::kAddMention:
      return true;
    default:
      return false;
  }
}

std::string CallSpecToString(const CallSpec& spec) {
  std::string out = CallKindName(spec.kind);
  out += "(";
  switch (spec.kind) {
    case CallKind::kSelectUsers:
      out += "threshold=" + std::to_string(spec.threshold);
      break;
    case CallKind::kTopCoTags:
      out += "tag=" + spec.tag + ", n=" + std::to_string(spec.n);
      break;
    case CallKind::kShortestPath:
      out += "a=" + std::to_string(spec.a) + ", b=" + std::to_string(spec.b) +
             ", hops=" + std::to_string(spec.max_hops);
      break;
    case CallKind::kFollow:
    case CallKind::kUnfollow:
      out += "a=" + std::to_string(spec.a) + ", b=" + std::to_string(spec.b);
      break;
    case CallKind::kAddMention:
      out += "tid=" + std::to_string(spec.a) +
             ", uid=" + std::to_string(spec.b);
      break;
    case CallKind::kTopCoMentioned:
    case CallKind::kRecFollowees:
    case CallKind::kRecFollowers:
    case CallKind::kCurrentInfluence:
    case CallKind::kPotentialInfluence:
      out += "a=" + std::to_string(spec.a) + ", n=" + std::to_string(spec.n);
      break;
    default:
      out += "a=" + std::to_string(spec.a);
      break;
  }
  out += ")";
  return out;
}

Result<CallOutcome> DispatchCall(MicroblogEngine& engine,
                                 const CallSpec& spec) {
  // The driver funnel is an ingress: every dispatched call gets a trace
  // context (a child when an outer scope — e.g. a traced RPC — already
  // named the request, a fresh root otherwise), so the engine's spans
  // and any remote fan-out stitch under one trace id.
  obs::ScopedTraceContext trace(obs::ChildOrRootContext());
  switch (spec.kind) {
    case CallKind::kSelectUsers:
      return OutcomeOf(engine.SelectUsersByFollowerCount(spec.threshold));
    case CallKind::kFollowees:
      return OutcomeOf(engine.FolloweesOf(spec.a));
    case CallKind::kTweetsOfFollowees:
      return OutcomeOf(engine.TweetsOfFollowees(spec.a));
    case CallKind::kHashtagsOfFollowees:
      return OutcomeOf(engine.HashtagsUsedByFollowees(spec.a));
    case CallKind::kTopCoMentioned:
      return OutcomeOf(engine.TopCoMentionedUsers(spec.a, spec.n));
    case CallKind::kTopCoTags:
      return OutcomeOf(engine.TopCoOccurringHashtags(spec.tag, spec.n));
    case CallKind::kRecFollowees:
      return OutcomeOf(engine.RecommendFolloweesOfFollowees(spec.a, spec.n));
    case CallKind::kRecFollowers:
      return OutcomeOf(engine.RecommendFollowersOfFollowees(spec.a, spec.n));
    case CallKind::kCurrentInfluence:
      return OutcomeOf(engine.CurrentInfluence(spec.a, spec.n));
    case CallKind::kPotentialInfluence:
      return OutcomeOf(engine.PotentialInfluence(spec.a, spec.n));
    case CallKind::kShortestPath: {
      Result<int64_t> length =
          engine.ShortestPathLength(spec.a, spec.b, spec.max_hops);
      if (!length.ok()) return length.status();
      CallOutcome outcome;
      outcome.rows = 1;
      outcome.digest = MixHash(kFnvOffset, static_cast<uint64_t>(*length));
      return outcome;
    }
    case CallKind::kPostTweet:
    case CallKind::kFollow:
    case CallKind::kUnfollow:
    case CallKind::kAddMention: {
      WritableEngine* writable = engine.AsWritable();
      if (writable == nullptr) {
        return Status::NotImplemented(std::string(CallKindName(spec.kind)) +
                                      ": write call on read-only engine " +
                                      engine.name());
      }
      Status committed = Status::OK();
      switch (spec.kind) {
        case CallKind::kPostTweet:
          committed = writable->PostTweet(spec.a, spec.text);
          break;
        case CallKind::kFollow:
          committed = writable->Follow(spec.a, spec.b);
          break;
        case CallKind::kUnfollow:
          committed = writable->Unfollow(spec.a, spec.b);
          break;
        default:
          committed = writable->AddMention(spec.a, spec.b);
          break;
      }
      MBQ_RETURN_IF_ERROR(committed);
      // Writes digest as the empty result: the tweet ids a commit assigns
      // depend on allocation order, so hashing them would make identical
      // logical write streams diverge across engines and runs.
      CallOutcome outcome;
      outcome.digest = DigestRows({});
      return outcome;
    }
  }
  return Status::InvalidArgument("unknown call kind");
}

ParamUniverse::ParamUniverse(const twitter::Dataset& dataset) {
  // UsersByFollowerCount sorts ascending; rank 0 must be the hottest.
  std::vector<std::pair<int64_t, int64_t>> by_followers =
      UsersByFollowerCount(dataset);
  uids_by_rank_.reserve(by_followers.size());
  for (auto it = by_followers.rbegin(); it != by_followers.rend(); ++it) {
    uids_by_rank_.push_back(it->second);
  }
  if (!by_followers.empty()) {
    size_t p90 = by_followers.size() * 9 / 10;
    follower_threshold_ = by_followers[p90].first;
    uid_zipf_.emplace(uids_by_rank_.size(), 0.99);
  }

  tids_.reserve(dataset.tweets.size());
  for (const twitter::Dataset::Tweet& tweet : dataset.tweets) {
    tids_.push_back(tweet.tid);
  }

  std::vector<std::pair<int64_t, std::string>> by_use = HashtagsByUse(dataset);
  tags_by_rank_.reserve(by_use.size());
  for (auto it = by_use.rbegin(); it != by_use.rend(); ++it) {
    tags_by_rank_.push_back(it->second);
  }
  if (!by_use.empty()) {
    tag_zipf_.emplace(tags_by_rank_.size(), 0.99);
  }
}

int64_t ParamUniverse::SampleUid(Rng& rng, bool zipf) const {
  if (uids_by_rank_.empty()) return 0;
  if (zipf && uid_zipf_.has_value()) {
    return uids_by_rank_[uid_zipf_->Sample(rng)];
  }
  return uids_by_rank_[rng.NextBounded(uids_by_rank_.size())];
}

std::pair<int64_t, int64_t> ParamUniverse::SampleUidPair(Rng& rng,
                                                         bool zipf) const {
  int64_t a = SampleUid(rng, zipf);
  int64_t b = SampleUid(rng, zipf);
  if (a == b && num_users() > 1) {
    b = (a + 1) % num_users();
  }
  return {a, b};
}

int64_t ParamUniverse::SampleTid(Rng& rng) const {
  if (tids_.empty()) return -1;
  return tids_[rng.NextBounded(tids_.size())];
}

std::string ParamUniverse::SampleTag(Rng& rng, bool zipf) const {
  if (tags_by_rank_.empty()) return "";
  if (zipf && tag_zipf_.has_value()) {
    return tags_by_rank_[tag_zipf_->Sample(rng)];
  }
  return tags_by_rank_[rng.NextBounded(tags_by_rank_.size())];
}

}  // namespace mbq::core
