#ifndef MBQ_CORE_CHECK_H_
#define MBQ_CORE_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bitmapstore/graph.h"
#include "core/engine.h"
#include "nodestore/graph_db.h"
#include "twitter/dataset.h"
#include "util/result.h"

namespace mbq::core {

/// One invariant violation found by the storage checker.
struct CheckIssue {
  /// Which invariant broke: "node-record", "rel-record", "rel-chain",
  /// "label-scan", "prop-index", "type-count", "adjacency", "attr-index",
  /// or a write-path invariant: "delta-seq", "delta-epoch", "delta-tid",
  /// "tombstone", "delta-visibility", "wal-record", "wal-tail",
  /// "wal-delta".
  std::string component;
  std::string message;
};

struct CheckOptions {
  /// Issues materialized in the report; further findings only increment
  /// `suppressed` (the walk itself always completes).
  size_t max_issues = 64;
};

/// The fsck result: findings plus coverage counters. `ok()` is the
/// checkdb exit criterion — zero on a clean store, non-zero otherwise.
struct CheckReport {
  std::vector<CheckIssue> issues;
  uint64_t suppressed = 0;  // found beyond max_issues
  uint64_t nodes_checked = 0;
  uint64_t rels_checked = 0;
  uint64_t labels_checked = 0;
  uint64_t indexes_checked = 0;
  uint64_t objects_checked = 0;
  uint64_t attrs_checked = 0;
  uint64_t delta_ops_checked = 0;  // write-path: delta journal ops
  uint64_t wal_records_checked = 0;  // write-path: decoded WAL records

  bool ok() const { return issues.empty() && suppressed == 0; }
  /// Human-readable summary: one line per issue plus a coverage footer.
  std::string ToText() const;
};

/// Walks the record-store engine: relationship-chain doubly-linked
/// consistency (every in-use relationship reachable exactly once from
/// each endpoint's chain; prev/next pointers mutually consistent in the
/// unpartitioned layout), record-pointer bounds, and label-scan/property-
/// index completeness against a full node scan. Reports `check.*`
/// metrics; the returned status is only non-OK for I/O failures —
/// corruption lands in the report.
Result<CheckReport> CheckNodestore(nodestore::GraphDb* db,
                                   const CheckOptions& options = {});

/// Walks the bitmap engine: per-type bitmap cardinality vs. the cached
/// object count, object-table type agreement, mutual src/dst adjacency
/// agreement (every edge present in its tail's outgoing and head's
/// incoming bitmaps, and nothing else), and indexed-attribute value-set
/// counts vs. their bitmaps.
Result<CheckReport> CheckBitmapstore(bitmapstore::Graph* graph,
                                     const CheckOptions& options = {});

/// Validates the live write path of a writable engine (docs/WRITES.md):
///
///  - delta journal invariants: commit epochs and WAL sequences are
///    non-decreasing and never zero-epoch, fresh tweet ids stay above
///    the bulk-loaded id space and are never reassigned, and the
///    journal's tombstone counter agrees with its unfollow ops;
///  - delta-over-base visibility: every follows pair the journal
///    touched reads back through the engine exactly as the journal
///    replay predicts (followed pairs visible, tombstoned pairs gone);
///  - WAL/delta agreement (when `wal_path` names the engine's log):
///    the file is decoded independently — never truncated; a torn or
///    garbage tail is *reported*, where replay-on-open would silently
///    repair it — and its ops must equal the journal's logged ops
///    one-for-one in sequence order.
///
/// Fails with InvalidArgument when `engine` has no write surface.
Result<CheckReport> CheckWritePath(MicroblogEngine& engine,
                                   const twitter::Dataset& base,
                                   const std::string& wal_path,
                                   const CheckOptions& options = {});

}  // namespace mbq::core

#endif  // MBQ_CORE_CHECK_H_
