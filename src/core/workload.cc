#include "core/workload.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

namespace mbq::core {

namespace {

double NowMillis() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

}  // namespace

Result<TimingResult> MeasureQuery(const TimedQuery& query, uint32_t warmup,
                                  uint32_t runs,
                                  const std::function<uint64_t()>& io_nanos) {
  TimingResult result;
  auto one_run = [&]() -> Result<double> {
    double wall0 = NowMillis();
    uint64_t io0 = io_nanos ? io_nanos() : 0;
    MBQ_ASSIGN_OR_RETURN(result.rows, query());
    double wall = NowMillis() - wall0;
    double io =
        io_nanos ? static_cast<double>(io_nanos() - io0) / 1e6 : 0.0;
    return wall + io;
  };

  for (uint32_t i = 0; i < warmup; ++i) {
    MBQ_ASSIGN_OR_RETURN(double millis, one_run());
    if (i == 0) result.first_run_millis = millis;
  }
  double total = 0;
  result.min_millis = 1e300;
  result.max_millis = 0;
  for (uint32_t i = 0; i < runs; ++i) {
    MBQ_ASSIGN_OR_RETURN(double millis, one_run());
    total += millis;
    result.min_millis = std::min(result.min_millis, millis);
    result.max_millis = std::max(result.max_millis, millis);
    if (warmup == 0 && i == 0) result.first_run_millis = millis;
  }
  result.avg_millis = runs > 0 ? total / runs : 0;
  return result;
}

std::vector<std::pair<int64_t, int64_t>> UsersByMentionCount(
    const twitter::Dataset& dataset) {
  std::unordered_map<int64_t, int64_t> counts;
  for (const auto& [tid, uid] : dataset.mentions) ++counts[uid];
  std::vector<std::pair<int64_t, int64_t>> out;
  out.reserve(counts.size());
  for (const auto& [uid, count] : counts) out.emplace_back(count, uid);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<int64_t, int64_t>> UsersByFolloweeCount(
    const twitter::Dataset& dataset) {
  std::unordered_map<int64_t, int64_t> counts;
  for (const auto& [src, dst] : dataset.follows) ++counts[src];
  std::vector<std::pair<int64_t, int64_t>> out;
  out.reserve(counts.size());
  for (const auto& [uid, count] : counts) out.emplace_back(count, uid);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<int64_t, int64_t>> UsersByFollowerCount(
    const twitter::Dataset& dataset) {
  std::vector<std::pair<int64_t, int64_t>> out;
  out.reserve(dataset.users.size());
  for (const auto& u : dataset.users) {
    out.emplace_back(u.followers_count, u.uid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<int64_t, std::string>> HashtagsByUse(
    const twitter::Dataset& dataset) {
  std::unordered_map<int64_t, int64_t> counts;
  for (const auto& [tid, hid] : dataset.tags) ++counts[hid];
  std::vector<std::pair<int64_t, std::string>> out;
  out.reserve(dataset.hashtags.size());
  for (const auto& h : dataset.hashtags) {
    auto it = counts.find(h.hid);
    out.emplace_back(it == counts.end() ? 0 : it->second, h.tag);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<int64_t>> PickUsersInBins(
    const std::vector<std::pair<int64_t, int64_t>>& metric_uid,
    const std::vector<std::pair<int64_t, int64_t>>& bins, size_t per_bin,
    Rng& rng) {
  std::vector<std::vector<int64_t>> out(bins.size());
  for (size_t b = 0; b < bins.size(); ++b) {
    auto [lo, hi] = bins[b];
    std::vector<int64_t> candidates;
    for (const auto& [metric, uid] : metric_uid) {
      if (metric >= lo && metric < hi) candidates.push_back(uid);
    }
    rng.Shuffle(candidates);
    if (candidates.size() > per_bin) candidates.resize(per_bin);
    out[b] = std::move(candidates);
  }
  return out;
}

}  // namespace mbq::core
