#include "core/updates.h"

namespace mbq::core {

using common::Value;
using twitter::StreamEvent;

// ------------------------------------------------------ Nodestore applier

NodestoreUpdateApplier::NodestoreUpdateApplier(
    nodestore::GraphDb* db, const twitter::NodestoreHandles& handles,
    const twitter::Dataset& base)
    : db_(db), h_(handles),
      next_hid_(static_cast<int64_t>(base.hashtags.size())) {
  // Pre-resolve ids lazily; seed the maps from the base dataset by index
  // lookups on demand (UserNode/TweetNode below).
}

Result<nodestore::NodeId> NodestoreUpdateApplier::UserNode(int64_t uid) {
  auto it = users_.find(uid);
  if (it != users_.end()) return it->second;
  MBQ_ASSIGN_OR_RETURN(nodestore::NodeId node,
                       db_->IndexSeek(h_.user, h_.uid, Value::Int(uid)));
  if (node == nodestore::kInvalidNode) {
    return Status::NotFound("stream references unknown uid " +
                            std::to_string(uid));
  }
  users_[uid] = node;
  return node;
}

Result<nodestore::NodeId> NodestoreUpdateApplier::TweetNode(int64_t tid) {
  auto it = tweets_.find(tid);
  if (it != tweets_.end()) return it->second;
  MBQ_ASSIGN_OR_RETURN(nodestore::NodeId node,
                       db_->IndexSeek(h_.tweet, h_.tid, Value::Int(tid)));
  if (node == nodestore::kInvalidNode) {
    return Status::NotFound("stream references unknown tid " +
                            std::to_string(tid));
  }
  tweets_[tid] = node;
  return node;
}

Result<nodestore::NodeId> NodestoreUpdateApplier::HashtagNode(
    const std::string& tag) {
  auto it = hashtags_.find(tag);
  if (it != hashtags_.end()) return it->second;
  MBQ_ASSIGN_OR_RETURN(nodestore::NodeId node,
                       db_->IndexSeek(h_.hashtag, h_.tag, Value::String(tag)));
  if (node == nodestore::kInvalidNode) {
    MBQ_ASSIGN_OR_RETURN(node, db_->CreateNode(h_.hashtag));
    MBQ_RETURN_IF_ERROR(
        db_->SetNodeProperty(node, h_.hid, Value::Int(next_hid_++)));
    MBQ_RETURN_IF_ERROR(
        db_->SetNodeProperty(node, h_.tag, Value::String(tag)));
  }
  hashtags_[tag] = node;
  return node;
}

Status NodestoreUpdateApplier::ApplyOne(const StreamEvent& event) {
  switch (event.kind) {
    case StreamEvent::Kind::kNewUser: {
      MBQ_ASSIGN_OR_RETURN(nodestore::NodeId node, db_->CreateNode(h_.user));
      MBQ_RETURN_IF_ERROR(
          db_->SetNodeProperty(node, h_.uid, Value::Int(event.uid)));
      MBQ_RETURN_IF_ERROR(db_->SetNodeProperty(
          node, h_.screen_name,
          Value::String("live_" + std::to_string(event.uid))));
      MBQ_RETURN_IF_ERROR(
          db_->SetNodeProperty(node, h_.followers_count, Value::Int(0)));
      users_[event.uid] = node;
      return Status::OK();
    }
    case StreamEvent::Kind::kNewFollow: {
      MBQ_ASSIGN_OR_RETURN(nodestore::NodeId src, UserNode(event.src_uid));
      MBQ_ASSIGN_OR_RETURN(nodestore::NodeId dst, UserNode(event.dst_uid));
      return db_->CreateRelationship(h_.follows, src, dst).status();
    }
    case StreamEvent::Kind::kUnfollow: {
      MBQ_ASSIGN_OR_RETURN(nodestore::NodeId src, UserNode(event.src_uid));
      MBQ_ASSIGN_OR_RETURN(nodestore::NodeId dst, UserNode(event.dst_uid));
      nodestore::RelId victim = nodestore::kInvalidRel;
      MBQ_RETURN_IF_ERROR(db_->ForEachRelationship(
          src, nodestore::Direction::kOutgoing, h_.follows,
          [&](const nodestore::GraphDb::RelInfo& rel) {
            if (rel.dst == dst) {
              victim = rel.id;
              return false;
            }
            return true;
          }));
      if (victim == nodestore::kInvalidRel) return Status::OK();  // raced
      return db_->DeleteRelationship(victim);
    }
    case StreamEvent::Kind::kNewTweet:
    case StreamEvent::Kind::kNewRetweet: {
      MBQ_ASSIGN_OR_RETURN(nodestore::NodeId poster, UserNode(event.uid));
      MBQ_ASSIGN_OR_RETURN(nodestore::NodeId tweet, db_->CreateNode(h_.tweet));
      MBQ_RETURN_IF_ERROR(
          db_->SetNodeProperty(tweet, h_.tid, Value::Int(event.tid)));
      MBQ_RETURN_IF_ERROR(
          db_->SetNodeProperty(tweet, h_.text, Value::String(event.text)));
      MBQ_RETURN_IF_ERROR(
          db_->CreateRelationship(h_.posts, poster, tweet).status());
      tweets_[event.tid] = tweet;
      if (event.kind == StreamEvent::Kind::kNewRetweet) {
        MBQ_ASSIGN_OR_RETURN(nodestore::NodeId orig,
                             TweetNode(event.orig_tid));
        MBQ_RETURN_IF_ERROR(
            db_->CreateRelationship(h_.retweets, tweet, orig).status());
      }
      return Status::OK();
    }
    case StreamEvent::Kind::kNewMention: {
      MBQ_ASSIGN_OR_RETURN(nodestore::NodeId tweet, TweetNode(event.tid));
      MBQ_ASSIGN_OR_RETURN(nodestore::NodeId target, UserNode(event.dst_uid));
      return db_->CreateRelationship(h_.mentions, tweet, target).status();
    }
    case StreamEvent::Kind::kNewTag: {
      MBQ_ASSIGN_OR_RETURN(nodestore::NodeId tweet, TweetNode(event.tid));
      MBQ_ASSIGN_OR_RETURN(nodestore::NodeId tag, HashtagNode(event.text));
      return db_->CreateRelationship(h_.tags, tweet, tag).status();
    }
  }
  return Status::InvalidArgument("unknown stream event kind");
}

Status NodestoreUpdateApplier::ApplyBatch(
    const std::vector<StreamEvent>& events) {
  auto tx = db_->BeginTx();
  for (const StreamEvent& event : events) {
    MBQ_RETURN_IF_ERROR(ApplyOne(event));
    ++events_applied_;
  }
  return tx.Commit();
}

// --------------------------------------------------------- Bitmap applier

BitmapUpdateApplier::BitmapUpdateApplier(
    bitmapstore::Graph* graph, const twitter::BitmapHandles& handles,
    const twitter::Dataset& base)
    : graph_(graph), h_(handles),
      next_hid_(static_cast<int64_t>(base.hashtags.size())) {}

Result<bitmapstore::Oid> BitmapUpdateApplier::UserNode(int64_t uid) {
  auto it = users_.find(uid);
  if (it != users_.end()) return it->second;
  MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid node,
                       graph_->FindObject(h_.uid, Value::Int(uid)));
  if (node == bitmapstore::kInvalidOid) {
    return Status::NotFound("stream references unknown uid " +
                            std::to_string(uid));
  }
  users_[uid] = node;
  return node;
}

Result<bitmapstore::Oid> BitmapUpdateApplier::TweetNode(int64_t tid) {
  auto it = tweets_.find(tid);
  if (it != tweets_.end()) return it->second;
  MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid node,
                       graph_->FindObject(h_.tid, Value::Int(tid)));
  if (node == bitmapstore::kInvalidOid) {
    return Status::NotFound("stream references unknown tid " +
                            std::to_string(tid));
  }
  tweets_[tid] = node;
  return node;
}

Result<bitmapstore::Oid> BitmapUpdateApplier::HashtagNode(
    const std::string& tag) {
  auto it = hashtags_.find(tag);
  if (it != hashtags_.end()) return it->second;
  MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid node,
                       graph_->FindObject(h_.tag, Value::String(tag)));
  if (node == bitmapstore::kInvalidOid) {
    MBQ_ASSIGN_OR_RETURN(node, graph_->NewNode(h_.hashtag));
    MBQ_RETURN_IF_ERROR(
        graph_->SetAttribute(node, h_.hid, Value::Int(next_hid_++)));
    MBQ_RETURN_IF_ERROR(
        graph_->SetAttribute(node, h_.tag, Value::String(tag)));
  }
  hashtags_[tag] = node;
  return node;
}

Status BitmapUpdateApplier::ApplyOne(const StreamEvent& event) {
  using bitmapstore::EdgesDirection;
  switch (event.kind) {
    case StreamEvent::Kind::kNewUser: {
      MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid node, graph_->NewNode(h_.user));
      MBQ_RETURN_IF_ERROR(
          graph_->SetAttribute(node, h_.uid, Value::Int(event.uid)));
      MBQ_RETURN_IF_ERROR(graph_->SetAttribute(
          node, h_.screen_name,
          Value::String("live_" + std::to_string(event.uid))));
      MBQ_RETURN_IF_ERROR(
          graph_->SetAttribute(node, h_.followers_count, Value::Int(0)));
      users_[event.uid] = node;
      return Status::OK();
    }
    case StreamEvent::Kind::kNewFollow: {
      MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid src, UserNode(event.src_uid));
      MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid dst, UserNode(event.dst_uid));
      return graph_->NewEdge(h_.follows, src, dst).status();
    }
    case StreamEvent::Kind::kUnfollow: {
      MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid src, UserNode(event.src_uid));
      MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid dst, UserNode(event.dst_uid));
      MBQ_ASSIGN_OR_RETURN(
          bitmapstore::Objects edges,
          graph_->Explode(src, h_.follows, EdgesDirection::kOutgoing));
      bitmapstore::Oid victim = bitmapstore::kInvalidOid;
      Status inner = Status::OK();
      edges.ForEach([&](uint32_t edge) -> bool {
        auto data = graph_->GetEdgeData(edge);
        if (!data.ok()) {
          inner = data.status();
          return false;
        }
        if (data->head == dst) {
          victim = edge;
          return false;
        }
        return true;
      });
      MBQ_RETURN_IF_ERROR(inner);
      if (victim == bitmapstore::kInvalidOid) return Status::OK();
      return graph_->Drop(victim);
    }
    case StreamEvent::Kind::kNewTweet:
    case StreamEvent::Kind::kNewRetweet: {
      MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid poster, UserNode(event.uid));
      MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid tweet, graph_->NewNode(h_.tweet));
      MBQ_RETURN_IF_ERROR(
          graph_->SetAttribute(tweet, h_.tid, Value::Int(event.tid)));
      MBQ_RETURN_IF_ERROR(
          graph_->SetAttribute(tweet, h_.text, Value::String(event.text)));
      MBQ_RETURN_IF_ERROR(graph_->NewEdge(h_.posts, poster, tweet).status());
      tweets_[event.tid] = tweet;
      if (event.kind == StreamEvent::Kind::kNewRetweet) {
        MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid orig, TweetNode(event.orig_tid));
        MBQ_RETURN_IF_ERROR(
            graph_->NewEdge(h_.retweets, tweet, orig).status());
      }
      return Status::OK();
    }
    case StreamEvent::Kind::kNewMention: {
      MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid tweet, TweetNode(event.tid));
      MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid target, UserNode(event.dst_uid));
      return graph_->NewEdge(h_.mentions, tweet, target).status();
    }
    case StreamEvent::Kind::kNewTag: {
      MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid tweet, TweetNode(event.tid));
      MBQ_ASSIGN_OR_RETURN(bitmapstore::Oid tag, HashtagNode(event.text));
      return graph_->NewEdge(h_.tags, tweet, tag).status();
    }
  }
  return Status::InvalidArgument("unknown stream event kind");
}

Status BitmapUpdateApplier::ApplyBatch(const std::vector<StreamEvent>& events) {
  for (const StreamEvent& event : events) {
    MBQ_RETURN_IF_ERROR(ApplyOne(event));
    ++events_applied_;
  }
  return Status::OK();
}

}  // namespace mbq::core
