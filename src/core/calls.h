#ifndef MBQ_CORE_CALLS_H_
#define MBQ_CORE_CALLS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "twitter/dataset.h"
#include "util/rng.h"

namespace mbq::core {

/// The Table 2 workload as data: every MicroblogEngine call named by an
/// enum so drivers, verifiers and tests can dispatch calls built at
/// runtime (from a workload-mix file, an RPC, a random stream) without
/// a switch at every call site.
enum class CallKind {
  kSelectUsers,          ///< Q1.1 SelectUsersByFollowerCount(threshold)
  kFollowees,            ///< Q2.1 FolloweesOf(a)
  kTweetsOfFollowees,    ///< Q2.2 TweetsOfFollowees(a)
  kHashtagsOfFollowees,  ///< Q2.3 HashtagsUsedByFollowees(a)
  kTopCoMentioned,       ///< Q3.1 TopCoMentionedUsers(a, n)
  kTopCoTags,            ///< Q3.2 TopCoOccurringHashtags(tag, n)
  kRecFollowees,         ///< Q4.1 RecommendFolloweesOfFollowees(a, n)
  kRecFollowers,         ///< Q4.2 RecommendFollowersOfFollowees(a, n)
  kCurrentInfluence,     ///< Q5.1 CurrentInfluence(a, n)
  kPotentialInfluence,   ///< Q5.2 PotentialInfluence(a, n)
  kShortestPath,         ///< Q6.1 ShortestPathLength(a, b, max_hops)

  // The live half of the surface (docs/WRITES.md), dispatched through
  // MicroblogEngine::AsWritable(); NotImplemented on read-only engines.
  kPostTweet,            ///< W1.1 PostTweet(a)           — a = poster uid
  kFollow,               ///< W2.1 Follow(a, b)           — a follows b
  kUnfollow,             ///< W2.2 Unfollow(a, b)         — a unfollows b
  kAddMention,           ///< W3.1 AddMention(a, b)       — tweet a mentions b
};

/// "Q1.1" .. "Q6.1" (the paper's names) and "W1.1" .. "W3.1" (the live
/// write extension).
const char* CallKindName(CallKind kind);

/// True for the write kinds (kPostTweet..kAddMention). Write calls
/// mutate engine state, so their outcomes are not comparable across runs
/// the way read digests are — agreement harnesses compare the *reads*
/// issued after identical write streams instead.
bool IsWriteCall(CallKind kind);

/// One fully parameterized call, ready to run on any engine.
struct CallSpec {
  CallKind kind = CallKind::kFollowees;
  int64_t a = 0;           ///< primary uid (write kinds: see CallKind docs)
  int64_t b = 0;           ///< second uid (kShortestPath, kFollow/kUnfollow,
                           ///< kAddMention)
  int64_t n = 10;          ///< top-n limit
  int64_t threshold = 0;   ///< kSelectUsers
  uint32_t max_hops = 3;   ///< kShortestPath bound
  std::string tag;         ///< kTopCoTags
  std::string text;        ///< kPostTweet tweet text (may be empty)
};

/// Compact display form, e.g. "Q2.1(a=17)" — for error messages and
/// divergence reports.
std::string CallSpecToString(const CallSpec& spec);

/// What a dispatched call produced, reduced to a comparable summary:
/// the row count and an order-insensitive digest of the full result
/// (rows are canonicalized with SortRows before hashing). Two engines
/// agree on a call iff their outcomes compare equal.
struct CallOutcome {
  uint64_t rows = 0;
  uint64_t digest = 0;

  bool operator==(const CallOutcome& other) const {
    return rows == other.rows && digest == other.digest;
  }
  bool operator!=(const CallOutcome& other) const {
    return !(*this == other);
  }
};

/// Runs `spec` on `engine`. Scalar calls (kShortestPath) fold their
/// result into the digest with rows = 1. Write calls route through
/// engine.AsWritable() — NotImplemented when the engine is read-only —
/// and produce the empty outcome (rows = 0, digest of zero rows): the
/// ids a write assigns are allocation-order dependent, so digesting
/// them would make identical logical streams compare unequal.
Result<CallOutcome> DispatchCall(MicroblogEngine& engine,
                                 const CallSpec& spec);

/// Parameter generators over a generated twitter dataset: the sampling
/// side of an open-loop workload. Uids are drawn either uniformly or
/// Zipf-skewed towards well-followed users (social-graph read traffic
/// concentrates on popular accounts); hashtags likewise by usage rank.
/// All draws flow through the caller's Rng so request streams are
/// reproducible from a seed.
class ParamUniverse {
 public:
  explicit ParamUniverse(const twitter::Dataset& dataset);

  int64_t num_users() const {
    return static_cast<int64_t>(uids_by_rank_.size());
  }
  bool has_tags() const { return !tags_by_rank_.empty(); }
  bool has_tweets() const { return !tids_.empty(); }

  /// A uid; `zipf` skews towards high follower counts.
  int64_t SampleUid(Rng& rng, bool zipf) const;
  /// Two distinct uids (a == b is remapped: the engines' shortest-path
  /// surfaces disagree about zero-length paths by design, see
  /// docs/BENCHMARKS.md).
  std::pair<int64_t, int64_t> SampleUidPair(Rng& rng, bool zipf) const;
  /// A hashtag; `zipf` skews towards heavily used tags. Empty string
  /// when the dataset has no hashtags.
  std::string SampleTag(Rng& rng, bool zipf) const;
  /// A follower-count threshold that selects roughly the top decile of
  /// users — a Q1.1 parameter with a stable result cardinality across
  /// dataset scales.
  int64_t FollowerThreshold() const { return follower_threshold_; }
  /// A bulk-loaded tweet id, uniform (mention writes target existing
  /// tweets); -1 when the dataset has no tweets.
  int64_t SampleTid(Rng& rng) const;

 private:
  std::vector<int64_t> uids_by_rank_;      // rank 0 = most followers
  std::vector<std::string> tags_by_rank_;  // rank 0 = most used
  std::vector<int64_t> tids_;              // bulk-loaded tweet ids
  std::optional<ZipfSampler> uid_zipf_;
  std::optional<ZipfSampler> tag_zipf_;
  int64_t follower_threshold_ = 0;
};

}  // namespace mbq::core

#endif  // MBQ_CORE_CALLS_H_
