#include "core/check.h"

#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "store/delta/delta_store.h"
#include "store/delta/wal.h"
#include "store/delta/write_batch.h"

namespace mbq::core {

namespace {

using bitmapstore::AttrId;
using bitmapstore::AttributeKind;
using bitmapstore::EdgesDirection;
using bitmapstore::Graph;
using bitmapstore::ObjectKind;
using bitmapstore::Objects;
using bitmapstore::Oid;
using bitmapstore::TypeId;
using common::Value;
using nodestore::Direction;
using nodestore::GraphDb;
using nodestore::kNullRecord;
using nodestore::LabelId;
using nodestore::NodeId;
using nodestore::NodeRecord;
using nodestore::PropKeyId;
using nodestore::RecordId;
using nodestore::RelId;
using nodestore::RelRecord;

/// `check.*` metrics, shared process-wide.
struct CheckMetrics {
  obs::Counter* runs;
  obs::Counter* issues;

  static CheckMetrics& Get() {
    static CheckMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      CheckMetrics m;
      m.runs = r.GetCounter("check.runs", "runs", "storage checker passes");
      m.issues = r.GetCounter("check.issues", "issues",
                              "invariant violations found by the checker");
      return m;
    }();
    return m;
  }
};

/// Issue collector honoring CheckOptions::max_issues.
class Collector {
 public:
  Collector(CheckReport* report, const CheckOptions& options)
      : report_(report), options_(options) {}

  void Add(const char* component, std::string message) {
    if (report_->issues.size() >= options_.max_issues) {
      ++report_->suppressed;
      return;
    }
    report_->issues.push_back({component, std::move(message)});
  }

  void Finish() {
    CheckMetrics::Get().runs->Inc();
    CheckMetrics::Get().issues->Inc(report_->issues.size() +
                                    report_->suppressed);
  }

 private:
  CheckReport* report_;
  const CheckOptions& options_;
};

std::string IdStr(uint64_t id) { return std::to_string(id); }

// Partitioned rel ids carry partition+1 in the top 16 bits (see
// nodestore/graph_db.cc); the checker validates bounds per store.
constexpr uint64_t kRelLocalMask = (uint64_t{1} << 48) - 1;

bool RelIdInBounds(RelId id, bool partitioned,
                   const std::vector<RecordId>& rel_high) {
  if (!partitioned) return id < rel_high[0];
  uint64_t partition = id >> 48;
  return partition > 0 && partition - 1 < rel_high.size() &&
         (id & kRelLocalMask) < rel_high[partition - 1];
}

}  // namespace

std::string CheckReport::ToText() const {
  std::string out;
  for (const CheckIssue& issue : issues) {
    out += "[" + issue.component + "] " + issue.message + "\n";
  }
  if (suppressed > 0) {
    out += "... " + std::to_string(suppressed) + " further issue(s) " +
           "suppressed\n";
  }
  out += (ok() ? "OK" : "CORRUPT") + std::string(": ") +
         std::to_string(issues.size() + suppressed) + " issue(s); checked " +
         std::to_string(nodes_checked) + " nodes, " +
         std::to_string(rels_checked) + " rels, " +
         std::to_string(labels_checked) + " labels, " +
         std::to_string(indexes_checked) + " indexes, " +
         std::to_string(objects_checked) + " objects, " +
         std::to_string(attrs_checked) + " attrs";
  if (delta_ops_checked > 0 || wal_records_checked > 0) {
    out += ", " + std::to_string(delta_ops_checked) + " delta ops, " +
           std::to_string(wal_records_checked) + " wal records";
  }
  out += "\n";
  return out;
}

Result<CheckReport> CheckNodestore(GraphDb* db, const CheckOptions& options) {
  CheckReport report;
  Collector issues(&report, options);
  const bool partitioned = db->options().semantic_partitioning;
  const NodeId node_high = db->NodeHighId();
  const std::vector<RecordId> rel_high = db->RelHighIds();
  const size_t num_labels = db->LabelNames().size();
  const size_t num_rel_types = db->RelTypeNames().size();

  // Pass 1 — node records: bounds of the label and (unpartitioned) the
  // chain head. Remembers liveness for the relationship passes.
  std::vector<bool> node_in_use(node_high, false);
  for (NodeId id = 0; id < node_high; ++id) {
    MBQ_ASSIGN_OR_RETURN(NodeRecord rec, db->RawNodeRecord(id));
    if (!rec.in_use) continue;
    ++report.nodes_checked;
    node_in_use[id] = true;
    if (rec.label != nodestore::kInvalidLabel && rec.label >= num_labels) {
      issues.Add("node-record", "node " + IdStr(id) + " has label id " +
                                    IdStr(rec.label) +
                                    " beyond the label registry");
    }
    if (!partitioned && rec.first_rel != kNullRecord &&
        !RelIdInBounds(rec.first_rel, partitioned, rel_high)) {
      issues.Add("node-record", "node " + IdStr(id) +
                                    " chain head points past the "
                                    "relationship store (rel " +
                                    IdStr(rec.first_rel) + ")");
    }
  }

  // Pass 2 — raw relationship records: endpoint and chain-pointer
  // bounds, then (unpartitioned) doubly-linked mutual consistency.
  struct RelState {
    RelRecord rec;
    bool src_seen = false;  // reached from src's chain walk
    bool dst_seen = false;
    bool dup_reported = false;
  };
  std::unordered_map<RelId, RelState> live;
  MBQ_RETURN_IF_ERROR(db->ForEachRawRel([&](RelId id, const RelRecord& rec) {
    if (!rec.in_use) return true;
    ++report.rels_checked;
    live.emplace(id, RelState{rec});
    if (rec.type >= num_rel_types) {
      issues.Add("rel-record", "rel " + IdStr(id) + " has type id " +
                                   IdStr(rec.type) +
                                   " beyond the type registry");
    }
    for (auto [endpoint, name] : {std::pair{rec.src, "src"},
                                  std::pair{rec.dst, "dst"}}) {
      if (endpoint >= node_high) {
        issues.Add("rel-record", "rel " + IdStr(id) + " " + name +
                                     " node " + IdStr(endpoint) +
                                     " is out of bounds");
      } else if (!node_in_use[endpoint]) {
        issues.Add("rel-record", "rel " + IdStr(id) + " " + name +
                                     " node " + IdStr(endpoint) +
                                     " is not in use");
      }
    }
    for (auto [ptr, name] :
         {std::pair{rec.src_prev, "src_prev"},
          std::pair{rec.src_next, "src_next"},
          std::pair{rec.dst_prev, "dst_prev"},
          std::pair{rec.dst_next, "dst_next"}}) {
      if (ptr != kNullRecord && !RelIdInBounds(ptr, partitioned, rel_high)) {
        issues.Add("rel-record", "rel " + IdStr(id) + " " + name +
                                     " points past the relationship store "
                                     "(rel " +
                                     IdStr(ptr) + ")");
      }
    }
    return true;
  }));

  if (!partitioned) {
    // Doubly-linked consistency: a null prev means the node record heads
    // the chain here; a non-null prev/next must be an in-use record that
    // links straight back. Self-loops share one chain for both sides, so
    // their pointer pairing is ambiguous and skipped.
    auto side_next = [](const RelRecord& rec, NodeId node) {
      return rec.src == node ? rec.src_next : rec.dst_next;
    };
    auto side_prev = [](const RelRecord& rec, NodeId node) {
      return rec.src == node ? rec.src_prev : rec.dst_prev;
    };
    for (const auto& [id, state] : live) {
      const RelRecord& rec = state.rec;
      if (rec.src == rec.dst) continue;
      for (auto [node, prev, next] :
           {std::tuple{rec.src, rec.src_prev, rec.src_next},
            std::tuple{rec.dst, rec.dst_prev, rec.dst_next}}) {
        if (node >= node_high || !node_in_use[node]) continue;
        if (prev == kNullRecord) {
          MBQ_ASSIGN_OR_RETURN(NodeRecord owner, db->RawNodeRecord(node));
          if (owner.first_rel != id) {
            issues.Add("rel-chain",
                       "rel " + IdStr(id) + " claims to head node " +
                           IdStr(node) + "'s chain but the node points at " +
                           (owner.first_rel == kNullRecord
                                ? std::string("nothing")
                                : "rel " + IdStr(owner.first_rel)));
          }
        } else {
          auto it = live.find(prev);
          if (it == live.end()) {
            issues.Add("rel-chain", "rel " + IdStr(id) +
                                        " prev pointer names freed rel " +
                                        IdStr(prev));
          } else if (it->second.rec.src != it->second.rec.dst &&
                     side_next(it->second.rec, node) != id) {
            issues.Add("rel-chain", "rel " + IdStr(prev) +
                                        " does not link forward to rel " +
                                        IdStr(id) + " on node " +
                                        IdStr(node) + "'s chain");
          }
        }
        if (next != kNullRecord) {
          auto it = live.find(next);
          if (it == live.end()) {
            issues.Add("rel-chain", "rel " + IdStr(id) +
                                        " next pointer names freed rel " +
                                        IdStr(next));
          } else if (it->second.rec.src != it->second.rec.dst &&
                     side_prev(it->second.rec, node) != id) {
            issues.Add("rel-chain", "rel " + IdStr(next) +
                                        " does not link back to rel " +
                                        IdStr(id) + " on node " +
                                        IdStr(node) + "'s chain");
          }
        }
      }
    }
  }

  // Pass 3 — chain reachability via the public walk (works in both
  // layouts): every in-use relationship must be reached exactly once
  // from each endpoint's chain. A cycle-guard caps the walk.
  const uint64_t walk_cap = report.rels_checked * 2 + 16;
  for (NodeId node = 0; node < node_high; ++node) {
    if (!node_in_use[node]) continue;
    uint64_t visited = 0;
    bool truncated = false;
    Status walk = db->ForEachRelationship(
        node, Direction::kBoth, std::nullopt,
        [&](const GraphDb::RelInfo& info) {
          if (++visited > walk_cap) {
            truncated = true;
            return false;
          }
          auto it = live.find(info.id);
          if (it == live.end()) {
            issues.Add("rel-chain", "node " + IdStr(node) +
                                        "'s chain yields freed rel " +
                                        IdStr(info.id));
            return true;
          }
          if (info.src != node && info.dst != node) {
            issues.Add("rel-chain", "node " + IdStr(node) +
                                        "'s chain contains rel " +
                                        IdStr(info.id) +
                                        " which is not incident to it");
            return true;
          }
          if (info.src == node) {
            if (it->second.src_seen && !it->second.dup_reported) {
              it->second.dup_reported = true;
              issues.Add("rel-chain", "rel " + IdStr(info.id) +
                                          " reached twice from node " +
                                          IdStr(node) + "'s chain");
            }
            it->second.src_seen = true;
          }
          if (info.dst == node) it->second.dst_seen = true;
          return true;
        });
    if (!walk.ok()) {
      issues.Add("rel-chain", "walking node " + IdStr(node) +
                                  "'s chain failed: " + walk.ToString());
    }
    if (truncated) {
      issues.Add("rel-chain", "node " + IdStr(node) +
                                  "'s chain exceeds the record count "
                                  "(pointer cycle?)");
    }
  }
  for (const auto& [id, state] : live) {
    if (!state.src_seen) {
      issues.Add("rel-chain", "rel " + IdStr(id) +
                                  " unreachable from its src node " +
                                  IdStr(state.rec.src) + "'s chain");
    }
    if (!state.dst_seen) {
      issues.Add("rel-chain", "rel " + IdStr(id) +
                                  " unreachable from its dst node " +
                                  IdStr(state.rec.dst) + "'s chain");
    }
  }

  // Pass 4 — label scan store completeness vs. a full node scan.
  for (LabelId label = 0; label < num_labels; ++label) {
    ++report.labels_checked;
    std::unordered_set<NodeId> scanned;
    MBQ_RETURN_IF_ERROR(db->ForEachNodeWithLabel(label, [&](NodeId id) {
      scanned.insert(id);
      return true;
    }));
    for (NodeId scanned_id : scanned) {
      if (scanned_id >= node_high || !node_in_use[scanned_id]) {
        issues.Add("label-scan", "label scan of '" + db->LabelName(label) +
                                     "' returned dead node " +
                                     IdStr(scanned_id));
      }
    }
    for (NodeId id = 0; id < node_high; ++id) {
      if (!node_in_use[id]) continue;
      MBQ_ASSIGN_OR_RETURN(NodeRecord rec, db->RawNodeRecord(id));
      if (rec.label == label && scanned.count(id) == 0) {
        issues.Add("label-scan", "node " + IdStr(id) + " has label '" +
                                     db->LabelName(label) +
                                     "' but the label scan misses it");
      }
    }
  }

  // Pass 5 — property-index completeness: every entry matches the stored
  // property, every stored property of an indexed (label, key) pair has
  // an entry.
  for (const GraphDb::IndexInfo& index : db->IndexCatalog()) {
    ++report.indexes_checked;
    std::unordered_map<NodeId, Value> entries;
    MBQ_RETURN_IF_ERROR(db->ForEachIndexEntry(
        index.label, index.key, [&](const Value& value, NodeId id) {
          auto [it, inserted] = entries.emplace(id, value);
          if (!inserted) {
            issues.Add("prop-index", "index :" + db->LabelName(index.label) +
                                         "(" + db->PropKeyName(index.key) +
                                         ") lists node " + IdStr(id) +
                                         " under two values");
          }
          return true;
        }));
    for (const auto& [id, value] : entries) {
      if (id >= node_high || !node_in_use[id]) {
        issues.Add("prop-index", "index :" + db->LabelName(index.label) +
                                     "(" + db->PropKeyName(index.key) +
                                     ") lists dead node " + IdStr(id));
        continue;
      }
      MBQ_ASSIGN_OR_RETURN(Value stored,
                           db->GetNodeProperty(id, index.key));
      if (!(stored == value)) {
        issues.Add("prop-index",
                   "index :" + db->LabelName(index.label) + "(" +
                       db->PropKeyName(index.key) + ") maps node " +
                       IdStr(id) + " to " + value.ToString() +
                       " but the store holds " + stored.ToString());
      }
    }
    for (NodeId id = 0; id < node_high; ++id) {
      if (!node_in_use[id]) continue;
      MBQ_ASSIGN_OR_RETURN(NodeRecord rec, db->RawNodeRecord(id));
      if (rec.label != index.label) continue;
      MBQ_ASSIGN_OR_RETURN(Value stored,
                           db->GetNodeProperty(id, index.key));
      if (stored.is_null()) continue;
      auto it = entries.find(id);
      if (it == entries.end()) {
        issues.Add("prop-index", "node " + IdStr(id) + " holds :" +
                                     db->LabelName(index.label) + "(" +
                                     db->PropKeyName(index.key) + ") = " +
                                     stored.ToString() +
                                     " but the index misses it");
      }
    }
  }

  issues.Finish();
  return report;
}

Result<CheckReport> CheckBitmapstore(Graph* graph,
                                     const CheckOptions& options) {
  CheckReport report;
  Collector issues(&report, options);

  // Pass 1 — per-type bitmap cardinality vs. the cached count, and
  // object-table agreement for every member.
  for (TypeId type = 0;
       type < static_cast<TypeId>(graph->NumTypes()); ++type) {
    MBQ_ASSIGN_OR_RETURN(Objects members, graph->Select(type));
    uint64_t cardinality = members.Count();
    uint64_t counted = graph->CountObjects(type);
    if (cardinality != counted) {
      issues.Add("type-count", "type '" + graph->TypeName(type) +
                                   "' bitmap holds " + IdStr(cardinality) +
                                   " objects but the count says " +
                                   IdStr(counted));
    }
    members.ForEach([&](Oid oid) {
      ++report.objects_checked;
      TypeId actual = graph->RawObjectType(oid);
      if (actual != type) {
        issues.Add("type-count", "oid " + IdStr(oid) + " sits in type '" +
                                     graph->TypeName(type) +
                                     "' bitmap but the object table says " +
                                     (actual == bitmapstore::kInvalidType
                                          ? std::string("freed")
                                          : "'" + graph->TypeName(actual) +
                                                "'"));
      }
    });
  }

  // Pass 2 — mutual src/dst adjacency agreement: walk every node's
  // per-edge-type bitmaps and tally which edges were seen from their
  // tail (outgoing) and head (ingoing); then require both for every
  // edge. Phantom oids and wrong-endpoint entries are caught inline.
  std::vector<TypeId> node_types = graph->NodeTypes();
  std::vector<TypeId> edge_types = graph->EdgeTypes();
  std::unordered_map<Oid, std::pair<bool, bool>> edge_seen;  // out, in
  for (TypeId etype : edge_types) {
    MBQ_ASSIGN_OR_RETURN(Objects edges, graph->Select(etype));
    edges.ForEach([&](Oid edge) { edge_seen.emplace(edge, std::pair{false,
                                                                    false}); });
    for (TypeId ntype : node_types) {
      MBQ_ASSIGN_OR_RETURN(Objects nodes, graph->Select(ntype));
      for (Oid node : nodes.ToVector()) {
        for (bool outgoing : {true, false}) {
          MBQ_ASSIGN_OR_RETURN(
              Objects incident,
              graph->Explode(node, etype,
                             outgoing ? EdgesDirection::kOutgoing
                                      : EdgesDirection::kIngoing));
          incident.ForEach([&](Oid edge) {
            if (graph->RawObjectType(edge) != etype) {
              issues.Add("adjacency",
                         "node " + IdStr(node) + " adjacency of '" +
                             graph->TypeName(etype) +
                             "' holds phantom oid " + IdStr(edge));
              return;
            }
            Oid tail = bitmapstore::kInvalidOid;
            Oid head = bitmapstore::kInvalidOid;
            graph->RawEdgeEndpoints(edge, &tail, &head);
            Oid expected = outgoing ? tail : head;
            if (expected != node) {
              issues.Add("adjacency",
                         "edge " + IdStr(edge) + " sits in node " +
                             IdStr(node) + "'s " +
                             (outgoing ? "outgoing" : "ingoing") +
                             " adjacency but its " +
                             (outgoing ? "tail" : "head") + " is node " +
                             IdStr(expected));
              return;
            }
            auto it = edge_seen.find(edge);
            if (it != edge_seen.end()) {
              (outgoing ? it->second.first : it->second.second) = true;
            }
          });
        }
      }
    }
    for (const auto& [edge, seen] : edge_seen) {
      if (graph->RawObjectType(edge) != etype) continue;
      if (!seen.first) {
        issues.Add("adjacency", "edge " + IdStr(edge) +
                                    " missing from its tail's outgoing "
                                    "adjacency");
      }
      if (!seen.second) {
        issues.Add("adjacency", "edge " + IdStr(edge) +
                                    " missing from its head's ingoing "
                                    "adjacency");
      }
    }
    edge_seen.clear();
  }

  // Pass 3 — indexed attributes: the value->objects bitmaps must agree
  // with the stored value set, and unique attributes must be unique.
  for (AttrId attr = 0;
       attr < static_cast<AttrId>(graph->NumAttributes()); ++attr) {
    AttributeKind kind = graph->GetAttributeKind(attr);
    if (kind == AttributeKind::kBasic) continue;
    ++report.attrs_checked;
    std::unordered_map<std::string, uint64_t> value_counts;
    std::vector<std::pair<Oid, Value>> stored;
    graph->ForEachAttributeValue(attr, [&](Oid oid, const Value& value) {
      stored.emplace_back(oid, value);
      ++value_counts[value.ToString()];
    });
    for (const auto& [oid, value] : stored) {
      MBQ_ASSIGN_OR_RETURN(
          Objects match,
          graph->Select(attr, bitmapstore::Condition::kEqual, value));
      if (!match.Contains(oid)) {
        issues.Add("attr-index", "attribute '" + graph->AttributeName(attr) +
                                     "' index misses oid " + IdStr(oid) +
                                     " for value " + value.ToString());
      }
      uint64_t count = value_counts[value.ToString()];
      if (match.Count() != count) {
        issues.Add("attr-index",
                   "attribute '" + graph->AttributeName(attr) +
                       "' value " + value.ToString() + " indexes " +
                       IdStr(match.Count()) + " objects but " +
                       IdStr(count) + " hold it");
      }
      if (kind == AttributeKind::kUnique && count > 1) {
        issues.Add("attr-index", "unique attribute '" +
                                     graph->AttributeName(attr) +
                                     "' holds value " + value.ToString() +
                                     " " + IdStr(count) + " times");
      }
    }
  }

  issues.Finish();
  return report;
}

namespace {

// WAL record framing, kept in sync with store/delta/wal.cc — the checker
// decodes the file independently so a Wal bug cannot vouch for itself.
constexpr uint32_t kWalMagic = 0x4C57424Du;  // "MBWL" little-endian
constexpr size_t kWalHeaderBytes = 4 + 8 + 4 + 4;

uint32_t ReadLeU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t ReadLeU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Result<CheckReport> CheckWritePath(MicroblogEngine& engine,
                                   const twitter::Dataset& base,
                                   const std::string& wal_path,
                                   const CheckOptions& options) {
  WritableEngine* writer = engine.AsWritable();
  if (writer == nullptr) {
    return Status::InvalidArgument("engine " + engine.name() +
                                   " is read-only: no write path to check");
  }
  CheckReport report;
  Collector issues(&report, options);
  const store::DeltaStore& delta = writer->delta();
  const std::vector<store::DeltaRecord> journal = delta.SnapshotRecords();

  // Pass 1 — journal internal invariants. Replays the journal over the
  // base crawl's follows set to predict which pairs should be visible.
  const int64_t tid_floor = static_cast<int64_t>(base.tweets.size());
  std::set<std::pair<int64_t, int64_t>> live(base.follows.begin(),
                                             base.follows.end());
  std::map<int64_t, std::set<int64_t>> touched;  // src -> dsts journaled
  std::set<int64_t> fresh_tids;
  uint64_t unfollows = 0;
  uint64_t prev_seq = 0;
  uint64_t prev_epoch = 0;
  for (const store::DeltaRecord& rec : journal) {
    ++report.delta_ops_checked;
    if (rec.epoch == 0 || rec.epoch < prev_epoch) {
      issues.Add("delta-epoch", "journal op at seq " + IdStr(rec.seq) +
                                    " carries commit epoch " +
                                    IdStr(rec.epoch) + " after epoch " +
                                    IdStr(prev_epoch));
    }
    if (rec.seq < prev_seq) {
      issues.Add("delta-seq", "journal op order violates WAL order: seq " +
                                  IdStr(rec.seq) + " after seq " +
                                  IdStr(prev_seq));
    }
    prev_epoch = rec.epoch > prev_epoch ? rec.epoch : prev_epoch;
    prev_seq = rec.seq > prev_seq ? rec.seq : prev_seq;
    switch (rec.op.kind) {
      case store::WriteOpKind::kPostTweet:
        if (rec.op.b < tid_floor) {
          issues.Add("delta-tid",
                     "post_tweet assigned tid " + std::to_string(rec.op.b) +
                         " inside the bulk-loaded id space [0, " +
                         std::to_string(tid_floor) + ")");
        }
        if (!fresh_tids.insert(rec.op.b).second) {
          issues.Add("delta-tid", "tid " + std::to_string(rec.op.b) +
                                      " assigned to two post_tweet ops");
        }
        break;
      case store::WriteOpKind::kFollow:
        live.insert({rec.op.a, rec.op.b});
        touched[rec.op.a].insert(rec.op.b);
        break;
      case store::WriteOpKind::kUnfollow:
        // Deletes are idempotent (an unfollow of a never-followed pair
        // is a legal no-op); only the tombstone bookkeeping is checked.
        ++unfollows;
        live.erase({rec.op.a, rec.op.b});
        touched[rec.op.a].insert(rec.op.b);
        break;
      case store::WriteOpKind::kAddMention:
        break;
    }
  }
  if (delta.tombstones() != unfollows) {
    issues.Add("tombstone", "journal counts " + IdStr(delta.tombstones()) +
                                " tombstone(s) but holds " +
                                IdStr(unfollows) + " unfollow op(s)");
  }
  if (delta.last_seq() != prev_seq) {
    issues.Add("delta-seq", "journal reports last_seq " +
                                IdStr(delta.last_seq()) +
                                " but its highest record is seq " +
                                IdStr(prev_seq));
  }
  if (delta.last_epoch() != prev_epoch) {
    issues.Add("delta-epoch", "journal reports last_epoch " +
                                  IdStr(delta.last_epoch()) +
                                  " but its highest record is epoch " +
                                  IdStr(prev_epoch));
  }

  // Pass 2 — delta-over-base visibility: every journal-touched follows
  // pair must read back exactly as the replay predicts.
  for (const auto& [src, dsts] : touched) {
    MBQ_ASSIGN_OR_RETURN(ValueRows rows, engine.FolloweesOf(src));
    std::set<int64_t> followees;
    for (const ValueRow& row : rows) {
      if (!row.empty()) followees.insert(row[0].AsInt());
    }
    for (int64_t dst : dsts) {
      ++report.rels_checked;
      const bool want = live.count({src, dst}) > 0;
      const bool got = followees.count(dst) > 0;
      if (want != got) {
        issues.Add("delta-visibility",
                   "follows " + std::to_string(src) + " -> " +
                       std::to_string(dst) + " should be " +
                       (want ? "visible" : "tombstoned") + " but the engine " +
                       (got ? "returns" : "omits") + " it");
      }
    }
  }

  // Pass 3 — WAL/delta agreement: decode the log independently (never
  // truncating — a torn tail is evidence here, not something to repair)
  // and prove its ops equal the journal's logged ops in sequence order.
  if (!wal_path.empty()) {
    std::ifstream in(wal_path, std::ios::binary);
    if (!in) {
      issues.Add("wal-record", "cannot read WAL at " + wal_path);
    } else {
      std::string data((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      std::vector<store::WriteOp> wal_ops;
      size_t off = 0;
      uint64_t last_seq = 0;
      while (data.size() - off >= kWalHeaderBytes) {
        const char* p = data.data() + off;
        if (ReadLeU32(p) != kWalMagic) break;
        const uint64_t seq = ReadLeU64(p + 4);
        const uint32_t len = ReadLeU32(p + 12);
        const uint32_t crc = ReadLeU32(p + 16);
        if (data.size() - off - kWalHeaderBytes < len) break;  // torn
        std::string_view payload(p + kWalHeaderBytes, len);
        if (store::WalCrc32(payload) != crc) {
          issues.Add("wal-record", "record at offset " + IdStr(off) +
                                       " (seq " + IdStr(seq) +
                                       ") fails its CRC");
          break;
        }
        if (seq != last_seq + 1) {
          issues.Add("wal-record", "sequence jumps from " + IdStr(last_seq) +
                                       " to " + IdStr(seq) + " at offset " +
                                       IdStr(off));
          break;
        }
        Result<store::WriteBatch> batch = store::DecodeWriteBatch(payload);
        if (!batch.ok()) {
          issues.Add("wal-record", "record seq " + IdStr(seq) +
                                       " does not decode: " +
                                       batch.status().message());
          break;
        }
        for (const store::WriteOp& op : batch->ops()) wal_ops.push_back(op);
        ++report.wal_records_checked;
        last_seq = seq;
        off += kWalHeaderBytes + len;
      }
      if (off < data.size()) {
        issues.Add("wal-tail",
                   IdStr(data.size() - off) +
                       " byte(s) of torn or garbage tail at offset " +
                       IdStr(off) + " (replay-on-open would truncate them)");
      }
      size_t next = 0;
      for (const store::DeltaRecord& rec : journal) {
        if (rec.seq == 0) continue;  // committed without the WAL
        if (next >= wal_ops.size()) {
          issues.Add("wal-delta", "journal op at seq " + IdStr(rec.seq) +
                                      " has no WAL record");
          break;
        }
        if (!(rec.op == wal_ops[next])) {
          issues.Add("wal-delta",
                     "op " + IdStr(next) + " diverges: journal holds " +
                         store::WriteOpKindName(rec.op.kind) + "(" +
                         std::to_string(rec.op.a) + ", " +
                         std::to_string(rec.op.b) + "), WAL holds " +
                         store::WriteOpKindName(wal_ops[next].kind) + "(" +
                         std::to_string(wal_ops[next].a) + ", " +
                         std::to_string(wal_ops[next].b) + ")");
        }
        ++next;
      }
      if (next < wal_ops.size()) {
        issues.Add("wal-delta", IdStr(wal_ops.size() - next) +
                                    " WAL op(s) were never journaled");
      }
    }
  }

  issues.Finish();
  return report;
}

}  // namespace mbq::core
