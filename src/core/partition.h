#ifndef MBQ_CORE_PARTITION_H_
#define MBQ_CORE_PARTITION_H_

#include <cstdint>
#include <string>

#include "twitter/dataset.h"
#include "util/result.h"

namespace mbq::core {

/// How the global user id space [0, num_users) is split across shards.
/// The numeric values are the wire encoding in the kHelloReply
/// `partition` byte (docs/CLUSTER.md) — append-only, never reuse.
enum class PartitionKind : uint8_t {
  kNone = 0,   ///< unpartitioned: one process owns everything
  kHash = 1,   ///< uid % num_shards (modulo hash; uids are already dense)
  kRange = 2,  ///< contiguous uid blocks, near-equal sizes
};

const char* PartitionKindName(PartitionKind kind);
/// Parses "none" / "hash" / "range".
Result<PartitionKind> ParsePartitionKind(const std::string& name);

/// Ownership and global↔local id translation for one partitioning of
/// `num_users` users over `num_shards` shards. Translation is pure
/// arithmetic — both schemes assign every shard a dense local ordinal
/// space [0, OwnedCount(shard)) with a closed-form bijection to global
/// uids, so no shard ever materializes an id map.
class Partitioner {
 public:
  Partitioner(PartitionKind kind, uint32_t num_shards, uint64_t num_users);

  PartitionKind kind() const { return kind_; }
  uint32_t num_shards() const { return num_shards_; }
  uint64_t num_users() const { return num_users_; }

  /// The shard owning global uid. Uids outside [0, num_users) still map
  /// to a valid shard (hash arithmetic extends naturally) so lookups of
  /// nonexistent users route somewhere and miss there, exactly like a
  /// single-process engine.
  uint32_t OwnerShard(int64_t uid) const;

  /// Dense ordinal of `uid` among the users its owner shard owns.
  uint64_t GlobalToLocal(int64_t uid) const;
  /// Inverse of GlobalToLocal: the global uid of ordinal `local` on
  /// `shard`.
  int64_t LocalToGlobal(uint32_t shard, uint64_t local) const;
  /// Number of users `shard` owns.
  uint64_t OwnedCount(uint32_t shard) const;

 private:
  /// First uid of a range shard's block.
  uint64_t RangeStart(uint32_t shard) const;

  PartitionKind kind_;
  uint32_t num_shards_;
  uint64_t num_users_;
};

/// What MakeShardSlice kept and dropped, for logs and tests.
struct SliceCounts {
  uint64_t owned_users = 0;   ///< users this shard owns (activity anchors)
  uint64_t tweets = 0;        ///< tweets in the slice
  uint64_t mentions = 0;      ///< mention edges in the slice
  uint64_t tags = 0;          ///< tag edges in the slice
  uint64_t retweets = 0;      ///< retweet edges kept (both ends owned)
  uint64_t dropped_retweets = 0;  ///< cross-shard retweet edges dropped
};

/// Builds shard `shard_id`'s dataset slice. The social skeleton — every
/// user (with its precomputed followers_count), every follows edge, and
/// the full hashtag catalog — is replicated on all shards; the activity
/// graph — tweets, with their mentions and tags edges — is partitioned
/// by the tweet's poster, so each tweet lives on exactly one shard.
/// This replication scheme is what makes the aggregator's merges exact
/// (docs/CLUSTER.md): routed social calls see the whole follows graph,
/// and fanned-out activity calls see disjoint tweet sets whose counts
/// sum without double-counting. Retweet edges crossing shards are
/// dropped (counted in `counts`); no Table 2 call reads them.
twitter::Dataset MakeShardSlice(const twitter::Dataset& full,
                                const Partitioner& partitioner,
                                uint32_t shard_id,
                                SliceCounts* counts = nullptr);

}  // namespace mbq::core

#endif  // MBQ_CORE_PARTITION_H_
