#include "core/write_path.h"

#include <chrono>

#include "obs/metrics.h"

namespace mbq::core {

namespace {

struct WriteMetrics {
  obs::Counter* commits;
  obs::Counter* ops;
  obs::Counter* post_tweet;
  obs::Counter* follow;
  obs::Counter* unfollow;
  obs::Counter* add_mention;
  obs::Counter* commit_errors;
  obs::Counter* replayed_batches;
  obs::Histogram* commit_micros;

  static WriteMetrics& Get() {
    static WriteMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      WriteMetrics m;
      m.commits = r.GetCounter("write.commits", "batches",
                               "write batches committed");
      m.ops = r.GetCounter("write.ops", "ops",
                           "ops inside committed write batches");
      m.post_tweet = r.GetCounter("write.ops.post_tweet", "ops",
                                  "post_tweet ops committed");
      m.follow =
          r.GetCounter("write.ops.follow", "ops", "follow ops committed");
      m.unfollow =
          r.GetCounter("write.ops.unfollow", "ops", "unfollow ops committed");
      m.add_mention = r.GetCounter("write.ops.add_mention", "ops",
                                   "add_mention ops committed");
      m.commit_errors = r.GetCounter(
          "write.commit_errors", "batches",
          "batches whose base-store apply or WAL append failed");
      m.replayed_batches = r.GetCounter(
          "write.replayed_batches", "batches",
          "batches re-applied from the WAL at engine open");
      m.commit_micros = r.GetHistogram(
          "write.commit_micros", "us",
          "wall time per committed batch, apply through durability");
      return m;
    }();
    return m;
  }
};

void CountOps(const store::WriteBatch& batch) {
  WriteMetrics& m = WriteMetrics::Get();
  m.ops->Inc(batch.size());
  for (const store::WriteOp& op : batch.ops()) {
    switch (op.kind) {
      case store::WriteOpKind::kPostTweet: m.post_tweet->Inc(); break;
      case store::WriteOpKind::kFollow: m.follow->Inc(); break;
      case store::WriteOpKind::kUnfollow: m.unfollow->Inc(); break;
      case store::WriteOpKind::kAddMention: m.add_mention->Inc(); break;
    }
  }
}

}  // namespace

std::vector<twitter::StreamEvent> EngineWriter::ToEvents(
    const store::WriteBatch& batch) {
  std::vector<twitter::StreamEvent> events;
  events.reserve(batch.size());
  for (const store::WriteOp& op : batch.ops()) {
    twitter::StreamEvent event;
    switch (op.kind) {
      case store::WriteOpKind::kPostTweet:
        event.kind = twitter::StreamEvent::Kind::kNewTweet;
        event.uid = op.a;
        event.tid = op.b;
        event.text = op.text;
        break;
      case store::WriteOpKind::kFollow:
        event.kind = twitter::StreamEvent::Kind::kNewFollow;
        event.src_uid = op.a;
        event.dst_uid = op.b;
        break;
      case store::WriteOpKind::kUnfollow:
        event.kind = twitter::StreamEvent::Kind::kUnfollow;
        event.src_uid = op.a;
        event.dst_uid = op.b;
        break;
      case store::WriteOpKind::kAddMention:
        event.kind = twitter::StreamEvent::Kind::kNewMention;
        event.tid = op.a;
        event.dst_uid = op.b;
        break;
    }
    events.push_back(std::move(event));
  }
  return events;
}

Result<std::unique_ptr<EngineWriter>> EngineWriter::Open(
    const WriteConfig& config, cache::EpochRegistry* epochs, ApplyFn apply) {
  std::unique_ptr<EngineWriter> writer(
      new EngineWriter(epochs, std::move(apply), config.first_fresh_tid));
  if (config.wal_dir.empty()) return writer;

  store::WalOptions wal_options;
  wal_options.dir = config.wal_dir;
  wal_options.group_commit_window_micros = config.group_commit_window_micros;
  store::WalRecovery recovery;
  MBQ_ASSIGN_OR_RETURN(writer->wal_,
                       store::Wal::Open(wal_options, &recovery));

  // Replay: re-apply every recovered batch under the same commit protocol
  // (minus re-logging — the records are already on disk), so after open
  // the engine answers queries byte-identically to the pre-crash state.
  uint64_t seq = 0;
  for (store::WriteBatch& batch : recovery.batches) {
    ++seq;
    auto guard = writer->snapshots_.BeginCommit();
    MBQ_RETURN_IF_ERROR(writer->apply_(ToEvents(batch)));
    writer->delta_.Append(batch, guard.epoch(), seq);
    for (const store::WriteOp& op : batch.ops()) {
      if (op.kind == store::WriteOpKind::kPostTweet &&
          op.b >= writer->next_tid_.load(std::memory_order_relaxed)) {
        writer->next_tid_.store(op.b + 1, std::memory_order_relaxed);
      }
    }
  }
  writer->replayed_batches_ = recovery.records;
  WriteMetrics::Get().replayed_batches->Inc(recovery.records);
  return writer;
}

Status EngineWriter::Commit(store::WriteBatch batch) {
  if (batch.empty()) return Status::OK();
  auto start = std::chrono::steady_clock::now();

  // Fresh tweet ids are assigned before logging so the WAL record carries
  // the concrete id and replay regenerates the identical graph.
  for (store::WriteOp& op : batch.mutable_ops()) {
    if (op.kind == store::WriteOpKind::kPostTweet && op.b == 0) {
      op.b = next_tid_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::vector<twitter::StreamEvent> events = ToEvents(batch);

  uint64_t seq = 0;
  {
    auto guard = snapshots_.BeginCommit();
    Status applied = apply_(events);
    if (!applied.ok()) {
      // Not logged, not journaled: replay will never see this batch.
      // The nodestore applier rolls its transaction back; the bitmap
      // store applies in place, Sparksee-style, so a mid-batch failure
      // there can leave a prefix applied (documented in docs/WRITES.md).
      WriteMetrics::Get().commit_errors->Inc();
      return applied;
    }
    if (wal_ != nullptr) {
      auto staged = wal_->Stage(batch);
      if (!staged.ok()) {
        WriteMetrics::Get().commit_errors->Inc();
        return staged.status();
      }
      seq = *staged;
    }
    delta_.Append(batch, guard.epoch(), seq);
  }
  // The batch is visible; durability can batch across committers.
  if (wal_ != nullptr) {
    Status durable = wal_->WaitDurable(seq);
    if (!durable.ok()) {
      WriteMetrics::Get().commit_errors->Inc();
      return durable;
    }
  }

  WriteMetrics::Get().commits->Inc();
  CountOps(batch);
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  WriteMetrics::Get().commit_micros->Record(
      static_cast<uint64_t>(elapsed.count()));
  return Status::OK();
}

// --------------------------------------------- WritableEngine conveniences

Status WritableEngine::PostTweet(int64_t uid, std::string text) {
  store::WriteBatch batch;
  batch.PostTweet(uid, std::move(text));
  return Commit(std::move(batch));
}

Status WritableEngine::Follow(int64_t src_uid, int64_t dst_uid) {
  store::WriteBatch batch;
  batch.Follow(src_uid, dst_uid);
  return Commit(std::move(batch));
}

Status WritableEngine::Unfollow(int64_t src_uid, int64_t dst_uid) {
  store::WriteBatch batch;
  batch.Unfollow(src_uid, dst_uid);
  return Commit(std::move(batch));
}

Status WritableEngine::AddMention(int64_t tid, int64_t uid) {
  store::WriteBatch batch;
  batch.AddMention(tid, uid);
  return Commit(std::move(batch));
}

}  // namespace mbq::core
