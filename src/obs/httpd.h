#ifndef MBQ_OBS_HTTPD_H_
#define MBQ_OBS_HTTPD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "util/result.h"

namespace mbq::obs {

class MetricsRegistry;
class QueryRegistry;
class FlightRecorder;
class SpanRecorder;

/// Everything the stats server can be tuned with. The defaults serve the
/// process-wide registries on an ephemeral loopback port.
struct ServeOptions {
  /// TCP port to bind; 0 picks an ephemeral port (read it back from
  /// StatsServer::port()).
  uint16_t port = 0;
  /// Loopback by default: the stats plane is an operator surface, not a
  /// public one.
  std::string bind_address = "127.0.0.1";
  /// Data sources; null uses the process-wide defaults.
  MetricsRegistry* metrics = nullptr;
  QueryRegistry* queries = nullptr;
  FlightRecorder* flight = nullptr;
  SpanRecorder* spans = nullptr;
};

/// A dependency-free embedded HTTP/1.1 stats server: a blocking poll()
/// loop on its own thread, one connection handled at a time (the payloads
/// are small and generated in microseconds, so a serial loop keeps the
/// code free of connection state). Endpoints:
///
///   /              plain-text index
///   /healthz       liveness probe: 200 + {status, role, pid, uptime}
///   /metrics       Prometheus text exposition format
///   /metrics.json  the bench --metrics-out JSON snapshot (same bytes)
///   /queries       active-query table (QueryRegistry::ToJson)
///   /slow          slow-query flight recorder (FlightRecorder::ToJson)
///   /trace         Chrome trace_event JSON of recent spans — load in
///                  about://tracing or https://ui.perfetto.dev
///   /trace.json    span ring with trace/span ids and unix timestamps,
///                  the input tools/mbqtrace stitches across processes
///
/// Every request is served from a point-in-time snapshot; the server
/// never blocks an executor (readers of the same registries take the
/// same short locks a metrics snapshot does).
class StatsServer {
 public:
  /// Binds, listens and starts the serving thread. Fails with an I/O
  /// error when the port cannot be bound.
  static Result<std::unique_ptr<StatsServer>> Start(
      const ServeOptions& options);

  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Stops the serving thread and closes the socket (idempotent).
  void Stop();

  /// The bound port (resolves option port 0 to the ephemeral choice).
  uint16_t port() const { return port_; }
  const std::string& bind_address() const { return options_.bind_address; }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  explicit StatsServer(ServeOptions options);

  Status Bind();
  void Loop();
  void HandleConnection(int fd);
  /// Routes `path`; fills content and content type, false on 404.
  bool Dispatch(const std::string& path, std::string* body,
                std::string* content_type);

  ServeOptions options_;
  uint16_t port_ = 0;
  /// Birth times for /healthz: uptime from the steady clock, the start
  /// instant on the unix timeline for display.
  uint64_t start_steady_nanos_ = 0;
  uint64_t start_unix_millis_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // written to unblock poll() on Stop
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_{0};
};

/// Starts a stats server when the MBQ_STATS_PORT environment variable is
/// set (any process: benches, loaders, the shell, checkdb); returns null
/// without it. Logs the bound address to stderr on success.
std::unique_ptr<StatsServer> MaybeServeFromEnv();

}  // namespace mbq::obs

#endif  // MBQ_OBS_HTTPD_H_
