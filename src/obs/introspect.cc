#include "obs/introspect.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "util/clock.h"

namespace mbq::obs {

namespace {

uint64_t NowSteadyNanos() {
  return WallClock().NowNanos();
}

uint64_t NowUnixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Small stable per-thread id for trace export (std::thread::id is
/// opaque and unbounded).
uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::string FormatMillisField(double millis) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", millis);
  return buf;
}

}  // namespace

// ------------------------------------------------------------ QueryRegistry

QueryRegistry& QueryRegistry::Global() {
  // The process-wide table reports itself as gauges in the default
  // registry (so /metrics and bench --metrics-out carry the live view).
  static QueryRegistry* registry = [] {
    auto* r = new QueryRegistry();
    MetricsRegistry::Default().RegisterProvider([r](MetricsSink* sink) {
      sink->Gauge("obs.queries.active",
                  static_cast<double>(r->Snapshot().size()), "queries");
      sink->Gauge("obs.queries.started", static_cast<double>(r->started()),
                  "queries");
      sink->Gauge("obs.queries.dropped", static_cast<double>(r->dropped()),
                  "queries");
    });
    return r;
  }();
  return *registry;
}

QueryRegistry::Slot* QueryRegistry::Begin(std::string_view query,
                                          std::string_view engine,
                                          uint32_t threads) {
  // Every execution counts as started, even ones the full table cannot
  // track — started()/finished() are throughput counters, dropped() is
  // the only signal that the *table* missed something.
  started_.fetch_add(1, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    bool expected = false;
    if (!slot.claimed.compare_exchange_strong(expected, true,
                                              std::memory_order_acquire)) {
      continue;
    }
    {
      util::ScopedLock lock(slot.mu);
      slot.id = next_id_.fetch_add(1, std::memory_order_relaxed);
      slot.query.assign(query.data(), query.size());
      slot.engine.assign(engine.data(), engine.size());
      slot.threads = threads;
      slot.start_nanos = NowSteadyNanos();
      slot.started_unix_millis = NowUnixMillis();
      slot.rows.store(0, std::memory_order_relaxed);
      slot.db_hits.store(0, std::memory_order_relaxed);
      slot.visible = true;
    }
    return &slot;
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void QueryRegistry::End(Slot* slot) {
  if (slot != nullptr) {
    {
      util::ScopedLock lock(slot->mu);
      slot->visible = false;
    }
    slot->claimed.store(false, std::memory_order_release);
  }
  finished_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<ActiveQuery> QueryRegistry::Snapshot() const {
  uint64_t now = NowSteadyNanos();
  std::vector<ActiveQuery> active;
  for (const Slot& slot : slots_) {
    util::ScopedLock lock(slot.mu);
    if (!slot.visible) continue;
    ActiveQuery q;
    q.id = slot.id;
    q.query = slot.query;
    q.engine = slot.engine;
    q.threads = slot.threads;
    q.started_unix_millis = slot.started_unix_millis;
    q.elapsed_millis =
        static_cast<double>(now - std::min(now, slot.start_nanos)) / 1e6;
    q.rows_emitted = slot.rows.load(std::memory_order_relaxed);
    q.db_hits = slot.db_hits.load(std::memory_order_relaxed);
    active.push_back(std::move(q));
  }
  std::sort(active.begin(), active.end(),
            [](const ActiveQuery& a, const ActiveQuery& b) {
              return a.id < b.id;
            });
  return active;
}

std::string QueryRegistry::ToJson() const {
  std::vector<ActiveQuery> active = Snapshot();
  std::string out = "{\n  \"active\": [";
  bool first = true;
  for (const ActiveQuery& q : active) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"id\": " + std::to_string(q.id) + ", \"engine\": \"" +
           JsonEscape(q.engine) + "\", \"query\": \"" + JsonEscape(q.query) +
           "\", \"threads\": " + std::to_string(q.threads) +
           ", \"started_unix_ms\": " + std::to_string(q.started_unix_millis) +
           ", \"elapsed_ms\": " + FormatMillisField(q.elapsed_millis) +
           ", \"rows\": " + std::to_string(q.rows_emitted) +
           ", \"db_hits\": " + std::to_string(q.db_hits) + "}";
  }
  out += "\n  ],\n";
  out += "  \"started\": " + std::to_string(started()) + ",\n";
  out += "  \"finished\": " + std::to_string(finished()) + ",\n";
  out += "  \"dropped\": " + std::to_string(dropped()) + "\n}\n";
  return out;
}

// --------------------------------------------------------- ActiveQueryScope

ActiveQueryScope::ActiveQueryScope(QueryRegistry* registry,
                                   std::string_view query,
                                   std::string_view engine, uint32_t threads)
    : registry_(registry), start_nanos_(NowSteadyNanos()) {
  if (registry_ != nullptr) {
    slot_ = registry_->Begin(query, engine, threads);
  }
}

ActiveQueryScope::~ActiveQueryScope() {
  if (registry_ != nullptr) registry_->End(slot_);
}

uint64_t ActiveQueryScope::ElapsedNanos() const {
  return NowSteadyNanos() - start_nanos_;
}

// ----------------------------------------------------------- FlightRecorder

uint64_t DefaultSlowQueryMillis() {
  if (const char* env = std::getenv("MBQ_SLOW_QUERY_MILLIS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<uint64_t>(v);
  }
  return 50;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = [] {
    auto* r = new FlightRecorder();
    MetricsRegistry::Default().RegisterProvider([r](MetricsSink* sink) {
      sink->Gauge("obs.flight.captured", static_cast<double>(r->captured()),
                  "queries");
    });
    return r;
  }();
  return *recorder;
}

void FlightRecorder::Record(SlowQuery entry) {
  entry.captured_unix_millis = NowUnixMillis();
  util::ScopedLock lock(mu_);
  uint64_t seq = captured_.load(std::memory_order_relaxed);
  entry.seq = seq;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[seq % capacity_] = std::move(entry);
  }
  captured_.store(seq + 1, std::memory_order_relaxed);
}

std::vector<SlowQuery> FlightRecorder::Snapshot() const {
  util::ScopedLock lock(mu_);
  std::vector<SlowQuery> out(ring_);
  std::sort(out.begin(), out.end(),
            [](const SlowQuery& a, const SlowQuery& b) {
              return a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::Clear() {
  util::ScopedLock lock(mu_);
  ring_.clear();
  // captured_ keeps counting: seq numbers stay monotonic across Clear().
}

std::string FlightRecorder::ToJson() const {
  std::vector<SlowQuery> entries = Snapshot();
  std::string out = "{\n  \"captured\": " + std::to_string(captured()) +
                    ",\n  \"capacity\": " + std::to_string(capacity_) +
                    ",\n  \"slow\": [";
  bool first = true;
  for (const SlowQuery& s : entries) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"seq\": " + std::to_string(s.seq) + ", \"engine\": \"" +
           JsonEscape(s.engine) + "\", \"query\": \"" + JsonEscape(s.query) +
           "\", \"millis\": " + FormatMillisField(s.millis) +
           ", \"db_hits\": " + std::to_string(s.db_hits) +
           ", \"rows\": " + std::to_string(s.rows) +
           ", \"threads\": " + std::to_string(s.threads) + ", \"cache\": \"" +
           JsonEscape(s.cache) + "\", \"epoch\": " + std::to_string(s.epoch) +
           ", \"diagnostics\": " + std::to_string(s.diagnostics) +
           ", \"captured_unix_ms\": " + std::to_string(s.captured_unix_millis) +
           ", \"profile\": \"" + JsonEscape(s.profile) + "\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string FlightRecorder::ToText() const {
  std::vector<SlowQuery> entries = Snapshot();
  if (entries.empty()) {
    return "flight recorder: no captures (threshold not crossed yet)\n";
  }
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "flight recorder: %llu captured, showing %zu (capacity %zu)\n",
                static_cast<unsigned long long>(captured()), entries.size(),
                capacity_);
  out += buf;
  for (const SlowQuery& s : entries) {
    std::snprintf(buf, sizeof(buf),
                  "#%llu [%s] %.2f ms  rows=%llu dbHits=%llu threads=%u "
                  "cache=%s epoch=%llu\n",
                  static_cast<unsigned long long>(s.seq), s.engine.c_str(),
                  s.millis, static_cast<unsigned long long>(s.rows),
                  static_cast<unsigned long long>(s.db_hits), s.threads,
                  s.cache.empty() ? "off" : s.cache.c_str(),
                  static_cast<unsigned long long>(s.epoch));
    out += buf;
    out += "  " + s.query + "\n";
    // Indent the profile tree under the entry.
    size_t pos = 0;
    while (pos < s.profile.size()) {
      size_t nl = s.profile.find('\n', pos);
      if (nl == std::string::npos) nl = s.profile.size();
      out += "    " + s.profile.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }
  return out;
}

// ------------------------------------------------------------- SpanRecorder

SpanRecorder::SpanRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

SpanRecorder& SpanRecorder::Global() {
  static SpanRecorder* recorder = [] {
    auto* r = new SpanRecorder();
    MetricsRegistry::Default().RegisterProvider([r](MetricsSink* sink) {
      sink->Gauge("obs.spans.recorded", static_cast<double>(r->recorded()),
                  "spans");
      sink->Gauge("obs.spans.dropped", static_cast<double>(r->dropped()),
                  "spans");
    });
    return r;
  }();
  return *recorder;
}

void SpanRecorder::Record(std::string_view name, std::string_view category,
                          uint64_t start_nanos, uint64_t duration_nanos) {
  Span span;
  span.name.assign(name.data(), name.size());
  span.category.assign(category.data(), category.size());
  span.start_nanos = start_nanos;
  span.duration_nanos = duration_nanos;
  span.tid = CurrentTid();
  const TraceContext& ctx = CurrentTraceContext();
  span.trace_hi = ctx.trace_hi;
  span.trace_lo = ctx.trace_lo;
  span.span_id = ctx.span_id;
  span.parent_span_id = ctx.parent_span_id;
  // Pin the span to the unix timeline once, here: ages computed from the
  // same steady clock cancel its arbitrary epoch, and every process's
  // system clock shares one epoch — the property stitching relies on.
  uint64_t now_steady = NowSteadyNanos();
  uint64_t age_nanos = now_steady - std::min(now_steady, start_nanos);
  span.start_unix_micros = NowUnixMillis() * 1000 - age_nanos / 1000;
  util::ScopedLock lock(mu_);
  uint64_t seq = recorded_.load(std::memory_order_relaxed);
  if (seq == 0) origin_nanos_ = start_nanos;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[seq % capacity_] = std::move(span);
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  recorded_.store(seq + 1, std::memory_order_relaxed);
}

std::string SpanRecorder::ToChromeTraceJson() const {
  util::ScopedLock lock(mu_);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const Span& s : ring_) {
    out += first ? "\n" : ",\n";
    first = false;
    double ts_micros =
        static_cast<double>(s.start_nanos - std::min(s.start_nanos,
                                                     origin_nanos_)) /
        1e3;
    double dur_micros = static_cast<double>(s.duration_nanos) / 1e3;
    char buf[256];
    if (s.span_id != 0) {
      TraceContext ctx;
      ctx.trace_hi = s.trace_hi;
      ctx.trace_lo = s.trace_lo;
      std::snprintf(buf, sizeof(buf),
                    "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
                    "\"dur\": %.3f, \"args\": {\"trace_id\": \"%s\", "
                    "\"span_id\": \"%s\", \"parent_span_id\": \"%s\"}}",
                    s.tid, ts_micros, dur_micros, TraceIdHex(ctx).c_str(),
                    SpanIdHex(s.span_id).c_str(),
                    SpanIdHex(s.parent_span_id).c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
                    "\"dur\": %.3f}",
                    s.tid, ts_micros, dur_micros);
    }
    out += "  {\"name\": \"" + JsonEscape(s.name) + "\", \"cat\": \"" +
           JsonEscape(s.category) + "\", " + buf;
  }
  out += "\n]}\n";
  return out;
}

std::string SpanRecorder::ToTraceJson() const {
  std::string out = "{\n  \"process\": \"" + JsonEscape(ProcessRole()) +
                    "\",\n  \"pid\": " + std::to_string(::getpid()) + ",\n";
  util::ScopedLock lock(mu_);
  out += "  \"recorded\": " +
         std::to_string(recorded_.load(std::memory_order_relaxed)) +
         ",\n  \"dropped\": " +
         std::to_string(dropped_.load(std::memory_order_relaxed)) +
         ",\n  \"spans\": [";
  bool first = true;
  for (const Span& s : ring_) {
    out += first ? "\n" : ",\n";
    first = false;
    TraceContext ctx;
    ctx.trace_hi = s.trace_hi;
    ctx.trace_lo = s.trace_lo;
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "\"tid\": %u, \"trace_id\": \"%s\", \"span_id\": \"%s\", "
                  "\"parent_span_id\": \"%s\", \"start_unix_us\": %llu, "
                  "\"dur_us\": %.3f}",
                  s.tid, TraceIdHex(ctx).c_str(), SpanIdHex(s.span_id).c_str(),
                  SpanIdHex(s.parent_span_id).c_str(),
                  static_cast<unsigned long long>(s.start_unix_micros),
                  static_cast<double>(s.duration_nanos) / 1e3);
    out += "    {\"name\": \"" + JsonEscape(s.name) + "\", \"cat\": \"" +
           JsonEscape(s.category) + "\", " + buf;
  }
  out += "\n  ]\n}\n";
  return out;
}

void SpanRecorder::Clear() {
  util::ScopedLock lock(mu_);
  ring_.clear();
  origin_nanos_ = 0;
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

size_t SpanRecorder::size() const {
  util::ScopedLock lock(mu_);
  return ring_.size();
}

}  // namespace mbq::obs
