#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <set>

#include "obs/export.h"

namespace mbq::obs {

// ---------------------------------------------------------------- Histogram

uint32_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSub) return static_cast<uint32_t>(value);
  uint32_t s = 63 - static_cast<uint32_t>(std::countl_zero(value));
  uint32_t sub =
      static_cast<uint32_t>(value >> (s - kSubBits)) - kSub;  // [0, kSub)
  uint32_t index = kSub + (s - kSubBits) * kSub + sub;
  return std::min(index, kNumBuckets - 1);
}

uint64_t Histogram::BucketLow(uint32_t index) {
  if (index < kSub) return index;
  uint32_t seg = (index - kSub) / kSub;
  uint32_t sub = (index - kSub) % kSub;
  return static_cast<uint64_t>(kSub + sub) << seg;
}

uint64_t Histogram::BucketWidth(uint32_t index) {
  if (index < kSub) return 1;
  return uint64_t{1} << ((index - kSub) / kSub);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen_min = min_.load(std::memory_order_relaxed);
  while (value < seen_min &&
         !min_.compare_exchange_weak(seen_min, value,
                                     std::memory_order_relaxed)) {
  }
  uint64_t seen_max = max_.load(std::memory_order_relaxed);
  while (value > seen_max &&
         !max_.compare_exchange_weak(seen_max, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

double Histogram::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(total);
  double cum = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cum + static_cast<double>(in_bucket) >= target) {
      // Interpolate within the bucket's value range.
      double fraction =
          in_bucket == 0 ? 0 : (target - cum) / static_cast<double>(in_bucket);
      return static_cast<double>(BucketLow(i)) +
             fraction * static_cast<double>(BucketWidth(i));
    }
    cum += static_cast<double>(in_bucket);
  }
  return static_cast<double>(max());
}

// ----------------------------------------------------------------- Snapshot

void MetricsSink::Gauge(const std::string& name, double value,
                        const std::string& unit) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(name, GaugeSnapshot{name, unit, value});
  } else {
    it->second.value += value;  // several providers, one logical metric
  }
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  // Integral values print without a fraction so counters stay readable.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

std::string MetricsSnapshot::ToText() const {
  std::string out;
  auto line = [&out](const std::string& name, const std::string& value,
                     const std::string& unit) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-48s %16s %s\n", name.c_str(),
                  value.c_str(), unit.c_str());
    out += buf;
  };
  for (const auto& c : counters) {
    line(c.name, std::to_string(c.value), c.unit);
  }
  for (const auto& g : gauges) {
    line(g.name, FormatDouble(g.value), g.unit);
  }
  for (const auto& h : histograms) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-48s count=%llu sum=%llu min=%llu max=%llu "
                  "p50=%.0f p95=%.0f p99=%.0f %s\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.min),
                  static_cast<unsigned long long>(h.max), h.p50, h.p95, h.p99,
                  h.unit.c_str());
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const auto& c : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + JsonEscape(c.name) + "\", \"unit\": \"" +
           JsonEscape(c.unit) + "\", \"value\": " + std::to_string(c.value) +
           "}";
  }
  out += "\n  ],\n  \"gauges\": [";
  first = true;
  for (const auto& g : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + JsonEscape(g.name) + "\", \"unit\": \"" +
           JsonEscape(g.unit) + "\", \"value\": " + FormatDouble(g.value) +
           "}";
  }
  out += "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"unit\": \"%s\", \"count\": %llu, "
        "\"sum\": %llu, \"min\": %llu, \"max\": %llu, \"p50\": %.3f, "
        "\"p95\": %.3f, \"p99\": %.3f}",
        JsonEscape(h.name).c_str(), JsonEscape(h.unit).c_str(),
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum),
        static_cast<unsigned long long>(h.min),
        static_cast<unsigned long long>(h.max), h.p50, h.p95, h.p99);
    out += buf;
  }
  out += "\n  ]\n}\n";
  return out;
}

namespace {

/// Escapes a HELP line per the exposition format (backslash and newline).
std::string PromHelpEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  std::set<std::string> used;
  // Sanitized names can collide ("a.b" and "a_b" both map to "a_b");
  // reserve every family name a metric will emit and suffix duplicates.
  auto unique_name = [&used](const std::string& raw,
                             std::initializer_list<const char*> suffixes) {
    std::string base = PrometheusName(raw);
    std::string name = base;
    for (int i = 2;; ++i) {
      bool free = true;
      for (const char* suffix : suffixes) {
        if (used.count(name + suffix) != 0) {
          free = false;
          break;
        }
      }
      if (free) break;
      name = base + "_" + std::to_string(i);
    }
    for (const char* suffix : suffixes) used.insert(name + suffix);
    return name;
  };
  auto help_line = [&out](const std::string& name, const std::string& help,
                          const std::string& unit) {
    std::string text = help;
    if (!unit.empty()) {
      if (!text.empty()) text += " ";
      text += "(unit: " + unit + ")";
    }
    if (!text.empty()) {
      out += "# HELP " + name + " " + PromHelpEscape(text) + "\n";
    }
  };
  for (const auto& c : counters) {
    std::string name = unique_name(c.name, {"_total"}) + "_total";
    help_line(name, c.help, c.unit);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    std::string name = unique_name(g.name, {""});
    help_line(name, "", g.unit);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatDouble(g.value) + "\n";
  }
  for (const auto& h : histograms) {
    std::string name = unique_name(h.name, {"", "_sum", "_count"});
    help_line(name, h.help, h.unit);
    out += "# TYPE " + name + " summary\n";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{quantile=\"0.5\"} %.6g\n%s{quantile=\"0.95\"} %.6g\n"
                  "%s{quantile=\"0.99\"} %.6g\n",
                  name.c_str(), h.p50, name.c_str(), h.p95, name.c_str(),
                  h.p99);
    out += buf;
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

double MetricsSnapshot::ValueOf(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return static_cast<double>(c.value);
  }
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return -1;
}

// ----------------------------------------------------------------- Registry

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& unit,
                                     const std::string& help) {
  util::ScopedLock lock(mu_);
  auto it = counter_by_name_.find(name);
  if (it != counter_by_name_.end()) return it->second.get();
  auto* c = new Counter(name, unit, help);
  counter_by_name_[name] = std::unique_ptr<Counter>(c);
  return c;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& unit,
                                         const std::string& help) {
  util::ScopedLock lock(mu_);
  auto it = histogram_by_name_.find(name);
  if (it != histogram_by_name_.end()) return it->second.get();
  auto* h = new Histogram(name, unit, help);
  histogram_by_name_[name] = std::unique_ptr<Histogram>(h);
  return h;
}

uint64_t MetricsRegistry::RegisterProvider(ProviderFn fn) {
  util::ScopedLock lock(mu_);
  uint64_t id = next_provider_id_++;
  providers_[id] = std::move(fn);
  return id;
}

void MetricsRegistry::UnregisterProvider(uint64_t id) {
  util::ScopedLock lock(mu_);
  auto it = providers_.find(id);
  if (it == providers_.end()) return;
  MetricsSink sink;
  it->second(&sink);
  for (const auto& [name, gauge] : sink.gauges_) {
    auto retained = retained_gauges_.find(name);
    if (retained == retained_gauges_.end()) {
      retained_gauges_.emplace(name, gauge);
    } else {
      retained->second.value += gauge.value;
    }
  }
  providers_.erase(it);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  util::ScopedLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counter_by_name_) {
    snap.counters.push_back(
        {name, counter->unit(), counter->value(), counter->help()});
  }
  MetricsSink sink;
  sink.gauges_ = retained_gauges_;
  for (const auto& [id, fn] : providers_) {
    fn(&sink);
  }
  for (const auto& [name, gauge] : sink.gauges_) {
    snap.gauges.push_back(gauge);
  }
  for (const auto& [name, hist] : histogram_by_name_) {
    HistogramSnapshot h;
    h.name = name;
    h.unit = hist->unit();
    h.count = hist->count();
    h.sum = hist->sum();
    h.min = hist->min();
    h.max = hist->max();
    h.p50 = hist->Quantile(0.50);
    h.p95 = hist->Quantile(0.95);
    h.p99 = hist->Quantile(0.99);
    h.help = hist->help();
    snap.histograms.push_back(h);
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    // Lock-rank checker health (docs/OBSERVABILITY.md, docs/
    // STATIC_ANALYSIS.md). Reads plain atomics — safe under the registry
    // mutex. Registered only on the default registry so test-local
    // registries keep exactly the gauges their components report.
    r->RegisterProvider([](MetricsSink* sink) {
      sink->Gauge("lockrank.checks",
                  static_cast<double>(util::LockRankChecks()), "acquisitions");
      sink->Gauge("lockrank.violations",
                  static_cast<double>(util::LockRankViolations()),
                  "violations");
      sink->Gauge("lockrank.enabled",
                  util::LockRankChecksEnabled() ? 1.0 : 0.0, "bool");
    });
    return r;
  }();
  return *registry;
}

}  // namespace mbq::obs
