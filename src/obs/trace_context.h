#ifndef MBQ_OBS_TRACE_CONTEXT_H_
#define MBQ_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>

namespace mbq::obs {

class Counter;

/// Dapper-style request identity, minted once at an ingress (a Cypher
/// session, a navigation call, the bench driver, the aggregator) and
/// carried — in process by a thread-local, across processes by the
/// kTracedEnvelope RPC frame — to every span the request touches. The
/// 128-bit trace id names the request; span ids name one timed operation
/// within it; the parent span id is what lets an offline collector
/// (tools/mbqtrace) rebuild the tree after the fact.
struct TraceContext {
  uint64_t trace_hi = 0;  ///< high 64 bits of the 128-bit trace id
  uint64_t trace_lo = 0;  ///< low 64 bits
  uint64_t span_id = 0;   ///< this operation's span
  uint64_t parent_span_id = 0;  ///< 0 for a root span
  /// The sampling verdict travels with the context: only sampled traces
  /// are propagated on the wire (unsampled ones still record spans into
  /// the local ring — the ring is cheap, the network is not).
  bool sampled = false;

  /// A context is valid once ids are assigned; the zero context means
  /// "no trace active on this thread".
  bool valid() const { return (trace_hi | trace_lo) != 0 && span_id != 0; }
};

/// Mints a root context with fresh random ids. The sampling verdict is
/// 1-in-N where N comes from the MBQ_TRACE_SAMPLE environment variable
/// (default 1 — every trace sampled; 0 disables minting entirely and
/// returns the invalid context).
TraceContext MintTraceContext();

/// A fresh random non-zero span id (for child spans and RPC client spans).
uint64_t NextSpanId();

/// The context installed on the calling thread; invalid when none.
const TraceContext& CurrentTraceContext();

/// 32 lowercase hex chars of the 128-bit trace id.
std::string TraceIdHex(const TraceContext& ctx);
/// 16 lowercase hex chars of a span id.
std::string SpanIdHex(uint64_t span_id);

/// RAII installation of a trace context on the current thread; restores
/// the previous context (usually the invalid one) on destruction.
///
/// Two modes:
///  - explicit: installs `ctx` verbatim — used at ingress points, which
///    pass either a freshly minted root or a context adopted from the
///    wire (ShardService), and
///  - child (default constructor): derives a child of the current
///    context — same trace id, fresh span id, parent = the enclosing
///    span. Inert when no trace is active, so interior code can open
///    child scopes unconditionally.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ScopedTraceContext();
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  /// The context this scope installed (invalid for an inert child scope).
  const TraceContext& context() const { return installed_; }
  bool active() const { return installed_.valid(); }

 private:
  TraceContext installed_;
  TraceContext previous_;
  bool restored_ = false;
};

/// The ingress helper every entry point uses: a child of the current
/// context when one is active (an outer ingress already named the
/// request), else a freshly minted root.
TraceContext ChildOrRootContext();

/// The process's role in the cluster ("shard-0", "aggregator", "bench",
/// ...) as reported by /healthz and /trace.json — what lets mbqtrace
/// label the per-process tracks of a stitched trace. Defaults to "mbq".
void SetProcessRole(const std::string& role);
std::string ProcessRole();

/// Counters of the tracing plane, in the default metrics registry:
/// trace.minted, trace.adopted, trace.envelope.sent,
/// trace.envelope.received (docs/OBSERVABILITY.md).
struct TraceMetrics {
  Counter* minted;
  Counter* adopted;
  Counter* envelope_sent;
  Counter* envelope_received;

  static TraceMetrics Get();
};

}  // namespace mbq::obs

#endif  // MBQ_OBS_TRACE_CONTEXT_H_
