#ifndef MBQ_OBS_EXPORT_H_
#define MBQ_OBS_EXPORT_H_

#include <string>
#include <string_view>

namespace mbq::obs {

class MetricsRegistry;

/// Escapes `s` for embedding in a JSON string literal: quote, backslash
/// and every control character (U+0000..U+001F) are escaped; valid UTF-8
/// multi-byte sequences pass through untouched. Every JSON document the
/// observability layer emits (metrics snapshots, the active-query table,
/// the flight recorder, trace export) goes through this one function, so
/// hostile query texts — embedded quotes, newlines, braces — cannot break
/// the payload.
std::string JsonEscape(std::string_view s);

/// Inverse of JsonEscape: decodes \" \\ \/ \b \f \n \r \t and \uXXXX
/// (code points are re-encoded as UTF-8; unpaired surrogates decode to
/// U+FFFD). Unknown escapes are kept verbatim. JsonUnescape(JsonEscape(s))
/// == s for any byte string.
std::string JsonUnescape(std::string_view s);

/// Sanitizes a metric name into the Prometheus exposition charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every other byte becomes '_', and a leading
/// digit (or an empty name) gains a '_' prefix. Distinct inputs can
/// collide after sanitization ("a.b" and "a_b"); exporters must
/// deduplicate (MetricsSnapshot::ToPrometheus appends "_2", "_3", ...).
std::string PrometheusName(std::string_view name);

/// True when `name` is already a legal Prometheus metric name.
bool IsValidPrometheusName(std::string_view name);

/// One shared snapshot path for every JSON metrics export: the bench
/// `--metrics-out` file and the stats server's `/metrics.json` endpoint
/// both call this, so the two surfaces can never drift apart. Null uses
/// the process-default registry.
std::string MetricsJson(MetricsRegistry* registry = nullptr);

}  // namespace mbq::obs

#endif  // MBQ_OBS_EXPORT_H_
