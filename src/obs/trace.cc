#include "obs/trace.h"

#include <cstdio>

#include "obs/introspect.h"

namespace mbq::obs {

// ----------------------------------------------------------------- TraceLog

void TraceLog::Clear() {
  spans_.clear();
  depth_ = 0;
  started_ = false;
  origin_nanos_ = 0;
}

size_t TraceLog::Begin(const std::string& name) {
  uint64_t now = clock_.NowNanos();
  if (!started_) {
    started_ = true;
    origin_nanos_ = now;
  }
  Span span;
  span.name = name;
  span.depth = depth_++;
  span.start_millis = static_cast<double>(now - origin_nanos_) / 1e6;
  span.duration_millis = -1;  // running
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void TraceLog::End(size_t slot, uint64_t duration_nanos, uint64_t items) {
  if (slot >= spans_.size()) return;
  spans_[slot].duration_millis = static_cast<double>(duration_nanos) / 1e6;
  spans_[slot].items = items;
  if (depth_ > 0) --depth_;
}

void TraceLog::AppendChild(const std::string& name, double duration_millis,
                           uint64_t items) {
  uint64_t now = clock_.NowNanos();
  if (!started_) {
    started_ = true;
    origin_nanos_ = now;
  }
  Span span;
  span.name = name;
  span.depth = depth_;  // child of the currently open span
  span.start_millis = static_cast<double>(now - origin_nanos_) / 1e6;
  span.duration_millis = duration_millis;
  span.items = items;
  spans_.push_back(std::move(span));
}

std::string TraceLog::ToText() const {
  std::string out;
  for (const Span& s : spans_) {
    char buf[256];
    std::string indent(static_cast<size_t>(s.depth) * 2, ' ');
    if (s.items > 0 && s.duration_millis > 0) {
      std::snprintf(buf, sizeof(buf),
                    "%s%-28s %10.1f ms  %12llu items  %10.0f items/s\n",
                    indent.c_str(), s.name.c_str(), s.duration_millis,
                    static_cast<unsigned long long>(s.items),
                    static_cast<double>(s.items) / s.duration_millis * 1000.0);
    } else {
      std::snprintf(buf, sizeof(buf), "%s%-28s %10.1f ms\n", indent.c_str(),
                    s.name.c_str(), s.duration_millis);
    }
    out += buf;
  }
  return out;
}

std::string TraceLog::ToJson() const {
  std::string out = "[";
  bool first = true;
  for (const Span& s : spans_) {
    out += first ? "\n" : ",\n";
    first = false;
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "  {\"name\": \"%s\", \"depth\": %d, \"start_ms\": %.3f, "
                  "\"duration_ms\": %.3f, \"items\": %llu}",
                  s.name.c_str(), s.depth, s.start_millis, s.duration_millis,
                  static_cast<unsigned long long>(s.items));
    out += buf;
  }
  out += "\n]\n";
  return out;
}

// ---------------------------------------------------------------- TraceSpan

TraceSpan::TraceSpan(TraceLog* log, std::string name, Histogram* latency)
    : log_(log), latency_(latency), name_(std::move(name)) {
  if (!name_.empty()) trace_scope_.emplace();  // child of any active trace
  start_nanos_ = clock_.NowNanos();
  if (log_ != nullptr) slot_ = log_->Begin(name_);
}

TraceSpan::TraceSpan(Histogram* latency) : latency_(latency) {
  start_nanos_ = clock_.NowNanos();
}

void TraceSpan::Finish() {
  if (finished_) return;
  finished_ = true;
  uint64_t elapsed = clock_.NowNanos() - start_nanos_;
  if (log_ != nullptr) log_->End(slot_, elapsed, items_);
  if (latency_ != nullptr) latency_->Record(elapsed);
  if (!name_.empty()) {
    // Record while the child context is still installed so the span
    // carries its own span id, then pop the context.
    SpanRecorder::Global().Record(name_, "import", start_nanos_, elapsed);
  }
  trace_scope_.reset();
}

}  // namespace mbq::obs
