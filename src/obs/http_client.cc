#include "obs/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace mbq::obs {

bool HttpGet(const std::string& host, uint16_t port, const std::string& path,
             std::string* body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2000) <= 0) break;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  if (response.compare(0, 12, "HTTP/1.1 200") != 0) return false;
  *body = response.substr(header_end + 4);
  return true;
}

}  // namespace mbq::obs
