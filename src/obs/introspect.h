#ifndef MBQ_OBS_INTROSPECT_H_
#define MBQ_OBS_INTROSPECT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace mbq::obs {

// ---------------------------------------------------------------------------
// Active-query table
// ---------------------------------------------------------------------------

/// One in-flight query as seen by QueryRegistry::Snapshot(): what a loaded
/// server is doing *right now*.
struct ActiveQuery {
  uint64_t id = 0;
  std::string query;
  std::string engine;  // "cypher" or "bitmap"
  uint32_t threads = 1;
  /// Wall-clock start (milliseconds since the Unix epoch, for display).
  uint64_t started_unix_millis = 0;
  /// Time in flight at the moment of the snapshot.
  double elapsed_millis = 0;
  /// Live progress, sampled by the executor as it produces rows.
  uint64_t rows_emitted = 0;
  uint64_t db_hits = 0;
};

/// A fixed-slot table of in-flight queries. Registration is lock-cheap:
/// claiming a slot is one CAS plus an uncontended per-slot mutex (only a
/// concurrent Snapshot ever takes the same lock); progress updates are
/// relaxed atomic stores. When every slot is taken (more than kSlots
/// concurrent queries) the excess executions run unregistered and are
/// counted in dropped().
class QueryRegistry {
 public:
  static constexpr size_t kSlots = 64;

  QueryRegistry() = default;
  QueryRegistry(const QueryRegistry&) = delete;
  QueryRegistry& operator=(const QueryRegistry&) = delete;

  /// The process-wide table every engine registers with by default.
  static QueryRegistry& Global();

  /// In-flight queries ordered by registration (oldest first).
  std::vector<ActiveQuery> Snapshot() const;

  uint64_t started() const {
    return started_.load(std::memory_order_relaxed);
  }
  uint64_t finished() const {
    return finished_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// The /queries payload: {"active": [...], "started": N, "finished": N,
  /// "dropped": N}.
  std::string ToJson() const;

 private:
  friend class ActiveQueryScope;

  /// Memory-ordering contract (audited). Three kinds of state, three
  /// disciplines:
  ///   * `claimed` is the slot's ownership baton. Begin claims it with an
  ///     acquire CAS and End releases it with a release store — this pair
  ///     is load-bearing: it orders the finishing owner's relaxed
  ///     `rows`/`db_hits` stores before the next claimer's reset of the
  ///     same atomics, so a recycled slot can never surface the previous
  ///     query's progress. Do not weaken either side to relaxed.
  ///   * The non-atomic descriptor fields below are guarded by `mu`;
  ///     `visible` flips under it only after every field is filled, so
  ///     Snapshot never reads a half-initialized slot.
  ///   * `rows`/`db_hits` are relaxed on purpose: they are monotonic
  ///     progress gauges written on the executor's hot path, read only
  ///     under the slot mutex by Snapshot, and nothing is published
  ///     *through* them — a marginally stale value costs one refresh of
  ///     the :queries view, not correctness.
  struct Slot {
    /// Serializes field writes in Begin/End against Snapshot copies.
    /// LockRank::kRing: leaf sections, also taken by the metrics scrape
    /// (under the kObs registry mutex) via the Global() provider.
    mutable util::RankedMutex mu{util::LockRank::kRing, "obs.queries.slot"};
    /// Slot allocation flag, claimed by CAS before mu is ever taken.
    std::atomic<bool> claimed{false};
    bool visible MBQ_GUARDED_BY(mu) = false;
    uint64_t id MBQ_GUARDED_BY(mu) = 0;
    std::string query MBQ_GUARDED_BY(mu);
    std::string engine MBQ_GUARDED_BY(mu);
    uint32_t threads MBQ_GUARDED_BY(mu) = 1;
    uint64_t start_nanos MBQ_GUARDED_BY(mu) = 0;  // steady clock
    uint64_t started_unix_millis MBQ_GUARDED_BY(mu) = 0;
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> db_hits{0};
  };

  /// Claims and fills a slot; null when the table is full.
  Slot* Begin(std::string_view query, std::string_view engine,
              uint32_t threads);
  void End(Slot* slot);

  std::array<Slot, kSlots> slots_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> finished_{0};
  std::atomic<uint64_t> dropped_{0};
};

/// RAII registration of one query execution. Constructed on the
/// executor's fast path, so everything it does is cheap: one slot claim
/// on entry, relaxed stores for progress, one release on exit. A null
/// registry makes the scope inert (used for analysis verbs that never
/// execute).
class ActiveQueryScope {
 public:
  ActiveQueryScope(QueryRegistry* registry, std::string_view query,
                   std::string_view engine, uint32_t threads);
  ~ActiveQueryScope();

  ActiveQueryScope(const ActiveQueryScope&) = delete;
  ActiveQueryScope& operator=(const ActiveQueryScope&) = delete;

  /// Progress updates, visible to concurrent Snapshot() calls.
  void SetRows(uint64_t rows) {
    if (slot_ != nullptr) slot_->rows.store(rows, std::memory_order_relaxed);
  }
  void SetDbHits(uint64_t hits) {
    if (slot_ != nullptr) {
      slot_->db_hits.store(hits, std::memory_order_relaxed);
    }
  }

  uint64_t start_nanos() const { return start_nanos_; }
  uint64_t ElapsedNanos() const;
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  QueryRegistry* registry_ = nullptr;
  QueryRegistry::Slot* slot_ = nullptr;
  uint64_t start_nanos_ = 0;
};

// ---------------------------------------------------------------------------
// Slow-query flight recorder
// ---------------------------------------------------------------------------

/// One captured slow query: everything needed to understand it after the
/// fact without re-running it.
struct SlowQuery {
  /// Capture sequence number (monotonic across the recorder's lifetime).
  uint64_t seq = 0;
  std::string query;
  std::string engine;
  double millis = 0;
  uint64_t db_hits = 0;
  uint64_t rows = 0;
  uint32_t threads = 1;
  /// Result-cache verdict for the execution: "hit", "miss" or "off".
  std::string cache;
  /// The store's global epoch when the query finished — correlates a slow
  /// query with the write traffic around it.
  uint64_t epoch = 0;
  /// Semantic diagnostics the compile carried (lint verdict).
  uint64_t diagnostics = 0;
  /// The full PROFILE tree of the execution (plan shape with per-operator
  /// rows and db hits), or the call description for navigation queries.
  std::string profile;
  uint64_t captured_unix_millis = 0;
};

/// Capture predicate shared by every recording site: a query is "slow"
/// when it took at least `threshold_millis` (the boundary is inclusive —
/// a query of exactly the threshold is captured; threshold 0 captures
/// everything).
inline bool IsSlowQuery(double elapsed_millis, uint64_t threshold_millis) {
  return elapsed_millis >= static_cast<double>(threshold_millis);
}

/// The process default slow-query threshold: the MBQ_SLOW_QUERY_MILLIS
/// environment variable when set (0 is honoured — capture everything),
/// else 50 ms.
uint64_t DefaultSlowQueryMillis();

/// A ring buffer of the most recent slow queries. The executor's fast
/// path only evaluates IsSlowQuery(); the recorder's mutex is taken
/// exclusively for queries that crossed the threshold (rare by
/// definition) and for snapshots.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every engine records to by default.
  static FlightRecorder& Global();

  /// Appends `entry`, overwriting the oldest capture once the ring is
  /// full. Assigns the entry's capture sequence number.
  void Record(SlowQuery entry);

  /// Captured entries, oldest first.
  std::vector<SlowQuery> Snapshot() const;
  void Clear();

  /// Total captures over the recorder's lifetime (>= the ring size once
  /// wraparound has discarded old entries).
  uint64_t captured() const {
    return captured_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

  /// The /slow payload: {"captured": N, "capacity": C, "slow": [...]}.
  std::string ToJson() const;
  /// The shell :slow rendering — one block per capture, newest last,
  /// profile tree indented.
  std::string ToText() const;

 private:
  const size_t capacity_;
  /// LockRank::kRing: a leaf — Record/Snapshot touch only the ring.
  mutable util::RankedMutex mu_{util::LockRank::kRing, "obs.flight.ring"};
  /// Insertion position = seq % capacity_.
  std::vector<SlowQuery> ring_ MBQ_GUARDED_BY(mu_);
  std::atomic<uint64_t> captured_{0};
};

// ---------------------------------------------------------------------------
// Recent-span ring for trace export
// ---------------------------------------------------------------------------

/// A bounded ring of recently finished spans (queries, import phases,
/// RPC client/server sections), exported as Chrome trace_event JSON —
/// loadable in about://tracing or Perfetto. Named TraceSpans forward here
/// automatically; query executors record their spans explicitly. Every
/// span is stamped with the thread's current TraceContext (trace id, span
/// id, parent span id — zero when no trace was active), which is what the
/// /trace.json export and the mbqtrace collector stitch on.
class SpanRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit SpanRecorder(size_t capacity = kDefaultCapacity);
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// The process-wide recorder. Reports obs.spans.recorded and
  /// obs.spans.dropped in the default metrics registry, so a wrapped ring
  /// (a truncated trace) is detectable from /metrics.
  static SpanRecorder& Global();

  /// Records a finished span. `start_nanos` is steady-clock; the first
  /// recorded span becomes the trace's time origin. The calling thread is
  /// identified by a small stable per-thread id; the thread's current
  /// TraceContext (if any) tags the span with its request identity.
  void Record(std::string_view name, std::string_view category,
              uint64_t start_nanos, uint64_t duration_nanos);

  /// {"traceEvents": [{"name": ..., "cat": ..., "ph": "X", ...}]}
  std::string ToChromeTraceJson() const;
  /// The /trace.json payload for cross-process stitching: process role,
  /// pid, drop accounting and one entry per span with hex trace/span ids
  /// and a wall-clock (unix microseconds) start time — steady-clock
  /// offsets are meaningless across processes.
  std::string ToTraceJson() const;
  void Clear();
  size_t size() const;
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Spans overwritten by ring wraparound (recorded - retained).
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Span {
    std::string name;
    std::string category;
    uint64_t start_nanos = 0;
    uint64_t duration_nanos = 0;
    uint32_t tid = 0;
    // Request identity from the recording thread's TraceContext; all
    // zero for spans recorded outside any trace.
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    uint64_t span_id = 0;
    uint64_t parent_span_id = 0;
    /// Wall-clock start, derived at record time from the steady-clock
    /// start so every process's spans share the unix timeline.
    uint64_t start_unix_micros = 0;
  };

  const size_t capacity_;
  /// LockRank::kRing: a leaf — Record/export touch only the ring.
  mutable util::RankedMutex mu_{util::LockRank::kRing, "obs.trace.ring"};
  /// Insertion position = recorded_ % capacity_.
  std::vector<Span> ring_ MBQ_GUARDED_BY(mu_);
  uint64_t origin_nanos_ MBQ_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace mbq::obs

#endif  // MBQ_OBS_INTROSPECT_H_
