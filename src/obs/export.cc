#include "obs/export.h"

#include <cctype>
#include <cstdio>

#include "obs/metrics.h"

namespace mbq::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

/// Appends `cp` (a Unicode code point) UTF-8 encoded; unpaired
/// surrogates become U+FFFD.
void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string JsonUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\' || i + 1 >= s.size()) {
      out += c;
      continue;
    }
    char esc = s[++i];
    switch (esc) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case '/':
        out += '/';
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (i + 4 < s.size()) {
          uint32_t cp = 0;
          bool ok = true;
          for (int k = 1; k <= 4; ++k) {
            int v = HexValue(s[i + static_cast<size_t>(k)]);
            if (v < 0) {
              ok = false;
              break;
            }
            cp = (cp << 4) | static_cast<uint32_t>(v);
          }
          if (ok) {
            AppendUtf8(&out, cp);
            i += 4;
            break;
          }
        }
        out += "\\u";  // malformed escape kept verbatim
        break;
      }
      default:
        out += '\\';
        out += esc;
    }
  }
  return out;
}

namespace {

bool IsPromChar(unsigned char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  if (!IsPromChar(static_cast<unsigned char>(name[0]), /*first=*/true)) {
    out += '_';
    // A leading digit is kept after the prefix; any other illegal leading
    // byte is replaced outright.
    if (std::isdigit(static_cast<unsigned char>(name[0]))) out += name[0];
  } else {
    out += name[0];
  }
  for (size_t i = 1; i < name.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(name[i]);
    out += IsPromChar(c, /*first=*/false) ? name[i] : '_';
  }
  return out;
}

bool IsValidPrometheusName(std::string_view name) {
  if (name.empty()) return false;
  if (!IsPromChar(static_cast<unsigned char>(name[0]), /*first=*/true)) {
    return false;
  }
  for (size_t i = 1; i < name.size(); ++i) {
    if (!IsPromChar(static_cast<unsigned char>(name[i]), /*first=*/false)) {
      return false;
    }
  }
  return true;
}

std::string MetricsJson(MetricsRegistry* registry) {
  if (registry == nullptr) registry = &MetricsRegistry::Default();
  return registry->Snapshot().ToJson();
}

}  // namespace mbq::obs
