#include "obs/trace_context.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace mbq::obs {

namespace {

thread_local TraceContext g_current;

/// Per-thread splitmix64 id generator. Seeded from the clock, the pid and
/// a process-wide counter so concurrent threads (and forked tools in the
/// same smoke run) never share an id stream.
uint64_t NextRandom() {
  static std::atomic<uint64_t> salt{0};
  thread_local uint64_t state = [] {
    uint64_t seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    seed ^= static_cast<uint64_t>(::getpid()) << 32;
    seed += salt.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed);
    return seed | 1;
  }();
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// MBQ_TRACE_SAMPLE: sample 1 in N root traces (default 1 — everything);
/// 0 turns minting off. Read once, like the other obs env knobs.
uint64_t SampleEvery() {
  static uint64_t every = [] {
    if (const char* env = std::getenv("MBQ_TRACE_SAMPLE")) {
      char* end = nullptr;
      unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') return static_cast<uint64_t>(v);
    }
    return uint64_t{1};
  }();
  return every;
}

struct RoleState {
  /// LockRank::kRing: a leaf — only guards the role string.
  util::RankedMutex mu{util::LockRank::kRing, "obs.trace.role"};
  std::string role MBQ_GUARDED_BY(mu) = "mbq";

  static RoleState& Get() {
    static RoleState* state = new RoleState();
    return *state;
  }
};

}  // namespace

TraceMetrics TraceMetrics::Get() {
  static TraceMetrics m = [] {
    MetricsRegistry& reg = MetricsRegistry::Default();
    TraceMetrics out;
    out.minted = reg.GetCounter("trace.minted", "traces",
                                "Root trace contexts minted at an ingress");
    out.adopted =
        reg.GetCounter("trace.adopted", "traces",
                       "Trace contexts adopted from an inbound RPC envelope");
    out.envelope_sent =
        reg.GetCounter("trace.envelope.sent", "frames",
                       "kTracedEnvelope frames sent with outbound requests");
    out.envelope_received =
        reg.GetCounter("trace.envelope.received", "frames",
                       "kTracedEnvelope frames received and unwrapped");
    return out;
  }();
  return m;
}

TraceContext MintTraceContext() {
  uint64_t every = SampleEvery();
  if (every == 0) return TraceContext{};
  TraceContext ctx;
  ctx.trace_hi = NextRandom();
  ctx.trace_lo = NextRandom();
  ctx.span_id = NextSpanId();
  ctx.parent_span_id = 0;
  // 1-in-N without per-process coordination: a random draw instead of a
  // shared counter keeps shards from sampling in lockstep.
  ctx.sampled = every == 1 || (NextRandom() % every) == 0;
  TraceMetrics::Get().minted->Inc();
  return ctx;
}

uint64_t NextSpanId() {
  uint64_t id = NextRandom();
  while (id == 0) id = NextRandom();
  return id;
}

const TraceContext& CurrentTraceContext() { return g_current; }

std::string TraceIdHex(const TraceContext& ctx) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(ctx.trace_hi),
                static_cast<unsigned long long>(ctx.trace_lo));
  return buf;
}

std::string SpanIdHex(uint64_t span_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(span_id));
  return buf;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : installed_(ctx), previous_(g_current) {
  g_current = installed_;
}

ScopedTraceContext::ScopedTraceContext() : previous_(g_current) {
  if (previous_.valid()) {
    installed_ = previous_;
    installed_.parent_span_id = previous_.span_id;
    installed_.span_id = NextSpanId();
    g_current = installed_;
  } else {
    restored_ = true;  // inert: nothing installed, nothing to restore
  }
}

ScopedTraceContext::~ScopedTraceContext() {
  if (!restored_) g_current = previous_;
}

TraceContext ChildOrRootContext() {
  const TraceContext& current = CurrentTraceContext();
  if (!current.valid()) return MintTraceContext();
  TraceContext child = current;
  child.parent_span_id = current.span_id;
  child.span_id = NextSpanId();
  return child;
}

void SetProcessRole(const std::string& role) {
  RoleState& state = RoleState::Get();
  util::ScopedLock lock(state.mu);
  state.role = role;
}

std::string ProcessRole() {
  RoleState& state = RoleState::Get();
  util::ScopedLock lock(state.mu);
  return state.role;
}

}  // namespace mbq::obs
