#ifndef MBQ_OBS_METRICS_H_
#define MBQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace mbq::obs {

/// A monotonically increasing event count. Incrementing is a single
/// relaxed atomic add, cheap enough for per-record hot paths; everything
/// else (registration, snapshotting) takes the registry lock.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::string unit, std::string help)
      : name_(std::move(name)), unit_(std::move(unit)), help_(std::move(help)) {}

  std::string name_;
  std::string unit_;
  std::string help_;
  std::atomic<uint64_t> value_{0};
};

/// A log-linear latency/size histogram (HdrHistogram-style): each
/// power-of-two segment is split into 32 sub-buckets, bounding the
/// relative quantile error at ~3% while keeping Record() lock-free.
class Histogram {
 public:
  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Value at quantile `q` in [0, 1], linearly interpolated within the
  /// containing bucket. 0 when empty.
  double Quantile(double q) const;

  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::string unit, std::string help)
      : name_(std::move(name)), unit_(std::move(unit)), help_(std::move(help)) {}

  // Values < 32 land in exact buckets [0, 32); larger values go to
  // segment s = floor(log2(v)) with 32 sub-buckets each.
  static constexpr uint32_t kSubBits = 5;
  static constexpr uint32_t kSub = 1u << kSubBits;  // 32
  static constexpr uint32_t kNumBuckets = kSub + (64 - kSubBits) * kSub;

  static uint32_t BucketIndex(uint64_t value);
  /// Inclusive lower bound of bucket `index`.
  static uint64_t BucketLow(uint32_t index);
  /// Width (number of distinct values) of bucket `index`.
  static uint64_t BucketWidth(uint32_t index);

  std::string name_;
  std::string unit_;
  std::string help_;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time snapshot rows.
struct CounterSnapshot {
  std::string name;
  std::string unit;
  uint64_t value = 0;
  std::string help;
};

struct GaugeSnapshot {
  std::string name;
  std::string unit;
  double value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::string unit;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  std::string help;
};

/// One consistent read of every metric in a registry, exportable as an
/// aligned text table, a JSON document (the bench --metrics-out format)
/// or Prometheus text exposition (the stats server's /metrics endpoint).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;    // sorted by name
  std::vector<GaugeSnapshot> gauges;        // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name

  std::string ToText() const;
  std::string ToJson() const;
  /// Prometheus text exposition format (version 0.0.4): counters become
  /// `<name>_total` families, gauges stay plain, histograms export as
  /// summaries (quantile 0.5/0.95/0.99 + _sum/_count). Metric names are
  /// sanitized through PrometheusName(); post-sanitization collisions are
  /// deduplicated with a numeric suffix so the payload never carries a
  /// duplicate or illegal family name.
  std::string ToPrometheus() const;

  /// Value of a counter or gauge by exact name; -1 when absent.
  double ValueOf(const std::string& name) const;
  bool Has(const std::string& name) const { return ValueOf(name) >= 0; }
};

/// Callback surface handed to pull providers during Snapshot(): each
/// provider reports its component's counters as named gauges. Gauges
/// reported under the same name by several providers (e.g. two GraphDb
/// instances) are summed.
class MetricsSink {
 public:
  void Gauge(const std::string& name, double value,
             const std::string& unit = "");

 private:
  friend class MetricsRegistry;
  std::map<std::string, GaugeSnapshot> gauges_;
};

/// The process-wide (or test-local) home of every metric. Counters and
/// histograms are push-based and live as long as the registry; components
/// with pre-existing internal counters (buffer caches, engines) register
/// a pull provider instead and report at snapshot time.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Gets or creates the counter `name`. The returned pointer stays valid
  /// for the registry's lifetime.
  Counter* GetCounter(const std::string& name, const std::string& unit = "",
                      const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& unit = "",
                          const std::string& help = "");

  using ProviderFn = std::function<void(MetricsSink*)>;
  /// Registers a pull provider; returns an id for UnregisterProvider.
  /// Providers run at snapshot time with the registry mutex (rank kObs)
  /// held, so they may take locks ranked below kObs (buffer-cache shards,
  /// the disk, driver accounting, introspection slots) but must never
  /// touch the store/WAL/snapshot/session/rpc tiers or this registry.
  uint64_t RegisterProvider(ProviderFn fn);
  /// Pulls the provider's final gauge values before removing it, so the
  /// component's totals stay visible in later snapshots (e.g. a bench
  /// exporting metrics after its testbed is torn down). The provider must
  /// still be safe to call at this point.
  void UnregisterProvider(uint64_t id);

  MetricsSnapshot Snapshot() const;

  /// The process-wide default registry every component reports to unless
  /// explicitly given another one. Also hosts the `lockrank.*` gauges
  /// (docs/OBSERVABILITY.md) via a provider registered on first use.
  static MetricsRegistry& Default();

 private:
  /// LockRank::kObs: held across provider callbacks during Snapshot(),
  /// which lock component tiers below (see RegisterProvider); taken for
  /// lazy metric creation from as high as the WAL staging lock (kWal).
  mutable util::RankedMutex mu_{util::LockRank::kObs, "obs.registry"};
  // unique_ptr storage: metric addresses stay stable for the registry's
  // lifetime even as more metrics register.
  std::map<std::string, std::unique_ptr<Counter>> counter_by_name_
      MBQ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histogram_by_name_
      MBQ_GUARDED_BY(mu_);
  std::map<uint64_t, ProviderFn> providers_ MBQ_GUARDED_BY(mu_);
  // Final values pulled from unregistered providers; Snapshot() sums
  // these with the live providers' reports.
  std::map<std::string, GaugeSnapshot> retained_gauges_ MBQ_GUARDED_BY(mu_);
  uint64_t next_provider_id_ MBQ_GUARDED_BY(mu_) = 1;
};

/// RAII registration of a pull provider (movable, auto-unregisters).
class ScopedProvider {
 public:
  ScopedProvider() = default;
  ScopedProvider(MetricsRegistry* registry, MetricsRegistry::ProviderFn fn)
      : registry_(registry), id_(registry->RegisterProvider(std::move(fn))) {}
  ~ScopedProvider() { Reset(); }

  ScopedProvider(ScopedProvider&& other) noexcept
      : registry_(other.registry_), id_(other.id_) {
    other.registry_ = nullptr;
  }
  ScopedProvider& operator=(ScopedProvider&& other) noexcept {
    if (this != &other) {
      Reset();
      registry_ = other.registry_;
      id_ = other.id_;
      other.registry_ = nullptr;
    }
    return *this;
  }
  ScopedProvider(const ScopedProvider&) = delete;
  ScopedProvider& operator=(const ScopedProvider&) = delete;

  void Reset() {
    if (registry_ != nullptr) registry_->UnregisterProvider(id_);
    registry_ = nullptr;
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace mbq::obs

#endif  // MBQ_OBS_METRICS_H_
