#ifndef MBQ_OBS_TRACE_H_
#define MBQ_OBS_TRACE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "util/clock.h"

namespace mbq::obs {

class TraceSpan;

/// An ordered record of finished spans, kept in tree order (a parent's
/// entry precedes its children's). Batch importers fill one of these with
/// their phase-level spans — the introspection behind the paper's
/// Figure 2/3 import-time discussion — and callers render it as an
/// indented text tree or JSON.
class TraceLog {
 public:
  struct Span {
    std::string name;
    int depth = 0;
    /// Start offset from the log's first span, milliseconds.
    double start_millis = 0;
    double duration_millis = 0;
    /// Work items the span covered (rows parsed, nodes inserted, ...).
    uint64_t items = 0;
  };

  const std::vector<Span>& spans() const { return spans_; }
  void Clear();

  /// Appends an already-measured span as a child of the currently open
  /// span. Importers use this to split one phase into sub-steps (parse
  /// vs insert) timed with plain accumulators rather than nested scopes;
  /// the start offset is the moment of the append.
  void AppendChild(const std::string& name, double duration_millis,
                   uint64_t items = 0);

  /// Indented tree: name, duration, items and items/s per span.
  std::string ToText() const;
  std::string ToJson() const;

 private:
  friend class TraceSpan;

  /// Reserves a slot so parents appear before children; returns its index.
  size_t Begin(const std::string& name);
  void End(size_t slot, uint64_t duration_nanos, uint64_t items);

  WallClock clock_;
  std::vector<Span> spans_;
  int depth_ = 0;
  bool started_ = false;
  uint64_t origin_nanos_ = 0;
};

/// RAII scoped timer. On destruction (or Finish()) it appends a span to
/// the TraceLog, records the elapsed nanoseconds into the Histogram, or
/// both — either sink may be null. Named spans (the TraceLog overload)
/// additionally land in the process-wide SpanRecorder, so the stats
/// server's /trace endpoint covers import phases out of the box; they
/// open a child TraceContext for their extent, so anything they call
/// (including RPCs) nests under them in a stitched trace.
class TraceSpan {
 public:
  TraceSpan(TraceLog* log, std::string name, Histogram* latency = nullptr);
  explicit TraceSpan(Histogram* latency);
  ~TraceSpan() { Finish(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Accumulates work items attributed to this span.
  void AddItems(uint64_t n) { items_ += n; }

  void Finish();

 private:
  TraceLog* log_ = nullptr;
  Histogram* latency_ = nullptr;
  std::string name_;  // non-empty spans forward to SpanRecorder::Global()
  /// Child context held open until Finish(); inert outside a trace.
  std::optional<ScopedTraceContext> trace_scope_;
  size_t slot_ = 0;
  uint64_t start_nanos_ = 0;
  uint64_t items_ = 0;
  bool finished_ = false;
  WallClock clock_;
};

}  // namespace mbq::obs

#endif  // MBQ_OBS_TRACE_H_
