#include "obs/httpd.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/export.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "util/clock.h"

namespace mbq::obs {

namespace {

constexpr int kRequestTimeoutMillis = 2000;
constexpr size_t kMaxRequestBytes = 8192;

/// Reads until the end of the request head (\r\n\r\n), a timeout, or the
/// size cap; the stats server only ever needs the request line.
bool ReadRequestHead(int fd, std::string* head) {
  char buf[1024];
  while (head->size() < kMaxRequestBytes) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kRequestTimeoutMillis);
    if (ready <= 0) return false;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    head->append(buf, static_cast<size_t>(n));
    if (head->find("\r\n\r\n") != std::string::npos ||
        head->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// "GET /metrics HTTP/1.1" -> "/metrics" (query strings stripped).
/// Empty on anything that is not a GET.
std::string ParseGetPath(const std::string& head) {
  if (head.rfind("GET ", 0) != 0) return "";
  size_t start = 4;
  size_t end = head.find_first_of(" \r\n", start);
  if (end == std::string::npos) return "";
  std::string path = head.substr(start, end - start);
  size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
  return path.empty() ? "/" : path;
}

struct HttpMetrics {
  Counter* requests;
  Counter* errors;

  static HttpMetrics Get() {
    static HttpMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Default();
      HttpMetrics out;
      out.requests = reg.GetCounter("obs.http.requests", "requests",
                                    "HTTP requests served by the stats server");
      out.errors = reg.GetCounter(
          "obs.http.errors", "requests",
          "Stats-server requests that failed (bad request or unknown path)");
      return out;
    }();
    return m;
  }
};

}  // namespace

StatsServer::StatsServer(ServeOptions options) : options_(std::move(options)) {
  if (options_.metrics == nullptr) options_.metrics = &MetricsRegistry::Default();
  if (options_.queries == nullptr) options_.queries = &QueryRegistry::Global();
  if (options_.flight == nullptr) options_.flight = &FlightRecorder::Global();
  if (options_.spans == nullptr) options_.spans = &SpanRecorder::Global();
  start_steady_nanos_ = WallClock().NowNanos();
  start_unix_millis_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

Result<std::unique_ptr<StatsServer>> StatsServer::Start(
    const ServeOptions& options) {
  std::unique_ptr<StatsServer> server(new StatsServer(options));
  Status bound = server->Bind();
  if (!bound.ok()) return bound;
  server->thread_ = std::thread([raw = server.get()] { raw->Loop(); });
  return server;
}

Status StatsServer::Bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("stats server: socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("stats server: bad bind address \"" +
                                   options_.bind_address + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status =
        Status::IoError("stats server: cannot bind " + options_.bind_address +
                        ":" + std::to_string(options_.port) + ": " +
                        std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status status = Status::IoError("stats server: listen() failed: " +
                                    std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  // Resolve port 0 to the kernel's ephemeral choice.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }
  if (::pipe(wake_pipe_) != 0) {
    Status status = Status::IoError("stats server: pipe() failed: " +
                                    std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  return Status::OK();
}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (wake_pipe_[1] >= 0) {
    char byte = 'q';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void StatsServer::Loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void StatsServer::HandleConnection(int fd) {
  HttpMetrics metrics = HttpMetrics::Get();
  std::string head;
  if (!ReadRequestHead(fd, &head)) {
    metrics.errors->Inc();
    return;
  }
  metrics.requests->Inc();
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::string path = ParseGetPath(head);
  if (path.empty()) {
    metrics.errors->Inc();
    SendAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                             "stats server only accepts GET\n"));
    return;
  }
  std::string body;
  std::string content_type;
  if (!Dispatch(path, &body, &content_type)) {
    metrics.errors->Inc();
    SendAll(fd, HttpResponse(404, "Not Found", "text/plain",
                             "unknown path " + path +
                                 "\ntry: / /healthz /metrics /metrics.json "
                                 "/queries /slow /trace /trace.json\n"));
    return;
  }
  SendAll(fd, HttpResponse(200, "OK", content_type, body));
}

bool StatsServer::Dispatch(const std::string& path, std::string* body,
                           std::string* content_type) {
  if (path == "/") {
    *content_type = "text/plain";
    *body =
        "mbq stats server\n"
        "  /healthz       liveness probe (status, role, pid, uptime)\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  metrics snapshot (bench --metrics-out format)\n"
        "  /queries       active-query table\n"
        "  /slow          slow-query flight recorder\n"
        "  /trace         Chrome trace_event JSON (load in about://tracing)\n"
        "  /trace.json    span ring with trace ids (mbqtrace collector input)\n";
    return true;
  }
  if (path == "/healthz") {
    *content_type = "application/json";
    double uptime = static_cast<double>(WallClock().NowNanos() -
                                        start_steady_nanos_) /
                    1e9;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", uptime);
    *body = "{\"status\": \"ok\", \"role\": \"" + JsonEscape(ProcessRole()) +
            "\", \"pid\": " + std::to_string(::getpid()) +
            ", \"uptime_seconds\": " + buf +
            ", \"epoch_ms\": " + std::to_string(start_unix_millis_) + "}\n";
    return true;
  }
  if (path == "/metrics") {
    *content_type = "text/plain; version=0.0.4";
    *body = options_.metrics->Snapshot().ToPrometheus();
    return true;
  }
  if (path == "/metrics.json") {
    *content_type = "application/json";
    *body = MetricsJson(options_.metrics);
    return true;
  }
  if (path == "/queries") {
    *content_type = "application/json";
    *body = options_.queries->ToJson();
    return true;
  }
  if (path == "/slow") {
    *content_type = "application/json";
    *body = options_.flight->ToJson();
    return true;
  }
  if (path == "/trace") {
    *content_type = "application/json";
    *body = options_.spans->ToChromeTraceJson();
    return true;
  }
  if (path == "/trace.json") {
    *content_type = "application/json";
    *body = options_.spans->ToTraceJson();
    return true;
  }
  return false;
}

std::unique_ptr<StatsServer> MaybeServeFromEnv() {
  const char* env = std::getenv("MBQ_STATS_PORT");
  if (env == nullptr || *env == '\0') return nullptr;
  char* end = nullptr;
  unsigned long port = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || port > 65535) {
    std::fprintf(stderr, "MBQ_STATS_PORT=%s is not a valid port; ignored\n",
                 env);
    return nullptr;
  }
  ServeOptions options;
  options.port = static_cast<uint16_t>(port);
  Result<std::unique_ptr<StatsServer>> server = StatsServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "stats server failed to start: %s\n",
                 server.status().message().c_str());
    return nullptr;
  }
  std::fprintf(stderr, "stats server listening on http://%s:%u/\n",
               (*server)->bind_address().c_str(),
               static_cast<unsigned>((*server)->port()));
  return std::move(server).value();
}

}  // namespace mbq::obs
