#ifndef MBQ_OBS_HTTP_CLIENT_H_
#define MBQ_OBS_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

namespace mbq::obs {

/// Minimal blocking HTTP/1.1 GET against a stats server (httpd.cc) or
/// anything speaking the same dialect: connect, one request, read to
/// EOF, Connection: close. 2s connect/read timeout; false on any
/// failure (refused, timeout, non-200). Shared by mbqtop, mbqtrace and
/// the mbqd health prober — none of which want a real HTTP library for
/// loopback JSON fetches.
bool HttpGet(const std::string& host, uint16_t port, const std::string& path,
             std::string* body);

}  // namespace mbq::obs

#endif  // MBQ_OBS_HTTP_CLIENT_H_
