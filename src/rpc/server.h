#ifndef MBQ_RPC_SERVER_H_
#define MBQ_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rpc/framing.h"
#include "util/result.h"

namespace mbq::rpc {

/// Single-threaded poll()-loop frame server on the same socket idioms as
/// obs::StatsServer: SO_REUSEADDR, port 0 resolved via getsockname, a
/// self-pipe to wake the loop for Stop(). Connections are long-lived and
/// multiplexed — each carries its own incremental FrameDecoder, so
/// dribbled byte-at-a-time delivery and many concurrent clients both
/// work; requests are dispatched to the handler one at a time in arrival
/// order (the engine underneath is already internally synchronized, and
/// shard fan-out parallelism comes from having N processes, not N
/// threads per process).
class RpcServer {
 public:
  /// Produces the reply frame for one request frame. The handler sees
  /// every message type, kHello and kPing included; it should answer
  /// unknown types with EncodeError(Status::NotImplemented(...)).
  using Handler = std::function<Frame(const Frame&)>;

  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port, readable via port() after Start.
    uint16_t port = 0;
    /// Per-syscall write timeout towards a client.
    int write_timeout_millis = 30000;
  };

  static Result<std::unique_ptr<RpcServer>> Start(const Options& options,
                                                  Handler handler);

  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Idempotent; joins the serving thread.
  void Stop();

  uint16_t port() const { return port_; }
  const std::string& bind_address() const { return options_.bind_address; }

 private:
  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
  };

  RpcServer(Options options, Handler handler);
  Status Bind();
  void Loop();
  /// Drains readable bytes from one connection, dispatching every
  /// complete frame. Returns false when the connection should close.
  bool ServeReadable(Conn* conn);

  Options options_;
  Handler handler_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace mbq::rpc

#endif  // MBQ_RPC_SERVER_H_
