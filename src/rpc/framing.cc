#include "rpc/framing.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace mbq::rpc {

namespace {

template <typename T>
void AppendPod(std::vector<uint8_t>* out, T v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
Result<T> ReadPod(const std::vector<uint8_t>& data, size_t* offset) {
  if (*offset + sizeof(T) > data.size()) {
    return Status::Corruption("rpc: truncated frame body");
  }
  T v;
  std::memcpy(&v, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return v;
}

/// Validates a 12-byte header already known to be complete. On success
/// sets `*type` and `*body_len`.
Status ParseHeader(const uint8_t* h, uint8_t* type, uint32_t* body_len) {
  uint32_t magic;
  std::memcpy(&magic, h, sizeof(magic));
  if (magic != kMagic) {
    return Status::Corruption("rpc: bad frame magic");
  }
  if (h[4] != kProtocolVersion) {
    return Status::Corruption("rpc: unsupported protocol version " +
                              std::to_string(static_cast<int>(h[4])) +
                              " (want " +
                              std::to_string(static_cast<int>(kProtocolVersion)) +
                              ")");
  }
  uint16_t reserved;
  std::memcpy(&reserved, h + 6, sizeof(reserved));
  if (reserved != 0) {
    return Status::Corruption("rpc: non-zero reserved header field");
  }
  uint32_t len;
  std::memcpy(&len, h + 8, sizeof(len));
  if (len > kMaxBodyBytes) {
    return Status::Corruption("rpc: frame body of " + std::to_string(len) +
                              " bytes exceeds the " +
                              std::to_string(kMaxBodyBytes) + " byte cap");
  }
  *type = h[5];
  *body_len = len;
  return Status::OK();
}

}  // namespace

void PutU8(std::vector<uint8_t>* out, uint8_t v) { AppendPod(out, v); }
void PutU16(std::vector<uint8_t>* out, uint16_t v) { AppendPod(out, v); }
void PutU32(std::vector<uint8_t>* out, uint32_t v) { AppendPod(out, v); }
void PutU64(std::vector<uint8_t>* out, uint64_t v) { AppendPod(out, v); }
void PutI64(std::vector<uint8_t>* out, int64_t v) { AppendPod(out, v); }

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  const uint8_t* p = reinterpret_cast<const uint8_t*>(s.data());
  out->insert(out->end(), p, p + s.size());
}

Result<uint8_t> GetU8(const std::vector<uint8_t>& data, size_t* offset) {
  return ReadPod<uint8_t>(data, offset);
}
Result<uint16_t> GetU16(const std::vector<uint8_t>& data, size_t* offset) {
  return ReadPod<uint16_t>(data, offset);
}
Result<uint32_t> GetU32(const std::vector<uint8_t>& data, size_t* offset) {
  return ReadPod<uint32_t>(data, offset);
}
Result<uint64_t> GetU64(const std::vector<uint8_t>& data, size_t* offset) {
  return ReadPod<uint64_t>(data, offset);
}
Result<int64_t> GetI64(const std::vector<uint8_t>& data, size_t* offset) {
  return ReadPod<int64_t>(data, offset);
}

Result<std::string> GetString(const std::vector<uint8_t>& data,
                              size_t* offset) {
  uint32_t len;
  MBQ_ASSIGN_OR_RETURN(len, GetU32(data, offset));
  if (*offset + len > data.size()) {
    return Status::Corruption("rpc: truncated string in frame body");
  }
  std::string s(reinterpret_cast<const char*>(data.data() + *offset), len);
  *offset += len;
  return s;
}

void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out) {
  PutU32(out, kMagic);
  PutU8(out, kProtocolVersion);
  PutU8(out, frame.type);
  PutU16(out, 0);
  PutU32(out, static_cast<uint32_t>(frame.body.size()));
  out->insert(out->end(), frame.body.begin(), frame.body.end());
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  if (!poisoned_.ok()) return;  // stream is already dead
  buf_.insert(buf_.end(), data, data + n);
}

Result<bool> FrameDecoder::Next(Frame* out) {
  MBQ_RETURN_IF_ERROR(poisoned_);
  if (buf_.size() - pos_ < kHeaderBytes) return false;
  uint8_t type = 0;
  uint32_t body_len = 0;
  Status header = ParseHeader(buf_.data() + pos_, &type, &body_len);
  if (!header.ok()) {
    poisoned_ = header;
    return header;
  }
  if (buf_.size() - pos_ < kHeaderBytes + body_len) return false;
  out->type = type;
  out->body.assign(buf_.begin() + pos_ + kHeaderBytes,
                   buf_.begin() + pos_ + kHeaderBytes + body_len);
  pos_ += kHeaderBytes + body_len;
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + pos_);
    pos_ = 0;
  }
  return true;
}

Status WriteFrame(int fd, const Frame& frame, int timeout_millis,
                  uint64_t* bytes_out) {
  std::vector<uint8_t> wire;
  wire.reserve(kHeaderBytes + frame.body.size());
  EncodeFrame(frame, &wire);
  size_t sent = 0;
  while (sent < wire.size()) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, timeout_millis);
    if (ready == 0) return Status::IoError("rpc: send timed out");
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("rpc: poll() failed: " +
                             std::string(std::strerror(errno)));
    }
    ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IoError("rpc: send() failed: " +
                             std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  if (bytes_out != nullptr) *bytes_out += wire.size();
  return Status::OK();
}

Result<Frame> ReadFrame(int fd, int timeout_millis, uint64_t* bytes_in) {
  FrameDecoder decoder;
  Frame frame;
  uint8_t buf[4096];
  for (;;) {
    bool done;
    MBQ_ASSIGN_OR_RETURN(done, decoder.Next(&frame));
    if (done) {
      if (bytes_in != nullptr) *bytes_in += kHeaderBytes + frame.body.size();
      return frame;
    }
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, timeout_millis);
    if (ready == 0) return Status::IoError("rpc: receive timed out");
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("rpc: poll() failed: " +
                             std::string(std::strerror(errno)));
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return Status::IoError("rpc: peer closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("rpc: recv() failed: " +
                             std::string(std::strerror(errno)));
    }
    decoder.Feed(buf, static_cast<size_t>(n));
  }
}

}  // namespace mbq::rpc
