#include "rpc/messages.h"

#include "common/value_codec.h"

namespace mbq::rpc {

namespace {

Status CheckType(const Frame& frame, MsgType want) {
  if (frame.type == static_cast<uint8_t>(want)) return Status::OK();
  if (frame.type == static_cast<uint8_t>(MsgType::kError)) {
    // Let the caller surface the server's error instead of a type
    // mismatch: re-decode it here.
    return DecodeError(frame);
  }
  return Status::Corruption(std::string("rpc: expected ") +
                            MsgTypeName(static_cast<uint8_t>(want)) +
                            " frame, got " + MsgTypeName(frame.type));
}

void PutRows(std::vector<uint8_t>* out, const ValueRows& rows) {
  PutU32(out, static_cast<uint32_t>(rows.size()));
  for (const auto& row : rows) {
    PutU32(out, static_cast<uint32_t>(row.size()));
    for (const common::Value& v : row) common::EncodeValue(v, out);
  }
}

Result<ValueRows> GetRows(const std::vector<uint8_t>& body, size_t* offset) {
  uint32_t num_rows;
  MBQ_ASSIGN_OR_RETURN(num_rows, GetU32(body, offset));
  ValueRows rows;
  rows.reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    uint32_t num_cols;
    MBQ_ASSIGN_OR_RETURN(num_cols, GetU32(body, offset));
    std::vector<common::Value> row;
    row.reserve(num_cols);
    for (uint32_t c = 0; c < num_cols; ++c) {
      common::Value v;
      MBQ_ASSIGN_OR_RETURN(v, common::DecodeValue(body, offset));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

const char* MsgTypeName(uint8_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello: return "kHello";
    case MsgType::kHelloReply: return "kHelloReply";
    case MsgType::kCall: return "kCall";
    case MsgType::kRowsReply: return "kRowsReply";
    case MsgType::kIntReply: return "kIntReply";
    case MsgType::kQuery: return "kQuery";
    case MsgType::kQueryReply: return "kQueryReply";
    case MsgType::kError: return "kError";
    case MsgType::kPing: return "kPing";
    case MsgType::kPong: return "kPong";
    case MsgType::kDropCaches: return "kDropCaches";
    case MsgType::kOkReply: return "kOkReply";
    case MsgType::kWriteBatch: return "kWriteBatch";
    case MsgType::kTracedEnvelope: return "kTracedEnvelope";
  }
  return "kUnknown";
}

const char* NavCallName(NavCall call) {
  switch (call) {
    case NavCall::kSelectUsersByFollowerCount:
      return "select_users_by_follower_count";
    case NavCall::kFolloweesOf: return "followees_of";
    case NavCall::kTweetsOfFollowees: return "tweets_of_followees";
    case NavCall::kHashtagsUsedByFollowees:
      return "hashtags_used_by_followees";
    case NavCall::kTopCoMentionedUsers: return "top_co_mentioned_users";
    case NavCall::kTopCoOccurringHashtags: return "top_co_occurring_hashtags";
    case NavCall::kRecommendFolloweesOfFollowees:
      return "recommend_followees_of_followees";
    case NavCall::kRecommendFollowersOfFollowees:
      return "recommend_followers_of_followees";
    case NavCall::kCurrentInfluence: return "current_influence";
    case NavCall::kPotentialInfluence: return "potential_influence";
    case NavCall::kShortestPathLength: return "shortest_path_length";
  }
  return "unknown";
}

Frame EmptyFrame(MsgType type) {
  Frame frame;
  frame.type = static_cast<uint8_t>(type);
  return frame;
}

Frame EncodeHelloReply(const HelloReply& reply) {
  Frame frame = EmptyFrame(MsgType::kHelloReply);
  PutU32(&frame.body, reply.shard_id);
  PutU32(&frame.body, reply.num_shards);
  PutU8(&frame.body, reply.partition);
  PutU64(&frame.body, reply.num_users);
  PutString(&frame.body, reply.engine);
  return frame;
}

Result<HelloReply> DecodeHelloReply(const Frame& frame) {
  MBQ_RETURN_IF_ERROR(CheckType(frame, MsgType::kHelloReply));
  HelloReply reply;
  size_t offset = 0;
  MBQ_ASSIGN_OR_RETURN(reply.shard_id, GetU32(frame.body, &offset));
  MBQ_ASSIGN_OR_RETURN(reply.num_shards, GetU32(frame.body, &offset));
  MBQ_ASSIGN_OR_RETURN(reply.partition, GetU8(frame.body, &offset));
  MBQ_ASSIGN_OR_RETURN(reply.num_users, GetU64(frame.body, &offset));
  MBQ_ASSIGN_OR_RETURN(reply.engine, GetString(frame.body, &offset));
  return reply;
}

Frame EncodeCall(const CallRequest& req) {
  Frame frame = EmptyFrame(MsgType::kCall);
  PutU8(&frame.body, static_cast<uint8_t>(req.call));
  PutI64(&frame.body, req.uid);
  PutI64(&frame.body, req.arg);
  PutU32(&frame.body, req.max_hops);
  PutString(&frame.body, req.tag);
  return frame;
}

Result<CallRequest> DecodeCall(const Frame& frame) {
  MBQ_RETURN_IF_ERROR(CheckType(frame, MsgType::kCall));
  CallRequest req;
  size_t offset = 0;
  uint8_t call;
  MBQ_ASSIGN_OR_RETURN(call, GetU8(frame.body, &offset));
  if (call < 1 || call > 11) {
    return Status::Corruption("rpc: unknown navigation call " +
                              std::to_string(static_cast<int>(call)));
  }
  req.call = static_cast<NavCall>(call);
  MBQ_ASSIGN_OR_RETURN(req.uid, GetI64(frame.body, &offset));
  MBQ_ASSIGN_OR_RETURN(req.arg, GetI64(frame.body, &offset));
  MBQ_ASSIGN_OR_RETURN(req.max_hops, GetU32(frame.body, &offset));
  MBQ_ASSIGN_OR_RETURN(req.tag, GetString(frame.body, &offset));
  return req;
}

Frame EncodeRowsReply(const ValueRows& rows) {
  Frame frame = EmptyFrame(MsgType::kRowsReply);
  PutRows(&frame.body, rows);
  return frame;
}

Result<ValueRows> DecodeRowsReply(const Frame& frame) {
  MBQ_RETURN_IF_ERROR(CheckType(frame, MsgType::kRowsReply));
  size_t offset = 0;
  return GetRows(frame.body, &offset);
}

Frame EncodeIntReply(int64_t value) {
  Frame frame = EmptyFrame(MsgType::kIntReply);
  PutI64(&frame.body, value);
  return frame;
}

Result<int64_t> DecodeIntReply(const Frame& frame) {
  MBQ_RETURN_IF_ERROR(CheckType(frame, MsgType::kIntReply));
  size_t offset = 0;
  return GetI64(frame.body, &offset);
}

Frame EncodeQuery(const QueryRequest& req) {
  Frame frame = EmptyFrame(MsgType::kQuery);
  PutString(&frame.body, req.text);
  PutU8(&frame.body, static_cast<uint8_t>(req.merge));
  PutU32(&frame.body, req.route_shard);
  return frame;
}

Result<QueryRequest> DecodeQuery(const Frame& frame) {
  MBQ_RETURN_IF_ERROR(CheckType(frame, MsgType::kQuery));
  QueryRequest req;
  size_t offset = 0;
  MBQ_ASSIGN_OR_RETURN(req.text, GetString(frame.body, &offset));
  uint8_t merge;
  MBQ_ASSIGN_OR_RETURN(merge, GetU8(frame.body, &offset));
  if (merge < 1 || merge > 3) {
    return Status::Corruption("rpc: unknown query merge mode " +
                              std::to_string(static_cast<int>(merge)));
  }
  req.merge = static_cast<QueryMerge>(merge);
  MBQ_ASSIGN_OR_RETURN(req.route_shard, GetU32(frame.body, &offset));
  return req;
}

Frame EncodeQueryReply(const QueryReply& reply) {
  Frame frame = EmptyFrame(MsgType::kQueryReply);
  PutU32(&frame.body, static_cast<uint32_t>(reply.columns.size()));
  for (const std::string& col : reply.columns) PutString(&frame.body, col);
  PutRows(&frame.body, reply.rows);
  return frame;
}

Result<QueryReply> DecodeQueryReply(const Frame& frame) {
  MBQ_RETURN_IF_ERROR(CheckType(frame, MsgType::kQueryReply));
  QueryReply reply;
  size_t offset = 0;
  uint32_t num_cols;
  MBQ_ASSIGN_OR_RETURN(num_cols, GetU32(frame.body, &offset));
  reply.columns.reserve(num_cols);
  for (uint32_t i = 0; i < num_cols; ++i) {
    std::string col;
    MBQ_ASSIGN_OR_RETURN(col, GetString(frame.body, &offset));
    reply.columns.push_back(std::move(col));
  }
  MBQ_ASSIGN_OR_RETURN(reply.rows, GetRows(frame.body, &offset));
  return reply;
}

Frame EncodeError(const Status& status) {
  Frame frame = EmptyFrame(MsgType::kError);
  StatusCode code = status.ok() ? StatusCode::kInternal : status.code();
  PutU8(&frame.body, static_cast<uint8_t>(code));
  PutString(&frame.body, status.ok() ? "error frame from OK status"
                                     : status.message());
  return frame;
}

namespace {

constexpr uint8_t kEnvelopeSampledBit = 1u << 0;
constexpr uint8_t kEnvelopeTimingBit = 1u << 1;

}  // namespace

Frame EncodeTracedEnvelope(const TracedEnvelope& env) {
  Frame frame = EmptyFrame(MsgType::kTracedEnvelope);
  PutU64(&frame.body, env.trace_hi);
  PutU64(&frame.body, env.trace_lo);
  PutU64(&frame.body, env.span_id);
  uint8_t flags = 0;
  if (env.sampled) flags |= kEnvelopeSampledBit;
  if (env.has_timing) flags |= kEnvelopeTimingBit;
  PutU8(&frame.body, flags);
  if (env.has_timing) {
    PutU64(&frame.body, env.timing.queue_nanos);
    PutU64(&frame.body, env.timing.execute_nanos);
    PutU64(&frame.body, env.timing.serialize_nanos);
    PutU64(&frame.body, env.timing.reply_nanos);
  }
  PutU8(&frame.body, env.inner.type);
  PutU32(&frame.body, static_cast<uint32_t>(env.inner.body.size()));
  frame.body.insert(frame.body.end(), env.inner.body.begin(),
                    env.inner.body.end());
  return frame;
}

Result<TracedEnvelope> DecodeTracedEnvelope(const Frame& frame) {
  MBQ_RETURN_IF_ERROR(CheckType(frame, MsgType::kTracedEnvelope));
  TracedEnvelope env;
  size_t offset = 0;
  MBQ_ASSIGN_OR_RETURN(env.trace_hi, GetU64(frame.body, &offset));
  MBQ_ASSIGN_OR_RETURN(env.trace_lo, GetU64(frame.body, &offset));
  MBQ_ASSIGN_OR_RETURN(env.span_id, GetU64(frame.body, &offset));
  uint8_t flags;
  MBQ_ASSIGN_OR_RETURN(flags, GetU8(frame.body, &offset));
  env.sampled = (flags & kEnvelopeSampledBit) != 0;
  env.has_timing = (flags & kEnvelopeTimingBit) != 0;
  if (env.has_timing) {
    MBQ_ASSIGN_OR_RETURN(env.timing.queue_nanos, GetU64(frame.body, &offset));
    MBQ_ASSIGN_OR_RETURN(env.timing.execute_nanos,
                         GetU64(frame.body, &offset));
    MBQ_ASSIGN_OR_RETURN(env.timing.serialize_nanos,
                         GetU64(frame.body, &offset));
    MBQ_ASSIGN_OR_RETURN(env.timing.reply_nanos, GetU64(frame.body, &offset));
  }
  MBQ_ASSIGN_OR_RETURN(env.inner.type, GetU8(frame.body, &offset));
  if (env.inner.type == static_cast<uint8_t>(MsgType::kTracedEnvelope)) {
    return Status::Corruption("rpc: nested kTracedEnvelope");
  }
  uint32_t inner_len;
  MBQ_ASSIGN_OR_RETURN(inner_len, GetU32(frame.body, &offset));
  if (frame.body.size() - offset != inner_len) {
    return Status::Corruption("rpc: envelope inner length mismatch");
  }
  env.inner.body.assign(frame.body.begin() + static_cast<ptrdiff_t>(offset),
                        frame.body.end());
  return env;
}

Status DecodeError(const Frame& frame) {
  if (frame.type != static_cast<uint8_t>(MsgType::kError)) {
    return Status::Corruption(std::string("rpc: expected kError frame, got ") +
                              MsgTypeName(frame.type));
  }
  size_t offset = 0;
  uint8_t code;
  {
    Result<uint8_t> r = GetU8(frame.body, &offset);
    if (!r.ok()) return r.status();
    code = *r;
  }
  std::string message;
  {
    Result<std::string> r = GetString(frame.body, &offset);
    if (!r.ok()) return r.status();
    message = std::move(*r);
  }
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Internal("rpc: peer sent unknown status code " +
                            std::to_string(static_cast<int>(code)) + ": " +
                            message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace mbq::rpc
