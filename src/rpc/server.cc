#include "rpc/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "rpc/messages.h"

namespace mbq::rpc {

namespace {

struct ServerMetrics {
  obs::Counter* requests;
  obs::Counter* errors;
  obs::Counter* connections;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;

  static ServerMetrics Get() {
    static ServerMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      ServerMetrics out;
      out.requests = reg.GetCounter("rpc.server.requests", "requests",
                                    "RPC request frames dispatched");
      out.errors = reg.GetCounter(
          "rpc.server.errors", "requests",
          "RPC requests answered with a kError frame, plus framing "
          "violations that closed the connection");
      out.connections = reg.GetCounter("rpc.server.connections",
                                       "connections", "Connections accepted");
      out.bytes_in = reg.GetCounter("rpc.server.bytes_in", "bytes",
                                    "RPC request bytes received");
      out.bytes_out = reg.GetCounter("rpc.server.bytes_out", "bytes",
                                     "RPC reply bytes sent");
      return out;
    }();
    return m;
  }
};

}  // namespace

RpcServer::RpcServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

Result<std::unique_ptr<RpcServer>> RpcServer::Start(const Options& options,
                                                    Handler handler) {
  std::unique_ptr<RpcServer> server(
      new RpcServer(options, std::move(handler)));
  MBQ_RETURN_IF_ERROR(server->Bind());
  server->thread_ = std::thread([raw = server.get()] { raw->Loop(); });
  return server;
}

Status RpcServer::Bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("rpc server: socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("rpc server: bad bind address \"" +
                                   options_.bind_address + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status =
        Status::IoError("rpc server: cannot bind " + options_.bind_address +
                        ":" + std::to_string(options_.port) + ": " +
                        std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status status = Status::IoError("rpc server: listen() failed: " +
                                    std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }
  if (::pipe(wake_pipe_) != 0) {
    Status status = Status::IoError("rpc server: pipe() failed: " +
                                    std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  return Status::OK();
}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (wake_pipe_[1] >= 0) {
    char byte = 'q';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

bool RpcServer::ServeReadable(Conn* conn) {
  ServerMetrics metrics = ServerMetrics::Get();
  uint8_t buf[4096];
  ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
  if (n == 0) return false;  // orderly close
  if (n < 0) return errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK;
  metrics.bytes_in->Inc(static_cast<uint64_t>(n));
  conn->decoder.Feed(buf, static_cast<size_t>(n));

  Frame request;
  for (;;) {
    Result<bool> next = conn->decoder.Next(&request);
    if (!next.ok()) {
      // Framing violation: tell the peer why, then hang up — the stream
      // cannot be resynchronized.
      metrics.errors->Inc();
      uint64_t bytes_out = 0;
      [[maybe_unused]] Status sent =
          WriteFrame(conn->fd, EncodeError(next.status()),
                     options_.write_timeout_millis, &bytes_out);
      metrics.bytes_out->Inc(bytes_out);
      return false;
    }
    if (!*next) return true;  // need more bytes
    metrics.requests->Inc();
    Frame reply = handler_(request);
    if (reply.type == static_cast<uint8_t>(MsgType::kError)) {
      metrics.errors->Inc();
    }
    uint64_t bytes_out = 0;
    Status written = WriteFrame(conn->fd, reply,
                                options_.write_timeout_millis, &bytes_out);
    metrics.bytes_out->Inc(bytes_out);
    if (!written.ok()) return false;
  }
}

void RpcServer::Loop() {
  ServerMetrics metrics = ServerMetrics::Get();
  std::vector<Conn> conns;
  std::vector<pollfd> fds;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const Conn& conn : conns) fds.push_back({conn.fd, POLLIN, 0});
    int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Stop() woke us
    // Existing connections first: iterate backwards so erasing is safe.
    for (size_t i = conns.size(); i-- > 0;) {
      short revents = fds[2 + i].revents;
      if (revents == 0) continue;
      bool keep = (revents & (POLLERR | POLLNVAL)) == 0 &&
                  ServeReadable(&conns[i]);
      if (!keep) {
        ::close(conns[i].fd);
        conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    if ((fds[0].revents & POLLIN) != 0) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        metrics.connections->Inc();
        Conn conn;
        conn.fd = fd;
        conns.push_back(std::move(conn));
      }
    }
  }
  for (Conn& conn : conns) ::close(conn.fd);
}

}  // namespace mbq::rpc
