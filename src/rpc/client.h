#ifndef MBQ_RPC_CLIENT_H_
#define MBQ_RPC_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "rpc/messages.h"
#include "util/lock_rank.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace mbq::rpc {

/// Blocking request/response client over one TCP connection. Thread-safe:
/// a mutex serializes calls, so several engine threads can share a client
/// (the protocol is strictly one-reply-per-request, there is nothing to
/// pipeline). On a transport failure (peer died, timeout) the client
/// redials once and retries the request; application errors arriving as
/// kError frames are returned to the caller untouched — the connection is
/// still healthy.
class RpcClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Per-syscall poll() timeout for connect/send/recv.
    int timeout_millis = 30000;
  };

  /// Dials the server and exchanges kHello/kHelloReply so the caller
  /// immediately learns the peer's topology (and a mis-addressed port —
  /// e.g. the stats HTTP server — fails fast instead of on first use).
  static Result<std::unique_ptr<RpcClient>> Connect(const Options& options);

  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Sends `request` and reads the single reply frame. A kError reply is
  /// decoded into its Status; any other frame is returned for the caller
  /// to decode.
  ///
  /// Tracing: when the calling thread has a sampled TraceContext active,
  /// the request is wrapped in a kTracedEnvelope carrying a fresh client
  /// span (child of the caller's), the reply is unwrapped transparently,
  /// and the round trip lands in the span ring as "rpc.client.<type>".
  /// The shard's timing summary from the reply envelope is written to
  /// `*timing` when non-null (zeros when the reply came back bare). A
  /// peer that rejects envelopes with kNotImplemented gets bare frames
  /// from then on — mixed-version clusters keep working untraced.
  Result<Frame> Call(const Frame& request, ShardTiming* timing = nullptr);

  /// kPing round-trip.
  Status Ping();

  /// The topology the server reported at connect time.
  const HelloReply& server_info() const { return server_info_; }
  const Options& options() const { return options_; }

 private:
  explicit RpcClient(Options options);

  /// Establishes fd_ (closing any previous connection).
  Status Dial() MBQ_REQUIRES(mu_);
  /// One write+read exchange on the current connection.
  Result<Frame> Exchange(const Frame& request) MBQ_REQUIRES(mu_);

  Options options_;
  HelloReply server_info_;
  /// LockRank::kRpc, the outermost rank: held across the whole network
  /// round-trip, during which no other in-process lock may be acquired
  /// (the exchange only touches fd_ and lock-free obs counters).
  util::RankedMutex mu_{util::LockRank::kRpc, "rpc.client"};
  int fd_ MBQ_GUARDED_BY(mu_) = -1;
  /// Cleared the first time the peer answers an envelope with
  /// kNotImplemented; later calls skip wrapping.
  bool peer_accepts_envelopes_ MBQ_GUARDED_BY(mu_) = true;
};

}  // namespace mbq::rpc

#endif  // MBQ_RPC_CLIENT_H_
