#include "rpc/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"

namespace mbq::rpc {

namespace {

struct ClientMetrics {
  obs::Counter* requests;
  obs::Counter* errors;
  obs::Counter* reconnects;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Histogram* latency;

  static ClientMetrics Get() {
    static ClientMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      ClientMetrics out;
      out.requests = reg.GetCounter("rpc.client.requests", "requests",
                                    "RPC requests issued by this process");
      out.errors = reg.GetCounter(
          "rpc.client.errors", "requests",
          "RPC requests that failed (transport or server error)");
      out.reconnects =
          reg.GetCounter("rpc.client.reconnects", "connections",
                         "Connections re-established after a transport "
                         "failure mid-request");
      out.bytes_in = reg.GetCounter("rpc.client.bytes_in", "bytes",
                                    "RPC reply bytes received");
      out.bytes_out = reg.GetCounter("rpc.client.bytes_out", "bytes",
                                     "RPC request bytes sent");
      out.latency = reg.GetHistogram(
          "rpc.client.latency", "us",
          "Round-trip time of RPC requests, including redial on retry");
      return out;
    }();
    return m;
  }
};

/// connect() with a poll() deadline; blocking connect has no timeout knob.
Status ConnectWithTimeout(int fd, const sockaddr_in& addr,
                          int timeout_millis) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::IoError("rpc: connect() failed: " +
                           std::string(std::strerror(errno)));
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, timeout_millis);
    if (ready == 0) return Status::IoError("rpc: connect timed out");
    if (ready < 0) {
      return Status::IoError("rpc: poll() failed: " +
                             std::string(std::strerror(errno)));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return Status::IoError("rpc: connect() failed: " +
                             std::string(std::strerror(err != 0 ? err : errno)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return Status::OK();
}

bool IsTransportError(const Status& status) {
  // Framing violations and server-side Status replies do not heal with a
  // redial; only socket-level failures do.
  return status.IsIoError();
}

}  // namespace

RpcClient::RpcClient(Options options) : options_(std::move(options)) {}

RpcClient::~RpcClient() {
  // No concurrent Call can be alive here, but the analysis cannot know
  // that — take the lock so the guarded read is checkable.
  util::ScopedLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<RpcClient>> RpcClient::Connect(const Options& options) {
  std::unique_ptr<RpcClient> client(new RpcClient(options));
  util::ScopedLock lock(client->mu_);
  MBQ_RETURN_IF_ERROR(client->Dial());
  Frame reply;
  MBQ_ASSIGN_OR_RETURN(reply, client->Exchange(EmptyFrame(MsgType::kHello)));
  MBQ_ASSIGN_OR_RETURN(client->server_info_, DecodeHelloReply(reply));
  return client;
}

Status RpcClient::Dial() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("rpc: socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("rpc: bad host address \"" +
                                   options_.host + "\"");
  }
  Status connected = ConnectWithTimeout(fd, addr, options_.timeout_millis);
  if (!connected.ok()) {
    ::close(fd);
    return Status(connected.code(),
                  connected.message() + " (" + options_.host + ":" +
                      std::to_string(options_.port) + ")");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

Result<Frame> RpcClient::Exchange(const Frame& request) {
  ClientMetrics metrics = ClientMetrics::Get();
  uint64_t bytes_out = 0;
  uint64_t bytes_in = 0;
  Status written = WriteFrame(fd_, request, options_.timeout_millis,
                              &bytes_out);
  metrics.bytes_out->Inc(bytes_out);
  MBQ_RETURN_IF_ERROR(written);
  Result<Frame> reply = ReadFrame(fd_, options_.timeout_millis, &bytes_in);
  metrics.bytes_in->Inc(bytes_in);
  return reply;
}

Result<Frame> RpcClient::Call(const Frame& request) {
  ClientMetrics metrics = ClientMetrics::Get();
  metrics.requests->Inc();
  auto start = std::chrono::steady_clock::now();
  util::ScopedLock lock(mu_);
  Result<Frame> reply = Exchange(request);
  if (!reply.ok() && IsTransportError(reply.status())) {
    // The peer may have restarted between requests; one redial covers
    // that without masking a genuinely dead shard behind a retry loop.
    Status redialed = Dial();
    if (redialed.ok()) {
      metrics.reconnects->Inc();
      reply = Exchange(request);
    }
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  metrics.latency->Record(static_cast<uint64_t>(elapsed.count()));
  if (!reply.ok()) {
    metrics.errors->Inc();
    return reply;
  }
  if (reply->type == static_cast<uint8_t>(MsgType::kError)) {
    metrics.errors->Inc();
    return DecodeError(*reply);
  }
  return reply;
}

Status RpcClient::Ping() {
  Frame reply;
  MBQ_ASSIGN_OR_RETURN(reply, Call(EmptyFrame(MsgType::kPing)));
  if (reply.type != static_cast<uint8_t>(MsgType::kPong)) {
    return Status::Corruption(std::string("rpc: expected kPong, got ") +
                              MsgTypeName(reply.type));
  }
  return Status::OK();
}

}  // namespace mbq::rpc
