#include "rpc/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "util/clock.h"

namespace mbq::rpc {

namespace {

struct ClientMetrics {
  obs::Counter* requests;
  obs::Counter* errors;
  obs::Counter* reconnects;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Histogram* latency;

  static ClientMetrics Get() {
    static ClientMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      ClientMetrics out;
      out.requests = reg.GetCounter("rpc.client.requests", "requests",
                                    "RPC requests issued by this process");
      out.errors = reg.GetCounter(
          "rpc.client.errors", "requests",
          "RPC requests that failed (transport or server error)");
      out.reconnects =
          reg.GetCounter("rpc.client.reconnects", "connections",
                         "Connections re-established after a transport "
                         "failure mid-request");
      out.bytes_in = reg.GetCounter("rpc.client.bytes_in", "bytes",
                                    "RPC reply bytes received");
      out.bytes_out = reg.GetCounter("rpc.client.bytes_out", "bytes",
                                     "RPC request bytes sent");
      out.latency = reg.GetHistogram(
          "rpc.client.latency", "us",
          "Round-trip time of RPC requests, including redial on retry");
      return out;
    }();
    return m;
  }
};

/// connect() with a poll() deadline; blocking connect has no timeout knob.
Status ConnectWithTimeout(int fd, const sockaddr_in& addr,
                          int timeout_millis) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::IoError("rpc: connect() failed: " +
                           std::string(std::strerror(errno)));
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, timeout_millis);
    if (ready == 0) return Status::IoError("rpc: connect timed out");
    if (ready < 0) {
      return Status::IoError("rpc: poll() failed: " +
                             std::string(std::strerror(errno)));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return Status::IoError("rpc: connect() failed: " +
                             std::string(std::strerror(err != 0 ? err : errno)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return Status::OK();
}

bool IsTransportError(const Status& status) {
  // Framing violations and server-side Status replies do not heal with a
  // redial; only socket-level failures do.
  return status.IsIoError();
}

}  // namespace

RpcClient::RpcClient(Options options) : options_(std::move(options)) {}

RpcClient::~RpcClient() {
  // No concurrent Call can be alive here, but the analysis cannot know
  // that — take the lock so the guarded read is checkable.
  util::ScopedLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<RpcClient>> RpcClient::Connect(const Options& options) {
  std::unique_ptr<RpcClient> client(new RpcClient(options));
  util::ScopedLock lock(client->mu_);
  MBQ_RETURN_IF_ERROR(client->Dial());
  Frame reply;
  MBQ_ASSIGN_OR_RETURN(reply, client->Exchange(EmptyFrame(MsgType::kHello)));
  MBQ_ASSIGN_OR_RETURN(client->server_info_, DecodeHelloReply(reply));
  return client;
}

Status RpcClient::Dial() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("rpc: socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("rpc: bad host address \"" +
                                   options_.host + "\"");
  }
  Status connected = ConnectWithTimeout(fd, addr, options_.timeout_millis);
  if (!connected.ok()) {
    ::close(fd);
    return Status(connected.code(),
                  connected.message() + " (" + options_.host + ":" +
                      std::to_string(options_.port) + ")");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

Result<Frame> RpcClient::Exchange(const Frame& request) {
  ClientMetrics metrics = ClientMetrics::Get();
  uint64_t bytes_out = 0;
  uint64_t bytes_in = 0;
  Status written = WriteFrame(fd_, request, options_.timeout_millis,
                              &bytes_out);
  metrics.bytes_out->Inc(bytes_out);
  MBQ_RETURN_IF_ERROR(written);
  Result<Frame> reply = ReadFrame(fd_, options_.timeout_millis, &bytes_in);
  metrics.bytes_in->Inc(bytes_in);
  return reply;
}

Result<Frame> RpcClient::Call(const Frame& request, ShardTiming* timing) {
  ClientMetrics metrics = ClientMetrics::Get();
  metrics.requests->Inc();
  if (timing != nullptr) *timing = ShardTiming{};

  util::ScopedLock lock(mu_);
  // Wrap in a tracing envelope when a sampled trace is active. The client
  // span is a child of the caller's current span and is installed for the
  // exchange, so the recorded round trip nests correctly; the margin keeps
  // a near-cap inner body from pushing the envelope over kMaxBodyBytes.
  const obs::TraceContext& current = obs::CurrentTraceContext();
  bool enveloped = peer_accepts_envelopes_ && current.valid() &&
                   current.sampled &&
                   request.type != static_cast<uint8_t>(MsgType::kTracedEnvelope) &&
                   request.body.size() + 64 < kMaxBodyBytes;
  obs::TraceContext client_ctx = current;
  Frame wire_request = request;
  if (enveloped) {
    client_ctx.parent_span_id = current.span_id;
    client_ctx.span_id = obs::NextSpanId();
    TracedEnvelope env;
    env.trace_hi = client_ctx.trace_hi;
    env.trace_lo = client_ctx.trace_lo;
    env.span_id = client_ctx.span_id;
    env.sampled = true;
    env.inner = request;
    wire_request = EncodeTracedEnvelope(env);
    obs::TraceMetrics::Get().envelope_sent->Inc();
  }

  uint64_t start_nanos = WallClock().NowNanos();
  Result<Frame> reply = Exchange(wire_request);
  if (!reply.ok() && IsTransportError(reply.status())) {
    // The peer may have restarted between requests; one redial covers
    // that without masking a genuinely dead shard behind a retry loop.
    Status redialed = Dial();
    if (redialed.ok()) {
      metrics.reconnects->Inc();
      reply = Exchange(wire_request);
    }
  }
  if (enveloped && reply.ok() &&
      reply->type == static_cast<uint8_t>(MsgType::kError)) {
    Status error = DecodeError(*reply);
    if (error.IsNotImplemented()) {
      // An old peer that predates kTracedEnvelope: resend bare and stop
      // wrapping on this connection.
      peer_accepts_envelopes_ = false;
      enveloped = false;
      reply = Exchange(request);
    }
  }
  uint64_t elapsed_nanos = WallClock().NowNanos() - start_nanos;
  metrics.latency->Record(elapsed_nanos / 1000);

  if (enveloped && reply.ok() &&
      reply->type == static_cast<uint8_t>(MsgType::kTracedEnvelope)) {
    Result<TracedEnvelope> env = DecodeTracedEnvelope(*reply);
    if (!env.ok()) {
      metrics.errors->Inc();
      return env.status();
    }
    obs::TraceMetrics::Get().envelope_received->Inc();
    if (timing != nullptr && env->has_timing) *timing = env->timing;
    reply = std::move(env->inner);
  }
  if (enveloped) {
    // Record with the client span installed so it carries its own id and
    // parents onto the caller's span. Only lock-free ring work happens
    // under the scope — legal below the kRpc mutex held here.
    obs::ScopedTraceContext span_scope(client_ctx);
    obs::SpanRecorder::Global().Record(
        std::string("rpc.client.") + MsgTypeName(request.type), "rpc",
        start_nanos, elapsed_nanos);
  }

  if (!reply.ok()) {
    metrics.errors->Inc();
    return reply;
  }
  if (reply->type == static_cast<uint8_t>(MsgType::kError)) {
    metrics.errors->Inc();
    return DecodeError(*reply);
  }
  return reply;
}

Status RpcClient::Ping() {
  Frame reply;
  MBQ_ASSIGN_OR_RETURN(reply, Call(EmptyFrame(MsgType::kPing)));
  if (reply.type != static_cast<uint8_t>(MsgType::kPong)) {
    return Status::Corruption(std::string("rpc: expected kPong, got ") +
                              MsgTypeName(reply.type));
  }
  return Status::OK();
}

}  // namespace mbq::rpc
