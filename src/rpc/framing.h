#ifndef MBQ_RPC_FRAMING_H_
#define MBQ_RPC_FRAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace mbq::rpc {

/// The wire protocol of the sharded serving plane (docs/CLUSTER.md) is a
/// stream of length-prefixed binary frames over TCP. Every frame starts
/// with a fixed 12-byte header:
///
///   offset 0  u32  magic     0x5251424D — bytes "MBQR" on the wire
///   offset 4  u8   version   protocol version (kProtocolVersion)
///   offset 5  u8   type      message type (messages.h)
///   offset 6  u16  reserved  must be zero
///   offset 8  u32  length    body length in bytes (not counting the header)
///
/// followed by `length` bytes of type-specific body. Integers are
/// little-endian (the native layout of every supported target, matching
/// the value codec the body payloads reuse). A peer that sees a bad
/// magic, an unsupported version, a non-zero reserved field or a length
/// above kMaxBodyBytes must treat the stream as corrupt and close it —
/// there is no way to resynchronize a framed stream.
constexpr uint32_t kMagic = 0x5251424D;  // bytes "MBQR" on the wire
constexpr uint8_t kProtocolVersion = 1;
constexpr size_t kHeaderBytes = 12;
/// Upper bound on a frame body; a length above this is hostile or
/// corrupt, never legitimate (the largest real payloads are result sets
/// a few MB wide).
constexpr uint32_t kMaxBodyBytes = 64u << 20;

/// One decoded frame: the type tag plus the raw body bytes. Body
/// contents are encoded/decoded by messages.h.
struct Frame {
  uint8_t type = 0;
  std::vector<uint8_t> body;
};

// ------------------------------------------------------------ body codec
// Little-endian POD + length-prefixed string primitives shared by every
// message encoder. Decode primitives take (data, offset) and fail with
// Corruption on truncation, mirroring common/value_codec.h.

void PutU8(std::vector<uint8_t>* out, uint8_t v);
void PutU16(std::vector<uint8_t>* out, uint16_t v);
void PutU32(std::vector<uint8_t>* out, uint32_t v);
void PutU64(std::vector<uint8_t>* out, uint64_t v);
void PutI64(std::vector<uint8_t>* out, int64_t v);
/// u32 byte length followed by the bytes.
void PutString(std::vector<uint8_t>* out, const std::string& s);

Result<uint8_t> GetU8(const std::vector<uint8_t>& data, size_t* offset);
Result<uint16_t> GetU16(const std::vector<uint8_t>& data, size_t* offset);
Result<uint32_t> GetU32(const std::vector<uint8_t>& data, size_t* offset);
Result<uint64_t> GetU64(const std::vector<uint8_t>& data, size_t* offset);
Result<int64_t> GetI64(const std::vector<uint8_t>& data, size_t* offset);
Result<std::string> GetString(const std::vector<uint8_t>& data,
                              size_t* offset);

/// Appends the full wire image (header + body) of `frame` to `out`.
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

/// Incremental frame decoder for servers reading whatever poll() hands
/// them: feed arbitrary byte chunks (down to one byte at a time) and
/// pull complete frames out. A header violation (bad magic/version/
/// reserved, oversized length) poisons the decoder permanently — framed
/// streams cannot resynchronize after corruption.
class FrameDecoder {
 public:
  /// Appends raw stream bytes.
  void Feed(const uint8_t* data, size_t n);

  /// Moves the next complete frame into `*out` and returns true; returns
  /// false when more bytes are needed. Fails (and keeps failing) once the
  /// stream violated the framing rules.
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed as frames.
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  Status poisoned_;
};

// ---------------------------------------------------- blocking socket I/O
// Used by the blocking client and anywhere a dedicated fd carries exactly
// one conversation. Both calls poll() with `timeout_millis` per syscall,
// so a stalled peer cannot wedge the caller forever.

/// Writes header + body, looping over partial sends. Adds the bytes put
/// on the wire to `*bytes_out` when non-null.
Status WriteFrame(int fd, const Frame& frame, int timeout_millis,
                  uint64_t* bytes_out = nullptr);

/// Reads exactly one frame, tolerating arbitrarily fragmented delivery.
/// Adds the bytes taken off the wire to `*bytes_in` when non-null.
Result<Frame> ReadFrame(int fd, int timeout_millis,
                        uint64_t* bytes_in = nullptr);

}  // namespace mbq::rpc

#endif  // MBQ_RPC_FRAMING_H_
