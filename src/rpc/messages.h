#ifndef MBQ_RPC_MESSAGES_H_
#define MBQ_RPC_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "rpc/framing.h"
#include "util/result.h"

namespace mbq::rpc {

/// Row type carried by kRowsReply / kQueryReply. Identical layout to
/// core::ValueRows, so engine results cross the wire without conversion.
using ValueRows = std::vector<std::vector<common::Value>>;

/// Every message type of protocol version 1. The numeric values are the
/// wire encoding (frame header byte 5) and must never be reused; new
/// types append. Documented in docs/CLUSTER.md.
enum class MsgType : uint8_t {
  kHello = 1,       ///< client -> server: identify the peer, no body
  kHelloReply = 2,  ///< server -> client: shard topology + engine info
  kCall = 3,        ///< client -> server: one Table 2 navigation call
  kRowsReply = 4,   ///< server -> client: ValueRows result
  kIntReply = 5,    ///< server -> client: int64 result (Q6.1)
  kQuery = 6,       ///< client -> server: mini-Cypher text + merge mode
  kQueryReply = 7,  ///< server -> client: columns + ValueRows
  kError = 8,       ///< server -> client: Status code + message
  kPing = 9,        ///< client -> server: liveness probe, no body
  kPong = 10,       ///< server -> client: liveness answer, no body
  kDropCaches = 11, ///< client -> server: drop engine caches, no body
  kOkReply = 12,    ///< server -> client: success with no payload
  /// Reserved for cluster writes: body is an encoded store::WriteBatch
  /// (store/delta/write_batch.h). No server implements it yet — shards
  /// answer kError(kNotImplemented); the value is burned now so protocol
  /// version 1 peers agree on its meaning when it lands (docs/CLUSTER.md).
  kWriteBatch = 13,
  /// Distributed-tracing envelope: a TraceContext plus one complete
  /// inner frame of any other type (docs/CLUSTER.md has the layout).
  /// Requests wrapped in an envelope get their reply wrapped too, with a
  /// per-shard timing summary; peers that predate the type answer
  /// kError(kNotImplemented) and the client falls back to bare frames.
  kTracedEnvelope = 14,
};

/// Returns the spec name of a message type ("kCall", ...) for logs and
/// error messages; "kUnknown" for unassigned values.
const char* MsgTypeName(uint8_t type);

/// The eleven Table 2 navigation calls a kCall frame can request. The
/// numeric values are the wire encoding; same append-only rule as
/// MsgType.
enum class NavCall : uint8_t {
  kSelectUsersByFollowerCount = 1,   // Q1.1  (uid = threshold)
  kFolloweesOf = 2,                  // Q2.1
  kTweetsOfFollowees = 3,            // Q2.2
  kHashtagsUsedByFollowees = 4,      // Q2.3
  kTopCoMentionedUsers = 5,          // Q3.1  (arg = n)
  kTopCoOccurringHashtags = 6,       // Q3.2  (tag, arg = n)
  kRecommendFolloweesOfFollowees = 7,// Q4.1  (arg = n)
  kRecommendFollowersOfFollowees = 8,// Q4.2  (arg = n)
  kCurrentInfluence = 9,             // Q5.1  (arg = n)
  kPotentialInfluence = 10,          // Q5.2  (arg = n)
  kShortestPathLength = 11,          // Q6.1  (uid, arg = uid_b, max_hops)
};

/// Short stable name for a navigation call ("followees_of", ...), used
/// as the per-call latency metric component (rpc.call.<name>.latency).
const char* NavCallName(NavCall call);

/// kHelloReply body: how a server describes itself. The aggregator
/// presents itself as a single unpartitioned shard so any client —
/// including another RemoteEngine — can sit in front of it unchanged.
struct HelloReply {
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  uint8_t partition = 0;  ///< core::PartitionKind wire value
  uint64_t num_users = 0; ///< size of the global user id space
  std::string engine;     ///< "nodestore", "bitmap", "aggregator"
};

/// kCall body: one navigation call. Field use per call is fixed by the
/// NavCall comments above; unused fields are zero/empty on the wire.
struct CallRequest {
  NavCall call = NavCall::kFolloweesOf;
  int64_t uid = 0;      ///< anchor uid, or Q1.1 threshold
  int64_t arg = 0;      ///< top-n limit, or Q6.1 uid_b
  uint32_t max_hops = 0;///< Q6.1 only
  std::string tag;      ///< Q3.2 only
};

/// How the aggregator (or any fan-out client) should combine per-shard
/// results of a kQuery. Carried on the wire so `mbqd --aggregate` does
/// not need to parse the query text.
enum class QueryMerge : uint8_t {
  kRoute = 1,    ///< send to one shard, pass the reply through
  kConcat = 2,   ///< fan out, concatenate rows
  kDistinct = 3, ///< fan out, concatenate then sort + deduplicate
};

/// kQuery body: mini-Cypher text executed by the shard's CypherSession.
struct QueryRequest {
  std::string text;
  QueryMerge merge = QueryMerge::kConcat;
  uint32_t route_shard = 0;  ///< target shard for kRoute
};

/// kQueryReply body.
struct QueryReply {
  std::vector<std::string> columns;
  ValueRows rows;
};

/// Where a request's time went inside one shard, carried back to the
/// aggregator on kTracedEnvelope replies. All steady-clock nanoseconds,
/// measured server-side: queue (decode + dispatch overhead before the
/// engine ran), execute (the engine call itself), serialize (encoding
/// the reply body), reply (the whole Handle, >= the sum of the parts).
struct ShardTiming {
  uint64_t queue_nanos = 0;
  uint64_t execute_nanos = 0;
  uint64_t serialize_nanos = 0;
  uint64_t reply_nanos = 0;
};

/// kTracedEnvelope body: a trace context plus one complete inner frame.
/// The span id is the *sender's* span (the receiver adopts it as the
/// parent of everything it does); timing rides only on replies.
struct TracedEnvelope {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  bool sampled = false;
  bool has_timing = false;
  ShardTiming timing;
  Frame inner;
};

// --------------------------------------------------------------- encoders
// Each returns a complete Frame ready for WriteFrame. Bodiless types
// (kHello, kPing, kPong, kDropCaches, kOkReply) are built with
// EmptyFrame.

Frame EmptyFrame(MsgType type);
Frame EncodeHelloReply(const HelloReply& reply);
Frame EncodeCall(const CallRequest& req);
Frame EncodeRowsReply(const ValueRows& rows);
Frame EncodeIntReply(int64_t value);
Frame EncodeQuery(const QueryRequest& req);
Frame EncodeQueryReply(const QueryReply& reply);
/// kError body: u8 StatusCode + message string. `status` must be non-OK.
Frame EncodeError(const Status& status);
/// The envelope's inner frame must itself not be an envelope (one level
/// of wrapping, enforced on both encode and decode).
Frame EncodeTracedEnvelope(const TracedEnvelope& env);

// --------------------------------------------------------------- decoders
// Each checks frame.type and fails with Corruption on a mismatch or a
// malformed body.

Result<HelloReply> DecodeHelloReply(const Frame& frame);
Result<CallRequest> DecodeCall(const Frame& frame);
Result<ValueRows> DecodeRowsReply(const Frame& frame);
Result<int64_t> DecodeIntReply(const Frame& frame);
Result<QueryRequest> DecodeQuery(const Frame& frame);
Result<QueryReply> DecodeQueryReply(const Frame& frame);
/// Reconstructs the Status carried by a kError frame (always non-OK).
Status DecodeError(const Frame& frame);
Result<TracedEnvelope> DecodeTracedEnvelope(const Frame& frame);

}  // namespace mbq::rpc

#endif  // MBQ_RPC_MESSAGES_H_
