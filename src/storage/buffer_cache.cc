#include "storage/buffer_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace mbq::storage {

PageRef::~PageRef() { Release(); }

PageRef::PageRef(PageRef&& other) noexcept
    : cache_(other.cache_), shard_(other.shard_), frame_(other.frame_) {
  other.cache_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    shard_ = other.shard_;
    frame_ = other.frame_;
    other.cache_ = nullptr;
  }
  return *this;
}

void PageRef::Release() {
  if (cache_ != nullptr) {
    cache_->Unpin(shard_, frame_);
    cache_ = nullptr;
  }
}

// A pinned frame cannot be evicted or have its data vector resized, so
// data()/page_id() need no lock — concurrent pinned readers of the same
// page are plain const reads.
uint8_t* PageRef::data() {
  MBQ_CHECK(cache_ != nullptr);
  return cache_->shards_[shard_]->frames[frame_].data.data();
}

const uint8_t* PageRef::data() const {
  MBQ_CHECK(cache_ != nullptr);
  return cache_->shards_[shard_]->frames[frame_].data.data();
}

PageId PageRef::page_id() const {
  MBQ_CHECK(cache_ != nullptr);
  return cache_->shards_[shard_]->frames[frame_].page_id;
}

void PageRef::MarkDirty() {
  MBQ_CHECK(cache_ != nullptr);
  BufferCache::Shard& s = *cache_->shards_[shard_];
  util::ScopedLock lock(s.mu);
  BufferCache::Frame& frame = s.frames[frame_];
  if (cache_->options_.write_policy == WritePolicy::kWriteThrough) {
    Status st = cache_->disk_->WritePage(frame.page_id, frame.data.data());
    MBQ_CHECK(st.ok());
    ++s.stats.pages_flushed;
  } else {
    frame.dirty = true;
  }
}

BufferCache::BufferCache(SimulatedDisk* disk, BufferCacheOptions options)
    : disk_(disk), options_(options) {
  MBQ_CHECK(options_.capacity_pages > 0);
  size_t num_shards = options_.shards;
  if (num_shards == 0) {
    num_shards = std::clamp<size_t>(options_.capacity_pages / 256, 1, 16);
  }
  num_shards = std::min(num_shards, options_.capacity_pages);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    // First `capacity % shards` shards get one extra frame.
    size_t cap = options_.capacity_pages / num_shards +
                 (s < options_.capacity_pages % num_shards ? 1 : 0);
    auto shard = std::make_unique<Shard>();
    shard->frames.resize(cap);
    shard->free_frames.reserve(cap);
    for (size_t i = 0; i < cap; ++i) {
      shard->frames[i].data.resize(kPageSize);
      shard->free_frames.push_back(cap - 1 - i);
    }
    shards_.push_back(std::move(shard));
  }
}

void BufferCache::TouchLocked(Shard& s, size_t frame) {
  Frame& f = s.frames[frame];
  if (f.in_lru) {
    s.lru.erase(f.lru_pos);
    f.in_lru = false;
  }
  if (f.pins == 0) {
    s.lru.push_front(frame);
    f.lru_pos = s.lru.begin();
    f.in_lru = true;
  }
}

PageRef BufferCache::PinLocked(Shard& s, size_t shard_index, size_t frame) {
  Frame& f = s.frames[frame];
  if (f.in_lru) {
    s.lru.erase(f.lru_pos);
    f.in_lru = false;
  }
  ++f.pins;
  return PageRef(this, shard_index, frame);
}

void BufferCache::Unpin(size_t shard, size_t frame) {
  Shard& s = *shards_[shard];
  util::ScopedLock lock(s.mu);
  Frame& f = s.frames[frame];
  MBQ_CHECK(f.pins > 0);
  --f.pins;
  if (f.pins == 0) {
    s.lru.push_front(frame);
    f.lru_pos = s.lru.begin();
    f.in_lru = true;
  }
}

Status BufferCache::WriteBackLocked(Shard& s, size_t frame) {
  Frame& f = s.frames[frame];
  if (f.dirty) {
    MBQ_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.data()));
    f.dirty = false;
    ++s.stats.pages_flushed;
  }
  return Status::OK();
}

Result<size_t> BufferCache::AcquireFrameLocked(Shard& s) {
  if (!s.free_frames.empty()) {
    size_t frame = s.free_frames.back();
    s.free_frames.pop_back();
    return frame;
  }
  if (s.lru.empty()) {
    return Status::FailedPrecondition(
        "buffer cache exhausted: all frames pinned");
  }
  // Prefer evicting a clean page (cheap). If none is clean and the
  // flush-all policy is on, flush the shard's entire dirty set in one
  // stall (shard-local so no cross-shard lock nesting).
  size_t victim = s.lru.back();
  if (s.frames[victim].dirty && options_.flush_all_when_full) {
    ++s.stats.flush_stalls;
    MBQ_RETURN_IF_ERROR(FlushShardLocked(s));
  }
  victim = s.lru.back();
  s.lru.pop_back();
  s.frames[victim].in_lru = false;
  MBQ_RETURN_IF_ERROR(WriteBackLocked(s, victim));
  s.frame_of_page.erase(s.frames[victim].page_id);
  s.frames[victim].page_id = kInvalidPageId;
  ++s.stats.evictions;
  return victim;
}

Result<PageRef> BufferCache::GetPage(PageId id) {
  size_t si = ShardOf(id);
  Shard& s = *shards_[si];
  util::ScopedLock lock(s.mu);
  auto it = s.frame_of_page.find(id);
  if (it != s.frame_of_page.end()) {
    ++s.stats.hits;
    TouchLocked(s, it->second);
    return PinLocked(s, si, it->second);
  }
  ++s.stats.misses;
  MBQ_ASSIGN_OR_RETURN(size_t frame, AcquireFrameLocked(s));
  Frame& f = s.frames[frame];
  // The disk read happens under the shard lock, so a second reader of the
  // same page waits here and then hits the freshly loaded frame.
  Status st = disk_->ReadPage(id, f.data.data());
  if (!st.ok()) {
    s.free_frames.push_back(frame);
    return st;
  }
  f.page_id = id;
  f.dirty = false;
  s.frame_of_page[id] = frame;
  return PinLocked(s, si, frame);
}

Result<PageRef> BufferCache::GetPageForInit(PageId id) {
  size_t si = ShardOf(id);
  Shard& s = *shards_[si];
  util::ScopedLock lock(s.mu);
  auto it = s.frame_of_page.find(id);
  if (it != s.frame_of_page.end()) {
    ++s.stats.hits;
    TouchLocked(s, it->second);
    return PinLocked(s, si, it->second);
  }
  MBQ_ASSIGN_OR_RETURN(size_t frame, AcquireFrameLocked(s));
  Frame& f = s.frames[frame];
  std::fill(f.data.begin(), f.data.end(), 0);
  f.page_id = id;
  f.dirty = options_.write_policy == WritePolicy::kWriteBack;
  s.frame_of_page[id] = frame;
  return PinLocked(s, si, frame);
}

Result<PageRef> BufferCache::NewPage() {
  PageId id = disk_->AllocatePage();
  size_t si = ShardOf(id);
  Shard& s = *shards_[si];
  util::ScopedLock lock(s.mu);
  MBQ_ASSIGN_OR_RETURN(size_t frame, AcquireFrameLocked(s));
  Frame& f = s.frames[frame];
  std::fill(f.data.begin(), f.data.end(), 0);
  f.page_id = id;
  f.dirty = options_.write_policy == WritePolicy::kWriteBack;
  s.frame_of_page[id] = frame;
  return PinLocked(s, si, frame);
}

Status BufferCache::FlushShardLocked(Shard& s) {
  // Elevator flush: write dirty pages in ascending page order so the
  // device sees one mostly-sequential sweep.
  std::vector<std::pair<PageId, size_t>> dirty;
  for (size_t i = 0; i < s.frames.size(); ++i) {
    if (s.frames[i].page_id != kInvalidPageId && s.frames[i].dirty) {
      dirty.emplace_back(s.frames[i].page_id, i);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  for (const auto& [page, frame] : dirty) {
    MBQ_RETURN_IF_ERROR(WriteBackLocked(s, frame));
  }
  return Status::OK();
}

Status BufferCache::FlushAll() {
  for (auto& shard : shards_) {
    util::ScopedLock lock(shard->mu);
    MBQ_RETURN_IF_ERROR(FlushShardLocked(*shard));
  }
  return Status::OK();
}

Status BufferCache::EvictAll() {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    util::ScopedLock lock(s.mu);
    MBQ_RETURN_IF_ERROR(FlushShardLocked(s));
    for (size_t i = 0; i < s.frames.size(); ++i) {
      Frame& f = s.frames[i];
      if (f.page_id == kInvalidPageId || f.pins > 0) continue;
      if (f.in_lru) {
        s.lru.erase(f.lru_pos);
        f.in_lru = false;
      }
      s.frame_of_page.erase(f.page_id);
      f.page_id = kInvalidPageId;
      s.free_frames.push_back(i);
    }
  }
  return Status::OK();
}

BufferCacheStats BufferCache::stats() const {
  BufferCacheStats total;
  for (const auto& shard : shards_) {
    util::ScopedLock lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.pages_flushed += shard->stats.pages_flushed;
    total.flush_stalls += shard->stats.flush_stalls;
  }
  return total;
}

void BufferCache::ResetStats() {
  for (auto& shard : shards_) {
    util::ScopedLock lock(shard->mu);
    shard->stats = BufferCacheStats();
  }
}

size_t BufferCache::cached_pages() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    util::ScopedLock lock(shard->mu);
    total += shard->frame_of_page.size();
  }
  return total;
}

}  // namespace mbq::storage
