#include "storage/buffer_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace mbq::storage {

PageRef::PageRef(BufferCache* cache, size_t frame)
    : cache_(cache), frame_(frame) {
  cache_->Pin(frame_);
}

PageRef::~PageRef() { Release(); }

PageRef::PageRef(PageRef&& other) noexcept
    : cache_(other.cache_), frame_(other.frame_) {
  other.cache_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    frame_ = other.frame_;
    other.cache_ = nullptr;
  }
  return *this;
}

void PageRef::Release() {
  if (cache_ != nullptr) {
    cache_->Unpin(frame_);
    cache_ = nullptr;
  }
}

uint8_t* PageRef::data() {
  MBQ_CHECK(cache_ != nullptr);
  return cache_->frames_[frame_].data.data();
}

const uint8_t* PageRef::data() const {
  MBQ_CHECK(cache_ != nullptr);
  return cache_->frames_[frame_].data.data();
}

PageId PageRef::page_id() const {
  MBQ_CHECK(cache_ != nullptr);
  return cache_->frames_[frame_].page_id;
}

void PageRef::MarkDirty() {
  MBQ_CHECK(cache_ != nullptr);
  BufferCache::Frame& frame = cache_->frames_[frame_];
  if (cache_->options_.write_policy == WritePolicy::kWriteThrough) {
    Status st = cache_->disk_->WritePage(frame.page_id, frame.data.data());
    MBQ_CHECK(st.ok());
    ++cache_->stats_.pages_flushed;
  } else {
    frame.dirty = true;
  }
}

BufferCache::BufferCache(SimulatedDisk* disk, BufferCacheOptions options)
    : disk_(disk), options_(options) {
  MBQ_CHECK(options_.capacity_pages > 0);
  frames_.resize(options_.capacity_pages);
  free_frames_.reserve(options_.capacity_pages);
  for (size_t i = 0; i < options_.capacity_pages; ++i) {
    frames_[i].data.resize(kPageSize);
    free_frames_.push_back(options_.capacity_pages - 1 - i);
  }
}

void BufferCache::Touch(size_t frame) {
  Frame& f = frames_[frame];
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  if (f.pins == 0) {
    lru_.push_front(frame);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

void BufferCache::Pin(size_t frame) {
  Frame& f = frames_[frame];
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  ++f.pins;
}

void BufferCache::Unpin(size_t frame) {
  Frame& f = frames_[frame];
  MBQ_CHECK(f.pins > 0);
  --f.pins;
  if (f.pins == 0) {
    lru_.push_front(frame);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

Status BufferCache::WriteBack(size_t frame) {
  Frame& f = frames_[frame];
  if (f.dirty) {
    MBQ_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.data()));
    f.dirty = false;
    ++stats_.pages_flushed;
  }
  return Status::OK();
}

Result<size_t> BufferCache::AcquireFrame() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_.empty()) {
    return Status::FailedPrecondition(
        "buffer cache exhausted: all frames pinned");
  }
  // Prefer evicting a clean page (cheap). If none is clean and the
  // flush-all policy is on, flush the entire dirty set in one stall.
  size_t victim = lru_.back();
  if (frames_[victim].dirty && options_.flush_all_when_full) {
    ++stats_.flush_stalls;
    MBQ_RETURN_IF_ERROR(FlushAll());
  }
  victim = lru_.back();
  lru_.pop_back();
  frames_[victim].in_lru = false;
  MBQ_RETURN_IF_ERROR(WriteBack(victim));
  frame_of_page_.erase(frames_[victim].page_id);
  frames_[victim].page_id = kInvalidPageId;
  ++stats_.evictions;
  return victim;
}

Result<PageRef> BufferCache::GetPage(PageId id) {
  auto it = frame_of_page_.find(id);
  if (it != frame_of_page_.end()) {
    ++stats_.hits;
    Touch(it->second);
    return PageRef(this, it->second);
  }
  ++stats_.misses;
  MBQ_ASSIGN_OR_RETURN(size_t frame, AcquireFrame());
  Frame& f = frames_[frame];
  Status st = disk_->ReadPage(id, f.data.data());
  if (!st.ok()) {
    free_frames_.push_back(frame);
    return st;
  }
  f.page_id = id;
  f.dirty = false;
  frame_of_page_[id] = frame;
  return PageRef(this, frame);
}

Result<PageRef> BufferCache::GetPageForInit(PageId id) {
  auto it = frame_of_page_.find(id);
  if (it != frame_of_page_.end()) {
    ++stats_.hits;
    Touch(it->second);
    return PageRef(this, it->second);
  }
  MBQ_ASSIGN_OR_RETURN(size_t frame, AcquireFrame());
  Frame& f = frames_[frame];
  std::fill(f.data.begin(), f.data.end(), 0);
  f.page_id = id;
  f.dirty = options_.write_policy == WritePolicy::kWriteBack;
  frame_of_page_[id] = frame;
  return PageRef(this, frame);
}

Result<PageRef> BufferCache::NewPage() {
  PageId id = disk_->AllocatePage();
  MBQ_ASSIGN_OR_RETURN(size_t frame, AcquireFrame());
  Frame& f = frames_[frame];
  std::fill(f.data.begin(), f.data.end(), 0);
  f.page_id = id;
  f.dirty = options_.write_policy == WritePolicy::kWriteBack;
  frame_of_page_[id] = frame;
  return PageRef(this, frame);
}

Status BufferCache::FlushAll() {
  // Elevator flush: write dirty pages in ascending page order so the
  // device sees one mostly-sequential sweep.
  std::vector<std::pair<PageId, size_t>> dirty;
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].page_id != kInvalidPageId && frames_[i].dirty) {
      dirty.emplace_back(frames_[i].page_id, i);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  for (const auto& [page, frame] : dirty) {
    MBQ_RETURN_IF_ERROR(WriteBack(frame));
  }
  return Status::OK();
}

Status BufferCache::EvictAll() {
  MBQ_RETURN_IF_ERROR(FlushAll());
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId || f.pins > 0) continue;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    frame_of_page_.erase(f.page_id);
    f.page_id = kInvalidPageId;
    free_frames_.push_back(i);
  }
  return Status::OK();
}

}  // namespace mbq::storage
