#ifndef MBQ_STORAGE_WAL_H_
#define MBQ_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "storage/simulated_disk.h"
#include "util/result.h"

namespace mbq::storage {

/// Append-only redo log used by the record-store engine's transactions.
///
/// Records are length-prefixed byte strings packed contiguously across
/// pages on a dedicated SimulatedDisk region. Appends are buffered in
/// memory; Sync() makes them durable (and charges the disk). Replay()
/// iterates only the durable prefix, which is what a crash would preserve.
class Wal {
 public:
  explicit Wal(SimulatedDisk* disk);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Buffers a record; returns its log sequence number (0-based).
  uint64_t Append(const std::vector<uint8_t>& payload);

  /// Writes all buffered bytes to disk.
  Status Sync();

  /// Invokes `fn(lsn, payload)` for every durable record in order.
  Status Replay(
      const std::function<Status(uint64_t, const std::vector<uint8_t>&)>& fn)
      const;

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t durable_bytes() const { return durable_bytes_; }
  /// Number of Sync() calls that reached the disk (fsync-equivalents).
  uint64_t syncs() const { return syncs_; }
  /// Log pages written across all syncs (a page rewritten by two syncs
  /// counts twice, as on a real device).
  uint64_t pages_written() const { return pages_written_; }

  /// Discards the durable tail after byte offset 0 — a fresh log. (The
  /// nodestore truncates after a checkpoint.)
  void Reset();

 private:
  SimulatedDisk* disk_;
  std::vector<PageId> pages_;       // log pages in order
  std::vector<uint8_t> buffer_;     // full log image (durable + pending)
  uint64_t durable_bytes_ = 0;
  uint64_t next_lsn_ = 0;
  uint64_t syncs_ = 0;
  uint64_t pages_written_ = 0;
  std::vector<uint64_t> record_offsets_;  // byte offset of each record
};

}  // namespace mbq::storage

#endif  // MBQ_STORAGE_WAL_H_
