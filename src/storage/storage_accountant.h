#ifndef MBQ_STORAGE_STORAGE_ACCOUNTANT_H_
#define MBQ_STORAGE_STORAGE_ACCOUNTANT_H_

#include <cstdint>
#include <vector>

#include "storage/buffer_cache.h"
#include "storage/extent_allocator.h"
#include "util/result.h"

namespace mbq::storage {

/// Maps the engine's logical structures (value sets, adjacency files,
/// object tables) onto disk pages and charges the I/O they would incur.
///
/// The engine proper keeps its bitmaps in memory — exactly as the real
/// system does once data is cached — but every byte logically written
/// during load passes through the extent allocator and buffer cache here
/// (so cache-full flush stalls and extent fragmentation behave like the
/// paper's Figure 3), and every byte logically read during a query touches
/// its pages (so cold-cache queries pay disk latency).
class StorageAccountant {
 public:
  StorageAccountant(BufferCache* cache,
                    ExtentAllocator* extents);

  /// Registers a new logical stream (one structure). Returns its id.
  uint32_t NewStream();

  /// Appends `bytes` logical bytes to `stream`, writing any completed
  /// pages through the cache. Returns the stream offset of the first
  /// appended byte.
  Result<uint64_t> AppendBytes(uint32_t stream, uint64_t bytes);

  /// Touches the pages covering [offset, offset+bytes) of `stream` as a
  /// read; cold pages charge disk reads through the cache.
  Status TouchRead(uint32_t stream, uint64_t offset, uint64_t bytes);

  /// Touches the pages covering [offset, offset+bytes) of `stream` as a
  /// read-modify-write: cold pages charge reads, and every touched page
  /// is dirtied (written back on flush/eviction).
  Status TouchWrite(uint32_t stream, uint64_t offset, uint64_t bytes);

  /// Flushes every partially-filled tail page.
  Status Finalize();

  uint64_t StreamBytes(uint32_t stream) const;
  uint64_t TotalBytes() const;

 private:
  struct Stream {
    std::vector<PageId> pages;
    uint64_t bytes = 0;
  };

  // The page holding stream offset `off`, allocating if needed.
  Result<PageId> PageFor(uint32_t stream, uint64_t off);

  BufferCache* cache_;
  ExtentAllocator* extents_;
  std::vector<Stream> streams_;
};

}  // namespace mbq::storage

#endif  // MBQ_STORAGE_STORAGE_ACCOUNTANT_H_
