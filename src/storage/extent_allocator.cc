#include "storage/extent_allocator.h"

#include "util/logging.h"

namespace mbq::storage {

ExtentAllocator::ExtentAllocator(SimulatedDisk* disk, uint32_t extent_pages)
    : disk_(disk), extent_pages_(extent_pages) {
  MBQ_CHECK(extent_pages_ > 0);
  // Extent directory page at the front of the device.
  directory_page_ = disk_->AllocatePage();
}

PageId ExtentAllocator::AllocatePage(uint32_t stream) {
  StreamState& state = streams_[stream];
  if (state.remaining_in_extent == 0) {
    // Claim a contiguous run from the disk tail: SimulatedDisk allocates
    // sequentially, so the run occupies consecutive page ids.
    PageId first = disk_->AllocatePage();
    for (uint32_t i = 1; i < extent_pages_; ++i) disk_->AllocatePage();
    ++extents_allocated_;
    // Record the extent in the directory — a seek back to the front of
    // the device. This is why tiny extents are fast at first but degrade
    // as the database (and the directory round trips) grow.
    directory_.assign(kPageSize, 0);
    Status st = disk_->WritePage(directory_page_, directory_.data());
    MBQ_CHECK(st.ok());
    state.next_page = first;
    state.remaining_in_extent = extent_pages_;
  }
  PageId page = state.next_page++;
  --state.remaining_in_extent;
  state.pages.push_back(page);
  return page;
}

const std::vector<PageId>& ExtentAllocator::StreamPages(uint32_t stream) const {
  static const std::vector<PageId> kEmpty;
  auto it = streams_.find(stream);
  return it == streams_.end() ? kEmpty : it->second.pages;
}

}  // namespace mbq::storage
