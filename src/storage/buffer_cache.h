#ifndef MBQ_STORAGE_BUFFER_CACHE_H_
#define MBQ_STORAGE_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "storage/simulated_disk.h"
#include "util/result.h"

namespace mbq::storage {

/// How dirty pages reach the disk.
enum class WritePolicy {
  /// Dirty pages are written on eviction or explicit flush. With
  /// `flush_all_when_full` this reproduces the Sparksee-style stall: the
  /// cache fills, then everything is flushed at once (paper Figure 3).
  kWriteBack,
  /// Every write is immediately propagated, like Neo4j's import tool that
  /// "writes continuously and concurrently to disk" (paper Figure 2).
  kWriteThrough,
};

struct BufferCacheOptions {
  /// Number of page frames held in memory.
  size_t capacity_pages = 4096;
  WritePolicy write_policy = WritePolicy::kWriteBack;
  /// Under kWriteBack: when no clean frame can be evicted, flush every
  /// dirty page in one stall instead of writing back a single victim.
  bool flush_all_when_full = false;
};

struct BufferCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t pages_flushed = 0;
  /// Number of whole-cache flush stalls (flush_all_when_full events).
  uint64_t flush_stalls = 0;
};

class BufferCache;

/// RAII pin on a cached page. The page cannot be evicted while a PageRef
/// to it is alive. Call MarkDirty() after modifying the data.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferCache* cache, size_t frame);
  ~PageRef();

  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  uint8_t* data();
  const uint8_t* data() const;
  PageId page_id() const;
  void MarkDirty();
  bool valid() const { return cache_ != nullptr; }

 private:
  void Release();

  BufferCache* cache_ = nullptr;
  size_t frame_ = 0;
};

/// A fixed-capacity LRU page cache over a SimulatedDisk.
///
/// Single-threaded by design (both engines in this reproduction are
/// embedded and driven by one session, matching the paper's setup).
class BufferCache {
 public:
  BufferCache(SimulatedDisk* disk, BufferCacheOptions options);

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Pins page `id`, reading it from disk on a miss.
  Result<PageRef> GetPage(PageId id);

  /// Allocates a fresh zeroed page on disk and pins it (no disk read).
  Result<PageRef> NewPage();

  /// Pins page `id` without reading it from disk — for pages the caller
  /// has just allocated (e.g. via an ExtentAllocator) and will fully
  /// overwrite. The frame starts zeroed.
  Result<PageRef> GetPageForInit(PageId id);

  /// Writes all dirty pages back to disk.
  Status FlushAll();

  /// Drops every unpinned frame (dirty ones are flushed first). Simulates
  /// a cold cache / restart without re-opening the store.
  Status EvictAll();

  const BufferCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferCacheStats(); }
  size_t capacity_pages() const { return options_.capacity_pages; }
  size_t cached_pages() const { return frame_of_page_.size(); }
  SimulatedDisk* disk() { return disk_; }

 private:
  friend class PageRef;

  struct Frame {
    PageId page_id = kInvalidPageId;
    std::vector<uint8_t> data;
    bool dirty = false;
    uint32_t pins = 0;
    // Position in lru_ when unpinned; lru_.end() sentinel handled via flag.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  Result<size_t> AcquireFrame();  // frame index with no resident page
  Status WriteBack(size_t frame);
  void Touch(size_t frame);
  void Pin(size_t frame);
  void Unpin(size_t frame);

  SimulatedDisk* disk_;
  BufferCacheOptions options_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> frame_of_page_;
  std::list<size_t> lru_;  // front = most recently used
  BufferCacheStats stats_;
};

}  // namespace mbq::storage

#endif  // MBQ_STORAGE_BUFFER_CACHE_H_
