#ifndef MBQ_STORAGE_BUFFER_CACHE_H_
#define MBQ_STORAGE_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/simulated_disk.h"
#include "util/lock_rank.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace mbq::storage {

/// How dirty pages reach the disk.
enum class WritePolicy {
  /// Dirty pages are written on eviction or explicit flush. With
  /// `flush_all_when_full` this reproduces the Sparksee-style stall: the
  /// cache fills, then everything is flushed at once (paper Figure 3).
  kWriteBack,
  /// Every write is immediately propagated, like Neo4j's import tool that
  /// "writes continuously and concurrently to disk" (paper Figure 2).
  kWriteThrough,
};

struct BufferCacheOptions {
  /// Number of page frames held in memory.
  size_t capacity_pages = 4096;
  WritePolicy write_policy = WritePolicy::kWriteBack;
  /// Under kWriteBack: when no clean frame can be evicted, flush every
  /// dirty page in one stall instead of writing back a single victim.
  bool flush_all_when_full = false;
  /// Number of independently locked shards. 0 (the default) picks one
  /// shard per 256 pages of capacity, capped at 16 — small caches stay
  /// single-shard, so their hit/miss/eviction accounting is exactly the
  /// classic single-LRU behaviour the storage tests pin down.
  size_t shards = 0;
};

struct BufferCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t pages_flushed = 0;
  /// Number of whole-shard flush stalls (flush_all_when_full events).
  uint64_t flush_stalls = 0;
};

class BufferCache;

/// RAII pin on a cached page. The page cannot be evicted while a PageRef
/// to it is alive. Call MarkDirty() after modifying the data.
class PageRef {
 public:
  PageRef() = default;
  ~PageRef();

  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  uint8_t* data();
  const uint8_t* data() const;
  PageId page_id() const;
  void MarkDirty();
  bool valid() const { return cache_ != nullptr; }

 private:
  friend class BufferCache;
  /// Adopts a pin the cache already took under the shard lock.
  PageRef(BufferCache* cache, size_t shard, size_t frame)
      : cache_(cache), shard_(shard), frame_(frame) {}

  void Release();

  BufferCache* cache_ = nullptr;
  size_t shard_ = 0;
  size_t frame_ = 0;
};

/// A fixed-capacity LRU page cache over a SimulatedDisk, sharded by page
/// id so concurrent readers only contend within a shard.
///
/// Thread-safety: any number of threads may call GetPage concurrently
/// (the reader path the parallel executor uses). Mutations of page
/// contents follow the engines' single-writer rule — a writer is never
/// concurrent with readers — so MarkDirty and the flush/evict entry
/// points need no cross-page coordination beyond the shard locks.
class BufferCache {
 public:
  BufferCache(SimulatedDisk* disk, BufferCacheOptions options);

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Pins page `id`, reading it from disk on a miss.
  Result<PageRef> GetPage(PageId id);

  /// Allocates a fresh zeroed page on disk and pins it (no disk read).
  Result<PageRef> NewPage();

  /// Pins page `id` without reading it from disk — for pages the caller
  /// has just allocated (e.g. via an ExtentAllocator) and will fully
  /// overwrite. The frame starts zeroed.
  Result<PageRef> GetPageForInit(PageId id);

  /// Writes all dirty pages back to disk.
  Status FlushAll();

  /// Drops every unpinned frame (dirty ones are flushed first). Simulates
  /// a cold cache / restart without re-opening the store.
  Status EvictAll();

  /// Aggregated counters across all shards (a consistent-enough snapshot
  /// for reporting; each shard is read under its lock).
  BufferCacheStats stats() const;
  void ResetStats();
  size_t capacity_pages() const { return options_.capacity_pages; }
  size_t cached_pages() const;
  size_t num_shards() const { return shards_.size(); }
  SimulatedDisk* disk() { return disk_; }

 private:
  friend class PageRef;

  struct Frame {
    PageId page_id = kInvalidPageId;
    std::vector<uint8_t> data;
    bool dirty = false;
    uint32_t pins = 0;
    // Position in lru when unpinned; end() sentinel handled via flag.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// LockRank::kBufferCache: a miss reads the disk (LockRank::kDisk)
  /// while the shard lock is held, so the shard lock ranks above it.
  /// `frames` is deliberately unguarded: frame *contents* follow the pin
  /// protocol — a pinned frame cannot be evicted or resized, so
  /// PageRef::data()/page_id() read it without the shard lock; all frame
  /// *bookkeeping* (pins, dirty, lru linkage) happens under `mu`.
  struct Shard {
    mutable util::RankedMutex mu{util::LockRank::kBufferCache,
                                 "storage.buffercache.shard"};
    std::vector<Frame> frames;
    std::vector<size_t> free_frames MBQ_GUARDED_BY(mu);
    std::unordered_map<PageId, size_t> frame_of_page MBQ_GUARDED_BY(mu);
    std::list<size_t> lru MBQ_GUARDED_BY(mu);  // front = most recently used
    BufferCacheStats stats MBQ_GUARDED_BY(mu);
  };

  size_t ShardOf(PageId id) const { return id % shards_.size(); }
  /// Frame with no resident page; may evict.
  Result<size_t> AcquireFrameLocked(Shard& s) MBQ_REQUIRES(s.mu);
  Status WriteBackLocked(Shard& s, size_t frame) MBQ_REQUIRES(s.mu);
  Status FlushShardLocked(Shard& s) MBQ_REQUIRES(s.mu);
  void TouchLocked(Shard& s, size_t frame) MBQ_REQUIRES(s.mu);
  /// Pin + wrap: takes the shard's index alongside the locked shard.
  PageRef PinLocked(Shard& s, size_t shard_index, size_t frame)
      MBQ_REQUIRES(s.mu);
  void Unpin(size_t shard, size_t frame);

  SimulatedDisk* disk_;
  BufferCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mbq::storage

#endif  // MBQ_STORAGE_BUFFER_CACHE_H_
