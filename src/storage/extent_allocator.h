#ifndef MBQ_STORAGE_EXTENT_ALLOCATOR_H_
#define MBQ_STORAGE_EXTENT_ALLOCATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/simulated_disk.h"

namespace mbq::storage {

/// Allocates disk pages to logical streams in contiguous extents.
///
/// The bitmap-store engine stores each structure (a value set, an
/// adjacency list file, ...) as a stream of pages. With a large extent
/// size, a stream's pages stay contiguous on disk, so scans are sequential
/// (no seek charge in SimulatedDisk). With a small extent size, concurrent
/// streams interleave and accesses become seek-bound as the database grows
/// — the behaviour the paper reports for Sparksee's extent-size knob
/// ("with lower extent sizes, insertions are fast initially but slow down
/// as the database size grows").
class ExtentAllocator {
 public:
  /// `extent_pages` pages per extent (e.g. 8 pages = 64 KiB, the paper's
  /// Sparksee setting).
  ExtentAllocator(SimulatedDisk* disk, uint32_t extent_pages);

  /// Returns the next page for `stream`, allocating a new extent when the
  /// stream's current extent is exhausted.
  PageId AllocatePage(uint32_t stream);

  /// All pages ever allocated to `stream`, in order.
  const std::vector<PageId>& StreamPages(uint32_t stream) const;

  uint32_t extent_pages() const { return extent_pages_; }
  uint64_t extents_allocated() const { return extents_allocated_; }

 private:
  struct StreamState {
    std::vector<PageId> pages;
    PageId next_page = kInvalidPageId;
    uint32_t remaining_in_extent = 0;
  };

  SimulatedDisk* disk_;
  uint32_t extent_pages_;
  uint64_t extents_allocated_ = 0;
  PageId directory_page_ = kInvalidPageId;
  std::vector<uint8_t> directory_;
  std::unordered_map<uint32_t, StreamState> streams_;
};

}  // namespace mbq::storage

#endif  // MBQ_STORAGE_EXTENT_ALLOCATOR_H_
