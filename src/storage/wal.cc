#include "storage/wal.h"

#include <cstring>

namespace mbq::storage {

Wal::Wal(SimulatedDisk* disk) : disk_(disk) {}

uint64_t Wal::Append(const std::vector<uint8_t>& payload) {
  record_offsets_.push_back(buffer_.size());
  uint32_t size = static_cast<uint32_t>(payload.size());
  const uint8_t* size_bytes = reinterpret_cast<const uint8_t*>(&size);
  buffer_.insert(buffer_.end(), size_bytes, size_bytes + sizeof(size));
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  return next_lsn_++;
}

Status Wal::Sync() {
  // Write every page that holds bytes in [durable_bytes_, buffer_.size()).
  if (durable_bytes_ == buffer_.size()) return Status::OK();
  uint64_t first_page = durable_bytes_ / kPageSize;
  uint64_t last_page = (buffer_.size() + kPageSize - 1) / kPageSize;
  while (pages_.size() < last_page) {
    pages_.push_back(disk_->AllocatePage());
  }
  std::vector<uint8_t> page(kPageSize, 0);
  for (uint64_t p = first_page; p < last_page; ++p) {
    uint64_t begin = p * kPageSize;
    uint64_t end = std::min<uint64_t>(begin + kPageSize, buffer_.size());
    std::fill(page.begin(), page.end(), 0);
    std::memcpy(page.data(), buffer_.data() + begin, end - begin);
    MBQ_RETURN_IF_ERROR(disk_->WritePage(pages_[p], page.data()));
    ++pages_written_;
  }
  ++syncs_;
  durable_bytes_ = buffer_.size();
  return Status::OK();
}

Status Wal::Replay(
    const std::function<Status(uint64_t, const std::vector<uint8_t>&)>& fn)
    const {
  uint64_t lsn = 0;
  for (uint64_t offset : record_offsets_) {
    if (offset + sizeof(uint32_t) > durable_bytes_) break;
    uint32_t size = 0;
    std::memcpy(&size, buffer_.data() + offset, sizeof(size));
    if (offset + sizeof(uint32_t) + size > durable_bytes_) break;
    std::vector<uint8_t> payload(
        buffer_.begin() + offset + sizeof(uint32_t),
        buffer_.begin() + offset + sizeof(uint32_t) + size);
    MBQ_RETURN_IF_ERROR(fn(lsn, payload));
    ++lsn;
  }
  return Status::OK();
}

void Wal::Reset() {
  buffer_.clear();
  record_offsets_.clear();
  durable_bytes_ = 0;
  next_lsn_ = 0;
}

}  // namespace mbq::storage
