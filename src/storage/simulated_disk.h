#ifndef MBQ_STORAGE_SIMULATED_DISK_H_
#define MBQ_STORAGE_SIMULATED_DISK_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/clock.h"
#include "util/lock_rank.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mbq::storage {

/// Fixed page size used by every store in the library.
inline constexpr size_t kPageSize = 8192;

using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = ~0ULL;

/// Latency model for the backing device. Defaults approximate the paper's
/// testbed (a commodity non-SSD HDD): a large positional (seek) cost for
/// non-sequential access plus a per-page transfer cost.
struct DiskProfile {
  uint64_t seek_nanos = 4'000'000;        // 4 ms average seek+rotation
  uint64_t read_page_nanos = 60'000;      // ~130 MB/s sequential read
  uint64_t write_page_nanos = 70'000;     // slightly slower writes
  /// Accesses within this many pages of the previous access count as
  /// sequential and skip the seek charge.
  uint64_t sequential_window = 16;

  /// An SSD-like profile (used by tests that want I/O cost out of the way).
  static DiskProfile Fast() {
    return DiskProfile{/*seek_nanos=*/20'000, /*read_page_nanos=*/4'000,
                       /*write_page_nanos=*/6'000, /*sequential_window=*/512};
  }
  /// Zero-latency profile for pure-logic tests.
  static DiskProfile Instant() { return DiskProfile{0, 0, 0, 1}; }
};

/// Cumulative I/O counters.
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t seeks = 0;
  uint64_t busy_nanos = 0;  // total simulated device time charged
};

/// An in-memory array of pages that charges HDD-like latency to a Clock.
///
/// The paper's import-time "jumps" (Figures 2 and 3) and the cold-cache
/// discussion in Section 4 are disk effects; modelling the device lets the
/// benches reproduce those shapes deterministically at laptop scale.
///
/// Thread-safe: one internal mutex serializes accesses, modelling a
/// single-head device — concurrent readers queue at the disk exactly as
/// they would at real hardware.
class SimulatedDisk {
 public:
  /// Charges latency to `clock` (typically a VirtualClock owned by the
  /// caller, so logic time and device time are separable).
  SimulatedDisk(DiskProfile profile, Clock* clock);

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  /// Appends a zeroed page and returns its id.
  PageId AllocatePage();

  /// Copies page `id` into `out` (must hold kPageSize bytes).
  Status ReadPage(PageId id, uint8_t* out);

  /// Overwrites page `id` from `data` (kPageSize bytes).
  Status WritePage(PageId id, const uint8_t* data);

  /// Fault injection: after `ops` further successful reads/writes, every
  /// subsequent access fails with IoError until ClearFailure(). Lets
  /// tests verify that errors propagate as Status through every layer
  /// instead of crashing.
  void InjectFailureAfter(uint64_t ops) {
    util::ScopedLock lock(mu_);
    fail_after_ = ops;
    failing_ = false;
  }
  void ClearFailure() {
    util::ScopedLock lock(mu_);
    fail_after_ = UINT64_MAX;
    failing_ = false;
  }

  uint64_t num_pages() const {
    util::ScopedLock lock(mu_);
    return pages_.size();
  }
  /// Snapshot of the cumulative counters (copied under the lock).
  DiskStats stats() const {
    util::ScopedLock lock(mu_);
    return stats_;
  }
  void ResetStats() {
    util::ScopedLock lock(mu_);
    stats_ = DiskStats();
  }
  const DiskProfile& profile() const { return profile_; }

  /// Total bytes held (the simulated on-disk footprint).
  uint64_t SizeBytes() const {
    util::ScopedLock lock(mu_);
    return pages_.size() * kPageSize;
  }

 private:
  void Charge(PageId id, uint64_t transfer_nanos) MBQ_REQUIRES(mu_);
  Status CheckFailure() MBQ_REQUIRES(mu_);

  DiskProfile profile_;
  Clock* clock_;
  /// LockRank::kDisk, the innermost storage lock: critical sections touch
  /// only the page array, the counters, and the (thread-safe) clock.
  mutable util::RankedMutex mu_{util::LockRank::kDisk, "storage.disk"};
  std::vector<std::unique_ptr<uint8_t[]>> pages_ MBQ_GUARDED_BY(mu_);
  PageId last_page_ MBQ_GUARDED_BY(mu_) = kInvalidPageId;
  DiskStats stats_ MBQ_GUARDED_BY(mu_);
  uint64_t fail_after_ MBQ_GUARDED_BY(mu_) = UINT64_MAX;
  bool failing_ MBQ_GUARDED_BY(mu_) = false;
};

}  // namespace mbq::storage

#endif  // MBQ_STORAGE_SIMULATED_DISK_H_
