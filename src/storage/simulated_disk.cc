#include "storage/simulated_disk.h"

namespace mbq::storage {

SimulatedDisk::SimulatedDisk(DiskProfile profile, Clock* clock)
    : profile_(profile), clock_(clock) {}

PageId SimulatedDisk::AllocatePage() {
  auto page = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  util::ScopedLock lock(mu_);
  pages_.push_back(std::move(page));
  return pages_.size() - 1;
}

void SimulatedDisk::Charge(PageId id, uint64_t transfer_nanos) {
  uint64_t nanos = transfer_nanos;
  bool sequential =
      last_page_ != kInvalidPageId &&
      (id >= last_page_ ? id - last_page_ : last_page_ - id) <=
          profile_.sequential_window;
  if (!sequential) {
    nanos += profile_.seek_nanos;
    ++stats_.seeks;
  }
  last_page_ = id;
  stats_.busy_nanos += nanos;
  clock_->AdvanceNanos(nanos);
}

Status SimulatedDisk::CheckFailure() {
  if (failing_) return Status::IoError("injected disk failure");
  if (fail_after_ == 0) {
    failing_ = true;
    return Status::IoError("injected disk failure");
  }
  if (fail_after_ != UINT64_MAX) --fail_after_;
  return Status::OK();
}

Status SimulatedDisk::ReadPage(PageId id, uint8_t* out) {
  util::ScopedLock lock(mu_);
  MBQ_RETURN_IF_ERROR(CheckFailure());
  if (id >= pages_.size()) {
    return Status::OutOfRange("read past end of disk: page " +
                              std::to_string(id));
  }
  Charge(id, profile_.read_page_nanos);
  ++stats_.page_reads;
  std::memcpy(out, pages_[id].get(), kPageSize);
  return Status::OK();
}

Status SimulatedDisk::WritePage(PageId id, const uint8_t* data) {
  util::ScopedLock lock(mu_);
  MBQ_RETURN_IF_ERROR(CheckFailure());
  if (id >= pages_.size()) {
    return Status::OutOfRange("write past end of disk: page " +
                              std::to_string(id));
  }
  Charge(id, profile_.write_page_nanos);
  ++stats_.page_writes;
  std::memcpy(pages_[id].get(), data, kPageSize);
  return Status::OK();
}

}  // namespace mbq::storage
