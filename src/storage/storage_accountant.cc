#include "storage/storage_accountant.h"

#include "util/logging.h"

namespace mbq::storage {





StorageAccountant::StorageAccountant(BufferCache* cache,
                                     ExtentAllocator* extents)
    : cache_(cache), extents_(extents) {}

uint32_t StorageAccountant::NewStream() {
  streams_.emplace_back();
  return static_cast<uint32_t>(streams_.size() - 1);
}

Result<PageId> StorageAccountant::PageFor(uint32_t stream, uint64_t off) {
  Stream& s = streams_[stream];
  uint64_t page_index = off / kPageSize;
  while (s.pages.size() <= page_index) {
    s.pages.push_back(extents_->AllocatePage(stream));
  }
  return s.pages[page_index];
}

Result<uint64_t> StorageAccountant::AppendBytes(uint32_t stream,
                                                uint64_t bytes) {
  MBQ_CHECK(stream < streams_.size());
  Stream& s = streams_[stream];
  uint64_t start = s.bytes;
  uint64_t end = start + bytes;
  // Write through the cache page by page; a page is marked dirty once per
  // append that touches it (volume is what matters for the flush model).
  for (uint64_t off = start; off < end;
       off = (off / kPageSize + 1) * kPageSize) {
    MBQ_ASSIGN_OR_RETURN(PageId id, PageFor(stream, off));
    MBQ_ASSIGN_OR_RETURN(PageRef ref, cache_->GetPageForInit(id));
    ref.MarkDirty();
  }
  s.bytes = end;
  return start;
}

Status StorageAccountant::TouchRead(uint32_t stream, uint64_t offset,
                                    uint64_t bytes) {
  MBQ_CHECK(stream < streams_.size());
  Stream& s = streams_[stream];
  if (bytes == 0 || s.pages.empty()) return Status::OK();
  uint64_t first = offset / kPageSize;
  uint64_t last = (offset + bytes - 1) / kPageSize;
  if (first >= s.pages.size()) return Status::OK();
  last = std::min<uint64_t>(last, s.pages.size() - 1);
  for (uint64_t p = first; p <= last; ++p) {
    MBQ_ASSIGN_OR_RETURN(PageRef ref, cache_->GetPage(s.pages[p]));
    (void)ref;
  }
  return Status::OK();
}

Status StorageAccountant::TouchWrite(uint32_t stream, uint64_t offset,
                                     uint64_t bytes) {
  MBQ_CHECK(stream < streams_.size());
  Stream& s = streams_[stream];
  if (bytes == 0 || s.pages.empty()) return Status::OK();
  uint64_t first = offset / kPageSize;
  uint64_t last = (offset + bytes - 1) / kPageSize;
  if (first >= s.pages.size()) return Status::OK();
  last = std::min<uint64_t>(last, s.pages.size() - 1);
  for (uint64_t p = first; p <= last; ++p) {
    MBQ_ASSIGN_OR_RETURN(PageRef ref, cache_->GetPage(s.pages[p]));
    ref.MarkDirty();
  }
  return Status::OK();
}

Status StorageAccountant::Finalize() { return cache_->FlushAll(); }

uint64_t StorageAccountant::StreamBytes(uint32_t stream) const {
  MBQ_CHECK(stream < streams_.size());
  return streams_[stream].bytes;
}

uint64_t StorageAccountant::TotalBytes() const {
  uint64_t total = 0;
  for (const Stream& s : streams_) total += s.bytes;
  return total;
}

}  // namespace mbq::storage
