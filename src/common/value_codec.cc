#include "common/value_codec.h"

#include <cstring>

namespace mbq::common {

namespace {

template <typename T>
void AppendPod(std::vector<uint8_t>* out, T value) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
Result<T> ReadPod(const std::vector<uint8_t>& data, size_t* offset) {
  if (*offset + sizeof(T) > data.size()) {
    return Status::Corruption("encoded value truncated");
  }
  T value;
  std::memcpy(&value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return value;
}

}  // namespace

void EncodeValue(const Value& value, std::vector<uint8_t>* out) {
  AppendPod<uint8_t>(out, static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      AppendPod<uint8_t>(out, value.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      AppendPod<int64_t>(out, value.AsInt());
      break;
    case ValueType::kDouble:
      AppendPod<double>(out, value.AsDouble());
      break;
    case ValueType::kString: {
      const std::string& s = value.AsString();
      AppendPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
      out->insert(out->end(), s.begin(), s.end());
      break;
    }
  }
}

Result<Value> DecodeValue(const std::vector<uint8_t>& data, size_t* offset) {
  MBQ_ASSIGN_OR_RETURN(uint8_t tag, ReadPod<uint8_t>(data, offset));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      MBQ_ASSIGN_OR_RETURN(uint8_t b, ReadPod<uint8_t>(data, offset));
      return Value::Bool(b != 0);
    }
    case ValueType::kInt: {
      MBQ_ASSIGN_OR_RETURN(int64_t v, ReadPod<int64_t>(data, offset));
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      MBQ_ASSIGN_OR_RETURN(double v, ReadPod<double>(data, offset));
      return Value::Double(v);
    }
    case ValueType::kString: {
      MBQ_ASSIGN_OR_RETURN(uint32_t size, ReadPod<uint32_t>(data, offset));
      if (*offset + size > data.size()) {
        return Status::Corruption("encoded string truncated");
      }
      std::string s(reinterpret_cast<const char*>(data.data() + *offset),
                    size);
      *offset += size;
      return Value::String(std::move(s));
    }
  }
  return Status::Corruption("bad value tag");
}

}  // namespace mbq::common
