#ifndef MBQ_COMMON_IMPORT_PROGRESS_H_
#define MBQ_COMMON_IMPORT_PROGRESS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace mbq::common {

/// Progress report emitted during a batch load — the raw series behind the
/// paper's Figure 2 (Neo4j import) and Figure 3 (Sparksee import) plots.
struct ImportProgress {
  /// "nodes:<type>", "edges:<type>", or a named post-processing step
  /// ("dense-nodes", "index:<label>.<key>").
  std::string phase;
  /// Objects loaded within the current phase.
  uint64_t phase_objects = 0;
  /// Objects loaded since the import started.
  uint64_t total_objects = 0;
  /// Real CPU time spent so far (milliseconds).
  double wall_millis = 0;
  /// Simulated device time charged so far (milliseconds).
  double io_millis = 0;
  /// wall_millis + io_millis: the modelled elapsed import time.
  double elapsed_millis = 0;
};

using ProgressFn = std::function<void(const ImportProgress&)>;

}  // namespace mbq::common

#endif  // MBQ_COMMON_IMPORT_PROGRESS_H_
