#ifndef MBQ_COMMON_VALUE_H_
#define MBQ_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/result.h"

namespace mbq::common {

/// Property data types supported by both engines (a subset common to
/// Neo4j properties and Sparksee attributes, sufficient for the paper's
/// schema: integer ids/counters, tweet text, hashtag strings, booleans,
/// timestamps-as-integers).
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

/// A dynamically-typed property value attached to nodes and edges, and
/// flowing through query results.
class Value {
 public:
  /// Null value.
  Value() : rep_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  ValueType type() const {
    switch (rep_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kBool;
      case 2:
        return ValueType::kInt;
      case 3:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; calling the wrong one is a programmer error
  /// (checked via assertion in std::get).
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Int widened to double; Double as-is. Error otherwise.
  Result<double> ToNumber() const;

  /// Total order used by ORDER BY and index comparisons: null < bool <
  /// int/double (numerically merged) < string.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Display form ("null", "true", "42", "3.5", "abc").
  std::string ToString() const;

  /// Stable hash consistent with operator==.
  size_t Hash() const;

  /// Approximate serialized width in bytes (storage accounting).
  size_t StorageBytes() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace mbq::common

#endif  // MBQ_COMMON_VALUE_H_
