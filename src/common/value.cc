#include "common/value.h"

#include <cmath>
#include <functional>

namespace mbq::common {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

Result<double> Value::ToNumber() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::InvalidArgument(std::string("not a number: ") +
                                     ValueTypeName(type()));
  }
}

namespace {

int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;  // numbers compare across int/double
    case ValueType::kString:
      return 3;
  }
  return 4;
}

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      bool a = AsBool();
      bool b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kInt:
    case ValueType::kDouble: {
      if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
        int64_t a = AsInt();
        int64_t b = other.AsInt();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      double a = type() == ValueType::kInt ? static_cast<double>(AsInt())
                                           : AsDouble();
      double b = other.type() == ValueType::kInt
                     ? static_cast<double>(other.AsInt())
                     : other.AsDouble();
      return Sign(a - b);
    }
    case ValueType::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b9;
    case ValueType::kBool:
      return AsBool() ? 0x517cc1b7u : 0x27220a95u;
    case ValueType::kInt:
      return std::hash<int64_t>()(AsInt());
    case ValueType::kDouble: {
      double d = AsDouble();
      // Hash integral doubles like their int counterparts so that
      // operator== consistency holds across the int/double merge.
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

size_t Value::StorageBytes() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
      return 8;
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return 4 + AsString().size();
  }
  return 1;
}

}  // namespace mbq::common
