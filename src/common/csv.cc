#include "common/csv.h"

#include <memory>

#include "util/string_util.h"

namespace mbq::common {

CsvReader::CsvReader(std::ifstream stream, char sep)
    : stream_(std::make_unique<std::ifstream>(std::move(stream))), sep_(sep) {}

Result<CsvReader> CsvReader::Open(const std::string& path, char sep) {
  std::ifstream stream(path);
  if (!stream.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  CsvReader reader(std::move(stream), sep);
  std::vector<std::string> header;
  if (!reader.ParseRow(&header) || header.empty()) {
    return Status::InvalidArgument("missing CSV header in " + path);
  }
  reader.header_ = std::move(header);
  return reader;
}

Result<size_t> CsvReader::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == column) return i;
  }
  return Status::NotFound("no CSV column named " + column);
}

bool CsvReader::ParseRow(std::vector<std::string>* row) {
  row->clear();
  int c = stream_->get();
  if (c == EOF) return false;
  std::string field;
  bool in_quotes = false;
  bool row_done = false;
  while (!row_done) {
    if (c == EOF) {
      if (in_quotes) {
        status_ = Status::InvalidArgument("unterminated quoted CSV field");
        return false;
      }
      row->push_back(std::move(field));
      return true;
    }
    char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        int peek = stream_->peek();
        if (peek == '"') {
          field += '"';
          stream_->get();
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"' && field.empty()) {
      in_quotes = true;
    } else if (ch == sep_) {
      row->push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      row->push_back(std::move(field));
      row_done = true;
      break;
    } else if (ch == '\r') {
      // swallow; \r\n handled by the \n branch next iteration
    } else {
      field += ch;
    }
    c = stream_->get();
  }
  return true;
}

bool CsvReader::NextRow(std::vector<std::string>* row) {
  if (!status_.ok()) return false;
  if (!ParseRow(row)) return false;
  ++rows_read_;
  if (row->size() != header_.size()) {
    status_ = Status::InvalidArgument(
        "CSV row " + std::to_string(rows_read_) + " has " +
        std::to_string(row->size()) + " fields, header has " +
        std::to_string(header_.size()));
    return false;
  }
  return true;
}

CsvWriter::CsvWriter(std::unique_ptr<std::ofstream> stream, size_t num_columns,
                     char sep)
    : stream_(std::move(stream)), num_columns_(num_columns), sep_(sep) {}

Result<CsvWriter> CsvWriter::Create(const std::string& path,
                                    const std::vector<std::string>& header,
                                    char sep) {
  if (header.empty()) {
    return Status::InvalidArgument("CSV header must be non-empty");
  }
  auto stream = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!stream->is_open()) {
    return Status::IoError("cannot create " + path);
  }
  CsvWriter writer(std::move(stream), header.size(), sep);
  MBQ_RETURN_IF_ERROR(writer.WriteRow(header));
  writer.rows_written_ = 0;  // header doesn't count
  return writer;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (fields.size() != num_columns_) {
    return Status::InvalidArgument("CSV row width mismatch");
  }
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line += sep_;
    line += CsvEscape(fields[i], sep_);
  }
  line += '\n';
  stream_->write(line.data(), static_cast<std::streamsize>(line.size()));
  if (!stream_->good()) return Status::IoError("CSV write failed");
  ++rows_written_;
  return Status::OK();
}

Status CsvWriter::Flush() {
  stream_->flush();
  return stream_->good() ? Status::OK() : Status::IoError("CSV flush failed");
}

}  // namespace mbq::common
