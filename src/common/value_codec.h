#ifndef MBQ_COMMON_VALUE_CODEC_H_
#define MBQ_COMMON_VALUE_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/value.h"

namespace mbq::common {

/// Appends a self-delimiting binary encoding of `value` to `out`:
/// a one-byte type tag followed by the payload (strings are
/// length-prefixed). Used by the write-ahead log and snapshots.
void EncodeValue(const Value& value, std::vector<uint8_t>* out);

/// Decodes a value produced by EncodeValue starting at `data[*offset]`,
/// advancing *offset past it.
Result<Value> DecodeValue(const std::vector<uint8_t>& data, size_t* offset);

}  // namespace mbq::common

#endif  // MBQ_COMMON_VALUE_CODEC_H_
