#ifndef MBQ_COMMON_CSV_H_
#define MBQ_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/result.h"

namespace mbq::common {

/// Streaming CSV reader with RFC-4180-style quoting. The first row is
/// treated as a header. Both engines' batch loaders consume the same CSV
/// files through this reader (the paper loads both systems from the same
/// source files).
class CsvReader {
 public:
  /// Opens `path`; fails if the file cannot be read or has no header.
  static Result<CsvReader> Open(const std::string& path, char sep = ',');

  CsvReader(CsvReader&&) = default;
  CsvReader& operator=(CsvReader&&) = default;

  const std::vector<std::string>& header() const { return header_; }
  /// Index of `column` in the header, or error.
  Result<size_t> ColumnIndex(const std::string& column) const;

  /// Reads the next row into `row` (cleared first). Returns false at EOF.
  /// A malformed row yields an error status via `status()`.
  bool NextRow(std::vector<std::string>* row);

  /// OK unless a malformed row was encountered.
  const Status& status() const { return status_; }
  uint64_t rows_read() const { return rows_read_; }

 private:
  CsvReader(std::ifstream stream, char sep);
  bool ParseRow(std::vector<std::string>* row);

  std::unique_ptr<std::ifstream> stream_;
  char sep_;
  std::vector<std::string> header_;
  Status status_;
  uint64_t rows_read_ = 0;
};

/// CSV writer matching CsvReader's dialect.
class CsvWriter {
 public:
  /// Creates/truncates `path` and writes the header row.
  static Result<CsvWriter> Create(const std::string& path,
                                  const std::vector<std::string>& header,
                                  char sep = ',');

  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  Status WriteRow(const std::vector<std::string>& fields);
  Status Flush();
  uint64_t rows_written() const { return rows_written_; }

 private:
  CsvWriter(std::unique_ptr<std::ofstream> stream, size_t num_columns,
            char sep);

  std::unique_ptr<std::ofstream> stream_;
  size_t num_columns_;
  char sep_;
  uint64_t rows_written_ = 0;
};

}  // namespace mbq::common

#endif  // MBQ_COMMON_CSV_H_
