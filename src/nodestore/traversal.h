#ifndef MBQ_NODESTORE_TRAVERSAL_H_
#define MBQ_NODESTORE_TRAVERSAL_H_

#include <functional>
#include <optional>
#include <vector>

#include "nodestore/graph_db.h"

namespace mbq::nodestore {

/// Traversal order, after Neo4j's traversal framework.
enum class TraversalOrder : uint8_t { kBreadthFirst, kDepthFirst };

/// Node re-visiting policy.
enum class Uniqueness : uint8_t {
  kNodeGlobal,  // visit each node at most once (default)
  kNone,        // paths may revisit nodes (bounded by MaxDepth)
};

/// A path reported to the traversal callback.
struct TraversalPath {
  /// Nodes from the start node to the current end node.
  std::vector<NodeId> nodes;
  /// Relationships along the path (nodes.size() - 1 entries).
  std::vector<RelId> rels;

  NodeId end() const { return nodes.back(); }
  uint32_t depth() const { return static_cast<uint32_t>(rels.size()); }
};

/// Declarative multi-hop expansion over GraphDb — the "traversal
/// framework" alternative to hand-written chain walks that the paper's
/// Discussion section compares against Cypher. Configure, then call
/// Traverse with a start node.
///
///   TraversalDescription td(&db);
///   td.BreadthFirst()
///     .Relationships(follows, Direction::kOutgoing)
///     .MaxDepth(2);
///   td.Traverse(user, [](const TraversalPath& p) { ...; return true; });
class TraversalDescription {
 public:
  explicit TraversalDescription(GraphDb* db) : db_(db) {}

  TraversalDescription& BreadthFirst() {
    order_ = TraversalOrder::kBreadthFirst;
    return *this;
  }
  TraversalDescription& DepthFirst() {
    order_ = TraversalOrder::kDepthFirst;
    return *this;
  }
  /// Adds an allowed (type, direction) expansion. With none registered,
  /// all relationship types expand in both directions.
  TraversalDescription& Relationships(RelTypeId type, Direction dir) {
    expansions_.push_back({type, dir});
    return *this;
  }
  TraversalDescription& MaxDepth(uint32_t depth) {
    max_depth_ = depth;
    return *this;
  }
  TraversalDescription& SetUniqueness(Uniqueness uniqueness) {
    uniqueness_ = uniqueness;
    return *this;
  }
  /// Only report paths of exactly this depth (like Cypher's [*n..n]).
  TraversalDescription& EvaluateAtDepth(uint32_t depth) {
    report_depth_ = depth;
    return *this;
  }

  /// Runs the traversal; `visit` returning false stops it. The start node
  /// is reported at depth 0 (unless EvaluateAtDepth filters it).
  Status Traverse(NodeId start,
                  const std::function<bool(const TraversalPath&)>& visit);

 private:
  struct Expansion {
    RelTypeId type;
    Direction dir;
  };

  GraphDb* db_;
  TraversalOrder order_ = TraversalOrder::kBreadthFirst;
  std::vector<Expansion> expansions_;
  uint32_t max_depth_ = UINT32_MAX;
  std::optional<uint32_t> report_depth_;
  Uniqueness uniqueness_ = Uniqueness::kNodeGlobal;
};

/// Bidirectional breadth-first shortest path over the relationship
/// chains — the engine-side implementation behind Cypher's
/// shortestPath() function. Expands the smaller frontier first, which is
/// why the record-store engine wins the paper's Q6 comparison.
class BidirectionalShortestPath {
 public:
  /// `type` empty means any relationship type.
  BidirectionalShortestPath(GraphDb* db, std::optional<RelTypeId> type,
                            Direction dir)
      : db_(db), type_(type), dir_(dir) {}

  void SetMaxHops(uint32_t max_hops) { max_hops_ = max_hops; }

  /// Returns the node sequence of one shortest path, or an empty vector
  /// if none exists within the hop bound.
  Result<std::vector<NodeId>> Find(NodeId source, NodeId target);

  uint64_t nodes_expanded() const { return nodes_expanded_; }

 private:
  GraphDb* db_;
  std::optional<RelTypeId> type_;
  Direction dir_;
  uint32_t max_hops_ = UINT32_MAX;
  uint64_t nodes_expanded_ = 0;
};

}  // namespace mbq::nodestore

#endif  // MBQ_NODESTORE_TRAVERSAL_H_
