#ifndef MBQ_NODESTORE_RECORDS_H_
#define MBQ_NODESTORE_RECORDS_H_

#include <cstdint>
#include <cstring>

namespace mbq::nodestore {

/// Record id within one store file. Ids are dense and recycled through a
/// free list, as in Neo4j's store files.
using RecordId = uint64_t;
inline constexpr RecordId kNullRecord = ~0ULL;

using LabelId = uint16_t;
using RelTypeId = uint16_t;
using PropKeyId = uint32_t;
inline constexpr LabelId kInvalidLabel = 0xFFFF;
inline constexpr RelTypeId kInvalidRelType = 0xFFFF;

/// Fixed-width node record (24 bytes), after Neo4j's node store: a label,
/// the head of the relationship chain and the head of the property chain.
struct NodeRecord {
  static constexpr uint32_t kSize = 24;

  bool in_use = false;
  /// Set by the importer's dense-node pass for high-degree nodes.
  bool dense = false;
  LabelId label = kInvalidLabel;
  RecordId first_rel = kNullRecord;
  RecordId first_prop = kNullRecord;

  void EncodeTo(uint8_t* out) const {
    out[0] = in_use ? 1 : 0;
    out[1] = dense ? 1 : 0;
    std::memcpy(out + 2, &label, sizeof(label));
    std::memset(out + 4, 0, 4);
    std::memcpy(out + 8, &first_rel, sizeof(first_rel));
    std::memcpy(out + 16, &first_prop, sizeof(first_prop));
  }
  static NodeRecord DecodeFrom(const uint8_t* in) {
    NodeRecord r;
    r.in_use = in[0] != 0;
    r.dense = in[1] != 0;
    std::memcpy(&r.label, in + 2, sizeof(r.label));
    std::memcpy(&r.first_rel, in + 8, sizeof(r.first_rel));
    std::memcpy(&r.first_prop, in + 16, sizeof(r.first_prop));
    return r;
  }
};

/// Fixed-width relationship record (64 bytes), after Neo4j's relationship
/// store: endpoints plus doubly-linked chain pointers for both endpoint
/// nodes, so a node's relationships are walked without any index.
struct RelRecord {
  static constexpr uint32_t kSize = 64;

  bool in_use = false;
  RelTypeId type = kInvalidRelType;
  RecordId src = kNullRecord;
  RecordId dst = kNullRecord;
  RecordId src_prev = kNullRecord;
  RecordId src_next = kNullRecord;
  RecordId dst_prev = kNullRecord;
  RecordId dst_next = kNullRecord;
  RecordId first_prop = kNullRecord;

  void EncodeTo(uint8_t* out) const {
    out[0] = in_use ? 1 : 0;
    out[1] = 0;
    std::memcpy(out + 2, &type, sizeof(type));
    std::memset(out + 4, 0, 4);
    const RecordId fields[] = {src,      dst,      src_prev, src_next,
                               dst_prev, dst_next, first_prop};
    std::memcpy(out + 8, fields, sizeof(fields));
  }
  static RelRecord DecodeFrom(const uint8_t* in) {
    RelRecord r;
    r.in_use = in[0] != 0;
    std::memcpy(&r.type, in + 2, sizeof(r.type));
    RecordId fields[7];
    std::memcpy(fields, in + 8, sizeof(fields));
    r.src = fields[0];
    r.dst = fields[1];
    r.src_prev = fields[2];
    r.src_next = fields[3];
    r.dst_prev = fields[4];
    r.dst_next = fields[5];
    r.first_prop = fields[6];
    return r;
  }
};

/// Property value type tags stored in PropRecord.
enum class PropValueTag : uint8_t {
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kInlineString = 4,  // length + bytes in the payload
  kLongString = 5,    // payload holds {string store record id, length}
};

/// Fixed-width property record (40 bytes), after Neo4j's property store:
/// a key, a tagged 24-byte payload (short strings inline, long strings in
/// the dynamic string store) and a link to the next property.
struct PropRecord {
  static constexpr uint32_t kSize = 40;
  static constexpr uint32_t kPayloadSize = 24;
  static constexpr uint32_t kMaxInlineString = kPayloadSize - 1;

  bool in_use = false;
  PropValueTag tag = PropValueTag::kBool;
  PropKeyId key = 0;
  RecordId next = kNullRecord;
  uint8_t payload[kPayloadSize] = {};

  void EncodeTo(uint8_t* out) const {
    out[0] = in_use ? 1 : 0;
    out[1] = static_cast<uint8_t>(tag);
    std::memset(out + 2, 0, 2);
    std::memcpy(out + 4, &key, sizeof(key));
    std::memcpy(out + 8, &next, sizeof(next));
    std::memcpy(out + 16, payload, kPayloadSize);
  }
  static PropRecord DecodeFrom(const uint8_t* in) {
    PropRecord r;
    r.in_use = in[0] != 0;
    r.tag = static_cast<PropValueTag>(in[1]);
    std::memcpy(&r.key, in + 4, sizeof(r.key));
    std::memcpy(&r.next, in + 8, sizeof(r.next));
    std::memcpy(r.payload, in + 16, kPayloadSize);
    return r;
  }
};

/// Relationship-group record (32 bytes), after Neo4j's relationship
/// groups: under semantic partitioning a node's relationships are
/// chained per type, with one group record per (node, type) holding the
/// head of that type's chain. The node's first_rel then points at the
/// first group instead of the first relationship.
struct GroupRecord {
  static constexpr uint32_t kSize = 32;

  bool in_use = false;
  RelTypeId type = kInvalidRelType;
  RecordId first_rel = kNullRecord;
  RecordId next_group = kNullRecord;

  void EncodeTo(uint8_t* out) const {
    out[0] = in_use ? 1 : 0;
    out[1] = 0;
    std::memcpy(out + 2, &type, sizeof(type));
    std::memset(out + 4, 0, 4);
    std::memcpy(out + 8, &first_rel, sizeof(first_rel));
    std::memcpy(out + 16, &next_group, sizeof(next_group));
    std::memset(out + 24, 0, 8);
  }
  static GroupRecord DecodeFrom(const uint8_t* in) {
    GroupRecord r;
    r.in_use = in[0] != 0;
    std::memcpy(&r.type, in + 2, sizeof(r.type));
    std::memcpy(&r.first_rel, in + 8, sizeof(r.first_rel));
    std::memcpy(&r.next_group, in + 16, sizeof(r.next_group));
    return r;
  }
};

/// Dynamic string store block (64 bytes): chained blocks holding long
/// string values, after Neo4j's dynamic string store.
struct StringRecord {
  static constexpr uint32_t kSize = 64;
  static constexpr uint32_t kPayloadSize = 48;

  bool in_use = false;
  uint8_t used_bytes = 0;
  RecordId next = kNullRecord;
  uint8_t payload[kPayloadSize] = {};

  void EncodeTo(uint8_t* out) const {
    out[0] = in_use ? 1 : 0;
    out[1] = used_bytes;
    std::memset(out + 2, 0, 6);
    std::memcpy(out + 8, &next, sizeof(next));
    std::memcpy(out + 16, payload, kPayloadSize);
  }
  static StringRecord DecodeFrom(const uint8_t* in) {
    StringRecord r;
    r.in_use = in[0] != 0;
    r.used_bytes = in[1];
    std::memcpy(&r.next, in + 8, sizeof(r.next));
    std::memcpy(r.payload, in + 16, kPayloadSize);
    return r;
  }
};

}  // namespace mbq::nodestore

#endif  // MBQ_NODESTORE_RECORDS_H_
