#include "nodestore/graph_db.h"

#include <algorithm>

#include "common/value_codec.h"
#include "util/logging.h"

namespace mbq::nodestore {

using common::ValueType;

namespace {

/// WAL op codes. Records are full redo records: replaying the durable
/// log into a fresh database reproduces the state (see RecoverInto).
enum WalOp : uint8_t {
  kWalNewLabel = 1,
  kWalNewRelType = 2,
  kWalNewPropKey = 3,
  kWalCreateIndex = 4,
  kWalCreateNode = 5,
  kWalCreateRel = 6,
  kWalSetNodeProp = 7,
  kWalSetRelProp = 8,
  kWalDeleteRel = 9,
  kWalDeleteNode = 10,
};

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

Result<uint64_t> ReadU64(const std::vector<uint8_t>& data, size_t* offset) {
  if (*offset + sizeof(uint64_t) > data.size()) {
    return Status::Corruption("WAL record truncated");
  }
  uint64_t v;
  std::memcpy(&v, data.data() + *offset, sizeof(v));
  *offset += sizeof(v);
  return v;
}

void AppendString(std::vector<uint8_t>* out, const std::string& s) {
  AppendU64(out, s.size());
  out->insert(out->end(), s.begin(), s.end());
}

Result<std::string> ReadString(const std::vector<uint8_t>& data,
                               size_t* offset) {
  MBQ_ASSIGN_OR_RETURN(uint64_t size, ReadU64(data, offset));
  if (*offset + size > data.size()) {
    return Status::Corruption("WAL string truncated");
  }
  std::string s(reinterpret_cast<const char*>(data.data() + *offset), size);
  *offset += size;
  return s;
}

}  // namespace

GraphDb::GraphDb(GraphDbOptions options) : options_(options) {
  io_clock_ = std::make_unique<VirtualClock>();
  disk_ = std::make_unique<storage::SimulatedDisk>(options_.disk_profile,
                                                   io_clock_.get());
  storage::BufferCacheOptions cache_options;
  cache_options.capacity_pages =
      std::max<size_t>(16, options_.cache_bytes / storage::kPageSize);
  cache_options.write_policy = options_.write_through
                                   ? storage::WritePolicy::kWriteThrough
                                   : storage::WritePolicy::kWriteBack;
  cache_options.flush_all_when_full = false;  // evict-one, Neo4j style
  cache_ = std::make_unique<storage::BufferCache>(disk_.get(), cache_options);
  wal_disk_ = std::make_unique<storage::SimulatedDisk>(options_.disk_profile,
                                                       io_clock_.get());
  wal_ = std::make_unique<storage::Wal>(wal_disk_.get());
  extents_ = std::make_unique<storage::ExtentAllocator>(disk_.get(), 8);
  accountant_ =
      std::make_unique<storage::StorageAccountant>(cache_.get(), extents_.get());

  node_store_ = std::make_unique<RecordFile>("nodestore", cache_.get(),
                                             NodeRecord::kSize, &db_hits_);
  rel_store_ = std::make_unique<RecordFile>("relstore", cache_.get(),
                                            RelRecord::kSize, &db_hits_);
  prop_store_ = std::make_unique<RecordFile>("propstore", cache_.get(),
                                             PropRecord::kSize, &db_hits_);
  string_store_ = std::make_unique<RecordFile>("stringstore", cache_.get(),
                                               StringRecord::kSize, &db_hits_);
  group_store_ = std::make_unique<RecordFile>("groupstore", cache_.get(),
                                              GroupRecord::kSize, &db_hits_);

  obs::MetricsRegistry* registry = options_.metrics != nullptr
                                       ? options_.metrics
                                       : &obs::MetricsRegistry::Default();
  metrics_provider_ =
      obs::ScopedProvider(registry, [this](obs::MetricsSink* sink) {
        const storage::BufferCacheStats cache = cache_->stats();
        sink->Gauge("nodestore.page_cache.hits",
                    static_cast<double>(cache.hits), "pages");
        sink->Gauge("nodestore.page_cache.misses",
                    static_cast<double>(cache.misses), "pages");
        sink->Gauge("nodestore.page_cache.evictions",
                    static_cast<double>(cache.evictions), "pages");
        sink->Gauge("nodestore.page_cache.pages_flushed",
                    static_cast<double>(cache.pages_flushed), "pages");
        sink->Gauge("nodestore.page_cache.flush_stalls",
                    static_cast<double>(cache.flush_stalls), "events");
        sink->Gauge("nodestore.wal.syncs",
                    static_cast<double>(wal_->syncs()), "syncs");
        sink->Gauge("nodestore.wal.pages_written",
                    static_cast<double>(wal_->pages_written()), "pages");
        sink->Gauge("nodestore.wal.records",
                    static_cast<double>(wal_->next_lsn()), "records");
        sink->Gauge("nodestore.wal.durable_bytes",
                    static_cast<double>(wal_->durable_bytes()), "bytes");
        const storage::DiskStats disk = disk_->stats();
        sink->Gauge("nodestore.disk.page_reads",
                    static_cast<double>(disk.page_reads), "pages");
        sink->Gauge("nodestore.disk.page_writes",
                    static_cast<double>(disk.page_writes), "pages");
        sink->Gauge("nodestore.disk.seeks", static_cast<double>(disk.seeks),
                    "seeks");
        sink->Gauge("nodestore.disk.busy_nanos",
                    static_cast<double>(disk.busy_nanos), "ns");
        sink->Gauge("nodestore.record_reads",
                    static_cast<double>(db_hits_.total()), "records");
        sink->Gauge("nodestore.nodes", static_cast<double>(num_nodes_),
                    "nodes");
        sink->Gauge("nodestore.rels", static_cast<double>(num_rels_), "rels");
      });
}

GraphDb::~GraphDb() = default;

// -------------------------------------------------------------- Registries

Result<LabelId> GraphDb::Label(const std::string& name) {
  auto it = label_ids_.find(name);
  if (it != label_ids_.end()) return it->second;
  if (label_names_.size() >= kInvalidLabel) {
    return Status::OutOfRange("too many labels");
  }
  LabelId id = static_cast<LabelId>(label_names_.size());
  label_names_.push_back(name);
  label_ids_[name] = id;
  label_scan_.emplace_back();
  label_counts_.push_back(0);
  LogOpWithName(kWalNewLabel, name);
  return id;
}

Result<LabelId> GraphDb::FindLabel(const std::string& name) const {
  auto it = label_ids_.find(name);
  if (it == label_ids_.end()) return Status::NotFound("no label: " + name);
  return it->second;
}

const std::string& GraphDb::LabelName(LabelId label) const {
  MBQ_CHECK(label < label_names_.size());
  return label_names_[label];
}

Result<RelTypeId> GraphDb::RelType(const std::string& name) {
  auto it = rel_type_ids_.find(name);
  if (it != rel_type_ids_.end()) return it->second;
  if (rel_type_names_.size() >= kInvalidRelType) {
    return Status::OutOfRange("too many relationship types");
  }
  RelTypeId id = static_cast<RelTypeId>(rel_type_names_.size());
  rel_type_names_.push_back(name);
  rel_type_ids_[name] = id;
  LogOpWithName(kWalNewRelType, name);
  return id;
}

Result<RelTypeId> GraphDb::FindRelType(const std::string& name) const {
  auto it = rel_type_ids_.find(name);
  if (it == rel_type_ids_.end()) {
    return Status::NotFound("no relationship type: " + name);
  }
  return it->second;
}

const std::string& GraphDb::RelTypeName(RelTypeId type) const {
  MBQ_CHECK(type < rel_type_names_.size());
  return rel_type_names_[type];
}

PropKeyId GraphDb::PropKey(const std::string& name) {
  auto it = prop_key_ids_.find(name);
  if (it != prop_key_ids_.end()) return it->second;
  PropKeyId id = static_cast<PropKeyId>(prop_key_names_.size());
  prop_key_names_.push_back(name);
  prop_key_ids_[name] = id;
  LogOpWithName(kWalNewPropKey, name);
  return id;
}

Result<PropKeyId> GraphDb::FindPropKey(const std::string& name) const {
  auto it = prop_key_ids_.find(name);
  if (it == prop_key_ids_.end()) {
    return Status::NotFound("no property key: " + name);
  }
  return it->second;
}

const std::string& GraphDb::PropKeyName(PropKeyId key) const {
  MBQ_CHECK(key < prop_key_names_.size());
  return prop_key_names_[key];
}

// --------------------------------------------------- Relationship stores

RecordFile* GraphDb::RelStoreForType(RelTypeId type) {
  if (!options_.semantic_partitioning) return rel_store_.get();
  while (typed_rel_stores_.size() <= type) {
    size_t index = typed_rel_stores_.size();
    std::string name = index < rel_type_names_.size()
                           ? "relstore." + rel_type_names_[index]
                           : "relstore.#" + std::to_string(index);
    typed_rel_stores_.push_back(std::make_unique<RecordFile>(
        std::move(name), cache_.get(), RelRecord::kSize, &db_hits_));
  }
  return typed_rel_stores_[type].get();
}

namespace {
// Partitioned rel ids: partition+1 in the top 16 bits, local id below.
constexpr uint64_t kRelLocalMask = (uint64_t{1} << 48) - 1;
}  // namespace

RecordFile* GraphDb::RelStoreFor(RelId id) {
  if (!options_.semantic_partitioning) return rel_store_.get();
  uint64_t partition = (id >> 48) - 1;
  MBQ_CHECK(partition < typed_rel_stores_.size());
  return typed_rel_stores_[partition].get();
}

Result<RelId> GraphDb::AllocateRel(RelTypeId type) {
  if (!options_.semantic_partitioning) return rel_store_->Allocate();
  MBQ_ASSIGN_OR_RETURN(RecordId local, RelStoreForType(type)->Allocate());
  return ((static_cast<uint64_t>(type) + 1) << 48) | local;
}

Result<RelRecord> GraphDb::GetRel(RelId id) {
  if (!options_.semantic_partitioning) {
    return rel_store_->Get<RelRecord>(id);
  }
  return RelStoreFor(id)->Get<RelRecord>(id & kRelLocalMask);
}

Status GraphDb::PutRel(RelId id, const RelRecord& rec) {
  if (!options_.semantic_partitioning) {
    return rel_store_->Put(id, rec);
  }
  return RelStoreFor(id)->Put(id & kRelLocalMask, rec);
}

Status GraphDb::FreeRel(RelId id) {
  if (!options_.semantic_partitioning) return rel_store_->Free(id);
  return RelStoreFor(id)->Free(id & kRelLocalMask);
}

// ------------------------------------------------------------ WAL & undo

void GraphDb::LogRecord(std::vector<uint8_t> payload) {
  if (!options_.wal_enabled || replaying_) return;
  wal_->Append(payload);
  if (!in_tx_) {
    Status st = wal_->Sync();  // auto-commit
    MBQ_CHECK(st.ok());
  }
}

void GraphDb::LogOp(uint8_t op, RecordId a, RecordId b, RecordId c) {
  if (!options_.wal_enabled || replaying_) return;
  std::vector<uint8_t> payload;
  payload.push_back(op);
  AppendU64(&payload, a);
  AppendU64(&payload, b);
  AppendU64(&payload, c);
  LogRecord(std::move(payload));
}

void GraphDb::LogOpWithValue(uint8_t op, RecordId a, RecordId b,
                             const Value& value) {
  if (!options_.wal_enabled || replaying_) return;
  std::vector<uint8_t> payload;
  payload.push_back(op);
  AppendU64(&payload, a);
  AppendU64(&payload, b);
  common::EncodeValue(value, &payload);
  LogRecord(std::move(payload));
}

void GraphDb::LogOpWithName(uint8_t op, const std::string& name) {
  if (!options_.wal_enabled || replaying_) return;
  std::vector<uint8_t> payload;
  payload.push_back(op);
  AppendString(&payload, name);
  LogRecord(std::move(payload));
}

void GraphDb::PushUndo(std::function<Status()> undo) {
  if (in_tx_) undo_log_.push_back(std::move(undo));
}

// ------------------------------------------------------------------ Writes

Result<NodeId> GraphDb::CreateNode(LabelId label) {
  if (label >= label_names_.size()) {
    return Status::InvalidArgument("unknown label id");
  }
  epochs_.Bump(cache::LabelDomain(label));
  MBQ_ASSIGN_OR_RETURN(NodeId id, node_store_->Allocate());
  NodeRecord rec;
  rec.in_use = true;
  rec.label = label;
  MBQ_RETURN_IF_ERROR(node_store_->Put(id, rec));
  label_scan_[label].push_back(id);
  ++label_counts_[label];
  ++num_nodes_;
  LogOp(kWalCreateNode, id, label, 0);
  PushUndo([this, id]() { return DeleteNode(id); });
  return id;
}

// ------------------------------------------------------------ Chain heads

Result<RecordId> GraphDb::FindGroup(NodeId node, RelTypeId type, bool create) {
  MBQ_ASSIGN_OR_RETURN(NodeRecord nrec, node_store_->Get<NodeRecord>(node));
  RecordId cur = nrec.first_rel;  // heads the group list when partitioned
  while (cur != kNullRecord) {
    MBQ_ASSIGN_OR_RETURN(GroupRecord group,
                         group_store_->Get<GroupRecord>(cur));
    if (group.type == type) return cur;
    cur = group.next_group;
  }
  if (!create) return kNullRecord;
  MBQ_ASSIGN_OR_RETURN(RecordId id, group_store_->Allocate());
  GroupRecord group;
  group.in_use = true;
  group.type = type;
  group.next_group = nrec.first_rel;
  MBQ_RETURN_IF_ERROR(group_store_->Put(id, group));
  nrec.first_rel = id;
  MBQ_RETURN_IF_ERROR(node_store_->Put(node, nrec));
  return id;
}

Result<RecordId> GraphDb::GetChainHead(NodeId node, RelTypeId type) {
  if (!options_.semantic_partitioning) {
    MBQ_ASSIGN_OR_RETURN(NodeRecord nrec, node_store_->Get<NodeRecord>(node));
    return nrec.first_rel;
  }
  MBQ_ASSIGN_OR_RETURN(RecordId group_id, FindGroup(node, type, false));
  if (group_id == kNullRecord) return kNullRecord;
  MBQ_ASSIGN_OR_RETURN(GroupRecord group,
                       group_store_->Get<GroupRecord>(group_id));
  return group.first_rel;
}

Status GraphDb::SetChainHead(NodeId node, RelTypeId type, RecordId head) {
  if (!options_.semantic_partitioning) {
    MBQ_ASSIGN_OR_RETURN(NodeRecord nrec, node_store_->Get<NodeRecord>(node));
    nrec.first_rel = head;
    return node_store_->Put(node, nrec);
  }
  MBQ_ASSIGN_OR_RETURN(RecordId group_id, FindGroup(node, type, true));
  MBQ_ASSIGN_OR_RETURN(GroupRecord group,
                       group_store_->Get<GroupRecord>(group_id));
  group.first_rel = head;
  return group_store_->Put(group_id, group);
}

Result<RelId> GraphDb::CreateRelationship(RelTypeId type, NodeId src,
                                          NodeId dst) {
  if (type >= rel_type_names_.size()) {
    return Status::InvalidArgument("unknown relationship type id");
  }
  epochs_.Bump(cache::RelTypeDomain(type));
  MBQ_ASSIGN_OR_RETURN(NodeRecord src_rec, node_store_->Get<NodeRecord>(src));
  if (!src_rec.in_use) return Status::NotFound("source node not in use");
  MBQ_ASSIGN_OR_RETURN(NodeRecord dst_rec, node_store_->Get<NodeRecord>(dst));
  if (!dst_rec.in_use) return Status::NotFound("target node not in use");

  MBQ_ASSIGN_OR_RETURN(RecordId src_head, GetChainHead(src, type));
  RecordId dst_head = src_head;
  if (src != dst) {
    MBQ_ASSIGN_OR_RETURN(dst_head, GetChainHead(dst, type));
  }

  MBQ_ASSIGN_OR_RETURN(RelId id, AllocateRel(type));
  RelRecord rel;
  rel.in_use = true;
  rel.type = type;
  rel.src = src;
  rel.dst = dst;
  rel.src_next = src_head;
  rel.dst_next = dst_head;

  // Fix the previous chain heads' back-pointers.
  auto fix_prev = [&](NodeId node, RecordId old_head) -> Status {
    if (old_head == kNullRecord) return Status::OK();
    MBQ_ASSIGN_OR_RETURN(RelRecord old_rec, GetRel(old_head));
    if (old_rec.src == node) old_rec.src_prev = id;
    if (old_rec.dst == node) old_rec.dst_prev = id;
    return PutRel(old_head, old_rec);
  };
  MBQ_RETURN_IF_ERROR(fix_prev(src, src_head));
  if (src != dst) {
    MBQ_RETURN_IF_ERROR(fix_prev(dst, dst_head));
  }

  MBQ_RETURN_IF_ERROR(PutRel(id, rel));
  MBQ_RETURN_IF_ERROR(SetChainHead(src, type, id));
  if (src != dst) {
    MBQ_RETURN_IF_ERROR(SetChainHead(dst, type, id));
  }
  ++num_rels_;
  {
    std::vector<uint8_t> payload;
    payload.push_back(kWalCreateRel);
    AppendU64(&payload, id);
    AppendU64(&payload, src);
    AppendU64(&payload, dst);
    AppendU64(&payload, type);
    LogRecord(std::move(payload));
  }
  PushUndo([this, id]() { return DeleteRelationship(id); });
  return id;
}

Status GraphDb::UnlinkRelationship(const RelRecord& rel, RelId rel_id) {
  // Unlink from one endpoint's chain; for self-loops both chain pointers
  // live in the same record, handled by the src side alone.
  auto unlink_side = [&](NodeId node, RecordId prev, RecordId next) -> Status {
    if (prev == kNullRecord) {
      MBQ_ASSIGN_OR_RETURN(RecordId head, GetChainHead(node, rel.type));
      if (head == rel_id) {
        MBQ_RETURN_IF_ERROR(SetChainHead(node, rel.type, next));
      }
    } else {
      MBQ_ASSIGN_OR_RETURN(RelRecord prec, GetRel(prev));
      if (prec.src == node && prec.src_next == rel_id) prec.src_next = next;
      if (prec.dst == node && prec.dst_next == rel_id) prec.dst_next = next;
      MBQ_RETURN_IF_ERROR(PutRel(prev, prec));
    }
    if (next != kNullRecord) {
      MBQ_ASSIGN_OR_RETURN(RelRecord nrec, GetRel(next));
      if (nrec.src == node && nrec.src_prev == rel_id) nrec.src_prev = prev;
      if (nrec.dst == node && nrec.dst_prev == rel_id) nrec.dst_prev = prev;
      MBQ_RETURN_IF_ERROR(PutRel(next, nrec));
    }
    return Status::OK();
  };
  MBQ_RETURN_IF_ERROR(unlink_side(rel.src, rel.src_prev, rel.src_next));
  if (rel.src != rel.dst) {
    MBQ_RETURN_IF_ERROR(unlink_side(rel.dst, rel.dst_prev, rel.dst_next));
  }
  return Status::OK();
}

Status GraphDb::DeleteRelationship(RelId rel_id) {
  MBQ_ASSIGN_OR_RETURN(RelRecord rel, GetRel(rel_id));
  if (!rel.in_use) return Status::NotFound("relationship not in use");
  epochs_.Bump(cache::RelTypeDomain(rel.type));
  MBQ_RETURN_IF_ERROR(UnlinkRelationship(rel, rel_id));
  MBQ_RETURN_IF_ERROR(FreePropertyChain(rel.first_prop));
  RelRecord cleared;
  cleared.in_use = false;
  MBQ_RETURN_IF_ERROR(PutRel(rel_id, cleared));
  MBQ_RETURN_IF_ERROR(FreeRel(rel_id));
  --num_rels_;
  LogOp(kWalDeleteRel, rel_id, rel.src, rel.dst);
  RelTypeId type = rel.type;
  NodeId src = rel.src;
  NodeId dst = rel.dst;
  PushUndo([this, type, src, dst]() {
    return CreateRelationship(type, src, dst).status();
  });
  return Status::OK();
}

Status GraphDb::DeleteNode(NodeId node) {
  MBQ_ASSIGN_OR_RETURN(NodeRecord rec, node_store_->Get<NodeRecord>(node));
  if (!rec.in_use) return Status::NotFound("node not in use");
  epochs_.Bump(cache::LabelDomain(rec.label));
  if (options_.semantic_partitioning) {
    // first_rel heads the group list; groups must all be empty, and the
    // empty group records are freed with the node.
    RecordId group_id = rec.first_rel;
    while (group_id != kNullRecord) {
      MBQ_ASSIGN_OR_RETURN(GroupRecord group,
                           group_store_->Get<GroupRecord>(group_id));
      if (group.first_rel != kNullRecord) {
        return Status::FailedPrecondition(
            "node still has relationships; use DetachDeleteNode");
      }
      group_id = group.next_group;
    }
    group_id = rec.first_rel;
    while (group_id != kNullRecord) {
      MBQ_ASSIGN_OR_RETURN(GroupRecord group,
                           group_store_->Get<GroupRecord>(group_id));
      RecordId next = group.next_group;
      GroupRecord cleared_group;
      MBQ_RETURN_IF_ERROR(group_store_->Put(group_id, cleared_group));
      MBQ_RETURN_IF_ERROR(group_store_->Free(group_id));
      group_id = next;
    }
    rec.first_rel = kNullRecord;
  } else if (rec.first_rel != kNullRecord) {
    return Status::FailedPrecondition(
        "node still has relationships; use DetachDeleteNode");
  }
  // Remove index entries for this node.
  for (IndexDef& index : indexes_) {
    if (index.label != rec.label) continue;
    bool found = false;
    MBQ_ASSIGN_OR_RETURN(Value v,
                         ReadPropertyChain(rec.first_prop, index.key, &found));
    if (found) IndexRemove(index, v, node);
  }
  MBQ_RETURN_IF_ERROR(FreePropertyChain(rec.first_prop));
  NodeRecord cleared;
  cleared.in_use = false;
  MBQ_RETURN_IF_ERROR(node_store_->Put(node, cleared));
  MBQ_RETURN_IF_ERROR(node_store_->Free(node));
  --label_counts_[rec.label];
  --num_nodes_;
  LogOp(kWalDeleteNode, node, rec.label, 0);
  LabelId label = rec.label;
  PushUndo([this, label]() { return CreateNode(label).status(); });
  return Status::OK();
}

Status GraphDb::DetachDeleteNode(NodeId node) {
  MBQ_ASSIGN_OR_RETURN(NodeRecord rec, node_store_->Get<NodeRecord>(node));
  if (!rec.in_use) return Status::NotFound("node not in use");
  for (;;) {
    RelId victim = kInvalidRel;
    MBQ_RETURN_IF_ERROR(ForEachRelationship(node, Direction::kBoth,
                                            std::nullopt,
                                            [&](const RelInfo& rel) {
                                              victim = rel.id;
                                              return false;
                                            }));
    if (victim == kInvalidRel) break;
    MBQ_RETURN_IF_ERROR(DeleteRelationship(victim));
  }
  return DeleteNode(node);
}

// --------------------------------------------------------- Property codec

Result<Value> GraphDb::DecodeProp(const PropRecord& rec) {
  switch (rec.tag) {
    case PropValueTag::kBool:
      return Value::Bool(rec.payload[0] != 0);
    case PropValueTag::kInt: {
      int64_t v;
      std::memcpy(&v, rec.payload, sizeof(v));
      return Value::Int(v);
    }
    case PropValueTag::kDouble: {
      double v;
      std::memcpy(&v, rec.payload, sizeof(v));
      return Value::Double(v);
    }
    case PropValueTag::kInlineString: {
      uint8_t len = rec.payload[0];
      return Value::String(std::string(
          reinterpret_cast<const char*>(rec.payload + 1), len));
    }
    case PropValueTag::kLongString: {
      RecordId block;
      uint32_t length;
      std::memcpy(&block, rec.payload, sizeof(block));
      std::memcpy(&length, rec.payload + sizeof(block), sizeof(length));
      std::string out;
      out.reserve(length);
      while (block != kNullRecord && out.size() < length) {
        MBQ_ASSIGN_OR_RETURN(StringRecord srec,
                             string_store_->Get<StringRecord>(block));
        out.append(reinterpret_cast<const char*>(srec.payload),
                   srec.used_bytes);
        block = srec.next;
      }
      if (out.size() != length) {
        return Status::Corruption("string chain shorter than declared");
      }
      return Value::String(std::move(out));
    }
  }
  return Status::Corruption("bad property tag");
}

namespace {

Status EncodeShortProp(const Value& value, PropRecord* rec) {
  switch (value.type()) {
    case ValueType::kBool:
      rec->tag = PropValueTag::kBool;
      rec->payload[0] = value.AsBool() ? 1 : 0;
      return Status::OK();
    case ValueType::kInt: {
      rec->tag = PropValueTag::kInt;
      int64_t v = value.AsInt();
      std::memcpy(rec->payload, &v, sizeof(v));
      return Status::OK();
    }
    case ValueType::kDouble: {
      rec->tag = PropValueTag::kDouble;
      double v = value.AsDouble();
      std::memcpy(rec->payload, &v, sizeof(v));
      return Status::OK();
    }
    case ValueType::kString: {
      const std::string& s = value.AsString();
      if (s.size() <= PropRecord::kMaxInlineString) {
        rec->tag = PropValueTag::kInlineString;
        rec->payload[0] = static_cast<uint8_t>(s.size());
        std::memcpy(rec->payload + 1, s.data(), s.size());
        return Status::OK();
      }
      return Status::OutOfRange("long string");  // caller handles
    }
    case ValueType::kNull:
      break;
  }
  return Status::InvalidArgument("cannot store null property");
}

}  // namespace

Status GraphDb::FreePropertyChain(RecordId first_prop) {
  RecordId cur = first_prop;
  while (cur != kNullRecord) {
    MBQ_ASSIGN_OR_RETURN(PropRecord rec, prop_store_->Get<PropRecord>(cur));
    if (rec.tag == PropValueTag::kLongString) {
      RecordId block;
      std::memcpy(&block, rec.payload, sizeof(block));
      while (block != kNullRecord) {
        MBQ_ASSIGN_OR_RETURN(StringRecord srec,
                             string_store_->Get<StringRecord>(block));
        RecordId next = srec.next;
        StringRecord cleared;
        MBQ_RETURN_IF_ERROR(string_store_->Put(block, cleared));
        MBQ_RETURN_IF_ERROR(string_store_->Free(block));
        block = next;
      }
    }
    RecordId next = rec.next;
    PropRecord cleared;
    MBQ_RETURN_IF_ERROR(prop_store_->Put(cur, cleared));
    MBQ_RETURN_IF_ERROR(prop_store_->Free(cur));
    cur = next;
  }
  return Status::OK();
}

Result<Value> GraphDb::ReadPropertyChain(RecordId first_prop, PropKeyId key,
                                         bool* found) {
  *found = false;
  RecordId cur = first_prop;
  while (cur != kNullRecord) {
    MBQ_ASSIGN_OR_RETURN(PropRecord rec, prop_store_->Get<PropRecord>(cur));
    if (rec.in_use && rec.key == key) {
      *found = true;
      return DecodeProp(rec);
    }
    cur = rec.next;
  }
  return Value::Null();
}

Status GraphDb::WritePropertyChain(RecordId* first_prop, PropKeyId key,
                                   const Value& value) {
  // Find existing record for the key (tracking the predecessor for
  // removal).
  RecordId prev = kNullRecord;
  RecordId cur = *first_prop;
  while (cur != kNullRecord) {
    MBQ_ASSIGN_OR_RETURN(PropRecord rec, prop_store_->Get<PropRecord>(cur));
    if (rec.in_use && rec.key == key) break;
    prev = cur;
    cur = rec.next;
  }

  if (value.is_null()) {
    if (cur == kNullRecord) return Status::OK();  // nothing to remove
    MBQ_ASSIGN_OR_RETURN(PropRecord rec, prop_store_->Get<PropRecord>(cur));
    RecordId next = rec.next;
    // Detach the record before freeing it, so FreePropertyChain (which
    // re-reads the store) frees only this one-element chain.
    rec.next = kNullRecord;
    MBQ_RETURN_IF_ERROR(prop_store_->Put(cur, rec));
    MBQ_RETURN_IF_ERROR(FreePropertyChain(cur));
    if (prev == kNullRecord) {
      *first_prop = next;
    } else {
      MBQ_ASSIGN_OR_RETURN(PropRecord prec, prop_store_->Get<PropRecord>(prev));
      prec.next = next;
      MBQ_RETURN_IF_ERROR(prop_store_->Put(prev, prec));
    }
    return Status::OK();
  }

  PropRecord rec;
  RecordId old_next = kNullRecord;
  if (cur != kNullRecord) {
    MBQ_ASSIGN_OR_RETURN(PropRecord old_rec, prop_store_->Get<PropRecord>(cur));
    old_next = old_rec.next;
    if (old_rec.tag == PropValueTag::kLongString) {
      // Free the old string chain before overwriting.
      RecordId block;
      std::memcpy(&block, old_rec.payload, sizeof(block));
      while (block != kNullRecord) {
        MBQ_ASSIGN_OR_RETURN(StringRecord srec,
                             string_store_->Get<StringRecord>(block));
        RecordId nb = srec.next;
        StringRecord cleared;
        MBQ_RETURN_IF_ERROR(string_store_->Put(block, cleared));
        MBQ_RETURN_IF_ERROR(string_store_->Free(block));
        block = nb;
      }
    }
  }
  rec.in_use = true;
  rec.key = key;
  rec.next = cur != kNullRecord ? old_next : *first_prop;

  Status short_status = EncodeShortProp(value, &rec);
  if (short_status.IsOutOfRange()) {
    // Long string: spill into the dynamic string store.
    const std::string& s = value.AsString();
    RecordId first_block = kNullRecord;
    RecordId prev_block = kNullRecord;
    for (size_t off = 0; off < s.size(); off += StringRecord::kPayloadSize) {
      MBQ_ASSIGN_OR_RETURN(RecordId block, string_store_->Allocate());
      StringRecord srec;
      srec.in_use = true;
      size_t n = std::min<size_t>(StringRecord::kPayloadSize, s.size() - off);
      srec.used_bytes = static_cast<uint8_t>(n);
      std::memcpy(srec.payload, s.data() + off, n);
      MBQ_RETURN_IF_ERROR(string_store_->Put(block, srec));
      if (prev_block == kNullRecord) {
        first_block = block;
      } else {
        MBQ_ASSIGN_OR_RETURN(StringRecord prec,
                             string_store_->Get<StringRecord>(prev_block));
        prec.next = block;
        MBQ_RETURN_IF_ERROR(string_store_->Put(prev_block, prec));
      }
      prev_block = block;
    }
    rec.tag = PropValueTag::kLongString;
    uint32_t length = static_cast<uint32_t>(s.size());
    std::memcpy(rec.payload, &first_block, sizeof(first_block));
    std::memcpy(rec.payload + sizeof(first_block), &length, sizeof(length));
  } else if (!short_status.ok()) {
    return short_status;
  }

  if (cur != kNullRecord) {
    return prop_store_->Put(cur, rec);
  }
  MBQ_ASSIGN_OR_RETURN(RecordId id, prop_store_->Allocate());
  MBQ_RETURN_IF_ERROR(prop_store_->Put(id, rec));
  *first_prop = id;
  return Status::OK();
}

Status GraphDb::SetNodeProperty(NodeId node, PropKeyId key,
                                const Value& value) {
  MBQ_ASSIGN_OR_RETURN(NodeRecord rec, node_store_->Get<NodeRecord>(node));
  if (!rec.in_use) return Status::NotFound("node not in use");
  epochs_.Bump(cache::LabelDomain(rec.label));
  bool had_old = false;
  MBQ_ASSIGN_OR_RETURN(Value old_value,
                       ReadPropertyChain(rec.first_prop, key, &had_old));
  RecordId first = rec.first_prop;
  MBQ_RETURN_IF_ERROR(WritePropertyChain(&first, key, value));
  if (first != rec.first_prop) {
    rec.first_prop = first;
    MBQ_RETURN_IF_ERROR(node_store_->Put(node, rec));
  }
  MBQ_RETURN_IF_ERROR(
      UpdateIndexesOnPropertyChange(node, key, old_value, value));
  LogOpWithValue(kWalSetNodeProp, node, key, value);
  if (had_old) {
    PushUndo([this, node, key, old_value]() {
      return SetNodeProperty(node, key, old_value);
    });
  } else {
    PushUndo([this, node, key]() {
      return SetNodeProperty(node, key, Value::Null());
    });
  }
  return Status::OK();
}

Status GraphDb::SetRelProperty(RelId rel, PropKeyId key, const Value& value) {
  MBQ_ASSIGN_OR_RETURN(RelRecord rec, GetRel(rel));
  if (!rec.in_use) return Status::NotFound("relationship not in use");
  epochs_.Bump(cache::RelTypeDomain(rec.type));
  RecordId first = rec.first_prop;
  MBQ_RETURN_IF_ERROR(WritePropertyChain(&first, key, value));
  if (first != rec.first_prop) {
    rec.first_prop = first;
    MBQ_RETURN_IF_ERROR(PutRel(rel, rec));
  }
  LogOpWithValue(kWalSetRelProp, rel, key, value);
  return Status::OK();
}

// ------------------------------------------------------------------- Reads

bool GraphDb::NodeExists(NodeId node) {
  if (node >= node_store_->high_id()) return false;
  auto rec = node_store_->Get<NodeRecord>(node);
  return rec.ok() && rec->in_use;
}

bool GraphDb::RelExists(RelId rel) {
  if (options_.semantic_partitioning) {
    uint64_t partition = (rel >> 48);
    if (partition == 0 || partition - 1 >= typed_rel_stores_.size()) {
      return false;
    }
    if ((rel & kRelLocalMask) >=
        typed_rel_stores_[partition - 1]->high_id()) {
      return false;
    }
  } else if (rel >= rel_store_->high_id()) {
    return false;
  }
  auto rec = GetRel(rel);
  return rec.ok() && rec->in_use;
}

Result<LabelId> GraphDb::NodeLabel(NodeId node) {
  MBQ_ASSIGN_OR_RETURN(NodeRecord rec, node_store_->Get<NodeRecord>(node));
  if (!rec.in_use) return Status::NotFound("node not in use");
  return rec.label;
}

Result<Value> GraphDb::GetNodeProperty(NodeId node, PropKeyId key) {
  MBQ_ASSIGN_OR_RETURN(NodeRecord rec, node_store_->Get<NodeRecord>(node));
  if (!rec.in_use) return Status::NotFound("node not in use");
  bool found = false;
  return ReadPropertyChain(rec.first_prop, key, &found);
}

Result<Value> GraphDb::GetRelProperty(RelId rel, PropKeyId key) {
  MBQ_ASSIGN_OR_RETURN(RelRecord rec, GetRel(rel));
  if (!rec.in_use) return Status::NotFound("relationship not in use");
  bool found = false;
  return ReadPropertyChain(rec.first_prop, key, &found);
}

Status GraphDb::WalkChain(NodeId node, RecordId head, Direction dir,
                          std::optional<RelTypeId> type,
                          const std::function<bool(const RelInfo&)>& fn,
                          bool* stopped) {
  *stopped = false;
  RecordId cur = head;
  while (cur != kNullRecord) {
    MBQ_ASSIGN_OR_RETURN(RelRecord rel, GetRel(cur));
    if (!rel.in_use) return Status::Corruption("chain hits freed record");
    bool is_src = rel.src == node;
    bool is_dst = rel.dst == node;
    bool dir_match = dir == Direction::kBoth ||
                     (dir == Direction::kOutgoing && is_src) ||
                     (dir == Direction::kIncoming && is_dst);
    if (dir_match && (!type.has_value() || rel.type == *type)) {
      RelInfo info;
      info.id = cur;
      info.type = rel.type;
      info.src = rel.src;
      info.dst = rel.dst;
      info.other = is_src ? rel.dst : rel.src;
      if (!fn(info)) {
        *stopped = true;
        return Status::OK();
      }
    }
    cur = is_src ? rel.src_next : rel.dst_next;
  }
  return Status::OK();
}

Status GraphDb::ForEachRelationship(
    NodeId node, Direction dir, std::optional<RelTypeId> type,
    const std::function<bool(const RelInfo&)>& fn) {
  MBQ_ASSIGN_OR_RETURN(NodeRecord nrec, node_store_->Get<NodeRecord>(node));
  if (!nrec.in_use) return Status::NotFound("node not in use");
  bool stopped = false;
  if (!options_.semantic_partitioning) {
    return WalkChain(node, nrec.first_rel, dir, type, fn, &stopped);
  }
  // Partitioned: one chain per relationship type, headed by the node's
  // group list. A typed walk touches only that type's group and store.
  RecordId group_id = nrec.first_rel;
  while (group_id != kNullRecord) {
    MBQ_ASSIGN_OR_RETURN(GroupRecord group,
                         group_store_->Get<GroupRecord>(group_id));
    if (!type.has_value() || group.type == *type) {
      MBQ_RETURN_IF_ERROR(
          WalkChain(node, group.first_rel, dir, type, fn, &stopped));
      if (stopped) return Status::OK();
      if (type.has_value()) return Status::OK();  // only one group matches
    }
    group_id = group.next_group;
  }
  return Status::OK();
}

Result<uint64_t> GraphDb::Degree(NodeId node, Direction dir,
                                 std::optional<RelTypeId> type) {
  uint64_t count = 0;
  MBQ_RETURN_IF_ERROR(ForEachRelationship(node, dir, type,
                                          [&count](const RelInfo&) {
                                            ++count;
                                            return true;
                                          }));
  return count;
}

Result<GraphDb::RelInfo> GraphDb::GetRelationship(RelId rel_id) {
  MBQ_ASSIGN_OR_RETURN(RelRecord rel, GetRel(rel_id));
  if (!rel.in_use) return Status::NotFound("relationship not in use");
  RelInfo info;
  info.id = rel_id;
  info.type = rel.type;
  info.src = rel.src;
  info.dst = rel.dst;
  info.other = kInvalidNode;
  return info;
}

// -------------------------------------------------------------- Label scan

Status GraphDb::ForEachNodeWithLabel(LabelId label,
                                     const std::function<bool(NodeId)>& fn) {
  if (label >= label_scan_.size()) {
    return Status::InvalidArgument("unknown label id");
  }
  for (NodeId id : label_scan_[label]) {
    MBQ_ASSIGN_OR_RETURN(NodeRecord rec, node_store_->Get<NodeRecord>(id));
    if (!rec.in_use || rec.label != label) continue;  // stale entry
    if (!fn(id)) return Status::OK();
  }
  return Status::OK();
}

uint64_t GraphDb::CountNodesWithLabel(LabelId label) const {
  MBQ_CHECK(label < label_counts_.size());
  return label_counts_[label];
}

// ------------------------------------------------------------------- Index

GraphDb::IndexDef* GraphDb::FindIndexDef(LabelId label, PropKeyId key) {
  for (IndexDef& index : indexes_) {
    if (index.label == label && index.key == key) return &index;
  }
  return nullptr;
}

bool GraphDb::HasIndex(LabelId label, PropKeyId key) const {
  for (const IndexDef& index : indexes_) {
    if (index.label == label && index.key == key) return true;
  }
  return false;
}

Status GraphDb::TouchIndex(const IndexDef& index, const Value& value) {
  uint64_t bytes = accountant_->StreamBytes(index.stream);
  if (bytes == 0) return Status::OK();
  // B-tree descent: touch a value-determined page plus the root region.
  uint64_t offset = value.Hash() % bytes;
  MBQ_RETURN_IF_ERROR(accountant_->TouchRead(index.stream, 0, 1));
  return accountant_->TouchRead(index.stream, offset, 16);
}

Status GraphDb::IndexInsert(IndexDef& index, const Value& value, NodeId node) {
  if (value.is_null()) return Status::OK();
  std::vector<NodeId>& bucket = index.entries[value];
  if (index.unique && !bucket.empty() &&
      !(bucket.size() == 1 && bucket[0] == node)) {
    return Status::AlreadyExists(
        "unique index (" + LabelName(index.label) + "," +
        PropKeyName(index.key) + ") already maps " + value.ToString());
  }
  if (std::find(bucket.begin(), bucket.end(), node) == bucket.end()) {
    bucket.push_back(node);
    MBQ_RETURN_IF_ERROR(
        accountant_->AppendBytes(index.stream, 16 + value.StorageBytes())
            .status());
  }
  return Status::OK();
}

void GraphDb::IndexRemove(IndexDef& index, const Value& value, NodeId node) {
  if (value.is_null()) return;
  auto it = index.entries.find(value);
  if (it == index.entries.end()) return;
  auto& bucket = it->second;
  bucket.erase(std::remove(bucket.begin(), bucket.end(), node), bucket.end());
  if (bucket.empty()) index.entries.erase(it);
}

Status GraphDb::UpdateIndexesOnPropertyChange(NodeId node, PropKeyId key,
                                              const Value& old_value,
                                              const Value& new_value) {
  if (indexes_.empty()) return Status::OK();
  MBQ_ASSIGN_OR_RETURN(LabelId label, NodeLabel(node));
  for (IndexDef& index : indexes_) {
    if (index.label != label || index.key != key) continue;
    if (!old_value.is_null()) IndexRemove(index, old_value, node);
    MBQ_RETURN_IF_ERROR(IndexInsert(index, new_value, node));
  }
  return Status::OK();
}

Status GraphDb::CreateIndex(LabelId label, PropKeyId key, bool unique) {
  if (HasIndex(label, key)) {
    return Status::AlreadyExists("index already exists");
  }
  IndexDef index;
  index.label = label;
  index.key = key;
  index.unique = unique;
  index.stream = accountant_->NewStream();
  // Population scan: read every labelled node and its property chain.
  Status status = Status::OK();
  MBQ_RETURN_IF_ERROR(ForEachNodeWithLabel(label, [&](NodeId id) {
    auto value = GetNodeProperty(id, key);
    if (!value.ok()) {
      status = value.status();
      return false;
    }
    if (!value->is_null()) {
      Status st = IndexInsert(index, *value, id);
      if (!st.ok()) {
        status = st;
        return false;
      }
    }
    return true;
  }));
  MBQ_RETURN_IF_ERROR(status);
  indexes_.push_back(std::move(index));
  LogOp(kWalCreateIndex, label, key, unique ? 1 : 0);
  return Status::OK();
}

Result<NodeId> GraphDb::IndexSeek(LabelId label, PropKeyId key,
                                  const Value& value) {
  IndexDef* index = FindIndexDef(label, key);
  if (index == nullptr) return Status::NotFound("no such index");
  MBQ_RETURN_IF_ERROR(TouchIndex(*index, value));
  db_hits_.Inc();  // index lookups count as hits in the profiler
  auto it = index->entries.find(value);
  if (it == index->entries.end() || it->second.empty()) {
    return kInvalidNode;
  }
  return it->second.front();
}

Result<std::vector<NodeId>> GraphDb::IndexLookup(LabelId label, PropKeyId key,
                                                 const Value& value) {
  IndexDef* index = FindIndexDef(label, key);
  if (index == nullptr) return Status::NotFound("no such index");
  MBQ_RETURN_IF_ERROR(TouchIndex(*index, value));
  db_hits_.Inc();
  auto it = index->entries.find(value);
  if (it == index->entries.end()) return std::vector<NodeId>{};
  return it->second;
}

std::vector<GraphDb::IndexInfo> GraphDb::IndexCatalog() const {
  std::vector<IndexInfo> out;
  out.reserve(indexes_.size());
  for (const IndexDef& index : indexes_) {
    out.push_back({index.label, index.key, index.unique,
                   static_cast<uint64_t>(index.entries.size())});
  }
  return out;
}

Status GraphDb::ForEachIndexEntry(
    LabelId label, PropKeyId key,
    const std::function<bool(const Value&, NodeId)>& fn) const {
  const IndexDef* def = nullptr;
  for (const IndexDef& index : indexes_) {
    if (index.label == label && index.key == key) {
      def = &index;
      break;
    }
  }
  if (def == nullptr) return Status::NotFound("no such index");
  for (const auto& [value, nodes] : def->entries) {
    for (NodeId node : nodes) {
      if (!fn(value, node)) return Status::OK();
    }
  }
  return Status::OK();
}

// --------------------------------------------------------------- Integrity

NodeId GraphDb::NodeHighId() const { return node_store_->high_id(); }

std::vector<RecordId> GraphDb::RelHighIds() const {
  std::vector<RecordId> out;
  if (!options_.semantic_partitioning) {
    out.push_back(rel_store_->high_id());
    return out;
  }
  out.reserve(typed_rel_stores_.size());
  for (const auto& store : typed_rel_stores_) {
    out.push_back(store->high_id());
  }
  return out;
}

Result<NodeRecord> GraphDb::RawNodeRecord(NodeId id) {
  if (id >= node_store_->high_id()) {
    return Status::OutOfRange("node id beyond store high id");
  }
  return node_store_->Get<NodeRecord>(id);
}

Result<RelRecord> GraphDb::RawRelRecord(RelId id) {
  if (options_.semantic_partitioning) {
    uint64_t partition = id >> 48;
    if (partition == 0 || partition - 1 >= typed_rel_stores_.size() ||
        (id & kRelLocalMask) >= typed_rel_stores_[partition - 1]->high_id()) {
      return Status::OutOfRange("rel id beyond store high id");
    }
  } else if (id >= rel_store_->high_id()) {
    return Status::OutOfRange("rel id beyond store high id");
  }
  return GetRel(id);
}

Status GraphDb::RawPutRelRecord(RelId id, const RelRecord& rec) {
  return PutRel(id, rec);
}

Status GraphDb::ForEachRawRel(
    const std::function<bool(RelId, const RelRecord&)>& fn) {
  if (!options_.semantic_partitioning) {
    for (RecordId id = 0; id < rel_store_->high_id(); ++id) {
      MBQ_ASSIGN_OR_RETURN(RelRecord rec, rel_store_->Get<RelRecord>(id));
      if (!fn(id, rec)) return Status::OK();
    }
    return Status::OK();
  }
  for (size_t partition = 0; partition < typed_rel_stores_.size();
       ++partition) {
    RecordFile* store = typed_rel_stores_[partition].get();
    for (RecordId local = 0; local < store->high_id(); ++local) {
      MBQ_ASSIGN_OR_RETURN(RelRecord rec, store->Get<RelRecord>(local));
      RelId id = ((partition + 1) << 48) | local;
      if (!fn(id, rec)) return Status::OK();
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------ Transactions

GraphDb::Transaction::Transaction(GraphDb* db) : db_(db), active_(true) {
  MBQ_CHECK(!db_->in_tx_);  // no nested transactions
  db_->in_tx_ = true;
  db_->undo_log_.clear();
}

GraphDb::Transaction::~Transaction() {
  if (active_) {
    Status st = Rollback();
    if (!st.ok()) {
      MBQ_ERROR() << "rollback failed: " << st.ToString();
    }
  }
}

Status GraphDb::Transaction::Commit() {
  if (!active_) return Status::FailedPrecondition("transaction closed");
  active_ = false;
  db_->in_tx_ = false;
  db_->undo_log_.clear();
  if (db_->options_.wal_enabled) {
    return db_->wal_->Sync();
  }
  return Status::OK();
}

Status GraphDb::Transaction::Rollback() {
  if (!active_) return Status::FailedPrecondition("transaction closed");
  active_ = false;
  db_->in_tx_ = false;
  std::vector<std::function<Status()>> undos;
  undos.swap(db_->undo_log_);
  // Apply inverse operations newest-first.
  for (auto it = undos.rbegin(); it != undos.rend(); ++it) {
    MBQ_RETURN_IF_ERROR((*it)());
  }
  return Status::OK();
}

// ----------------------------------------------------------------- Control

Status GraphDb::Flush() { return cache_->FlushAll(); }

Status GraphDb::DropCaches() { return cache_->EvictAll(); }

storage::BufferCacheStats GraphDb::cache_stats() const {
  return cache_->stats();
}

storage::DiskStats GraphDb::disk_stats() const { return disk_->stats(); }

uint64_t GraphDb::DiskSizeBytes() const {
  return disk_->SizeBytes() + wal_disk_->SizeBytes();
}

uint64_t GraphDb::SimulatedIoNanos() const { return io_clock_->NowNanos(); }

Result<uint64_t> GraphDb::ComputeDenseNodes() {
  uint64_t dense = 0;
  for (NodeId id = 0; id < node_store_->high_id(); ++id) {
    MBQ_ASSIGN_OR_RETURN(NodeRecord rec, node_store_->Get<NodeRecord>(id));
    if (!rec.in_use) continue;
    // Walk the chains only as far as the threshold.
    uint64_t degree = 0;
    MBQ_RETURN_IF_ERROR(ForEachRelationship(
        id, Direction::kBoth, std::nullopt, [&](const RelInfo&) {
          return ++degree < options_.dense_node_threshold;
        }));
    bool is_dense = degree >= options_.dense_node_threshold;
    if (is_dense != rec.dense) {
      rec.dense = is_dense;
      MBQ_RETURN_IF_ERROR(node_store_->Put(id, rec));
    }
    if (is_dense) ++dense;
  }
  return dense;
}

}  // namespace mbq::nodestore

namespace mbq::nodestore {

Status GraphDb::RecoverInto(GraphDb* target) const {
  if (target->num_nodes_ != 0 || target->num_rels_ != 0 ||
      !target->label_names_.empty()) {
    return Status::FailedPrecondition(
        "RecoverInto requires a freshly constructed target");
  }
  target->replaying_ = true;
  Status status = wal_->Replay([&](uint64_t lsn,
                                   const std::vector<uint8_t>& payload)
                                   -> Status {
    if (payload.empty()) {
      return Status::Corruption("empty WAL record at lsn " +
                                std::to_string(lsn));
    }
    size_t offset = 1;
    switch (payload[0]) {
      case kWalNewLabel: {
        MBQ_ASSIGN_OR_RETURN(std::string name, ReadString(payload, &offset));
        return target->Label(name).status();
      }
      case kWalNewRelType: {
        MBQ_ASSIGN_OR_RETURN(std::string name, ReadString(payload, &offset));
        return target->RelType(name).status();
      }
      case kWalNewPropKey: {
        MBQ_ASSIGN_OR_RETURN(std::string name, ReadString(payload, &offset));
        target->PropKey(name);
        return Status::OK();
      }
      case kWalCreateIndex: {
        MBQ_ASSIGN_OR_RETURN(uint64_t label, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(uint64_t key, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(uint64_t unique, ReadU64(payload, &offset));
        return target->CreateIndex(static_cast<LabelId>(label),
                                   static_cast<PropKeyId>(key), unique != 0);
      }
      case kWalCreateNode: {
        MBQ_ASSIGN_OR_RETURN(uint64_t id, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(uint64_t label, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(NodeId created,
                             target->CreateNode(static_cast<LabelId>(label)));
        if (created != id) {
          return Status::Corruption("node id drift during recovery: logged " +
                                    std::to_string(id) + ", replayed " +
                                    std::to_string(created));
        }
        return Status::OK();
      }
      case kWalCreateRel: {
        MBQ_ASSIGN_OR_RETURN(uint64_t id, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(uint64_t src, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(uint64_t dst, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(uint64_t type, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(
            RelId created,
            target->CreateRelationship(static_cast<RelTypeId>(type), src,
                                       dst));
        if (created != id) {
          return Status::Corruption("rel id drift during recovery");
        }
        return Status::OK();
      }
      case kWalSetNodeProp: {
        MBQ_ASSIGN_OR_RETURN(uint64_t node, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(uint64_t key, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(Value value,
                             common::DecodeValue(payload, &offset));
        return target->SetNodeProperty(node, static_cast<PropKeyId>(key),
                                       value);
      }
      case kWalSetRelProp: {
        MBQ_ASSIGN_OR_RETURN(uint64_t rel, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(uint64_t key, ReadU64(payload, &offset));
        MBQ_ASSIGN_OR_RETURN(Value value,
                             common::DecodeValue(payload, &offset));
        return target->SetRelProperty(rel, static_cast<PropKeyId>(key),
                                      value);
      }
      case kWalDeleteRel: {
        MBQ_ASSIGN_OR_RETURN(uint64_t rel, ReadU64(payload, &offset));
        return target->DeleteRelationship(rel);
      }
      case kWalDeleteNode: {
        MBQ_ASSIGN_OR_RETURN(uint64_t node, ReadU64(payload, &offset));
        return target->DeleteNode(node);
      }
      default:
        return Status::Corruption("unknown WAL op " +
                                  std::to_string(payload[0]));
    }
  });
  target->replaying_ = false;
  MBQ_RETURN_IF_ERROR(status);
  return target->Flush();
}

}  // namespace mbq::nodestore
