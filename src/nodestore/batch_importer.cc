#include "nodestore/batch_importer.h"

#include <chrono>

#include "common/csv.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace mbq::nodestore {

using common::Value;

namespace {

double NowWallMillis() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

std::string ResolvePath(const std::string& base_dir, const std::string& path) {
  if (path.empty() || path[0] == '/' || base_dir.empty()) return path;
  return base_dir + "/" + path;
}

/// CSV fields become ints when they parse as ints, otherwise strings —
/// the untyped-header behaviour of the import tool at its simplest.
Value CoerceField(const std::string& field) {
  if (field.empty()) return Value::Null();
  auto as_int = mbq::ParseInt64(field);
  if (as_int.ok()) return Value::Int(*as_int);
  return Value::String(field);
}

}  // namespace

BatchImporter::BatchImporter(GraphDb* db) : db_(db) {}

void BatchImporter::SetProgressCallback(ProgressFn fn, uint64_t interval) {
  progress_ = std::move(fn);
  progress_interval_ = interval == 0 ? 1 : interval;
}

void BatchImporter::Report(const std::string& phase, uint64_t phase_objects,
                           bool force) {
  if (!progress_) return;
  if (!force && total_objects_ - last_report_ < progress_interval_) return;
  last_report_ = total_objects_;
  ImportProgress p;
  p.phase = phase;
  p.phase_objects = phase_objects;
  p.total_objects = total_objects_;
  p.wall_millis = NowWallMillis() - wall_start_millis_;
  p.io_millis =
      static_cast<double>(db_->SimulatedIoNanos() - io_start_nanos_) / 1e6;
  p.elapsed_millis = p.wall_millis + p.io_millis;
  progress_(p);
}

Status BatchImporter::ImportNodeFile(const ImportSpec::NodeFile& file,
                                     const std::string& base_dir) {
  MBQ_ASSIGN_OR_RETURN(LabelId label, db_->Label(file.label));
  MBQ_ASSIGN_OR_RETURN(common::CsvReader reader,
                       common::CsvReader::Open(
                           ResolvePath(base_dir, file.path)));
  if (file.properties.empty()) {
    return Status::InvalidArgument("node file needs at least a key column");
  }
  struct Bound {
    size_t csv_index;
    PropKeyId key;
  };
  std::vector<Bound> bound;
  for (const std::string& prop : file.properties) {
    MBQ_ASSIGN_OR_RETURN(size_t idx, reader.ColumnIndex(prop));
    bound.push_back({idx, db_->PropKey(prop)});
  }
  auto& mapper = id_mapper_[file.label];
  const std::string phase = "nodes:" + file.label;
  obs::TraceSpan span(trace_, phase);
  WallClock clock;
  uint64_t parse_nanos = 0;
  uint64_t insert_nanos = 0;
  std::vector<std::string> row;
  uint64_t phase_objects = 0;
  for (;;) {
    uint64_t t0 = clock.NowNanos();
    bool more = reader.NextRow(&row);
    uint64_t t1 = clock.NowNanos();
    parse_nanos += t1 - t0;
    if (!more) break;
    MBQ_ASSIGN_OR_RETURN(NodeId node, db_->CreateNode(label));
    for (const Bound& b : bound) {
      Value v = CoerceField(row[b.csv_index]);
      if (!v.is_null()) {
        MBQ_RETURN_IF_ERROR(db_->SetNodeProperty(node, b.key, v));
      }
    }
    mapper.emplace(row[bound[0].csv_index], node);
    insert_nanos += clock.NowNanos() - t1;
    ++nodes_imported_;
    ++total_objects_;
    ++phase_objects;
    Report(phase, phase_objects, false);
  }
  MBQ_RETURN_IF_ERROR(reader.status());
  if (trace_ != nullptr) {
    trace_->AppendChild("parse", static_cast<double>(parse_nanos) / 1e6,
                        phase_objects);
    trace_->AppendChild("node-insert",
                        static_cast<double>(insert_nanos) / 1e6,
                        phase_objects);
  }
  span.AddItems(phase_objects);
  obs::MetricsRegistry::Default()
      .GetCounter("nodestore.import.nodes", "nodes",
                  "nodes ingested by the batch importer")
      ->Inc(phase_objects);
  Report(phase, phase_objects, true);
  return Status::OK();
}

Status BatchImporter::ImportRelFile(const ImportSpec::RelFile& file,
                                    const std::string& base_dir) {
  MBQ_ASSIGN_OR_RETURN(RelTypeId type, db_->RelType(file.type));
  MBQ_ASSIGN_OR_RETURN(common::CsvReader reader,
                       common::CsvReader::Open(
                           ResolvePath(base_dir, file.path)));
  if (reader.header().size() < 2) {
    return Status::InvalidArgument("relationship CSV needs two columns");
  }
  auto src_mapper = id_mapper_.find(file.src_label);
  auto dst_mapper = id_mapper_.find(file.dst_label);
  if (src_mapper == id_mapper_.end() || dst_mapper == id_mapper_.end()) {
    return Status::FailedPrecondition(
        "relationship file references labels not yet imported");
  }
  const std::string phase = "rels:" + file.type;
  obs::TraceSpan span(trace_, phase);
  WallClock clock;
  uint64_t parse_nanos = 0;
  uint64_t link_nanos = 0;
  std::vector<std::string> row;
  uint64_t phase_objects = 0;
  for (;;) {
    uint64_t t0 = clock.NowNanos();
    bool more = reader.NextRow(&row);
    uint64_t t1 = clock.NowNanos();
    parse_nanos += t1 - t0;
    if (!more) break;
    auto src = src_mapper->second.find(row[0]);
    auto dst = dst_mapper->second.find(row[1]);
    if (src == src_mapper->second.end() || dst == dst_mapper->second.end()) {
      return Status::NotFound("relationship endpoint not found: " + row[0] +
                              " -> " + row[1]);
    }
    MBQ_RETURN_IF_ERROR(
        db_->CreateRelationship(type, src->second, dst->second).status());
    link_nanos += clock.NowNanos() - t1;
    ++rels_imported_;
    ++total_objects_;
    ++phase_objects;
    Report(phase, phase_objects, false);
  }
  MBQ_RETURN_IF_ERROR(reader.status());
  if (trace_ != nullptr) {
    trace_->AppendChild("parse", static_cast<double>(parse_nanos) / 1e6,
                        phase_objects);
    trace_->AppendChild("rel-chain-link",
                        static_cast<double>(link_nanos) / 1e6, phase_objects);
  }
  span.AddItems(phase_objects);
  obs::MetricsRegistry::Default()
      .GetCounter("nodestore.import.rels", "rels",
                  "relationships ingested by the batch importer")
      ->Inc(phase_objects);
  Report(phase, phase_objects, true);
  return Status::OK();
}

Status BatchImporter::Run(const ImportSpec& spec, const std::string& base_dir) {
  wall_start_millis_ = NowWallMillis();
  io_start_nanos_ = db_->SimulatedIoNanos();
  obs::TraceSpan import_span(trace_, "import:nodestore");

  for (const auto& file : spec.nodes) {
    MBQ_RETURN_IF_ERROR(ImportNodeFile(file, base_dir));
  }
  // "After the node import is complete, Neo4j performs additional steps,
  // for example, computing the dense nodes, before it proceeds with
  // importing the edges." We run the pass after relationships exist
  // (degree is defined then), and report it as its own phase either way.
  for (const auto& file : spec.rels) {
    MBQ_RETURN_IF_ERROR(ImportRelFile(file, base_dir));
  }

  {
    obs::TraceSpan dense_span(trace_, "dense-nodes");
    MBQ_ASSIGN_OR_RETURN(dense_nodes_, db_->ComputeDenseNodes());
    dense_span.AddItems(dense_nodes_);
  }
  obs::MetricsRegistry::Default()
      .GetCounter("nodestore.import.dense_nodes", "nodes",
                  "nodes flagged dense after import")
      ->Inc(dense_nodes_);
  Report("dense-nodes", dense_nodes_, true);

  // Index build happens strictly after import (the tool "cannot create
  // indexes while importing takes place").
  for (const auto& index : spec.indexes) {
    MBQ_ASSIGN_OR_RETURN(LabelId label, db_->FindLabel(index.label));
    PropKeyId key = db_->PropKey(index.property);
    obs::TraceSpan index_span(trace_,
                              "index:" + index.label + "." + index.property);
    MBQ_RETURN_IF_ERROR(db_->CreateIndex(label, key, index.unique));
    index_span.AddItems(db_->CountNodesWithLabel(label));
    Report("index:" + index.label + "." + index.property,
           db_->CountNodesWithLabel(label), true);
  }

  MBQ_RETURN_IF_ERROR(db_->Flush());
  if (post_import_check_) {
    obs::TraceSpan check_span(trace_, "post-import-check");
    MBQ_RETURN_IF_ERROR(post_import_check_());
  }
  import_span.AddItems(total_objects_);
  Report("done", 0, true);
  return Status::OK();
}

}  // namespace mbq::nodestore
