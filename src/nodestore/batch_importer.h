#ifndef MBQ_NODESTORE_BATCH_IMPORTER_H_
#define MBQ_NODESTORE_BATCH_IMPORTER_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/import_progress.h"
#include "common/value.h"
#include "nodestore/graph_db.h"
#include "obs/trace.h"

namespace mbq::nodestore {

using common::ImportProgress;
using common::ProgressFn;

/// What to import: CSV node files then CSV relationship files, in order —
/// the shape of Neo4j's `neo4j-import` invocation the paper used.
struct ImportSpec {
  struct NodeFile {
    std::string path;
    std::string label;
    /// CSV columns to ingest as properties (by header name). The first
    /// listed column is the node's key used to resolve relationship
    /// endpoints.
    std::vector<std::string> properties;
  };
  struct RelFile {
    std::string path;
    std::string type;
    /// Labels whose key column resolves the endpoints (first CSV column =
    /// source key, second = target key).
    std::string src_label;
    std::string dst_label;
  };
  std::vector<NodeFile> nodes;
  std::vector<RelFile> rels;
  /// Indexes to build after the data is loaded (the import tool "cannot
  /// create indexes while importing takes place").
  struct IndexSpec {
    std::string label;
    std::string property;
    bool unique = true;
  };
  std::vector<IndexSpec> indexes;
};

/// Bulk loader mirroring the Neo4j import tool's phases: stream node
/// files (writing continuously through the page cache), stream
/// relationship files, run the "additional steps" (dense-node
/// computation), then build indexes. Progress callbacks expose the
/// per-chunk timing series plotted in the paper's Figure 2.
///
/// The target database should be configured with `write_through = true`
/// and `wal_enabled = false` for a faithful import-tool setup.
class BatchImporter {
 public:
  explicit BatchImporter(GraphDb* db);

  /// Calls `fn` every `interval` imported entities and at phase ends.
  void SetProgressCallback(ProgressFn fn, uint64_t interval);

  /// Collects phase-level spans (per input file, split into parse vs
  /// insert, plus the dense-node and index-build steps) into `trace`.
  /// The log must outlive Run(); pass null to disable tracing.
  void SetTraceLog(obs::TraceLog* trace) { trace_ = trace; }

  /// Installs a verification step that runs after a successful import
  /// (post-flush); a non-OK return fails Run(). Wire it to
  /// core::CheckNodestore for an imported-data fsck — the importer
  /// cannot depend on the checker directly, so the caller supplies it.
  void SetPostImportCheck(std::function<Status()> check) {
    post_import_check_ = std::move(check);
  }

  /// Runs the import. Relative CSV paths resolve under `base_dir`.
  Status Run(const ImportSpec& spec, const std::string& base_dir);

  uint64_t nodes_imported() const { return nodes_imported_; }
  uint64_t rels_imported() const { return rels_imported_; }
  uint64_t dense_nodes() const { return dense_nodes_; }

 private:
  Status ImportNodeFile(const ImportSpec::NodeFile& file,
                        const std::string& base_dir);
  Status ImportRelFile(const ImportSpec::RelFile& file,
                       const std::string& base_dir);
  void Report(const std::string& phase, uint64_t phase_objects, bool force);

  GraphDb* db_;
  ProgressFn progress_;
  std::function<Status()> post_import_check_;
  obs::TraceLog* trace_ = nullptr;
  uint64_t progress_interval_ = 100000;
  uint64_t nodes_imported_ = 0;
  uint64_t rels_imported_ = 0;
  uint64_t dense_nodes_ = 0;
  uint64_t total_objects_ = 0;
  uint64_t last_report_ = 0;
  double wall_start_millis_ = 0;
  uint64_t io_start_nanos_ = 0;
  /// Per-label key -> node id mapper (the import tool's id mapper).
  std::unordered_map<std::string,
                     std::unordered_map<std::string, NodeId>>
      id_mapper_;
};

}  // namespace mbq::nodestore

#endif  // MBQ_NODESTORE_BATCH_IMPORTER_H_
