#ifndef MBQ_NODESTORE_RECORD_FILE_H_
#define MBQ_NODESTORE_RECORD_FILE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "nodestore/records.h"
#include "storage/buffer_cache.h"
#include "util/result.h"

namespace mbq::nodestore {

/// The database's "db hits" tally, safe to bump from concurrent reader
/// threads: a relaxed atomic total plus a monotonic thread-local count.
/// The thread-local side gives the Cypher profiler exact per-operator
/// attribution on whichever thread an operator runs — deltas of
/// ThreadHits() around a call see only that thread's hits, unpolluted by
/// parallel workers or concurrent sessions.
class DbHitCounter {
 public:
  void Inc() {
    total_.fetch_add(1, std::memory_order_relaxed);
    ++tls_hits_;
  }
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  void Reset() { total_.store(0, std::memory_order_relaxed); }

  /// Hits charged by the calling thread since it started, across every
  /// database in the process (deltas, not absolute values, are meaningful).
  static uint64_t ThreadHits() { return tls_hits_; }

 private:
  std::atomic<uint64_t> total_{0};
  static thread_local uint64_t tls_hits_;
};

/// One store file of fixed-width records over the shared page cache —
/// the shape of Neo4j's neostore.*.db files. Every record access counts
/// one "db hit" toward the shared profiler counter, which is what the
/// Cypher layer's PROFILE output reports.
class RecordFile {
 public:
  /// `db_hits` is a shared counter owned by the database; may be null.
  RecordFile(std::string name, storage::BufferCache* cache,
             uint32_t record_size, DbHitCounter* db_hits);

  RecordFile(const RecordFile&) = delete;
  RecordFile& operator=(const RecordFile&) = delete;

  /// Allocates a record slot (recycling freed ids first) and returns its
  /// id. The slot's bytes are unspecified until the first Write.
  Result<RecordId> Allocate();

  /// Copies record `id` into `out` (record_size bytes).
  Status Read(RecordId id, uint8_t* out);

  /// Overwrites record `id` from `data` (record_size bytes).
  Status Write(RecordId id, const uint8_t* data);

  /// Returns `id` to the free list. The caller must already have written
  /// the record with its in_use flag cleared.
  Status Free(RecordId id);

  /// Typed convenience wrappers for the record structs in records.h.
  template <typename R>
  Result<R> Get(RecordId id) {
    uint8_t buf[128];
    MBQ_RETURN_IF_ERROR(Read(id, buf));
    return R::DecodeFrom(buf);
  }
  template <typename R>
  Status Put(RecordId id, const R& record) {
    uint8_t buf[128] = {};
    record.EncodeTo(buf);
    return Write(id, buf);
  }

  const std::string& name() const { return name_; }
  uint32_t record_size() const { return record_size_; }
  /// One past the highest id ever allocated.
  RecordId high_id() const { return high_id_; }
  /// Records currently allocated (high_id minus free-list size).
  uint64_t num_records() const { return high_id_ - free_list_.size(); }
  uint64_t pages_used() const { return pages_.size(); }

 private:
  Result<storage::PageRef> PageForRecord(RecordId id, bool for_init);

  std::string name_;
  storage::BufferCache* cache_;
  uint32_t record_size_;
  uint32_t records_per_page_;
  DbHitCounter* db_hits_;
  std::vector<storage::PageId> pages_;
  std::vector<RecordId> free_list_;
  RecordId high_id_ = 0;
};

}  // namespace mbq::nodestore

#endif  // MBQ_NODESTORE_RECORD_FILE_H_
