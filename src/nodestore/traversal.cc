#include "nodestore/traversal.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace mbq::nodestore {

Status TraversalDescription::Traverse(
    NodeId start, const std::function<bool(const TraversalPath&)>& visit) {
  std::unordered_set<NodeId> visited;
  visited.insert(start);

  std::deque<TraversalPath> work;
  TraversalPath initial;
  initial.nodes.push_back(start);
  work.push_back(std::move(initial));

  while (!work.empty()) {
    TraversalPath path = order_ == TraversalOrder::kBreadthFirst
                             ? std::move(work.front())
                             : std::move(work.back());
    if (order_ == TraversalOrder::kBreadthFirst) {
      work.pop_front();
    } else {
      work.pop_back();
    }

    bool report = !report_depth_.has_value() || path.depth() == *report_depth_;
    if (report && !visit(path)) return Status::OK();
    if (path.depth() >= max_depth_) continue;

    auto expand = [&](RelTypeId type, Direction dir,
                      bool any_type) -> Status {
      return db_->ForEachRelationship(
          path.end(), dir, any_type ? std::nullopt : std::optional(type),
          [&](const GraphDb::RelInfo& rel) {
            if (uniqueness_ == Uniqueness::kNodeGlobal) {
              if (visited.count(rel.other) != 0) return true;
              visited.insert(rel.other);
            } else if (std::find(path.nodes.begin(), path.nodes.end(),
                                 rel.other) != path.nodes.end()) {
              return true;  // avoid cycles within one path
            }
            TraversalPath next = path;
            next.nodes.push_back(rel.other);
            next.rels.push_back(rel.id);
            work.push_back(std::move(next));
            return true;
          });
    };

    if (expansions_.empty()) {
      MBQ_RETURN_IF_ERROR(expand(0, Direction::kBoth, /*any_type=*/true));
    } else {
      for (const Expansion& e : expansions_) {
        MBQ_RETURN_IF_ERROR(expand(e.type, e.dir, /*any_type=*/false));
      }
    }
  }
  return Status::OK();
}

Result<std::vector<NodeId>> BidirectionalShortestPath::Find(NodeId source,
                                                            NodeId target) {
  nodes_expanded_ = 0;
  if (source == target) return std::vector<NodeId>{source};

  // parent maps double as visited sets; kInvalidNode marks the roots.
  std::unordered_map<NodeId, NodeId> fwd_parent{{source, kInvalidNode}};
  std::unordered_map<NodeId, NodeId> bwd_parent{{target, kInvalidNode}};
  std::vector<NodeId> fwd_frontier{source};
  std::vector<NodeId> bwd_frontier{target};

  Direction fwd_dir = dir_;
  Direction bwd_dir = dir_ == Direction::kOutgoing ? Direction::kIncoming
                      : dir_ == Direction::kIncoming ? Direction::kOutgoing
                                                     : Direction::kBoth;

  auto build_path = [&](NodeId meet) {
    std::vector<NodeId> path;
    for (NodeId at = meet; at != kInvalidNode; at = fwd_parent[at]) {
      path.push_back(at);
    }
    std::reverse(path.begin(), path.end());
    for (NodeId at = bwd_parent[meet]; at != kInvalidNode;
         at = bwd_parent[at]) {
      path.push_back(at);
    }
    return path;
  };

  uint32_t hops = 0;
  while (!fwd_frontier.empty() && !bwd_frontier.empty() && hops < max_hops_) {
    ++hops;
    // Expand the smaller frontier (the bidirectional advantage).
    bool forward = fwd_frontier.size() <= bwd_frontier.size();
    auto& frontier = forward ? fwd_frontier : bwd_frontier;
    auto& parent = forward ? fwd_parent : bwd_parent;
    auto& other_parent = forward ? bwd_parent : fwd_parent;
    Direction dir = forward ? fwd_dir : bwd_dir;

    std::vector<NodeId> next;
    NodeId meet = kInvalidNode;
    for (NodeId node : frontier) {
      ++nodes_expanded_;
      MBQ_RETURN_IF_ERROR(db_->ForEachRelationship(
          node, dir, type_, [&](const GraphDb::RelInfo& rel) {
            if (parent.count(rel.other) != 0) return true;
            parent.emplace(rel.other, node);
            if (other_parent.count(rel.other) != 0) {
              meet = rel.other;
              return false;
            }
            next.push_back(rel.other);
            return true;
          }));
      if (meet != kInvalidNode) return build_path(meet);
    }
    frontier = std::move(next);
  }
  return std::vector<NodeId>{};
}

}  // namespace mbq::nodestore
