#include "nodestore/record_file.h"

#include "util/logging.h"

namespace mbq::nodestore {

using storage::kPageSize;
using storage::PageRef;

thread_local uint64_t DbHitCounter::tls_hits_ = 0;

RecordFile::RecordFile(std::string name, storage::BufferCache* cache,
                       uint32_t record_size, DbHitCounter* db_hits)
    : name_(std::move(name)),
      cache_(cache),
      record_size_(record_size),
      records_per_page_(kPageSize / record_size),
      db_hits_(db_hits) {
  MBQ_CHECK(record_size_ > 0 && record_size_ <= 128);
  MBQ_CHECK(records_per_page_ > 0);
}

Result<PageRef> RecordFile::PageForRecord(RecordId id, bool for_init) {
  uint64_t page_index = id / records_per_page_;
  while (pages_.size() <= page_index) {
    // Extend the store file by one page; the page is not read back.
    MBQ_ASSIGN_OR_RETURN(PageRef ref, cache_->NewPage());
    pages_.push_back(ref.page_id());
    ref.MarkDirty();
  }
  if (for_init) return cache_->GetPageForInit(pages_[page_index]);
  return cache_->GetPage(pages_[page_index]);
}

Result<RecordId> RecordFile::Allocate() {
  if (!free_list_.empty()) {
    RecordId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  return high_id_++;
}

Status RecordFile::Read(RecordId id, uint8_t* out) {
  if (id >= high_id_) {
    return Status::OutOfRange(name_ + ": record " + std::to_string(id) +
                              " past high id " + std::to_string(high_id_));
  }
  if (db_hits_ != nullptr) db_hits_->Inc();
  MBQ_ASSIGN_OR_RETURN(PageRef ref, PageForRecord(id, /*for_init=*/false));
  uint64_t offset = (id % records_per_page_) * record_size_;
  std::memcpy(out, ref.data() + offset, record_size_);
  return Status::OK();
}

Status RecordFile::Write(RecordId id, const uint8_t* data) {
  if (id >= high_id_) {
    return Status::OutOfRange(name_ + ": record " + std::to_string(id) +
                              " past high id " + std::to_string(high_id_));
  }
  if (db_hits_ != nullptr) db_hits_->Inc();
  MBQ_ASSIGN_OR_RETURN(PageRef ref, PageForRecord(id, /*for_init=*/false));
  uint64_t offset = (id % records_per_page_) * record_size_;
  std::memcpy(ref.data() + offset, data, record_size_);
  ref.MarkDirty();
  return Status::OK();
}

Status RecordFile::Free(RecordId id) {
  if (id >= high_id_) {
    return Status::OutOfRange(name_ + ": freeing unallocated record");
  }
  free_list_.push_back(id);
  return Status::OK();
}

}  // namespace mbq::nodestore
