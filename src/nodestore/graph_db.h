#ifndef MBQ_NODESTORE_GRAPH_DB_H_
#define MBQ_NODESTORE_GRAPH_DB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/epoch.h"
#include "common/value.h"
#include "nodestore/record_file.h"
#include "nodestore/records.h"
#include "obs/metrics.h"
#include "storage/buffer_cache.h"
#include "storage/simulated_disk.h"
#include "storage/storage_accountant.h"
#include "storage/wal.h"
#include "util/clock.h"
#include "util/result.h"

namespace mbq::nodestore {

using common::Value;

using NodeId = RecordId;
using RelId = RecordId;
inline constexpr NodeId kInvalidNode = kNullRecord;
inline constexpr RelId kInvalidRel = kNullRecord;

enum class Direction : uint8_t { kOutgoing, kIncoming, kBoth };

/// Engine configuration.
struct GraphDbOptions {
  /// Page cache size in bytes.
  uint64_t cache_bytes = 64ull << 20;
  /// Log every mutation to the write-ahead log and sync on commit.
  bool wal_enabled = true;
  /// Write dirty pages straight through to disk (the import tool "writes
  /// continuously and concurrently to disk") instead of write-back.
  bool write_through = false;
  /// Latency model of the backing device.
  storage::DiskProfile disk_profile;
  /// Degree at or above which the dense-node pass marks a node dense.
  uint64_t dense_node_threshold = 50;
  /// Semantic-aware storage (the paper's §5 future work: "to represent
  /// the posts relationship different from a follows ... how semantically
  /// related nodes can be stored/partitioned when the queries are
  /// known"): keep one relationship store file per relationship type, so
  /// a chain walk over one type stays within that type's pages instead of
  /// interleaving with every other type's records.
  bool semantic_partitioning = false;
  /// Registry this database reports its `nodestore.*` metrics to;
  /// null means the process-wide obs::MetricsRegistry::Default().
  obs::MetricsRegistry* metrics = nullptr;
};

/// A transactional property-graph engine with Neo4j's storage
/// architecture: fixed-width record stores (nodes, relationships,
/// properties, dynamic strings) over a page cache, per-node doubly-linked
/// relationship chains, a label scan store, and optional unique property
/// indexes. Drive it directly (the "core API"), through the traversal
/// framework (traversal.h), or declaratively through mini-Cypher
/// (src/cypher).
class GraphDb {
 public:
  explicit GraphDb(GraphDbOptions options = GraphDbOptions());
  ~GraphDb();

  GraphDb(const GraphDb&) = delete;
  GraphDb& operator=(const GraphDb&) = delete;

  // ---------------------------------------------------------- Registries
  /// Gets or creates the label named `name`.
  Result<LabelId> Label(const std::string& name);
  /// Looks up an existing label.
  Result<LabelId> FindLabel(const std::string& name) const;
  const std::string& LabelName(LabelId label) const;

  /// Gets or creates the relationship type named `name`.
  Result<RelTypeId> RelType(const std::string& name);
  Result<RelTypeId> FindRelType(const std::string& name) const;
  const std::string& RelTypeName(RelTypeId type) const;

  /// Gets or creates the property key named `name`.
  PropKeyId PropKey(const std::string& name);
  Result<PropKeyId> FindPropKey(const std::string& name) const;
  const std::string& PropKeyName(PropKeyId key) const;

  // -------------------------------------------------------------- Writes
  /// Creates a node with `label`.
  Result<NodeId> CreateNode(LabelId label);
  /// Creates a relationship of `type` from `src` to `dst`.
  Result<RelId> CreateRelationship(RelTypeId type, NodeId src, NodeId dst);
  /// Sets (or clears, when `value` is null) a node property.
  Status SetNodeProperty(NodeId node, PropKeyId key, const Value& value);
  Status SetRelProperty(RelId rel, PropKeyId key, const Value& value);
  /// Deletes a relationship, unlinking both chains.
  Status DeleteRelationship(RelId rel);
  /// Deletes a node; fails (FailedPrecondition) if relationships remain,
  /// matching Neo4j's DELETE semantics.
  Status DeleteNode(NodeId node);
  /// Deletes a node after deleting all its relationships (DETACH DELETE).
  Status DetachDeleteNode(NodeId node);

  // --------------------------------------------------------------- Reads
  /// True if `node` is allocated and in use.
  bool NodeExists(NodeId node);
  bool RelExists(RelId rel);
  Result<LabelId> NodeLabel(NodeId node);
  Result<Value> GetNodeProperty(NodeId node, PropKeyId key);
  Result<Value> GetRelProperty(RelId rel, PropKeyId key);

  struct RelInfo {
    RelId id = kInvalidRel;
    RelTypeId type = kInvalidRelType;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    /// The chain endpoint opposite to the node being expanded.
    NodeId other = kInvalidNode;
  };
  /// Walks `node`'s relationship chain, invoking `fn` for each match;
  /// `fn` returning false stops the walk.
  Status ForEachRelationship(NodeId node, Direction dir,
                             std::optional<RelTypeId> type,
                             const std::function<bool(const RelInfo&)>& fn);
  /// Number of matching relationships (walks the chain).
  Result<uint64_t> Degree(NodeId node, Direction dir,
                          std::optional<RelTypeId> type);
  Result<RelInfo> GetRelationship(RelId rel);

  // ---------------------------------------------------------- Label scan
  /// Iterates all nodes with `label` in id order.
  Status ForEachNodeWithLabel(LabelId label,
                              const std::function<bool(NodeId)>& fn);
  uint64_t CountNodesWithLabel(LabelId label) const;

  // ---------------------------------------------------- Schema catalogue
  /// All registered names, indexed by id — the linter's schema catalogue
  /// (unknown-label / unknown-rel-type suggestions) and checkdb's walk.
  const std::vector<std::string>& LabelNames() const { return label_names_; }
  const std::vector<std::string>& RelTypeNames() const {
    return rel_type_names_;
  }
  const std::vector<std::string>& PropKeyNames() const {
    return prop_key_names_;
  }

  // --------------------------------------------------------------- Index
  /// Builds an index on (label, key) by scanning the label's nodes.
  /// `unique` rejects duplicate values during build and later inserts.
  Status CreateIndex(LabelId label, PropKeyId key, bool unique);
  bool HasIndex(LabelId label, PropKeyId key) const;
  /// Index descriptors without entries, for the linter and checkdb.
  struct IndexInfo {
    LabelId label;
    PropKeyId key;
    bool unique;
    uint64_t entries;  // distinct indexed values
  };
  std::vector<IndexInfo> IndexCatalog() const;
  /// Iterates every (value, node) pair of the (label, key) index in value
  /// order; `fn` returning false stops. NotFound without such an index.
  Status ForEachIndexEntry(
      LabelId label, PropKeyId key,
      const std::function<bool(const Value&, NodeId)>& fn) const;
  /// Point lookup in a unique index.
  Result<NodeId> IndexSeek(LabelId label, PropKeyId key, const Value& value);
  /// All nodes with the given value (non-unique indexes).
  Result<std::vector<NodeId>> IndexLookup(LabelId label, PropKeyId key,
                                          const Value& value);

  // -------------------------------------------------------- Transactions
  /// RAII transaction scope. Mutations made while a transaction is open
  /// are logged; Commit() makes them durable; destruction without commit
  /// rolls them back by applying inverse operations.
  class Transaction {
   public:
    explicit Transaction(GraphDb* db);
    ~Transaction();

    Transaction(const Transaction&) = delete;
    Transaction& operator=(const Transaction&) = delete;

    Status Commit();
    Status Rollback();
    bool active() const { return active_; }

   private:
    GraphDb* db_;
    bool active_;
  };

  Transaction BeginTx() { return Transaction(this); }

  // --------------------------------------------------------------- Stats
  /// Total record accesses (the Cypher profiler's "db hits"), across all
  /// threads. Per-thread deltas come from DbHitCounter::ThreadHits().
  uint64_t db_hits() const { return db_hits_.total(); }
  void ResetDbHits() { db_hits_.Reset(); }

  Status Flush();
  /// Evicts the page cache (cold-start simulation).
  Status DropCaches();

  /// Write epochs for read caches: every mutation bumps the epoch of the
  /// label/relationship-type domains it touches (cache::LabelDomain /
  /// cache::RelTypeDomain); result and adjacency caches stamp entries
  /// against this registry and drop them lazily on mismatch.
  const cache::EpochRegistry& epochs() const { return epochs_; }
  /// Mutable registry for embedders that bump domains of their own (the
  /// live write path publishes cache::kCommitEpochDomain per commit).
  cache::EpochRegistry& mutable_epochs() { return epochs_; }

  storage::BufferCacheStats cache_stats() const;
  storage::DiskStats disk_stats() const;
  uint64_t DiskSizeBytes() const;
  /// Simulated device time consumed so far (nanoseconds).
  uint64_t SimulatedIoNanos() const;
  uint64_t NumNodes() const { return num_nodes_; }
  uint64_t NumRels() const { return num_rels_; }
  const GraphDbOptions& options() const { return options_; }

  /// Marks nodes with degree >= dense_node_threshold as dense — the
  /// post-import "computing the dense nodes" step from the paper's
  /// Figure 2 narrative. Returns the number of dense nodes.
  Result<uint64_t> ComputeDenseNodes();

  /// Crash recovery: replays this database's durable write-ahead log into
  /// `target`, a freshly constructed GraphDb, reproducing every synced
  /// mutation (schema registrations, nodes, relationships, properties,
  /// deletions, index creations). Unsynced tail records are lost, as a
  /// crash would lose them. Limitations: the log carries no commit
  /// markers, so a transaction whose records straddle the durable
  /// boundary is partially applied; dense-node flags are derived state
  /// and must be recomputed.
  Status RecoverInto(GraphDb* target) const;

  // ---------------------------------------------------------- Integrity
  // Raw record access for the storage checker (src/core/check.cc). These
  // read/write records verbatim — no chain maintenance, no WAL, no undo —
  // so writes exist solely for fault injection in checkdb tests.
  /// One past the highest node id ever allocated.
  NodeId NodeHighId() const;
  /// Local high ids per relationship store: one entry (partition 0) when
  /// unpartitioned, one per typed store under semantic partitioning.
  std::vector<RecordId> RelHighIds() const;
  Result<NodeRecord> RawNodeRecord(NodeId id);
  Result<RelRecord> RawRelRecord(RelId id);
  /// Overwrites a relationship record verbatim (fault injection).
  Status RawPutRelRecord(RelId id, const RelRecord& rec);
  /// Iterates every allocated relationship slot (in-use or freed) across
  /// all stores, passing full (partition-carrying) ids; `fn` returning
  /// false stops.
  Status ForEachRawRel(
      const std::function<bool(RelId, const RelRecord&)>& fn);

 private:
  friend class Transaction;

  struct IndexDef {
    LabelId label;
    PropKeyId key;
    bool unique;
    std::map<Value, std::vector<NodeId>> entries;
    uint32_t stream = 0;
  };

  // WAL payload helpers.
  void LogRecord(std::vector<uint8_t> payload);
  void LogOp(uint8_t op, RecordId a, RecordId b, RecordId c);
  void LogOpWithValue(uint8_t op, RecordId a, RecordId b, const Value& value);
  void LogOpWithName(uint8_t op, const std::string& name);
  void PushUndo(std::function<Status()> undo);

  Status UnlinkRelationship(const RelRecord& rel, RelId rel_id);
  Result<Value> ReadPropertyChain(RecordId first_prop, PropKeyId key,
                                  bool* found);
  // Writes `value` under `key` into the chain headed at *first_prop,
  // updating *first_prop if a record is prepended. Null value removes.
  Status WritePropertyChain(RecordId* first_prop, PropKeyId key,
                            const Value& value);
  Result<Value> DecodeProp(const PropRecord& rec);
  Status FreePropertyChain(RecordId first_prop);
  IndexDef* FindIndexDef(LabelId label, PropKeyId key);
  Status IndexInsert(IndexDef& index, const Value& value, NodeId node);
  void IndexRemove(IndexDef& index, const Value& value, NodeId node);
  Status TouchIndex(const IndexDef& index, const Value& value);
  // Maintains indexes when a node property changes.
  Status UpdateIndexesOnPropertyChange(NodeId node, PropKeyId key,
                                       const Value& old_value,
                                       const Value& new_value);

  GraphDbOptions options_;
  std::unique_ptr<VirtualClock> io_clock_;
  std::unique_ptr<storage::SimulatedDisk> disk_;
  std::unique_ptr<storage::BufferCache> cache_;
  std::unique_ptr<storage::SimulatedDisk> wal_disk_;
  std::unique_ptr<storage::Wal> wal_;
  std::unique_ptr<storage::ExtentAllocator> extents_;
  std::unique_ptr<storage::StorageAccountant> accountant_;

  // Relationship-store access, indirected so records can live either in
  // one shared file or in per-type files (semantic partitioning). Ids
  // carry the partition in their high 16 bits when partitioned.
  RecordFile* RelStoreFor(RelId id);
  RecordFile* RelStoreForType(RelTypeId type);
  Result<RelId> AllocateRel(RelTypeId type);
  Result<RelRecord> GetRel(RelId id);
  Status PutRel(RelId id, const RelRecord& rec);
  Status FreeRel(RelId id);

  // Chain heads. Without partitioning the head of a node's single chain
  // lives in its node record; with partitioning each (node, type) pair
  // has its own chain headed in a relationship-group record.
  Result<RecordId> GetChainHead(NodeId node, RelTypeId type);
  Status SetChainHead(NodeId node, RelTypeId type, RecordId head);
  /// Group record id for (node, type), creating it if asked.
  Result<RecordId> FindGroup(NodeId node, RelTypeId type, bool create);
  /// Walks one relationship chain starting at `head`.
  Status WalkChain(NodeId node, RecordId head, Direction dir,
                   std::optional<RelTypeId> type,
                   const std::function<bool(const RelInfo&)>& fn,
                   bool* stopped);

  DbHitCounter db_hits_;
  std::unique_ptr<RecordFile> node_store_;
  std::unique_ptr<RecordFile> rel_store_;
  /// Per-type stores, lazily created (semantic partitioning only).
  std::vector<std::unique_ptr<RecordFile>> typed_rel_stores_;
  /// Relationship-group store (semantic partitioning only).
  std::unique_ptr<RecordFile> group_store_;
  std::unique_ptr<RecordFile> prop_store_;
  std::unique_ptr<RecordFile> string_store_;

  std::vector<std::string> label_names_;
  std::unordered_map<std::string, LabelId> label_ids_;
  std::vector<std::string> rel_type_names_;
  std::unordered_map<std::string, RelTypeId> rel_type_ids_;
  std::vector<std::string> prop_key_names_;
  std::unordered_map<std::string, PropKeyId> prop_key_ids_;

  /// Label scan store: node ids per label, append-ordered. Stale entries
  /// (deleted/relabelled nodes) are filtered against the node record
  /// during scans.
  std::vector<std::vector<NodeId>> label_scan_;
  std::vector<uint64_t> label_counts_;

  std::vector<IndexDef> indexes_;

  uint64_t num_nodes_ = 0;
  uint64_t num_rels_ = 0;

  cache::EpochRegistry epochs_;

  bool in_tx_ = false;
  /// True while this database is the target of RecoverInto (suppresses
  /// re-logging of replayed operations).
  bool replaying_ = false;
  std::vector<std::function<Status()>> undo_log_;

  /// Reports this instance's `nodestore.*` gauges at snapshot time;
  /// unregisters automatically on destruction.
  obs::ScopedProvider metrics_provider_;
};

}  // namespace mbq::nodestore

#endif  // MBQ_NODESTORE_GRAPH_DB_H_
