#ifndef MBQ_CACHE_EPOCH_H_
#define MBQ_CACHE_EPOCH_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace mbq::cache {

/// Epoch-based invalidation for read caches. Every write path bumps the
/// epoch of the domains it touches (a label, a relationship type, an
/// object type); cached entries record the epochs they read and are
/// dropped lazily when any recorded epoch has moved on. Domains hash into
/// a fixed slot array, so a collision can only cause a *spurious*
/// invalidation (two domains sharing a slot bump each other) — never a
/// stale hit. The single-writer / concurrent-reader model from the
/// concurrency work carries over: bumps are release stores, validations
/// acquire loads, so readers that overlap a bump see either "still valid"
/// (their data predates the write and the write has not landed for them)
/// or "invalid" — both safe.
class EpochRegistry {
 public:
  static constexpr size_t kSlots = 256;

  /// Advances the epoch of `domain` (and the global epoch). Called at the
  /// start of every mutation touching the domain.
  void Bump(uint32_t domain) {
    slots_[domain % kSlots].fetch_add(1, std::memory_order_release);
    global_.fetch_add(1, std::memory_order_release);
  }

  /// Advances every slot — for writes whose footprint cannot be
  /// attributed to specific domains. Rare, so the 256 adds are fine.
  void BumpAll() {
    for (auto& slot : slots_) slot.fetch_add(1, std::memory_order_release);
    global_.fetch_add(1, std::memory_order_release);
  }

  uint64_t SlotEpoch(uint32_t domain) const {
    return slots_[domain % kSlots].load(std::memory_order_acquire);
  }
  uint64_t GlobalEpoch() const {
    return global_.load(std::memory_order_acquire);
  }

 private:
  std::array<std::atomic<uint64_t>, kSlots> slots_{};
  std::atomic<uint64_t> global_{0};
};

/// The epochs a cached entry observed when it was produced. A stamp with
/// `use_global` set validates against the global epoch (conservative: any
/// write invalidates); otherwise each recorded (domain, epoch) pair must
/// still match.
struct EpochStamp {
  std::vector<std::pair<uint32_t, uint64_t>> slots;
  uint64_t global = 0;
  bool use_global = false;

  bool Valid(const EpochRegistry& registry) const {
    if (use_global) return registry.GlobalEpoch() == global;
    for (const auto& [domain, epoch] : slots) {
      if (registry.SlotEpoch(domain) != epoch) return false;
    }
    return true;
  }

  size_t ByteSize() const {
    return sizeof(*this) + slots.capacity() * sizeof(slots[0]);
  }
};

/// Captures the current epochs of `domains` (or the global epoch when
/// `use_global`). Capture *before* the read it protects: a write landing
/// between capture and insertion then invalidates the entry, which is the
/// conservative direction.
EpochStamp CaptureStamp(const EpochRegistry& registry,
                        const std::vector<uint32_t>& domains, bool use_global);

/// Domain encodings. The nodestore keeps labels and relationship types in
/// separate id spaces, so they are interleaved into one domain space; the
/// bitmapstore's node and edge types already share a single TypeId space.
inline uint32_t LabelDomain(uint32_t label) { return label * 2; }
inline uint32_t RelTypeDomain(uint32_t type) { return type * 2 + 1; }
inline uint32_t TypeDomain(int32_t type) { return static_cast<uint32_t>(type); }

/// Domain bumped once per committed live-write batch by the snapshot
/// registry (store/delta/snapshot.h) — a coarse "something was written"
/// signal layered on top of the per-label/per-type bumps the mutations
/// themselves perform. Pinned to the top of the domain space so it only
/// collides with wrap-around label/type ids that no realistic schema
/// reaches.
inline constexpr uint32_t kCommitEpochDomain = 0xFFFFFFFFu;

}  // namespace mbq::cache

#endif  // MBQ_CACHE_EPOCH_H_
