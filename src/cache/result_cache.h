#ifndef MBQ_CACHE_RESULT_CACHE_H_
#define MBQ_CACHE_RESULT_CACHE_H_

#include <memory>
#include <string>
#include <string_view>

#include "cache/lru_cache.h"

namespace mbq::cache {

/// Canonicalizes query text for cache keying: trims and collapses every
/// whitespace run to one space, so reformattings of the same query share
/// an entry. Verb prefixes (PROFILE) must be stripped by the caller —
/// profiled and plain executions of one query are the same result.
std::string CanonicalQueryText(std::string_view query);

/// The sharded LRU query result cache: canonicalized query text +
/// serialized parameters -> an immutable payload (the cypher layer stores
/// columns, rows and the run's profile). Payloads are shared_ptr so a hit
/// is a refcount bump, not a deep copy; epoch stamps carry the plan's
/// label/rel-type footprint.
template <typename Payload>
class ResultCache {
 public:
  struct Options {
    size_t capacity = 256;  // entries
    size_t shards = 8;
    std::string metric_prefix = "cache.result";
  };

  ResultCache(const Options& options, const EpochRegistry* epochs)
      : cache_(LruOptions{options.capacity, options.shards,
                          options.metric_prefix},
               epochs) {}

  std::shared_ptr<const Payload> Get(const std::string& key) {
    std::shared_ptr<const Payload> out;
    if (cache_.Get(key, &out)) return out;
    return nullptr;
  }

  void Put(const std::string& key, std::shared_ptr<const Payload> payload,
           size_t payload_bytes, EpochStamp stamp) {
    cache_.Put(key, std::move(payload), payload_bytes + key.size(),
               std::move(stamp));
  }

  void Clear() { cache_.Clear(); }
  CacheStats stats() const { return cache_.stats(); }

 private:
  ShardedLruCache<std::string, std::shared_ptr<const Payload>> cache_;
};

}  // namespace mbq::cache

#endif  // MBQ_CACHE_RESULT_CACHE_H_
