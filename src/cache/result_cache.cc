#include "cache/result_cache.h"

#include <cctype>

namespace mbq::cache {

std::string CanonicalQueryText(std::string_view query) {
  std::string out;
  out.reserve(query.size());
  bool pending_space = false;
  for (char c : query) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}

}  // namespace mbq::cache
