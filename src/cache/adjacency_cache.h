#ifndef MBQ_CACHE_ADJACENCY_CACHE_H_
#define MBQ_CACHE_ADJACENCY_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/lru_cache.h"

namespace mbq::cache {

/// One memoized neighbor list: the edges incident to a node through one
/// edge/relationship type in one direction, with the opposite endpoints.
/// `neighbors[i]` is the other endpoint reached over `edges[i]`, in the
/// order the store produced them, so replaying a cached entry yields
/// exactly what the walk would have.
struct AdjacencyEntry {
  std::vector<uint64_t> neighbors;
  std::vector<uint64_t> edges;

  uint64_t degree() const { return neighbors.size(); }
  size_t ByteSize() const {
    return sizeof(*this) +
           (neighbors.capacity() + edges.capacity()) * sizeof(uint64_t);
  }
};

/// The hot adjacency cache: memoizes neighbor lists for high-degree
/// vertices (celebrities — the nodes whose expansions dominate Q3-Q5),
/// shared by the record-store Expand operator and the bitmap engine's
/// Neighbors loops. Entries are validated against the edge type's epoch
/// domain, so any write touching that type drops them lazily.
class AdjacencyCache {
 public:
  struct Options {
    size_t capacity = 4096;  // entries
    size_t shards = 8;
    /// Only lists at least this long are cached: short adjacency lists
    /// are cheap to re-walk, and skipping them keeps the cache for the
    /// hubs it exists for.
    uint64_t min_degree = 8;
    /// Metric prefix; empty disables obs wiring.
    std::string metric_prefix = "cache.adjacency";
  };

  AdjacencyCache(const Options& options, const EpochRegistry* epochs)
      : options_(options),
        cache_(LruOptions{options.capacity, options.shards,
                          options.metric_prefix},
               epochs) {}

  std::shared_ptr<const AdjacencyEntry> Get(uint64_t node, int32_t etype,
                                            uint8_t dir) {
    std::shared_ptr<const AdjacencyEntry> out;
    if (cache_.Get(Key{node, etype, dir}, &out)) return out;
    return nullptr;
  }

  /// Inserts unless the list is below the min-degree threshold or the
  /// stamp already expired.
  void Put(uint64_t node, int32_t etype, uint8_t dir,
           std::shared_ptr<const AdjacencyEntry> entry, EpochStamp stamp) {
    if (entry == nullptr || entry->degree() < options_.min_degree) return;
    size_t bytes = entry->ByteSize();
    cache_.Put(Key{node, etype, dir}, std::move(entry), bytes,
               std::move(stamp));
  }

  void Clear() { cache_.Clear(); }
  CacheStats stats() const { return cache_.stats(); }
  uint64_t min_degree() const { return options_.min_degree; }

 private:
  struct Key {
    uint64_t node = 0;
    int32_t etype = 0;
    uint8_t dir = 0;

    bool operator==(const Key& other) const {
      return node == other.node && etype == other.etype && dir == other.dir;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      uint64_t h = key.node * 0x9e3779b97f4a7c15ULL;
      h ^= (static_cast<uint64_t>(static_cast<uint32_t>(key.etype)) << 8) |
           key.dir;
      h *= 0xc2b2ae3d27d4eb4fULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };

  Options options_;
  ShardedLruCache<Key, std::shared_ptr<const AdjacencyEntry>, KeyHash> cache_;
};

}  // namespace mbq::cache

#endif  // MBQ_CACHE_ADJACENCY_CACHE_H_
