#ifndef MBQ_CACHE_LRU_CACHE_H_
#define MBQ_CACHE_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/epoch.h"
#include "obs/metrics.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace mbq::cache {

/// Point-in-time counters of one cache instance (the shell's `:cache`
/// view; process-wide totals go to obs under the cache's metric prefix).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

struct LruOptions {
  /// Maximum resident entries across all shards.
  size_t capacity = 1024;
  size_t shards = 8;
  /// Metric namespace, e.g. "cache.result" registers cache.result.hits,
  /// .misses, .evictions, .invalidations counters and .bytes/.entries
  /// gauges with obs::MetricsRegistry::Default(). Empty disables obs
  /// wiring (unit tests with private registries).
  std::string metric_prefix;
};

/// A sharded LRU map with epoch validation: Get() returns an entry only
/// while every epoch it recorded at insertion still matches the registry;
/// mismatched entries are erased lazily and counted as invalidations.
/// Each shard is guarded by its own mutex, so concurrent readers on
/// different shards never contend; values should be cheap to copy out
/// (shared_ptr payloads).
template <typename Key, typename V, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  ShardedLruCache(LruOptions options, const EpochRegistry* epochs)
      : options_(std::move(options)), epochs_(epochs) {
    if (options_.shards == 0) options_.shards = 1;
    if (options_.capacity < options_.shards) {
      options_.capacity = options_.shards;
    }
    shard_capacity_ = (options_.capacity + options_.shards - 1) /
                      options_.shards;
    shards_.reserve(options_.shards);
    for (size_t i = 0; i < options_.shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    if (!options_.metric_prefix.empty()) {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      const std::string& p = options_.metric_prefix;
      m_hits_ = r.GetCounter(p + ".hits", "hits", "cache lookups served");
      m_misses_ = r.GetCounter(p + ".misses", "misses",
                               "cache lookups that found nothing usable");
      m_evictions_ = r.GetCounter(p + ".evictions", "entries",
                                  "entries evicted by LRU capacity");
      m_invalidations_ =
          r.GetCounter(p + ".invalidations", "entries",
                       "entries dropped on epoch mismatch (stale)");
      provider_ = obs::ScopedProvider(&r, [this](obs::MetricsSink* sink) {
        const std::string& prefix = options_.metric_prefix;
        sink->Gauge(prefix + ".bytes",
                    static_cast<double>(
                        bytes_.load(std::memory_order_relaxed)),
                    "bytes");
        sink->Gauge(prefix + ".entries",
                    static_cast<double>(
                        entries_.load(std::memory_order_relaxed)),
                    "entries");
      });
    }
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Copies the value into *out and returns true on a valid hit; erases
  /// and misses when the entry's epochs have moved on.
  bool Get(const Key& key, V* out) {
    Shard& shard = ShardFor(key);
    util::ScopedLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      CountMiss();
      return false;
    }
    if (epochs_ != nullptr && !it->second->stamp.Valid(*epochs_)) {
      EraseLocked(shard, it);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      if (m_invalidations_ != nullptr) m_invalidations_->Inc();
      CountMiss();
      return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    *out = it->second->value;
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (m_hits_ != nullptr) m_hits_->Inc();
    return true;
  }

  /// Inserts (or replaces) `key`. An already-stale stamp is refused — a
  /// write landed while the value was being produced, so caching it could
  /// serve a stale read later.
  void Put(const Key& key, V value, size_t bytes, EpochStamp stamp) {
    if (epochs_ != nullptr && !stamp.Valid(*epochs_)) return;
    size_t entry_bytes = bytes + stamp.ByteSize() + sizeof(Entry);
    Shard& shard = ShardFor(key);
    util::ScopedLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) EraseLocked(shard, it);
    shard.lru.push_front(
        Entry{key, std::move(value), entry_bytes, std::move(stamp)});
    shard.index.emplace(key, shard.lru.begin());
    entries_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
    while (shard.lru.size() > shard_capacity_) {
      auto victim = std::prev(shard.lru.end());
      shard.index.erase(victim->key);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      bytes_.fetch_sub(victim->bytes, std::memory_order_relaxed);
      shard.lru.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (m_evictions_ != nullptr) m_evictions_->Inc();
    }
  }

  void Clear() {
    for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      util::ScopedLock lock(shard.mu);
      for (const Entry& e : shard.lru) {
        entries_.fetch_sub(1, std::memory_order_relaxed);
        bytes_.fetch_sub(e.bytes, std::memory_order_relaxed);
      }
      shard.lru.clear();
      shard.index.clear();
    }
  }

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.invalidations = invalidations_.load(std::memory_order_relaxed);
    s.entries = entries_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    return s;
  }

  size_t capacity() const { return options_.capacity; }

 private:
  struct Entry {
    Key key;
    V value;
    size_t bytes = 0;
    EpochStamp stamp;
  };
  /// LockRank::kCache: shard critical sections only touch the shard's own
  /// containers and lock-free obs counters — they never nest another lock.
  struct Shard {
    util::RankedMutex mu{util::LockRank::kCache, "cache.lru.shard"};
    /// front = most recently used
    std::list<Entry> lru MBQ_GUARDED_BY(mu);
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index
        MBQ_GUARDED_BY(mu);
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  void EraseLocked(Shard& shard,
                   typename std::unordered_map<
                       Key, typename std::list<Entry>::iterator,
                       Hash>::iterator it) MBQ_REQUIRES(shard.mu) {
    entries_.fetch_sub(1, std::memory_order_relaxed);
    bytes_.fetch_sub(it->second->bytes, std::memory_order_relaxed);
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }

  void CountMiss() {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (m_misses_ != nullptr) m_misses_->Inc();
  }

  LruOptions options_;
  const EpochRegistry* epochs_;
  size_t shard_capacity_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> bytes_{0};

  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_invalidations_ = nullptr;
  /// Declared last: destroyed first, and UnregisterProvider pulls final
  /// gauge values while the atomics above are still alive.
  obs::ScopedProvider provider_;
};

}  // namespace mbq::cache

#endif  // MBQ_CACHE_LRU_CACHE_H_
