#include "cache/epoch.h"

#include <algorithm>

namespace mbq::cache {

EpochStamp CaptureStamp(const EpochRegistry& registry,
                        const std::vector<uint32_t>& domains, bool use_global) {
  EpochStamp stamp;
  if (use_global) {
    stamp.use_global = true;
    stamp.global = registry.GlobalEpoch();
    return stamp;
  }
  stamp.slots.reserve(domains.size());
  for (uint32_t domain : domains) {
    uint32_t slot = domain % EpochRegistry::kSlots;
    bool seen = false;
    for (const auto& [prev, _] : stamp.slots) {
      if (prev % EpochRegistry::kSlots == slot) {
        seen = true;
        break;
      }
    }
    if (!seen) stamp.slots.emplace_back(domain, registry.SlotEpoch(domain));
  }
  return stamp;
}

}  // namespace mbq::cache
