#ifndef MBQ_STORE_DELTA_WRITE_BATCH_H_
#define MBQ_STORE_DELTA_WRITE_BATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace mbq::store {

/// One logical microblog write. The kinds mirror the live side of the
/// Table 2 surface (post a tweet, follow/unfollow, mention) rather than
/// raw record edits, so a single op stays meaningful across both store
/// backends and across the WAL: the same encoded op replays into the
/// record store and the bitmap store and produces the same graph.
enum class WriteOpKind : uint8_t {
  kPostTweet = 1,   ///< a = poster uid, b = tweet id (0 until assigned)
  kFollow = 2,      ///< a = follower uid, b = followee uid
  kUnfollow = 3,    ///< a = follower uid, b = followee uid (tombstone)
  kAddMention = 4,  ///< a = tweet id, b = mentioned uid
};

/// "post_tweet", "follow", "unfollow", "add_mention" — stable names used
/// by metrics, checkdb reports and the bench template registry.
const char* WriteOpKindName(WriteOpKind kind);

struct WriteOp {
  WriteOpKind kind = WriteOpKind::kFollow;
  int64_t a = 0;
  int64_t b = 0;
  std::string text;  ///< tweet text (kPostTweet only)

  bool operator==(const WriteOp& other) const {
    return kind == other.kind && a == other.a && b == other.b &&
           text == other.text;
  }
  bool operator!=(const WriteOp& other) const { return !(*this == other); }
};

/// The unit of change for the live write path. Single typed calls and
/// group commit share this one value type: `PostTweet(uid)` builds a
/// one-op batch, a load driver can pack many ops, and the WAL logs the
/// encoded batch either way — there is exactly one commit path.
class WriteBatch {
 public:
  WriteBatch& PostTweet(int64_t uid, std::string text = std::string()) {
    ops_.push_back({WriteOpKind::kPostTweet, uid, 0, std::move(text)});
    return *this;
  }
  WriteBatch& Follow(int64_t src_uid, int64_t dst_uid) {
    ops_.push_back({WriteOpKind::kFollow, src_uid, dst_uid, {}});
    return *this;
  }
  WriteBatch& Unfollow(int64_t src_uid, int64_t dst_uid) {
    ops_.push_back({WriteOpKind::kUnfollow, src_uid, dst_uid, {}});
    return *this;
  }
  WriteBatch& AddMention(int64_t tid, int64_t uid) {
    ops_.push_back({WriteOpKind::kAddMention, tid, uid, {}});
    return *this;
  }
  void Append(WriteOp op) { ops_.push_back(std::move(op)); }

  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }
  const std::vector<WriteOp>& ops() const { return ops_; }
  /// The commit path patches unassigned tweet ids in place.
  std::vector<WriteOp>& mutable_ops() { return ops_; }
  void clear() { ops_.clear(); }

  bool operator==(const WriteBatch& other) const {
    return ops_ == other.ops_;
  }

 private:
  std::vector<WriteOp> ops_;
};

/// Binary batch codec shared by the WAL and the (reserved) kWriteBatch
/// RPC frame: [u32 op count] then per op [u8 kind][i64 a][i64 b]
/// [u32 text len][text bytes], all little-endian fixed width.
void EncodeWriteBatch(const WriteBatch& batch, std::string* out);
Result<WriteBatch> DecodeWriteBatch(std::string_view in);

}  // namespace mbq::store

#endif  // MBQ_STORE_DELTA_WRITE_BATCH_H_
