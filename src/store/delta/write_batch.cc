#include "store/delta/write_batch.h"

#include <cstring>

namespace mbq::store {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(in->data());
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  in->remove_prefix(4);
  return true;
}

bool GetU64(std::string_view* in, uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!GetU32(in, &lo) || !GetU32(in, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

}  // namespace

const char* WriteOpKindName(WriteOpKind kind) {
  switch (kind) {
    case WriteOpKind::kPostTweet: return "post_tweet";
    case WriteOpKind::kFollow: return "follow";
    case WriteOpKind::kUnfollow: return "unfollow";
    case WriteOpKind::kAddMention: return "add_mention";
  }
  return "?";
}

void EncodeWriteBatch(const WriteBatch& batch, std::string* out) {
  PutU32(out, static_cast<uint32_t>(batch.size()));
  for (const WriteOp& op : batch.ops()) {
    out->push_back(static_cast<char>(op.kind));
    PutU64(out, static_cast<uint64_t>(op.a));
    PutU64(out, static_cast<uint64_t>(op.b));
    PutU32(out, static_cast<uint32_t>(op.text.size()));
    out->append(op.text);
  }
}

Result<WriteBatch> DecodeWriteBatch(std::string_view in) {
  uint32_t count = 0;
  if (!GetU32(&in, &count)) {
    return Status::Corruption("write batch: truncated op count");
  }
  WriteBatch batch;
  for (uint32_t i = 0; i < count; ++i) {
    if (in.empty()) {
      return Status::Corruption("write batch: truncated op kind");
    }
    uint8_t raw_kind = static_cast<uint8_t>(in.front());
    in.remove_prefix(1);
    if (raw_kind < static_cast<uint8_t>(WriteOpKind::kPostTweet) ||
        raw_kind > static_cast<uint8_t>(WriteOpKind::kAddMention)) {
      return Status::Corruption("write batch: unknown op kind " +
                                std::to_string(raw_kind));
    }
    WriteOp op;
    op.kind = static_cast<WriteOpKind>(raw_kind);
    uint64_t a = 0;
    uint64_t b = 0;
    uint32_t text_len = 0;
    if (!GetU64(&in, &a) || !GetU64(&in, &b) || !GetU32(&in, &text_len)) {
      return Status::Corruption("write batch: truncated op payload");
    }
    op.a = static_cast<int64_t>(a);
    op.b = static_cast<int64_t>(b);
    if (in.size() < text_len) {
      return Status::Corruption("write batch: truncated op text");
    }
    op.text.assign(in.data(), text_len);
    in.remove_prefix(text_len);
    batch.Append(std::move(op));
  }
  if (!in.empty()) {
    return Status::Corruption("write batch: trailing bytes after last op");
  }
  return batch;
}

}  // namespace mbq::store
