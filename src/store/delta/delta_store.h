#ifndef MBQ_STORE_DELTA_DELTA_STORE_H_
#define MBQ_STORE_DELTA_DELTA_STORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "store/delta/write_batch.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace mbq::store {

/// One committed op in the delta journal, stamped with the commit epoch
/// it became visible at (see SnapshotRegistry) and the WAL sequence of
/// its batch (0 when the engine runs without a WAL).
struct DeltaRecord {
  uint64_t seq = 0;    ///< WAL sequence of the containing batch
  uint64_t epoch = 0;  ///< commit epoch that published the op
  WriteOp op;
};

/// The log-structured in-memory half of the live write path, in the
/// spirit of ZipG's GraphLogStore: an append-only journal of every op
/// committed over the immutable bulk-loaded base. Because this repo's
/// commit path applies ops to the base store *at* commit (merge-on-
/// commit, under the SnapshotRegistry's exclusive section), readers
/// never consult the journal — it exists for introspection and for
/// `checkdb`, which replays it against the base store to prove that
/// delta and base agree (tombstone sanity, WAL/delta agreement).
///
/// Internally locked: appends take the mutex, accessors copy out under
/// it, so checkdb and the stats plane can observe a live engine safely.
class DeltaStore {
 public:
  /// Journals every op of `batch` at `epoch` / WAL sequence `seq`.
  void Append(const WriteBatch& batch, uint64_t epoch, uint64_t seq) {
    util::ScopedLock lock(mu_);
    for (const WriteOp& op : batch.ops()) {
      records_.push_back({seq, epoch, op});
      if (op.kind == WriteOpKind::kUnfollow) ++tombstones_;
    }
    ++batches_;
    if (epoch > last_epoch_) last_epoch_ = epoch;
    if (seq > last_seq_) last_seq_ = seq;
  }

  uint64_t ops() const {
    util::ScopedLock lock(mu_);
    return records_.size();
  }
  uint64_t batches() const {
    util::ScopedLock lock(mu_);
    return batches_;
  }
  /// Unfollow ops journaled — each one a tombstone over a base or delta
  /// follow edge.
  uint64_t tombstones() const {
    util::ScopedLock lock(mu_);
    return tombstones_;
  }
  uint64_t last_epoch() const {
    util::ScopedLock lock(mu_);
    return last_epoch_;
  }
  uint64_t last_seq() const {
    util::ScopedLock lock(mu_);
    return last_seq_;
  }

  /// A consistent copy of the journal (checkdb, tests, :writes).
  std::vector<DeltaRecord> SnapshotRecords() const {
    util::ScopedLock lock(mu_);
    return records_;
  }

  /// Visits every record under the lock; keep `fn` cheap — it runs with
  /// the kStore-ranked journal mutex held, so it may lock downward (the
  /// buffer cache, the disk) but never a snapshot/WAL/session lock.
  void ForEach(const std::function<void(const DeltaRecord&)>& fn) const {
    util::ScopedLock lock(mu_);
    for (const DeltaRecord& r : records_) fn(r);
  }

 private:
  /// LockRank::kStore: appended to inside the exclusive commit section
  /// (below kSnapshot and the kWal staging lock), walked by checkdb while
  /// it reads base-store pages (above kBufferCache/kDisk).
  mutable util::RankedMutex mu_{util::LockRank::kStore, "store.delta.journal"};
  std::vector<DeltaRecord> records_ MBQ_GUARDED_BY(mu_);
  uint64_t batches_ MBQ_GUARDED_BY(mu_) = 0;
  uint64_t tombstones_ MBQ_GUARDED_BY(mu_) = 0;
  uint64_t last_epoch_ MBQ_GUARDED_BY(mu_) = 0;
  uint64_t last_seq_ MBQ_GUARDED_BY(mu_) = 0;
};

}  // namespace mbq::store

#endif  // MBQ_STORE_DELTA_DELTA_STORE_H_
