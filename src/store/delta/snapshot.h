#ifndef MBQ_STORE_DELTA_SNAPSHOT_H_
#define MBQ_STORE_DELTA_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "cache/epoch.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace mbq::store {

/// Commit-epoch snapshot coordination for the live write path,
/// generalizing `cache::EpochRegistry`: the epoch registry answers "has
/// anything in my footprint changed?" for cached entries, while this
/// registry additionally guarantees *atomic visibility* — a reader that
/// opens a snapshot observes every committed batch entirely or not at
/// all, never a half-applied one.
///
/// The model stays the repo's single-writer / concurrent-readers
/// discipline, enforced rather than assumed: commits hold the registry
/// exclusively while they apply a batch to the base store, reads hold it
/// shared. The commit epoch advances exactly once per committed batch
/// (release store), so a snapshot's `epoch()` names the precise prefix
/// of the delta journal it can observe. Per-domain cache invalidation is
/// unchanged — base-store mutations keep bumping the engine's
/// `EpochRegistry` under the exclusive section, so PR 3 caches
/// invalidate correctly under churn.
class SnapshotRegistry {
 public:
  /// `epochs` is the engine's per-domain registry (borrowed, may be
  /// null); commits bump its global epoch as a conservative extra signal
  /// for cache layers that only watch the global counter.
  explicit SnapshotRegistry(cache::EpochRegistry* epochs = nullptr)
      : epochs_(epochs) {}

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// A shared-lock read view. While alive, no commit can apply, so every
  /// base-store read made under it sees the state as of `epoch()`.
  /// Default-constructed snapshots guard nothing (read-only engines).
  class ReadSnapshot {
   public:
    ReadSnapshot() = default;
    ReadSnapshot(ReadSnapshot&&) = default;
    ReadSnapshot& operator=(ReadSnapshot&&) = default;

    /// Number of batches committed before this snapshot opened.
    uint64_t epoch() const { return epoch_; }
    bool guarded() const { return lock_.owns_lock(); }

   private:
    friend class SnapshotRegistry;
    ReadSnapshot(std::shared_lock<util::RankedSharedMutex> lock, uint64_t epoch)
        : lock_(std::move(lock)), epoch_(epoch) {}

    std::shared_lock<util::RankedSharedMutex> lock_;
    uint64_t epoch_ = 0;
  };

  /// An exclusive commit section. `epoch()` is the epoch the commit will
  /// publish; the destructor publishes it (release) and then unlocks, so
  /// the next snapshot opened observes the full batch.
  class CommitGuard {
   public:
    /// Moves transfer publication duty: the moved-from guard must not
    /// publish the epoch a second time when it destructs.
    CommitGuard(CommitGuard&& other) noexcept
        : registry_(other.registry_),
          lock_(std::move(other.lock_)),
          epoch_(other.epoch_) {
      other.registry_ = nullptr;
    }
    CommitGuard& operator=(CommitGuard&&) = delete;

    uint64_t epoch() const { return epoch_; }

    ~CommitGuard() {
      if (registry_ == nullptr) return;
      registry_->committed_.store(epoch_, std::memory_order_release);
      if (registry_->epochs_ != nullptr) {
        // Redundant with the per-mutation bumps the base store already
        // performs, but keeps "one bump per commit" true even for
        // batches whose ops were all no-ops (e.g. raced unfollows).
        registry_->epochs_->Bump(cache::kCommitEpochDomain);
      }
    }

   private:
    friend class SnapshotRegistry;
    CommitGuard(SnapshotRegistry* registry,
                std::unique_lock<util::RankedSharedMutex> lock, uint64_t epoch)
        : registry_(registry), lock_(std::move(lock)), epoch_(epoch) {}

    SnapshotRegistry* registry_;
    std::unique_lock<util::RankedSharedMutex> lock_;
    uint64_t epoch_ = 0;
  };

  ReadSnapshot OpenSnapshot() {
    std::shared_lock<util::RankedSharedMutex> lock(mu_);
    return ReadSnapshot(std::move(lock),
                        committed_.load(std::memory_order_acquire));
  }

  CommitGuard BeginCommit() {
    std::unique_lock<util::RankedSharedMutex> lock(mu_);
    return CommitGuard(this, std::move(lock),
                       committed_.load(std::memory_order_relaxed) + 1);
  }

  /// Batches committed so far (acquire; pairs with the guard's release).
  uint64_t CommittedEpoch() const {
    return committed_.load(std::memory_order_acquire);
  }

 private:
  /// LockRank::kSnapshot: the widest engine lock — a commit holds it
  /// exclusively while applying to the base store (kStore, kBufferCache,
  /// kDisk), staging the WAL record (kWal) and creating metrics (kObs),
  /// so it ranks above that whole tier; only session/rpc sit higher.
  /// Holds are tracked through the std lock adapters, which stay movable
  /// (ReadSnapshot/CommitGuard transfer ownership by move), so there are
  /// no GUARDED_BY fields here — visibility is the committed_ atomic's
  /// release/acquire pair, documented on each member.
  util::RankedSharedMutex mu_{util::LockRank::kSnapshot,
                              "store.delta.snapshot"};
  std::atomic<uint64_t> committed_{0};
  cache::EpochRegistry* epochs_;
};

}  // namespace mbq::store

#endif  // MBQ_STORE_DELTA_SNAPSHOT_H_
