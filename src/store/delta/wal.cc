#include "store/delta/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"

namespace mbq::store {

namespace {

constexpr uint32_t kWalMagic = 0x4C57424Du;  // "MBWL" little-endian
constexpr size_t kHeaderBytes = 4 + 8 + 4 + 4;
constexpr const char* kWalFileName = "delta.wal";

struct WalMetrics {
  obs::Counter* records;
  obs::Counter* bytes;
  obs::Counter* fsyncs;
  obs::Counter* group_commits;
  obs::Counter* replay_records;
  obs::Counter* replay_dropped_bytes;

  static WalMetrics& Get() {
    static WalMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      WalMetrics m;
      m.records = r.GetCounter("wal.records", "records",
                               "write batches appended to the WAL");
      m.bytes =
          r.GetCounter("wal.bytes", "bytes", "bytes appended to the WAL");
      m.fsyncs = r.GetCounter("wal.fsyncs", "syncs",
                              "fsync calls issued by durability leaders");
      m.group_commits =
          r.GetCounter("wal.group_commits", "records",
                       "records made durable by a group fsync they "
                       "did not lead");
      m.replay_records = r.GetCounter(
          "wal.replay.records", "records",
          "clean records recovered by replay-on-open");
      m.replay_dropped_bytes = r.GetCounter(
          "wal.replay.dropped_bytes", "bytes",
          "torn/corrupt tail bytes truncated by replay-on-open");
      return m;
    }();
    return m;
  }
};

uint32_t ReadU32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t ReadU64(const char* p) {
  return static_cast<uint64_t>(ReadU32(p)) |
         (static_cast<uint64_t>(ReadU32(p + 4)) << 32);
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

Status WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("wal: write failed: ") +
                             std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint32_t WalCrc32(std::string_view data) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Wal::Wal(std::string path, int fd, uint32_t window_micros, uint64_t next_seq,
         uint64_t bytes)
    : path_(std::move(path)),
      window_micros_(window_micros),
      fd_(fd),
      next_seq_(next_seq),
      staged_seq_(next_seq - 1),
      durable_seq_(next_seq - 1),
      records_(next_seq - 1),
      bytes_(bytes) {}

Wal::~Wal() {
  util::RankedLock lock(mu_);
  if (!pending_.empty() && io_status_.ok()) FlushLocked(&lock);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Result<std::unique_ptr<Wal>> Wal::Open(const WalOptions& options,
                                       WalRecovery* recovery) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("wal: options.dir must be set");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("wal: cannot create directory " + options.dir +
                           ": " + std::strerror(errno));
  }
  std::string path = options.dir + "/" + kWalFileName;

  // ---- replay-on-open --------------------------------------------------
  WalRecovery local;
  WalRecovery* rec = recovery != nullptr ? recovery : &local;
  std::string contents;
  {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      char buf[1 << 16];
      for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        contents.append(buf, static_cast<size_t>(n));
      }
      ::close(fd);
    } else if (errno != ENOENT) {
      return Status::IoError("wal: cannot read " + path + ": " +
                             std::strerror(errno));
    }
  }
  size_t clean = 0;
  uint64_t last_seq = 0;
  while (contents.size() - clean >= kHeaderBytes) {
    const char* p = contents.data() + clean;
    if (ReadU32(p) != kWalMagic) break;
    uint64_t seq = ReadU64(p + 4);
    uint32_t len = ReadU32(p + 12);
    uint32_t crc = ReadU32(p + 16);
    if (contents.size() - clean - kHeaderBytes < len) break;  // torn tail
    std::string_view payload(p + kHeaderBytes, len);
    if (WalCrc32(payload) != crc) break;
    if (seq != last_seq + 1) break;  // sequence gap: treat as corrupt tail
    auto batch = DecodeWriteBatch(payload);
    if (!batch.ok()) break;
    rec->batches.push_back(*std::move(batch));
    last_seq = seq;
    clean += kHeaderBytes + len;
  }
  rec->records = rec->batches.size();
  rec->dropped_bytes = contents.size() - clean;
  rec->last_seq = last_seq;
  WalMetrics::Get().replay_records->Inc(rec->records);
  WalMetrics::Get().replay_dropped_bytes->Inc(rec->dropped_bytes);

  // ---- truncate the torn tail and reopen for append --------------------
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("wal: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(clean)) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::IoError("wal: cannot truncate torn tail of " + path +
                           ": " + std::strerror(saved));
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    int saved = errno;
    ::close(fd);
    return Status::IoError("wal: cannot seek " + path + ": " +
                           std::strerror(saved));
  }
  return std::unique_ptr<Wal>(new Wal(std::move(path), fd,
                                      options.group_commit_window_micros,
                                      last_seq + 1, clean));
}

Result<uint64_t> Wal::Stage(const WriteBatch& batch) {
  std::string payload;
  EncodeWriteBatch(batch, &payload);
  util::ScopedLock lock(mu_);
  if (!io_status_.ok()) return io_status_;
  uint64_t seq = next_seq_++;
  AppendU32(&pending_, kWalMagic);
  AppendU64(&pending_, seq);
  AppendU32(&pending_, static_cast<uint32_t>(payload.size()));
  AppendU32(&pending_, WalCrc32(payload));
  pending_.append(payload);
  staged_seq_ = seq;
  records_ += 1;
  bytes_ += kHeaderBytes + payload.size();
  WalMetrics::Get().records->Inc();
  WalMetrics::Get().bytes->Inc(kHeaderBytes + payload.size());
  return seq;
}

void Wal::FlushLocked(util::RankedLock* lock) {
  std::string buf = std::move(pending_);
  pending_.clear();
  uint64_t upto = staged_seq_;
  lock->unlock();
  Status status = WriteAll(fd_, buf.data(), buf.size());
  if (status.ok() && ::fsync(fd_) != 0) {
    status = Status::IoError(std::string("wal: fsync failed: ") +
                             std::strerror(errno));
  }
  WalMetrics::Get().fsyncs->Inc();
  lock->lock();
  if (!status.ok() && io_status_.ok()) io_status_ = status;
  if (upto > durable_seq_) durable_seq_ = upto;
}

Status Wal::WaitDurable(uint64_t seq) {
  util::RankedLock lock(mu_);
  for (;;) {
    if (durable_seq_ >= seq) {
      // Someone else's fsync covered this record.
      return io_status_;
    }
    if (!io_status_.ok()) return io_status_;
    if (!flusher_active_) break;
    // Explicit loop rather than the wait(lock, pred) overload: the
    // thread-safety analysis checks the predicate lambda separately and
    // would not see mu_ held around these guarded reads.
    while (durable_seq_ < seq && flusher_active_ && io_status_.ok()) {
      cv_.wait(lock);
    }
  }
  // This thread leads the next flush: linger for the group-commit window
  // so concurrent committers can pile on, then sync once for all.
  flusher_active_ = true;
  if (window_micros_ > 0) {
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(window_micros_));
    lock.lock();
  }
  uint64_t batched = staged_seq_ > seq ? staged_seq_ - seq : 0;
  if (batched > 0) WalMetrics::Get().group_commits->Inc(batched);
  FlushLocked(&lock);
  flusher_active_ = false;
  cv_.notify_all();
  return io_status_;
}

Status Wal::Append(const WriteBatch& batch) {
  MBQ_ASSIGN_OR_RETURN(uint64_t seq, Stage(batch));
  return WaitDurable(seq);
}

uint64_t Wal::records() const {
  util::ScopedLock lock(mu_);
  return records_;
}

uint64_t Wal::bytes() const {
  util::ScopedLock lock(mu_);
  return bytes_;
}

}  // namespace mbq::store
