#ifndef MBQ_STORE_DELTA_WAL_H_
#define MBQ_STORE_DELTA_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "store/delta/write_batch.h"
#include "util/lock_rank.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace mbq::store {

struct WalOptions {
  /// Directory holding the log (created if absent). The log itself is
  /// `<dir>/delta.wal`.
  std::string dir;
  /// How long a durability leader lingers collecting concurrent appends
  /// before issuing one fsync for all of them. 0 syncs every append.
  uint32_t group_commit_window_micros = 0;
};

/// What replay-on-open recovered from an existing log.
struct WalRecovery {
  std::vector<WriteBatch> batches;  ///< every complete, CRC-clean record
  uint64_t records = 0;             ///< batches.size(), pre-move
  uint64_t dropped_bytes = 0;       ///< torn tail truncated away
  uint64_t last_seq = 0;            ///< sequence of the last clean record
};

/// Group-commit write-ahead log for the delta store. Unlike the base
/// stores (which page against a SimulatedDisk), the WAL writes real
/// files — it is the component whose whole point is surviving a real
/// process crash, so its durability must be real too.
///
/// Record framing, little-endian (see docs/WRITES.md):
///   [u32 magic "MBWL"][u64 seq][u32 len][u32 crc32(payload)][payload]
/// where payload is an encoded WriteBatch. Replay stops at the first
/// record that is torn or fails its CRC and truncates the file back to
/// the clean prefix, so a crash mid-append costs at most the batches
/// that were never acknowledged.
///
/// Durability protocol: `Stage()` assigns the next sequence number and
/// buffers the encoded record (call it under the commit guard, so WAL
/// order always equals apply order); `WaitDurable()` blocks until a
/// leader has fsynced that sequence, batching concurrent committers
/// into one fsync per `group_commit_window_micros`.
class Wal {
 public:
  /// Opens (creating the directory if needed), replays existing records
  /// into `recovery`, truncates any torn tail, and leaves the log ready
  /// for appends.
  static Result<std::unique_ptr<Wal>> Open(const WalOptions& options,
                                           WalRecovery* recovery);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Buffers `batch` as the next record; returns its sequence number.
  Result<uint64_t> Stage(const WriteBatch& batch);

  /// Blocks until every record up to `seq` is on disk.
  Status WaitDurable(uint64_t seq);

  /// Stage + WaitDurable, for single-op callers.
  Status Append(const WriteBatch& batch);

  const std::string& path() const { return path_; }
  uint64_t records() const;
  uint64_t bytes() const;

 private:
  explicit Wal(std::string path, int fd, uint32_t window_micros,
               uint64_t next_seq, uint64_t bytes);

  /// Writes + fsyncs everything pending; called by the flush leader with
  /// the lock held (released around the syscalls, so the analysis cannot
  /// follow it — the runtime rank checker still tracks both transitions).
  void FlushLocked(util::RankedLock* lock) MBQ_NO_THREAD_SAFETY_ANALYSIS;

  const std::string path_;
  const uint32_t window_micros_;

  /// LockRank::kWal: Stage() runs inside the exclusive commit section
  /// (below kSnapshot) and looks up its lazily created obs counters while
  /// holding mu_, which takes the registry mutex (above kObs).
  mutable util::RankedMutex mu_{util::LockRank::kWal, "store.delta.wal"};
  std::condition_variable_any cv_;
  int fd_ = -1;
  /// Encoded records not yet written.
  std::string pending_ MBQ_GUARDED_BY(mu_);
  /// Sequence for the next Stage.
  uint64_t next_seq_ MBQ_GUARDED_BY(mu_) = 1;
  /// Highest staged sequence.
  uint64_t staged_seq_ MBQ_GUARDED_BY(mu_) = 0;
  /// Highest fsynced sequence.
  uint64_t durable_seq_ MBQ_GUARDED_BY(mu_) = 0;
  /// A leader is collecting/flushing.
  bool flusher_active_ MBQ_GUARDED_BY(mu_) = false;
  /// Sticky first I/O failure.
  Status io_status_ MBQ_GUARDED_BY(mu_);
  uint64_t records_ MBQ_GUARDED_BY(mu_) = 0;
  uint64_t bytes_ MBQ_GUARDED_BY(mu_) = 0;
};

/// CRC-32 (IEEE 802.3, reflected) over `data` — the WAL record checksum.
uint32_t WalCrc32(std::string_view data);

}  // namespace mbq::store

#endif  // MBQ_STORE_DELTA_WAL_H_
