#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace mbq::exec {

namespace {

/// Identity of the current thread inside its owning pool, so Submit can
/// push to the local deque and stealing can skip self.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_index = 0;

}  // namespace

size_t ThreadPool::DefaultThreads() {
  const char* env = std::getenv("CYPHER_THREADS");
  if (env != nullptr) {
    unsigned long v = std::strtoul(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(DefaultThreads());
  return pool;
}

ThreadPool::ThreadPool(size_t threads) {
  size_t workers = threads >= 1 ? threads - 1 : 0;
  queues_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  metrics_provider_ = obs::ScopedProvider(
      &obs::MetricsRegistry::Default(), [this](obs::MetricsSink* sink) {
        sink->Gauge("exec.pool.queue_depth", static_cast<double>(pending()),
                    "tasks");
      });
}

ThreadPool::~ThreadPool() {
  Drain();
  stop_.store(true, std::memory_order_release);
  {
    util::ScopedLock lock(wake_mu_);
    wake_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (queues_.empty()) {
    // No workers: run inline so the task cannot be stranded.
    fn();
    return;
  }
  size_t target;
  if (tls_pool == this) {
    target = tls_index;  // local push, popped LIFO by this worker
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    util::ScopedLock lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(fn));
  }
  {
    util::ScopedLock lock(wake_mu_);
    queued_hint_ += 1;
    wake_cv_.notify_one();
  }
}

bool ThreadPool::PopTask(size_t victim, bool lifo,
                         std::function<void()>* out) {
  Worker& w = *queues_[victim];
  util::ScopedLock lock(w.mu);
  if (w.tasks.empty()) return false;
  if (lifo) {
    *out = std::move(w.tasks.back());
    w.tasks.pop_back();
  } else {
    *out = std::move(w.tasks.front());
    w.tasks.pop_front();
  }
  return true;
}

bool ThreadPool::TryRunOne(size_t self) {
  std::function<void()> task;
  bool found = false;
  if (self < queues_.size() && PopTask(self, /*lifo=*/true, &task)) {
    found = true;
  } else {
    // Steal the oldest task from another worker's deque.
    for (size_t i = 1; !found && i <= queues_.size(); ++i) {
      size_t victim = (self + i) % queues_.size();
      if (victim == self) continue;
      found = PopTask(victim, /*lifo=*/false, &task);
    }
  }
  if (!found) return false;
  {
    util::ScopedLock lock(wake_mu_);
    queued_hint_ -= 1;
  }
  task();
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    util::ScopedLock lock(wake_mu_);
    idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_pool = this;
  tls_index = self;
  for (;;) {
    if (TryRunOne(self)) continue;
    util::RankedLock lock(wake_mu_);
    // Explicit loop (not the wait(lock, pred) overload): the thread-safety
    // analysis checks each lambda separately, so a predicate reading the
    // wake_mu_-guarded hint would not see the lock this frame holds.
    while (!stop_.load(std::memory_order_acquire) && queued_hint_ == 0) {
      wake_cv_.wait(lock);
    }
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void ThreadPool::ParallelFor(
    uint64_t begin, uint64_t end, uint64_t grain,
    const std::function<void(uint64_t, uint64_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  uint64_t total = end - begin;
  uint64_t chunks = (total + grain - 1) / grain;

  struct ForState {
    std::atomic<uint64_t> cursor{0};
    std::atomic<uint64_t> done{0};
    uint64_t begin, end, grain, chunks;
    const std::function<void(uint64_t, uint64_t)>* body;
    util::RankedMutex mu{util::LockRank::kPool, "exec.pool.for"};
    std::condition_variable_any cv;
  };
  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->chunks = chunks;
  state->body = &body;

  auto run_chunks = [](const std::shared_ptr<ForState>& s) {
    for (;;) {
      uint64_t c = s->cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->chunks) return;
      uint64_t lo = s->begin + c * s->grain;
      uint64_t hi = std::min(s->end, lo + s->grain);
      (*s->body)(lo, hi);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->chunks) {
        util::ScopedLock lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  // One helper per executor that could contribute; the caller is the
  // remaining executor. Helpers arriving after the cursor is exhausted
  // fall through immediately.
  size_t helpers = queues_.empty()
                       ? 0
                       : static_cast<size_t>(std::min<uint64_t>(
                             workers_.size(), chunks > 0 ? chunks - 1 : 0));
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state, run_chunks] { run_chunks(state); });
  }
  run_chunks(state);

  // The caller's body pointer dies with this frame, so wait for every
  // chunk (helpers may still be mid-chunk even though the cursor is dry).
  util::RankedLock lock(state->mu);
  while (state->done.load(std::memory_order_acquire) != state->chunks) {
    state->cv.wait(lock);
  }
}

void ThreadPool::Drain() {
  util::RankedLock lock(wake_mu_);
  while (pending_.load(std::memory_order_acquire) != 0) {
    idle_cv_.wait(lock);
  }
}

}  // namespace mbq::exec
