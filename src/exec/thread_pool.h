#ifndef MBQ_EXEC_THREAD_POOL_H_
#define MBQ_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace mbq::exec {

/// A small work-stealing thread pool for query-internal parallelism.
///
/// `ThreadPool(n)` gives a pool with parallelism `n`: it spawns `n - 1`
/// worker threads and the caller of ParallelFor acts as the n-th
/// executor, so a pool of size 1 spawns no threads and runs everything
/// inline. Each worker owns a deque: its own submissions are pushed and
/// popped LIFO (cache-warm), idle workers steal FIFO from the others
/// (oldest work first, the classic Blumofe–Leiserson discipline).
///
/// Blocking joins happen only in ParallelFor and Drain; Submit never
/// blocks. The pool is safe to share between concurrent sessions — tasks
/// from different callers interleave freely.
class ThreadPool {
 public:
  /// Parallelism `threads` (clamped to >= 1): `threads - 1` workers.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers + the participating caller.
  size_t parallelism() const { return workers_.size() + 1; }

  /// Enqueues `fn` for asynchronous execution. When called from a pool
  /// worker the task lands on that worker's own deque (LIFO), otherwise
  /// it is distributed round-robin.
  void Submit(std::function<void()> fn);

  /// Runs `body(chunk_begin, chunk_end)` over [begin, end) split into
  /// chunks of at most `grain` items. Chunks are claimed dynamically from
  /// a shared cursor, so uneven chunks balance across executors. The
  /// caller participates and the call returns only when every chunk has
  /// finished. Safe to nest: an inner call simply runs on the executors
  /// that reach it.
  void ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                   const std::function<void(uint64_t, uint64_t)>& body);

  /// Blocks until every queued and running task has completed. Used by
  /// exporters that must not snapshot while worker tasks are in flight.
  void Drain();

  /// Process-wide pool sized by the CYPHER_THREADS environment variable
  /// (falling back to std::thread::hardware_concurrency), created on
  /// first use.
  static ThreadPool& Default();

  /// Parses CYPHER_THREADS: 0/unset means hardware_concurrency.
  static size_t DefaultThreads();

  /// Tasks queued or running right now (the exec.pool.queue_depth gauge).
  uint64_t pending() const { return pending_.load(std::memory_order_relaxed); }

 private:
  /// Pool-internal locks all carry LockRank::kPool and are never nested:
  /// a deque lock is always released before the wake lock is taken, and
  /// tasks run with no pool lock held (so task bodies are free to enter
  /// any engine tier).
  struct Worker {
    util::RankedMutex mu{util::LockRank::kPool, "exec.pool.queue"};
    std::deque<std::function<void()>> tasks MBQ_GUARDED_BY(mu);
  };

  void WorkerLoop(size_t self);
  /// Pops from `self`'s deque or steals from another worker.
  bool TryRunOne(size_t self);
  bool PopTask(size_t victim, bool lifo, std::function<void()>* out);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;
  util::RankedMutex wake_mu_{util::LockRank::kPool, "exec.pool.wake"};
  std::condition_variable_any wake_cv_;
  std::condition_variable_any idle_cv_;
  /// Tasks sitting in deques — the sleep predicate (pending_ alone would
  /// busy-spin workers while the last task runs).
  uint64_t queued_hint_ MBQ_GUARDED_BY(wake_mu_) = 0;
  std::atomic<uint64_t> pending_{0};  // queued + running tasks
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<bool> stop_{false};
  /// Declared last so it unregisters first: the provider reads pending_
  /// and must never outlive the fields it reports. Gauges from several
  /// pools sum; a destroyed pool retains a final depth of 0.
  obs::ScopedProvider metrics_provider_;
};

}  // namespace mbq::exec

#endif  // MBQ_EXEC_THREAD_POOL_H_
