#ifndef MBQ_BITMAPSTORE_BITMAP_H_
#define MBQ_BITMAPSTORE_BITMAP_H_

#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "util/result.h"

namespace mbq::bitmapstore {

/// A compressed bitmap over uint32 keys, in the style of the structure
/// underlying Sparksee/DEX (Martinez-Bazan et al., IDEAS 2012) and of
/// Roaring bitmaps: the key space is partitioned into 2^16-element chunks,
/// each stored either as a sorted array of low 16-bit values (sparse) or
/// as a 1024-word bitset (dense). All set algebra needed by the engine's
/// Objects type is provided.
class Bitmap {
 public:
  Bitmap() = default;

  /// Builds from any iterable of uint32 values (need not be sorted).
  static Bitmap FromValues(const std::vector<uint32_t>& values);

  void Add(uint32_t value);
  /// Returns true if the value was present.
  bool Remove(uint32_t value);
  bool Contains(uint32_t value) const;

  uint64_t Cardinality() const;
  bool Empty() const { return containers_.empty(); }
  void Clear() { containers_.clear(); }

  std::optional<uint32_t> Min() const;
  std::optional<uint32_t> Max() const;

  /// Set algebra. The binary forms produce a new bitmap; the Inplace*
  /// forms mutate the receiver.
  static Bitmap And(const Bitmap& a, const Bitmap& b);
  static Bitmap Or(const Bitmap& a, const Bitmap& b);
  static Bitmap AndNot(const Bitmap& a, const Bitmap& b);
  static Bitmap Xor(const Bitmap& a, const Bitmap& b);
  void InplaceOr(const Bitmap& other);
  void InplaceAnd(const Bitmap& other);
  void InplaceAndNot(const Bitmap& other);

  /// |a AND b| without materializing the intersection.
  static uint64_t AndCardinality(const Bitmap& a, const Bitmap& b);
  /// True if the intersection is non-empty (early-exit).
  static bool Intersects(const Bitmap& a, const Bitmap& b);
  /// True if every element of `a` is in `b`.
  static bool IsSubset(const Bitmap& a, const Bitmap& b);

  bool operator==(const Bitmap& other) const;

  /// Calls `fn(value)` for each element in ascending order. `fn` may
  /// return void, or bool where returning false stops the scan.
  template <typename Fn>
  void ForEach(Fn&& fn) const;

  /// Forward iterator over elements in ascending order.
  class Iterator {
   public:
    explicit Iterator(const Bitmap& bitmap);
    bool Valid() const { return valid_; }
    uint32_t Value() const { return value_; }
    void Next();

   private:
    void LoadContainer();
    void AdvanceWithinBitset();

    const Bitmap* bitmap_;
    size_t container_index_ = 0;
    size_t array_index_ = 0;
    uint32_t bitset_word_ = 0;
    uint64_t current_word_ = 0;
    bool valid_ = false;
    uint32_t value_ = 0;
  };

  Iterator Begin() const { return Iterator(*this); }

  /// Materializes into a sorted vector.
  std::vector<uint32_t> ToVector() const;

  /// Appends a portable binary image to `out`.
  void SerializeTo(std::vector<uint8_t>* out) const;
  /// Parses an image produced by SerializeTo starting at `data[*offset]`;
  /// advances *offset past it.
  static Result<Bitmap> Deserialize(const std::vector<uint8_t>& data,
                                    size_t* offset);

  /// Approximate heap footprint, for the engine's cache accounting.
  size_t MemoryBytes() const;

 private:
  static constexpr size_t kArrayLimit = 4096;   // array -> bitset threshold
  static constexpr size_t kBitsetWords = 1024;  // 65536 bits

  struct Container {
    uint16_t key = 0;
    bool is_bitset = false;
    uint32_t cardinality = 0;        // maintained for both forms
    std::vector<uint16_t> array;     // sorted; used when !is_bitset
    std::vector<uint64_t> words;     // kBitsetWords; used when is_bitset

    bool Contains(uint16_t low) const;
    void ToBitset();
    void ToArrayIfSmall();
  };

  // Index of the container with `key`, or containers_.size() if absent.
  size_t FindContainer(uint16_t key) const;
  // Index where a container with `key` exists or should be inserted.
  size_t LowerBound(uint16_t key) const;

  static Container AndContainers(const Container& a, const Container& b);
  static Container OrContainers(const Container& a, const Container& b);
  static Container AndNotContainers(const Container& a, const Container& b);
  static Container XorContainers(const Container& a, const Container& b);
  static uint64_t AndCardinalityContainers(const Container& a,
                                           const Container& b);

  std::vector<Container> containers_;  // sorted by key
};

template <typename Fn>
void Bitmap::ForEach(Fn&& fn) const {
  auto invoke = [&fn](uint32_t v) -> bool {
    if constexpr (std::is_void_v<decltype(fn(v))>) {
      fn(v);
      return true;
    } else {
      return fn(v);
    }
  };
  for (const Container& c : containers_) {
    uint32_t high = static_cast<uint32_t>(c.key) << 16;
    if (c.is_bitset) {
      for (size_t w = 0; w < kBitsetWords; ++w) {
        uint64_t word = c.words[w];
        while (word != 0) {
          int bit = __builtin_ctzll(word);
          if (!invoke(high | static_cast<uint32_t>(w * 64 + bit))) return;
          word &= word - 1;
        }
      }
    } else {
      for (uint16_t low : c.array) {
        if (!invoke(high | low)) return;
      }
    }
  }
}

}  // namespace mbq::bitmapstore

#endif  // MBQ_BITMAPSTORE_BITMAP_H_
