#include "bitmapstore/script_loader.h"

#include <chrono>

#include "common/csv.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace mbq::bitmapstore {

namespace {

double NowWallMillis() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

/// Splits a statement into tokens: whitespace-separated words, commas
/// detached, double-quoted strings kept whole (without the quotes).
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') break;
    if (c == ',') {
      tokens.emplace_back(",");
      ++i;
      continue;
    }
    if (c == '"') {
      size_t end = line.find('"', i + 1);
      if (end == std::string_view::npos) end = line.size();
      tokens.emplace_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
      continue;
    }
    size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])) &&
           line[i] != ',' && line[i] != '#') {
      ++i;
    }
    tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

Result<ValueType> ParseValueType(const std::string& word) {
  std::string up = ToLowerAscii(word);
  if (up == "int") return ValueType::kInt;
  if (up == "string") return ValueType::kString;
  if (up == "double") return ValueType::kDouble;
  if (up == "bool") return ValueType::kBool;
  return Status::InvalidArgument("unknown attribute type: " + word);
}

Result<AttributeKind> ParseAttributeKind(const std::string& word) {
  std::string up = ToLowerAscii(word);
  if (up == "basic") return AttributeKind::kBasic;
  if (up == "indexed") return AttributeKind::kIndexed;
  if (up == "unique") return AttributeKind::kUnique;
  return Status::InvalidArgument("unknown attribute kind: " + word);
}

std::string ResolvePath(const std::string& base_dir, const std::string& path) {
  if (path.empty() || path[0] == '/' || base_dir.empty()) return path;
  return base_dir + "/" + path;
}

}  // namespace

ScriptLoader::ScriptLoader(Graph* graph) : graph_(graph) {}

void ScriptLoader::SetProgressCallback(ProgressFn fn, uint64_t interval) {
  progress_ = std::move(fn);
  progress_interval_ = interval == 0 ? 1 : interval;
}

void ScriptLoader::ReportProgress(const std::string& phase,
                                  uint64_t phase_objects, bool force) {
  if (!progress_) return;
  if (!force && total_objects_ - last_report_ < progress_interval_) return;
  last_report_ = total_objects_;
  ImportProgress p;
  p.phase = phase;
  p.phase_objects = phase_objects;
  p.total_objects = total_objects_;
  p.wall_millis = NowWallMillis() - wall_start_millis_;
  p.io_millis =
      static_cast<double>(graph_->SimulatedIoNanos() - io_start_nanos_) / 1e6;
  p.elapsed_millis = p.wall_millis + p.io_millis;
  progress_(p);
}

Result<Value> ScriptLoader::ParseTypedValue(const std::string& text,
                                            ValueType dtype) const {
  if (text.empty()) return Value::Null();
  switch (dtype) {
    case ValueType::kInt: {
      MBQ_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      MBQ_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value::Double(v);
    }
    case ValueType::kBool:
      return Value::Bool(text == "true" || text == "1");
    case ValueType::kString:
      return Value::String(text);
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

Result<std::pair<TypeId, AttrId>> ScriptLoader::ResolveTypedAttribute(
    const std::string& dotted) const {
  auto parts = SplitString(dotted, '.');
  if (parts.size() != 2) {
    return Status::InvalidArgument("expected <type>.<attribute>: " + dotted);
  }
  MBQ_ASSIGN_OR_RETURN(TypeId type, graph_->FindType(std::string(parts[0])));
  MBQ_ASSIGN_OR_RETURN(AttrId attr,
                       graph_->FindAttribute(type, std::string(parts[1])));
  return std::make_pair(type, attr);
}

Status ScriptLoader::Execute(const std::string& script_text,
                             const std::string& base_dir) {
  wall_start_millis_ = NowWallMillis();
  io_start_nanos_ = graph_->SimulatedIoNanos();
  obs::TraceSpan import_span(trace_, "import:bitmapstore");
  for (std::string_view line : SplitString(script_text, '\n')) {
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    MBQ_RETURN_IF_ERROR(ExecuteStatement(tokens, base_dir));
  }
  import_span.AddItems(total_objects_);
  MBQ_RETURN_IF_ERROR(graph_->Flush());
  if (post_import_check_) {
    obs::TraceSpan check_span(trace_, "post-import-check");
    MBQ_RETURN_IF_ERROR(post_import_check_());
  }
  return Status::OK();
}

Status ScriptLoader::ExecuteStatement(const std::vector<std::string>& tokens,
                                      const std::string& base_dir) {
  const std::string op = ToLowerAscii(tokens[0]);
  if (op == "create") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument("CREATE NODE|EDGE <type>");
    }
    const std::string kind = ToLowerAscii(tokens[1]);
    if (kind == "node") return graph_->NewNodeType(tokens[2]).status();
    if (kind == "edge") return graph_->NewEdgeType(tokens[2]).status();
    return Status::InvalidArgument("CREATE expects NODE or EDGE");
  }
  if (op == "attribute") {
    if (tokens.size() != 4) {
      return Status::InvalidArgument(
          "ATTRIBUTE <type>.<name> <dtype> <kind>");
    }
    auto parts = SplitString(tokens[1], '.');
    if (parts.size() != 2) {
      return Status::InvalidArgument("expected <type>.<name>: " + tokens[1]);
    }
    MBQ_ASSIGN_OR_RETURN(TypeId type, graph_->FindType(std::string(parts[0])));
    MBQ_ASSIGN_OR_RETURN(ValueType dtype, ParseValueType(tokens[2]));
    MBQ_ASSIGN_OR_RETURN(AttributeKind kind, ParseAttributeKind(tokens[3]));
    return graph_
        ->NewAttribute(type, std::string(parts[1]), dtype, kind)
        .status();
  }
  if (op == "load") {
    if (tokens.size() < 2) return Status::InvalidArgument("LOAD NODES|EDGES");
    const std::string kind = ToLowerAscii(tokens[1]);
    if (kind == "nodes") return LoadNodes(tokens, base_dir);
    if (kind == "edges") return LoadEdges(tokens, base_dir);
    return Status::InvalidArgument("LOAD expects NODES or EDGES");
  }
  return Status::InvalidArgument("unknown statement: " + tokens[0]);
}

Status ScriptLoader::LoadNodes(const std::vector<std::string>& tokens,
                               const std::string& base_dir) {
  // LOAD NODES "<csv>" INTO <type> COLUMNS a , b , c
  if (tokens.size() < 7 || ToLowerAscii(tokens[3]) != "into" ||
      ToLowerAscii(tokens[5]) != "columns") {
    return Status::InvalidArgument(
        "LOAD NODES \"<csv>\" INTO <type> COLUMNS <cols>");
  }
  MBQ_ASSIGN_OR_RETURN(TypeId type, graph_->FindType(tokens[4]));
  std::vector<std::string> columns;
  for (size_t i = 6; i < tokens.size(); ++i) {
    if (tokens[i] == ",") continue;
    columns.push_back(tokens[i]);
  }
  MBQ_ASSIGN_OR_RETURN(
      common::CsvReader reader,
      common::CsvReader::Open(ResolvePath(base_dir, tokens[2])));
  struct BoundColumn {
    size_t csv_index;
    AttrId attr;
    ValueType dtype;
  };
  std::vector<BoundColumn> bound;
  for (const std::string& col : columns) {
    MBQ_ASSIGN_OR_RETURN(size_t idx, reader.ColumnIndex(col));
    MBQ_ASSIGN_OR_RETURN(AttrId attr, graph_->FindAttribute(type, col));
    // Recover the dtype via a round-trip set: store it from schema info.
    bound.push_back({idx, attr, ValueType::kNull});
  }
  const std::string phase = "nodes:" + graph_->TypeName(type);
  obs::TraceSpan span(trace_, phase);
  WallClock clock;
  uint64_t parse_nanos = 0;
  uint64_t insert_nanos = 0;
  std::vector<std::string> row;
  uint64_t phase_objects = 0;
  for (;;) {
    uint64_t t0 = clock.NowNanos();
    bool more = reader.NextRow(&row);
    uint64_t t1 = clock.NowNanos();
    parse_nanos += t1 - t0;
    if (!more) break;
    MBQ_ASSIGN_OR_RETURN(Oid node, graph_->NewNode(type));
    for (const BoundColumn& b : bound) {
      MBQ_ASSIGN_OR_RETURN(
          Value value,
          ParseTypedValue(row[b.csv_index], graph_->AttributeType(b.attr)));
      if (!value.is_null()) {
        MBQ_RETURN_IF_ERROR(graph_->SetAttribute(node, b.attr, value));
      }
    }
    insert_nanos += clock.NowNanos() - t1;
    ++nodes_loaded_;
    ++total_objects_;
    ++phase_objects;
    ReportProgress(phase, phase_objects, false);
  }
  MBQ_RETURN_IF_ERROR(reader.status());
  if (trace_ != nullptr) {
    trace_->AppendChild("parse", static_cast<double>(parse_nanos) / 1e6,
                        phase_objects);
    trace_->AppendChild("node-insert",
                        static_cast<double>(insert_nanos) / 1e6,
                        phase_objects);
  }
  span.AddItems(phase_objects);
  obs::MetricsRegistry::Default()
      .GetCounter("bitmapstore.import.nodes", "nodes",
                  "nodes ingested by the script loader")
      ->Inc(phase_objects);
  ReportProgress(phase, phase_objects, true);
  return Status::OK();
}

Status ScriptLoader::LoadEdges(const std::vector<std::string>& tokens,
                               const std::string& base_dir) {
  // LOAD EDGES "<csv>" INTO <type> FROM <ntype>.<attr> TO <ntype>.<attr>
  if (tokens.size() != 9 || ToLowerAscii(tokens[3]) != "into" ||
      ToLowerAscii(tokens[5]) != "from" || ToLowerAscii(tokens[7]) != "to") {
    return Status::InvalidArgument(
        "LOAD EDGES \"<csv>\" INTO <type> FROM <t>.<a> TO <t>.<a>");
  }
  MBQ_ASSIGN_OR_RETURN(TypeId etype, graph_->FindType(tokens[4]));
  MBQ_ASSIGN_OR_RETURN(auto from_bind, ResolveTypedAttribute(tokens[6]));
  MBQ_ASSIGN_OR_RETURN(auto to_bind, ResolveTypedAttribute(tokens[8]));
  MBQ_ASSIGN_OR_RETURN(
      common::CsvReader reader,
      common::CsvReader::Open(ResolvePath(base_dir, tokens[2])));
  if (reader.header().size() < 2) {
    return Status::InvalidArgument("edge CSV needs at least two columns");
  }
  const std::string phase = "edges:" + graph_->TypeName(etype);
  obs::TraceSpan span(trace_, phase);
  WallClock clock;
  uint64_t parse_nanos = 0;
  uint64_t insert_nanos = 0;
  std::vector<std::string> row;
  uint64_t phase_objects = 0;
  for (;;) {
    uint64_t t0 = clock.NowNanos();
    bool more = reader.NextRow(&row);
    uint64_t t1 = clock.NowNanos();
    parse_nanos += t1 - t0;
    if (!more) break;
    MBQ_ASSIGN_OR_RETURN(
        Value src_key,
        ParseTypedValue(row[0], graph_->AttributeType(from_bind.second)));
    MBQ_ASSIGN_OR_RETURN(
        Value dst_key,
        ParseTypedValue(row[1], graph_->AttributeType(to_bind.second)));
    MBQ_ASSIGN_OR_RETURN(Oid src, graph_->FindObject(from_bind.second, src_key));
    MBQ_ASSIGN_OR_RETURN(Oid dst, graph_->FindObject(to_bind.second, dst_key));
    if (src == kInvalidOid || dst == kInvalidOid) {
      return Status::NotFound("edge endpoint not found: " + row[0] + " -> " +
                              row[1]);
    }
    MBQ_RETURN_IF_ERROR(graph_->NewEdge(etype, src, dst).status());
    insert_nanos += clock.NowNanos() - t1;
    ++edges_loaded_;
    ++total_objects_;
    ++phase_objects;
    ReportProgress(phase, phase_objects, false);
  }
  MBQ_RETURN_IF_ERROR(reader.status());
  if (trace_ != nullptr) {
    trace_->AppendChild("parse", static_cast<double>(parse_nanos) / 1e6,
                        phase_objects);
    trace_->AppendChild("edge-insert",
                        static_cast<double>(insert_nanos) / 1e6,
                        phase_objects);
  }
  span.AddItems(phase_objects);
  obs::MetricsRegistry::Default()
      .GetCounter("bitmapstore.import.edges", "edges",
                  "edges ingested by the script loader")
      ->Inc(phase_objects);
  ReportProgress(phase, phase_objects, true);
  return Status::OK();
}

}  // namespace mbq::bitmapstore
