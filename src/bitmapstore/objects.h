#ifndef MBQ_BITMAPSTORE_OBJECTS_H_
#define MBQ_BITMAPSTORE_OBJECTS_H_

#include <cstdint>
#include <vector>

#include "bitmapstore/bitmap.h"
#include "obs/metrics.h"

namespace mbq::bitmapstore {

/// Process-wide counters for the engine's set-algebra primitive — the
/// operation class the paper's Sparksee analysis revolves around
/// ("combining Objects sets is the cheap primitive"). Registered lazily
/// in the default metrics registry so every Combine call, from any
/// Graph instance, is counted exactly once.
namespace objects_metrics {
inline obs::Counter& Intersections() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "bitmapstore.objects.intersections", "ops",
      "Objects::CombineIntersection calls");
  return *c;
}
inline obs::Counter& Unions() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "bitmapstore.objects.unions", "ops",
      "Objects::CombineUnion / UnionInPlace calls");
  return *c;
}
inline obs::Counter& Differences() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "bitmapstore.objects.differences", "ops",
      "Objects::CombineDifference calls");
  return *c;
}
inline obs::Counter& ContainsProbes() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "bitmapstore.objects.contains_probes", "ops",
      "Objects::Contains membership probes");
  return *c;
}
}  // namespace objects_metrics

/// Object identifier: a dense 32-bit id shared by nodes and edges, as in
/// Sparksee where every graph object has an oid.
using Oid = uint32_t;
inline constexpr Oid kInvalidOid = 0xFFFFFFFFu;

/// An unordered set of unique object identifiers — the result type of the
/// engine's navigation operations (`Neighbors`, `Explode`, `Select`),
/// mirroring Sparksee's Objects class. Backed by a compressed bitmap, so
/// set combinations are the cheap primitive while ordering/limiting must
/// be done by the caller (a behaviour the paper calls out: "the entire
/// result set must be retrieved and filtered programmatically").
class Objects {
 public:
  Objects() = default;
  explicit Objects(Bitmap bitmap) : bitmap_(std::move(bitmap)) {}

  void Add(Oid oid) { bitmap_.Add(oid); }
  bool Remove(Oid oid) { return bitmap_.Remove(oid); }
  bool Contains(Oid oid) const {
    objects_metrics::ContainsProbes().Inc();
    return bitmap_.Contains(oid);
  }
  uint64_t Count() const { return bitmap_.Cardinality(); }
  bool Empty() const { return bitmap_.Empty(); }

  /// Set combinations (Sparksee: Objects::CombineIntersection etc.).
  static Objects CombineIntersection(const Objects& a, const Objects& b) {
    objects_metrics::Intersections().Inc();
    return Objects(Bitmap::And(a.bitmap_, b.bitmap_));
  }
  static Objects CombineUnion(const Objects& a, const Objects& b) {
    objects_metrics::Unions().Inc();
    return Objects(Bitmap::Or(a.bitmap_, b.bitmap_));
  }
  static Objects CombineDifference(const Objects& a, const Objects& b) {
    objects_metrics::Differences().Inc();
    return Objects(Bitmap::AndNot(a.bitmap_, b.bitmap_));
  }
  /// In-place union (the accumulation loop of multi-source Neighbors).
  void UnionInPlace(const Objects& other) {
    objects_metrics::Unions().Inc();
    bitmap_.InplaceOr(other.bitmap_);
  }

  bool operator==(const Objects& other) const {
    return bitmap_ == other.bitmap_;
  }

  /// Iterator in ascending oid order (Sparksee's ObjectsIterator).
  class Iterator {
   public:
    explicit Iterator(const Objects& objects) : it_(objects.bitmap_) {}
    bool HasNext() const { return it_.Valid(); }
    Oid Next() {
      Oid v = it_.Value();
      it_.Next();
      return v;
    }

   private:
    Bitmap::Iterator it_;
  };

  Iterator Iterate() const { return Iterator(*this); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    bitmap_.ForEach(std::forward<Fn>(fn));
  }

  std::vector<Oid> ToVector() const { return bitmap_.ToVector(); }

  const Bitmap& bitmap() const { return bitmap_; }
  Bitmap& bitmap() { return bitmap_; }

 private:
  Bitmap bitmap_;
};

}  // namespace mbq::bitmapstore

#endif  // MBQ_BITMAPSTORE_OBJECTS_H_
