#ifndef MBQ_BITMAPSTORE_SCRIPT_LOADER_H_
#define MBQ_BITMAPSTORE_SCRIPT_LOADER_H_

#include <functional>
#include <string>
#include <vector>

#include "bitmapstore/graph.h"
#include "common/import_progress.h"
#include "obs/trace.h"

namespace mbq::bitmapstore {

using common::ImportProgress;
using common::ProgressFn;

/// Executes a Sparksee-style load script: schema definition plus bulk CSV
/// ingestion, the mechanism the paper used ("Sparksee scripts ... define
/// the schema of the database [and] specify the IDs to be indexed and
/// source files for loading data", §3.2.2).
///
/// Grammar (one statement per line; '#' starts a comment):
///
///   CREATE NODE <type>
///   CREATE EDGE <type>
///   ATTRIBUTE <type>.<name> <INT|STRING|DOUBLE|BOOL> <BASIC|INDEXED|UNIQUE>
///   LOAD NODES "<csv>" INTO <type> COLUMNS <col>[, <col>...]
///   LOAD EDGES "<csv>" INTO <type> FROM <ntype>.<attr> TO <ntype>.<attr>
///
/// LOAD NODES maps CSV columns (by header name) onto same-named
/// attributes. LOAD EDGES resolves the first two CSV columns through the
/// given unique attributes to find the endpoints.
class ScriptLoader {
 public:
  explicit ScriptLoader(Graph* graph);

  /// Calls `fn` every `interval` loaded objects (and at phase ends).
  void SetProgressCallback(ProgressFn fn, uint64_t interval);

  /// Collects phase-level spans (per LOAD statement, split into parse vs
  /// insert) into `trace`. The log must outlive Execute(); pass null to
  /// disable tracing.
  void SetTraceLog(obs::TraceLog* trace) { trace_ = trace; }

  /// Installs a verification step that runs after a successful load
  /// (post-flush); a non-OK return fails Execute(). Wire it to
  /// core::CheckBitmapstore for a loaded-data fsck — the loader cannot
  /// depend on the checker directly, so the caller supplies it.
  void SetPostImportCheck(std::function<Status()> check) {
    post_import_check_ = std::move(check);
  }

  /// Runs the script. Relative CSV paths resolve under `base_dir`.
  Status Execute(const std::string& script_text, const std::string& base_dir);

  uint64_t nodes_loaded() const { return nodes_loaded_; }
  uint64_t edges_loaded() const { return edges_loaded_; }

 private:
  Status ExecuteStatement(const std::vector<std::string>& tokens,
                          const std::string& base_dir);
  Status LoadNodes(const std::vector<std::string>& tokens,
                   const std::string& base_dir);
  Status LoadEdges(const std::vector<std::string>& tokens,
                   const std::string& base_dir);
  Result<std::pair<TypeId, AttrId>> ResolveTypedAttribute(
      const std::string& dotted) const;
  void ReportProgress(const std::string& phase, uint64_t phase_objects,
                      bool force);
  Result<Value> ParseTypedValue(const std::string& text,
                                ValueType dtype) const;

  Graph* graph_;
  ProgressFn progress_;
  std::function<Status()> post_import_check_;
  obs::TraceLog* trace_ = nullptr;
  uint64_t progress_interval_ = 100000;
  uint64_t nodes_loaded_ = 0;
  uint64_t edges_loaded_ = 0;
  uint64_t total_objects_ = 0;
  uint64_t last_report_ = 0;
  double wall_start_millis_ = 0;
  uint64_t io_start_nanos_ = 0;
};

}  // namespace mbq::bitmapstore

#endif  // MBQ_BITMAPSTORE_SCRIPT_LOADER_H_
