#ifndef MBQ_BITMAPSTORE_SNAPSHOT_H_
#define MBQ_BITMAPSTORE_SNAPSHOT_H_

#include <string>

#include "bitmapstore/graph.h"

namespace mbq::bitmapstore {

/// Binary snapshot of a Graph: schema (types, attributes), every object
/// with its type, edge endpoints, and all attribute values. Bitmap
/// adjacency and attribute indexes are rebuilt on load (they are derived
/// state), so the format stays small and forward-checkable.
///
/// Intended use: persist a loaded benchmark graph once and re-open it
/// across bench runs instead of re-ingesting CSVs.
///
/// Format (little-endian, versioned):
///   magic "MBQSNAP1"
///   u32 type count; per type: u8 kind, string name
///   u32 attr count; per attr: u32 type, u8 dtype, u8 kind, string name
///   u64 object count; per object: i32 type (or -1 for freed slots),
///       [u32 tail, u32 head] for edges
///   per attribute: u64 value count; per value: u32 oid, encoded Value
Status SaveSnapshot(const Graph& graph, const std::string& path);

/// Rebuilds a graph from a snapshot into `graph`, which must be freshly
/// constructed (no schema, no objects). Oids are preserved.
Status LoadSnapshot(const std::string& path, Graph* graph);

}  // namespace mbq::bitmapstore

#endif  // MBQ_BITMAPSTORE_SNAPSHOT_H_
