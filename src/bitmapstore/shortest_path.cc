#include "bitmapstore/shortest_path.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace mbq::bitmapstore {

SinglePairShortestPathBFS::SinglePairShortestPathBFS(const Graph* graph,
                                                     Oid source,
                                                     Oid destination)
    : graph_(graph), source_(source), destination_(destination) {}

void SinglePairShortestPathBFS::AddEdgeType(TypeId etype, EdgesDirection dir) {
  edge_types_.emplace_back(etype, dir);
}

Status SinglePairShortestPathBFS::Run() {
  if (ran_) return Status::FailedPrecondition("Run() already called");
  ran_ = true;
  if (edge_types_.empty()) {
    return Status::FailedPrecondition("no edge types registered");
  }
  if (source_ == destination_) {
    exists_ = true;
    path_ = {source_};
    return Status::OK();
  }
  std::unordered_map<Oid, Oid> parent;
  parent.emplace(source_, kInvalidOid);
  std::vector<Oid> frontier = {source_};
  uint32_t depth = 0;
  while (!frontier.empty() && depth < max_hops_) {
    ++depth;
    std::vector<Oid> next;
    for (Oid node : frontier) {
      ++nodes_expanded_;
      for (const auto& [etype, dir] : edge_types_) {
        MBQ_ASSIGN_OR_RETURN(Objects nbrs, graph_->Neighbors(node, etype, dir));
        Status inner = Status::OK();
        nbrs.ForEach([&](uint32_t n) -> bool {
          if (parent.count(n) != 0) return true;
          parent.emplace(n, node);
          if (n == destination_) return false;  // found; stop this scan
          next.push_back(n);
          return true;
        });
        MBQ_RETURN_IF_ERROR(inner);
        if (parent.count(destination_) != 0) {
          // Reconstruct.
          std::vector<Oid> reversed;
          for (Oid at = destination_; at != kInvalidOid; at = parent[at]) {
            reversed.push_back(at);
          }
          std::reverse(reversed.begin(), reversed.end());
          path_ = std::move(reversed);
          exists_ = true;
          return Status::OK();
        }
      }
    }
    frontier = std::move(next);
  }
  return Status::OK();
}

uint32_t SinglePairShortestPathBFS::GetCost() const {
  MBQ_CHECK(exists_);
  return static_cast<uint32_t>(path_.size() - 1);
}

const std::vector<Oid>& SinglePairShortestPathBFS::GetPathAsNodes() const {
  MBQ_CHECK(exists_);
  return path_;
}

}  // namespace mbq::bitmapstore
