#include "bitmapstore/traversal.h"

#include <deque>

namespace mbq::bitmapstore {

Traversal::Traversal(const Graph* graph, Oid source, TraversalOrder order)
    : graph_(graph), source_(source), order_(order) {}

void Traversal::AddEdgeType(TypeId etype, EdgesDirection dir) {
  edge_types_.emplace_back(etype, dir);
}

void Traversal::AddNodeType(TypeId ntype) { node_types_.push_back(ntype); }

bool Traversal::NodeAllowed(Oid node) const {
  if (node_types_.empty()) return true;
  auto type = graph_->GetObjectType(node);
  if (!type.ok()) return false;
  for (TypeId t : node_types_) {
    if (t == *type) return true;
  }
  return false;
}

Status Traversal::Run(const std::function<bool(Oid, uint32_t)>& visit) {
  if (edge_types_.empty()) {
    return Status::FailedPrecondition("no edge types registered");
  }
  Objects seen;
  seen.Add(source_);
  // Work list of (node, depth); front-pop for BFS, back-pop for DFS.
  std::deque<std::pair<Oid, uint32_t>> work;
  work.emplace_back(source_, 0);
  while (!work.empty()) {
    auto [node, depth] = order_ == TraversalOrder::kBreadthFirst
                             ? work.front()
                             : work.back();
    if (order_ == TraversalOrder::kBreadthFirst) {
      work.pop_front();
    } else {
      work.pop_back();
    }
    if (!visit(node, depth)) return Status::OK();
    if (depth >= max_hops_) continue;
    for (const auto& [etype, dir] : edge_types_) {
      MBQ_ASSIGN_OR_RETURN(Objects nbrs, graph_->Neighbors(node, etype, dir));
      nbrs.ForEach([&](uint32_t n) {
        if (!seen.Contains(n) && NodeAllowed(n)) {
          seen.Add(n);
          work.emplace_back(n, depth + 1);
        }
      });
    }
  }
  return Status::OK();
}

Result<Objects> Traversal::CollectNodes() {
  Objects out;
  MBQ_RETURN_IF_ERROR(Run([&out](Oid node, uint32_t) {
    out.Add(node);
    return true;
  }));
  return out;
}

}  // namespace mbq::bitmapstore
