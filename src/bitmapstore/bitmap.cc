#include "bitmapstore/bitmap.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace mbq::bitmapstore {

namespace {

uint16_t HighBits(uint32_t v) { return static_cast<uint16_t>(v >> 16); }
uint16_t LowBits(uint32_t v) { return static_cast<uint16_t>(v & 0xFFFF); }

uint64_t PopcountWords(const std::vector<uint64_t>& words) {
  uint64_t count = 0;
  for (uint64_t w : words) count += static_cast<uint64_t>(__builtin_popcountll(w));
  return count;
}

}  // namespace

// ---------------------------------------------------------------- Container

bool Bitmap::Container::Contains(uint16_t low) const {
  if (is_bitset) {
    return (words[low >> 6] >> (low & 63)) & 1;
  }
  return std::binary_search(array.begin(), array.end(), low);
}

void Bitmap::Container::ToBitset() {
  if (is_bitset) return;
  words.assign(kBitsetWords, 0);
  for (uint16_t low : array) {
    words[low >> 6] |= uint64_t{1} << (low & 63);
  }
  array.clear();
  array.shrink_to_fit();
  is_bitset = true;
}

void Bitmap::Container::ToArrayIfSmall() {
  if (!is_bitset || cardinality > kArrayLimit) return;
  array.clear();
  array.reserve(cardinality);
  for (size_t w = 0; w < kBitsetWords; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      int bit = __builtin_ctzll(word);
      array.push_back(static_cast<uint16_t>(w * 64 + bit));
      word &= word - 1;
    }
  }
  words.clear();
  words.shrink_to_fit();
  is_bitset = false;
}

// ------------------------------------------------------------------- Basics

size_t Bitmap::LowerBound(uint16_t key) const {
  size_t lo = 0;
  size_t hi = containers_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (containers_[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t Bitmap::FindContainer(uint16_t key) const {
  size_t i = LowerBound(key);
  if (i < containers_.size() && containers_[i].key == key) return i;
  return containers_.size();
}

Bitmap Bitmap::FromValues(const std::vector<uint32_t>& values) {
  Bitmap bm;
  for (uint32_t v : values) bm.Add(v);
  return bm;
}

void Bitmap::Add(uint32_t value) {
  uint16_t key = HighBits(value);
  uint16_t low = LowBits(value);
  size_t i = LowerBound(key);
  if (i == containers_.size() || containers_[i].key != key) {
    Container c;
    c.key = key;
    c.array.push_back(low);
    c.cardinality = 1;
    containers_.insert(containers_.begin() + i, std::move(c));
    return;
  }
  Container& c = containers_[i];
  if (c.is_bitset) {
    uint64_t& word = c.words[low >> 6];
    uint64_t mask = uint64_t{1} << (low & 63);
    if ((word & mask) == 0) {
      word |= mask;
      ++c.cardinality;
    }
    return;
  }
  auto it = std::lower_bound(c.array.begin(), c.array.end(), low);
  if (it != c.array.end() && *it == low) return;
  c.array.insert(it, low);
  ++c.cardinality;
  if (c.cardinality > kArrayLimit) c.ToBitset();
}

bool Bitmap::Remove(uint32_t value) {
  uint16_t key = HighBits(value);
  uint16_t low = LowBits(value);
  size_t i = FindContainer(key);
  if (i == containers_.size()) return false;
  Container& c = containers_[i];
  if (c.is_bitset) {
    uint64_t& word = c.words[low >> 6];
    uint64_t mask = uint64_t{1} << (low & 63);
    if ((word & mask) == 0) return false;
    word &= ~mask;
    --c.cardinality;
    c.ToArrayIfSmall();
  } else {
    auto it = std::lower_bound(c.array.begin(), c.array.end(), low);
    if (it == c.array.end() || *it != low) return false;
    c.array.erase(it);
    --c.cardinality;
  }
  if (c.cardinality == 0) containers_.erase(containers_.begin() + i);
  return true;
}

bool Bitmap::Contains(uint32_t value) const {
  size_t i = FindContainer(HighBits(value));
  if (i == containers_.size()) return false;
  return containers_[i].Contains(LowBits(value));
}

uint64_t Bitmap::Cardinality() const {
  uint64_t total = 0;
  for (const Container& c : containers_) total += c.cardinality;
  return total;
}

std::optional<uint32_t> Bitmap::Min() const {
  if (containers_.empty()) return std::nullopt;
  const Container& c = containers_.front();
  uint32_t high = static_cast<uint32_t>(c.key) << 16;
  if (!c.is_bitset) return high | c.array.front();
  for (size_t w = 0; w < kBitsetWords; ++w) {
    if (c.words[w] != 0) {
      return high | static_cast<uint32_t>(w * 64 + __builtin_ctzll(c.words[w]));
    }
  }
  return std::nullopt;  // unreachable: containers are never empty
}

std::optional<uint32_t> Bitmap::Max() const {
  if (containers_.empty()) return std::nullopt;
  const Container& c = containers_.back();
  uint32_t high = static_cast<uint32_t>(c.key) << 16;
  if (!c.is_bitset) return high | c.array.back();
  for (size_t w = kBitsetWords; w-- > 0;) {
    if (c.words[w] != 0) {
      return high |
             static_cast<uint32_t>(w * 64 + 63 - __builtin_clzll(c.words[w]));
    }
  }
  return std::nullopt;  // unreachable
}

std::vector<uint32_t> Bitmap::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Cardinality());
  ForEach([&out](uint32_t v) { out.push_back(v); });
  return out;
}

bool Bitmap::operator==(const Bitmap& other) const {
  if (containers_.size() != other.containers_.size()) return false;
  for (size_t i = 0; i < containers_.size(); ++i) {
    const Container& a = containers_[i];
    const Container& b = other.containers_[i];
    if (a.key != b.key || a.cardinality != b.cardinality) return false;
    if (a.is_bitset == b.is_bitset) {
      if (a.is_bitset ? (a.words != b.words) : (a.array != b.array)) {
        return false;
      }
    } else {
      // Mixed representations can still be equal (e.g. after removals).
      const Container& bitset = a.is_bitset ? a : b;
      const Container& array = a.is_bitset ? b : a;
      for (uint16_t low : array.array) {
        if (!bitset.Contains(low)) return false;
      }
    }
  }
  return true;
}

// -------------------------------------------------------------- Set algebra

Bitmap::Container Bitmap::AndContainers(const Container& a,
                                        const Container& b) {
  Container out;
  out.key = a.key;
  if (a.is_bitset && b.is_bitset) {
    out.is_bitset = true;
    out.words.resize(kBitsetWords);
    for (size_t w = 0; w < kBitsetWords; ++w) out.words[w] = a.words[w] & b.words[w];
    out.cardinality = static_cast<uint32_t>(PopcountWords(out.words));
    out.ToArrayIfSmall();
  } else if (!a.is_bitset && !b.is_bitset) {
    std::set_intersection(a.array.begin(), a.array.end(), b.array.begin(),
                          b.array.end(), std::back_inserter(out.array));
    out.cardinality = static_cast<uint32_t>(out.array.size());
  } else {
    const Container& arr = a.is_bitset ? b : a;
    const Container& bits = a.is_bitset ? a : b;
    for (uint16_t low : arr.array) {
      if (bits.Contains(low)) out.array.push_back(low);
    }
    out.cardinality = static_cast<uint32_t>(out.array.size());
  }
  return out;
}

Bitmap::Container Bitmap::OrContainers(const Container& a, const Container& b) {
  Container out;
  out.key = a.key;
  if (a.is_bitset || b.is_bitset ||
      a.cardinality + b.cardinality > kArrayLimit) {
    out.is_bitset = true;
    out.words.assign(kBitsetWords, 0);
    auto blend = [&out](const Container& c) {
      if (c.is_bitset) {
        for (size_t w = 0; w < kBitsetWords; ++w) out.words[w] |= c.words[w];
      } else {
        for (uint16_t low : c.array) out.words[low >> 6] |= uint64_t{1} << (low & 63);
      }
    };
    blend(a);
    blend(b);
    out.cardinality = static_cast<uint32_t>(PopcountWords(out.words));
    out.ToArrayIfSmall();
  } else {
    std::set_union(a.array.begin(), a.array.end(), b.array.begin(),
                   b.array.end(), std::back_inserter(out.array));
    out.cardinality = static_cast<uint32_t>(out.array.size());
  }
  return out;
}

Bitmap::Container Bitmap::AndNotContainers(const Container& a,
                                           const Container& b) {
  Container out;
  out.key = a.key;
  if (a.is_bitset) {
    out.is_bitset = true;
    out.words = a.words;
    if (b.is_bitset) {
      for (size_t w = 0; w < kBitsetWords; ++w) out.words[w] &= ~b.words[w];
    } else {
      for (uint16_t low : b.array) out.words[low >> 6] &= ~(uint64_t{1} << (low & 63));
    }
    out.cardinality = static_cast<uint32_t>(PopcountWords(out.words));
    out.ToArrayIfSmall();
  } else {
    for (uint16_t low : a.array) {
      if (!b.Contains(low)) out.array.push_back(low);
    }
    out.cardinality = static_cast<uint32_t>(out.array.size());
  }
  return out;
}

Bitmap::Container Bitmap::XorContainers(const Container& a, const Container& b) {
  Container out;
  out.key = a.key;
  if (a.is_bitset || b.is_bitset) {
    out.is_bitset = true;
    out.words.assign(kBitsetWords, 0);
    auto blend = [&out](const Container& c) {
      if (c.is_bitset) {
        for (size_t w = 0; w < kBitsetWords; ++w) out.words[w] ^= c.words[w];
      } else {
        for (uint16_t low : c.array) out.words[low >> 6] ^= uint64_t{1} << (low & 63);
      }
    };
    blend(a);
    blend(b);
    out.cardinality = static_cast<uint32_t>(PopcountWords(out.words));
    out.ToArrayIfSmall();
  } else {
    std::set_symmetric_difference(a.array.begin(), a.array.end(),
                                  b.array.begin(), b.array.end(),
                                  std::back_inserter(out.array));
    out.cardinality = static_cast<uint32_t>(out.array.size());
    if (out.cardinality > kArrayLimit) out.ToBitset();
  }
  return out;
}

uint64_t Bitmap::AndCardinalityContainers(const Container& a,
                                          const Container& b) {
  if (a.is_bitset && b.is_bitset) {
    uint64_t count = 0;
    for (size_t w = 0; w < kBitsetWords; ++w) {
      count += static_cast<uint64_t>(__builtin_popcountll(a.words[w] & b.words[w]));
    }
    return count;
  }
  if (!a.is_bitset && !b.is_bitset) {
    uint64_t count = 0;
    size_t i = 0;
    size_t j = 0;
    while (i < a.array.size() && j < b.array.size()) {
      if (a.array[i] < b.array[j]) {
        ++i;
      } else if (a.array[i] > b.array[j]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
    return count;
  }
  const Container& arr = a.is_bitset ? b : a;
  const Container& bits = a.is_bitset ? a : b;
  uint64_t count = 0;
  for (uint16_t low : arr.array) count += bits.Contains(low) ? 1 : 0;
  return count;
}

Bitmap Bitmap::And(const Bitmap& a, const Bitmap& b) {
  Bitmap out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.containers_.size() && j < b.containers_.size()) {
    uint16_t ka = a.containers_[i].key;
    uint16_t kb = b.containers_[j].key;
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      Container c = AndContainers(a.containers_[i], b.containers_[j]);
      if (c.cardinality > 0) out.containers_.push_back(std::move(c));
      ++i;
      ++j;
    }
  }
  return out;
}

Bitmap Bitmap::Or(const Bitmap& a, const Bitmap& b) {
  Bitmap out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.containers_.size() || j < b.containers_.size()) {
    if (j == b.containers_.size() ||
        (i < a.containers_.size() &&
         a.containers_[i].key < b.containers_[j].key)) {
      out.containers_.push_back(a.containers_[i]);
      ++i;
    } else if (i == a.containers_.size() ||
               b.containers_[j].key < a.containers_[i].key) {
      out.containers_.push_back(b.containers_[j]);
      ++j;
    } else {
      out.containers_.push_back(OrContainers(a.containers_[i], b.containers_[j]));
      ++i;
      ++j;
    }
  }
  return out;
}

Bitmap Bitmap::AndNot(const Bitmap& a, const Bitmap& b) {
  Bitmap out;
  size_t j = 0;
  for (const Container& ca : a.containers_) {
    while (j < b.containers_.size() && b.containers_[j].key < ca.key) ++j;
    if (j < b.containers_.size() && b.containers_[j].key == ca.key) {
      Container c = AndNotContainers(ca, b.containers_[j]);
      if (c.cardinality > 0) out.containers_.push_back(std::move(c));
    } else {
      out.containers_.push_back(ca);
    }
  }
  return out;
}

Bitmap Bitmap::Xor(const Bitmap& a, const Bitmap& b) {
  Bitmap out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.containers_.size() || j < b.containers_.size()) {
    if (j == b.containers_.size() ||
        (i < a.containers_.size() &&
         a.containers_[i].key < b.containers_[j].key)) {
      out.containers_.push_back(a.containers_[i]);
      ++i;
    } else if (i == a.containers_.size() ||
               b.containers_[j].key < a.containers_[i].key) {
      out.containers_.push_back(b.containers_[j]);
      ++j;
    } else {
      Container c = XorContainers(a.containers_[i], b.containers_[j]);
      if (c.cardinality > 0) out.containers_.push_back(std::move(c));
      ++i;
      ++j;
    }
  }
  return out;
}

void Bitmap::InplaceOr(const Bitmap& other) { *this = Or(*this, other); }
void Bitmap::InplaceAnd(const Bitmap& other) { *this = And(*this, other); }
void Bitmap::InplaceAndNot(const Bitmap& other) { *this = AndNot(*this, other); }

uint64_t Bitmap::AndCardinality(const Bitmap& a, const Bitmap& b) {
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.containers_.size() && j < b.containers_.size()) {
    uint16_t ka = a.containers_[i].key;
    uint16_t kb = b.containers_[j].key;
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      count += AndCardinalityContainers(a.containers_[i], b.containers_[j]);
      ++i;
      ++j;
    }
  }
  return count;
}

bool Bitmap::Intersects(const Bitmap& a, const Bitmap& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.containers_.size() && j < b.containers_.size()) {
    uint16_t ka = a.containers_[i].key;
    uint16_t kb = b.containers_[j].key;
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      if (AndCardinalityContainers(a.containers_[i], b.containers_[j]) > 0) {
        return true;
      }
      ++i;
      ++j;
    }
  }
  return false;
}

bool Bitmap::IsSubset(const Bitmap& a, const Bitmap& b) {
  return AndCardinality(a, b) == a.Cardinality();
}

// ------------------------------------------------------------ Serialization

namespace {

template <typename T>
void AppendPod(std::vector<uint8_t>* out, T value) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool ReadPod(const std::vector<uint8_t>& data, size_t* offset, T* value) {
  if (*offset + sizeof(T) > data.size()) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

void Bitmap::SerializeTo(std::vector<uint8_t>* out) const {
  AppendPod<uint32_t>(out, static_cast<uint32_t>(containers_.size()));
  for (const Container& c : containers_) {
    AppendPod<uint16_t>(out, c.key);
    AppendPod<uint8_t>(out, c.is_bitset ? 1 : 0);
    AppendPod<uint32_t>(out, c.cardinality);
    if (c.is_bitset) {
      const uint8_t* p = reinterpret_cast<const uint8_t*>(c.words.data());
      out->insert(out->end(), p, p + kBitsetWords * sizeof(uint64_t));
    } else {
      const uint8_t* p = reinterpret_cast<const uint8_t*>(c.array.data());
      out->insert(out->end(), p, p + c.array.size() * sizeof(uint16_t));
    }
  }
}

Result<Bitmap> Bitmap::Deserialize(const std::vector<uint8_t>& data,
                                   size_t* offset) {
  Bitmap bm;
  uint32_t num_containers = 0;
  if (!ReadPod(data, offset, &num_containers)) {
    return Status::Corruption("bitmap: truncated header");
  }
  // Each container needs at least its 7-byte header plus one element.
  if (static_cast<uint64_t>(num_containers) * 9 > data.size() - *offset + 9) {
    return Status::Corruption("bitmap: container count exceeds data size");
  }
  bm.containers_.reserve(num_containers);
  uint32_t prev_key = 0;
  for (uint32_t i = 0; i < num_containers; ++i) {
    Container c;
    uint8_t is_bitset = 0;
    if (!ReadPod(data, offset, &c.key) || !ReadPod(data, offset, &is_bitset) ||
        !ReadPod(data, offset, &c.cardinality)) {
      return Status::Corruption("bitmap: truncated container header");
    }
    if (i > 0 && c.key <= prev_key) {
      return Status::Corruption("bitmap: container keys out of order");
    }
    prev_key = c.key;
    c.is_bitset = is_bitset != 0;
    if (c.is_bitset) {
      size_t bytes = kBitsetWords * sizeof(uint64_t);
      if (*offset + bytes > data.size()) {
        return Status::Corruption("bitmap: truncated bitset");
      }
      c.words.resize(kBitsetWords);
      std::memcpy(c.words.data(), data.data() + *offset, bytes);
      *offset += bytes;
      if (PopcountWords(c.words) != c.cardinality) {
        return Status::Corruption("bitmap: bitset cardinality mismatch");
      }
    } else {
      if (c.cardinality > kArrayLimit + 1) {
        return Status::Corruption("bitmap: array container too large");
      }
      size_t bytes = c.cardinality * sizeof(uint16_t);
      if (*offset + bytes > data.size()) {
        return Status::Corruption("bitmap: truncated array");
      }
      c.array.resize(c.cardinality);
      std::memcpy(c.array.data(), data.data() + *offset, bytes);
      *offset += bytes;
      if (!std::is_sorted(c.array.begin(), c.array.end())) {
        return Status::Corruption("bitmap: array not sorted");
      }
    }
    if (c.cardinality == 0) {
      return Status::Corruption("bitmap: empty container");
    }
    bm.containers_.push_back(std::move(c));
  }
  return bm;
}

size_t Bitmap::MemoryBytes() const {
  size_t bytes = sizeof(Bitmap) + containers_.capacity() * sizeof(Container);
  for (const Container& c : containers_) {
    bytes += c.array.capacity() * sizeof(uint16_t);
    bytes += c.words.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

// ----------------------------------------------------------------- Iterator

Bitmap::Iterator::Iterator(const Bitmap& bitmap) : bitmap_(&bitmap) {
  LoadContainer();
}

void Bitmap::Iterator::LoadContainer() {
  valid_ = false;
  while (container_index_ < bitmap_->containers_.size()) {
    const Container& c = bitmap_->containers_[container_index_];
    if (c.is_bitset) {
      bitset_word_ = 0;
      current_word_ = 0;
      for (size_t w = 0; w < kBitsetWords; ++w) {
        if (c.words[w] != 0) {
          bitset_word_ = static_cast<uint32_t>(w);
          current_word_ = c.words[w];
          break;
        }
      }
      if (current_word_ != 0) {
        uint32_t high = static_cast<uint32_t>(c.key) << 16;
        int bit = __builtin_ctzll(current_word_);
        value_ = high | (bitset_word_ * 64 + static_cast<uint32_t>(bit));
        current_word_ &= current_word_ - 1;
        valid_ = true;
        return;
      }
      ++container_index_;  // empty bitset container (shouldn't occur)
    } else {
      if (!c.array.empty()) {
        array_index_ = 0;
        value_ = (static_cast<uint32_t>(c.key) << 16) | c.array[0];
        array_index_ = 1;
        valid_ = true;
        return;
      }
      ++container_index_;
    }
  }
}

void Bitmap::Iterator::AdvanceWithinBitset() {
  const Container& c = bitmap_->containers_[container_index_];
  uint32_t high = static_cast<uint32_t>(c.key) << 16;
  for (;;) {
    if (current_word_ != 0) {
      int bit = __builtin_ctzll(current_word_);
      value_ = high | (bitset_word_ * 64 + static_cast<uint32_t>(bit));
      current_word_ &= current_word_ - 1;
      valid_ = true;
      return;
    }
    ++bitset_word_;
    if (bitset_word_ >= kBitsetWords) break;
    current_word_ = c.words[bitset_word_];
  }
  ++container_index_;
  LoadContainer();
}

void Bitmap::Iterator::Next() {
  if (!valid_) return;
  const Container& c = bitmap_->containers_[container_index_];
  if (c.is_bitset) {
    AdvanceWithinBitset();
    return;
  }
  if (array_index_ < c.array.size()) {
    value_ = (static_cast<uint32_t>(c.key) << 16) | c.array[array_index_];
    ++array_index_;
    return;
  }
  ++container_index_;
  LoadContainer();
}

}  // namespace mbq::bitmapstore
