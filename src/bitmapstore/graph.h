#ifndef MBQ_BITMAPSTORE_GRAPH_H_
#define MBQ_BITMAPSTORE_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bitmapstore/objects.h"
#include "cache/epoch.h"
#include "storage/storage_accountant.h"
#include "common/value.h"
#include "storage/buffer_cache.h"
#include "storage/extent_allocator.h"
#include "storage/simulated_disk.h"
#include "util/clock.h"
#include "util/result.h"

namespace mbq::bitmapstore {

using common::Value;
using common::ValueType;

/// Node or edge type identifier.
using TypeId = int32_t;
inline constexpr TypeId kInvalidType = -1;

/// Attribute identifier (scoped to the graph, bound to one type).
using AttrId = int32_t;
inline constexpr AttrId kInvalidAttr = -1;

enum class ObjectKind : uint8_t { kNode, kEdge };

/// How an attribute is stored/queried, after Sparksee's Basic / Indexed /
/// Unique attribute kinds.
enum class AttributeKind : uint8_t {
  kBasic,    // value retrievable by oid; Select() scans
  kIndexed,  // value -> objects index maintained; Select() seeks
  kUnique,   // indexed + at most one object per value; FindObject() seeks
};

enum class EdgesDirection : uint8_t { kOutgoing, kIngoing, kAny };

/// Comparison operator for Select(). Only one predicate per call —
/// combining predicates is the caller's job via Objects algebra, matching
/// the limitation the paper reports ("Sparksee does not directly support
/// filtering on multiple predicates").
enum class Condition : uint8_t {
  kEqual,
  kNotEqual,
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
};

/// Engine configuration, mirroring the knobs the paper tuned (§3.2.2).
struct GraphOptions {
  /// Buffer cache size in bytes (the paper used 5 GB; scale to taste).
  uint64_t cache_bytes = 64ull << 20;
  /// Extent size in pages (8 pages * 8 KiB = 64 KiB, the paper's value).
  uint32_t extent_pages = 8;
  /// Maintain node->neighbor-node bitmaps in addition to node->edge
  /// bitmaps. Speeds Neighbors() but makes loading far slower — the paper
  /// aborted a materialized import after 8 hours.
  bool materialize_neighbors = false;
  /// Recovery/rollback logging; the paper disabled it for faster loads.
  bool recovery_enabled = false;
  /// Latency model of the backing device.
  storage::DiskProfile disk_profile;
  /// Registry this graph reports its `bitmapstore.*` metrics to;
  /// null means the process-wide obs::MetricsRegistry::Default().
  obs::MetricsRegistry* metrics = nullptr;
};

/// I/O and operation counters surfaced by the engine. Fields are relaxed
/// atomics so concurrent reader threads can bump them without a data race;
/// they read as plain integers (atomic<uint64_t> converts implicitly).
struct GraphStats {
  std::atomic<uint64_t> neighbors_calls{0};
  std::atomic<uint64_t> explode_calls{0};
  std::atomic<uint64_t> select_calls{0};
  std::atomic<uint64_t> attribute_reads{0};
  std::atomic<uint64_t> attribute_writes{0};

  void Reset() {
    neighbors_calls = 0;
    explode_calls = 0;
    select_calls = 0;
    attribute_reads = 0;
    attribute_writes = 0;
  }
};

/// A directed labelled multigraph with typed attributes, stored over
/// bitmap indices — the Sparksee/DEX architecture (Martinez-Bazan et al.,
/// IDEAS'12): each type is a bitmap of its objects, each indexed attribute
/// value maps to a bitmap, and adjacency is kept as per-node bitmaps of
/// edge oids. All navigation returns Objects (unordered unique oid sets).
class Graph {
 public:
  explicit Graph(GraphOptions options = GraphOptions());
  ~Graph();

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // ------------------------------------------------------------- Schema
  /// Creates a node type. Fails if the name exists.
  Result<TypeId> NewNodeType(const std::string& name);
  /// Creates a directed edge type.
  Result<TypeId> NewEdgeType(const std::string& name);
  /// Finds a type by name.
  Result<TypeId> FindType(const std::string& name) const;
  /// Declares attribute `name` on `type`.
  Result<AttrId> NewAttribute(TypeId type, const std::string& name,
                              ValueType dtype, AttributeKind kind);
  Result<AttrId> FindAttribute(TypeId type, const std::string& name) const;

  /// Declared data type of an attribute.
  ValueType AttributeType(AttrId attr) const;
  /// Declared kind (basic/indexed/unique) of an attribute.
  AttributeKind GetAttributeKind(AttrId attr) const;
  /// Name of an attribute.
  const std::string& AttributeName(AttrId attr) const;

  const std::string& TypeName(TypeId type) const;
  ObjectKind TypeKind(TypeId type) const;
  std::vector<TypeId> NodeTypes() const;
  std::vector<TypeId> EdgeTypes() const;
  /// Number of declared types, in declaration order [0, NumTypes()).
  uint32_t NumTypes() const { return static_cast<uint32_t>(types_.size()); }
  /// Number of declared attributes, in declaration order.
  uint32_t NumAttributes() const {
    return static_cast<uint32_t>(attributes_.size());
  }
  /// The type an attribute is declared on.
  TypeId AttributeOwner(AttrId attr) const;
  /// Iterates every stored (oid, value) pair of an attribute, in no
  /// particular order. Raw accessor for snapshotting (no I/O charge).
  void ForEachAttributeValue(
      AttrId attr, const std::function<void(Oid, const Value&)>& fn) const;
  /// The type of object `oid`, or kInvalidType for freed slots; spans
  /// [0, ObjectSpan()). Raw accessor for snapshotting (no I/O charge).
  TypeId RawObjectType(Oid oid) const;
  uint64_t ObjectSpan() const { return type_of_.size(); }
  /// Raw edge endpoints without I/O accounting (snapshotting).
  void RawEdgeEndpoints(Oid edge, Oid* tail, Oid* head) const;

  // ------------------------------------------------------------ Objects
  /// Creates a node of `type` and returns its oid.
  Result<Oid> NewNode(TypeId type);
  /// Creates a `type` edge from `tail` to `head`.
  Result<Oid> NewEdge(TypeId type, Oid tail, Oid head);
  /// Removes an object (edges of a removed node are removed too).
  Status Drop(Oid oid);

  /// The type of an existing object.
  Result<TypeId> GetObjectType(Oid oid) const;
  /// Number of objects of `type`.
  uint64_t CountObjects(TypeId type) const;
  /// All objects of `type`.
  Result<Objects> Select(TypeId type) const;

  struct EdgeData {
    Oid edge = kInvalidOid;
    Oid tail = kInvalidOid;
    Oid head = kInvalidOid;
    TypeId type = kInvalidType;
  };
  /// Endpoints of an edge.
  Result<EdgeData> GetEdgeData(Oid edge) const;
  /// Given an edge and one endpoint, the other endpoint.
  Result<Oid> GetEdgePeer(Oid edge, Oid node) const;

  // --------------------------------------------------------- Attributes
  Status SetAttribute(Oid oid, AttrId attr, const Value& value);
  /// Null if the object has no value for `attr`.
  Result<Value> GetAttribute(Oid oid, AttrId attr) const;
  /// Unique-attribute point lookup; kInvalidOid if absent.
  Result<Oid> FindObject(AttrId attr, const Value& value) const;
  /// Single-predicate selection over one attribute.
  Result<Objects> Select(AttrId attr, Condition cond, const Value& value) const;

  // --------------------------------------------------------- Navigation
  /// Nodes adjacent to `node` through `etype` edges in `dir`. The result
  /// is a set: parallel edges collapse (Sparksee semantics).
  Result<Objects> Neighbors(Oid node, TypeId etype, EdgesDirection dir) const;
  /// Union of Neighbors over a set of source nodes.
  Result<Objects> Neighbors(const Objects& nodes, TypeId etype,
                            EdgesDirection dir) const;
  /// Edge oids incident to `node` of `etype` in `dir`.
  Result<Objects> Explode(Oid node, TypeId etype, EdgesDirection dir) const;
  /// Degree (number of incident edges) — cheaper than Explode().Count().
  Result<uint64_t> Degree(Oid node, TypeId etype, EdgesDirection dir) const;

  // ------------------------------------------------------------ Control
  /// Flushes dirty cached pages to the simulated disk.
  Status Flush();
  /// Drops the page cache (cold-start simulation).
  Status DropCaches();

  const GraphStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  /// Write epochs for read caches: every mutation bumps the epoch of the
  /// object type it touches (cache::TypeDomain over the unified node/edge
  /// TypeId space); dropping a node bumps each incident edge type too.
  const cache::EpochRegistry& epochs() const { return epochs_; }
  /// Mutable registry for embedders that bump domains of their own (the
  /// live write path publishes cache::kCommitEpochDomain per commit).
  cache::EpochRegistry& mutable_epochs() { return epochs_; }
  storage::BufferCacheStats cache_stats() const;
  storage::DiskStats disk_stats() const;
  /// Simulated on-disk footprint in bytes.
  uint64_t DiskSizeBytes() const;
  /// Simulated device time consumed so far (nanoseconds).
  uint64_t SimulatedIoNanos() const;
  uint64_t NumNodes() const { return num_nodes_; }
  uint64_t NumEdges() const { return num_edges_; }
  const GraphOptions& options() const { return options_; }

  // ---------------------------------------------------------- Integrity
  // Fault injection for the storage checker's tests (core/check.cc) —
  // deliberately break internal invariants without going through the
  // write paths. Never call these outside tests.
  /// Adds `edge` to `node`'s outgoing adjacency bitmap of edge type
  /// `etype` without creating an edge record.
  void CorruptAdjacencyForTest(TypeId etype, Oid node, Oid edge);
  /// Skews the cached object count of `type` by `delta` without touching
  /// its membership bitmap.
  void CorruptTypeCountForTest(TypeId type, int64_t delta);

 private:
  struct AttributeInfo {
    TypeId type = kInvalidType;
    std::string name;
    ValueType dtype = ValueType::kNull;
    AttributeKind kind = AttributeKind::kBasic;
    std::unordered_map<Oid, Value> values;
    /// value -> objects, ordered for range conditions (indexed kinds only).
    std::map<Value, Bitmap> index;
    uint32_t stream = 0;
    std::unordered_map<Oid, std::pair<uint64_t, uint32_t>> locations;
  };

  struct AdjacencyIndex {
    /// node -> incident edge oids.
    std::unordered_map<Oid, Bitmap> edges;
    /// node -> neighbor node oids (only when materialize_neighbors).
    std::unordered_map<Oid, Bitmap> nbrs;
    /// node -> first byte of its adjacency region (I/O accounting).
    std::unordered_map<Oid, uint64_t> first_offset;
    uint32_t stream = 0;
  };

  struct TypeInfo {
    std::string name;
    ObjectKind kind = ObjectKind::kNode;
    Bitmap objects;
    uint64_t count = 0;
    AdjacencyIndex out;  // edge types only
    AdjacencyIndex in;   // edge types only
    std::vector<AttrId> attributes;
  };

  Status CheckOid(Oid oid) const;
  Status CheckNodeOid(Oid oid) const;
  Result<const AttributeInfo*> CheckAttr(AttrId attr) const;
  const AdjacencyIndex& Adjacency(const TypeInfo& t, bool outgoing) const {
    return outgoing ? t.out : t.in;
  }
  // Charges reads for one node's adjacency region.
  Status TouchAdjacency(const AdjacencyIndex& adj, Oid node,
                        uint64_t degree) const;
  Result<Objects> NeighborsOneDirection(Oid node, const TypeInfo& et,
                                        bool outgoing) const;

  GraphOptions options_;
  std::unique_ptr<VirtualClock> io_clock_;
  std::unique_ptr<storage::SimulatedDisk> disk_;
  std::unique_ptr<storage::BufferCache> cache_;
  std::unique_ptr<storage::ExtentAllocator> extents_;
  std::unique_ptr<storage::StorageAccountant> accountant_;

  std::vector<TypeInfo> types_;
  std::unordered_map<std::string, TypeId> type_by_name_;
  std::vector<AttributeInfo> attributes_;

  std::vector<TypeId> type_of_;  // oid -> type
  std::vector<Oid> edge_tail_;   // oid -> tail (edges only)
  std::vector<Oid> edge_head_;   // oid -> head (edges only)
  uint64_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  uint32_t object_table_stream_ = 0;

  mutable GraphStats stats_;
  cache::EpochRegistry epochs_;

  /// Reports this instance's `bitmapstore.*` gauges at snapshot time;
  /// unregisters automatically on destruction.
  obs::ScopedProvider metrics_provider_;
};

}  // namespace mbq::bitmapstore

#endif  // MBQ_BITMAPSTORE_GRAPH_H_
