#ifndef MBQ_BITMAPSTORE_TRAVERSAL_H_
#define MBQ_BITMAPSTORE_TRAVERSAL_H_

#include <functional>
#include <vector>

#include "bitmapstore/graph.h"

namespace mbq::bitmapstore {

/// Visit order for Traversal, after Sparksee's TraversalBFS/TraversalDFS.
enum class TraversalOrder { kBreadthFirst, kDepthFirst };

/// A configurable multi-hop walk from a source node — the engine's
/// "Traversal/Context" style interface. Convenient, but it layers
/// per-node bookkeeping on top of the raw navigation primitives; the
/// paper found raw neighbors/explode calls slightly faster, which the
/// A5 ablation bench reproduces.
class Traversal {
 public:
  Traversal(const Graph* graph, Oid source, TraversalOrder order);

  /// Allows traversal of `etype` edges in direction `dir`.
  void AddEdgeType(TypeId etype, EdgesDirection dir);
  /// Bounds the walk depth. Depth 0 is the source itself.
  void SetMaximumHops(uint32_t max_hops) { max_hops_ = max_hops; }
  /// Restricts visited nodes to `ntype` (the source is always visited).
  void AddNodeType(TypeId ntype);

  /// Runs the walk, calling `visit(node, depth)` for every distinct node
  /// reached (including the source at depth 0) until exhaustion or until
  /// `visit` returns false.
  Status Run(const std::function<bool(Oid, uint32_t)>& visit);

  /// Convenience: all distinct nodes within the hop bound.
  Result<Objects> CollectNodes();

 private:
  bool NodeAllowed(Oid node) const;

  const Graph* graph_;
  Oid source_;
  TraversalOrder order_;
  std::vector<std::pair<TypeId, EdgesDirection>> edge_types_;
  std::vector<TypeId> node_types_;
  uint32_t max_hops_ = UINT32_MAX;
};

}  // namespace mbq::bitmapstore

#endif  // MBQ_BITMAPSTORE_TRAVERSAL_H_
