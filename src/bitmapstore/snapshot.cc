#include "bitmapstore/snapshot.h"

#include <cstring>
#include <fstream>
#include <vector>

namespace mbq::bitmapstore {

namespace {

constexpr char kMagic[8] = {'M', 'B', 'Q', 'S', 'N', 'A', 'P', '1'};

class Writer {
 public:
  explicit Writer(std::ofstream* out) : out_(out) {}

  template <typename T>
  void Pod(T value) {
    out_->write(reinterpret_cast<const char*>(&value), sizeof(T));
  }
  void String(const std::string& s) {
    Pod<uint32_t>(static_cast<uint32_t>(s.size()));
    out_->write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  void Val(const Value& v) {
    Pod<uint8_t>(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kBool:
        Pod<uint8_t>(v.AsBool() ? 1 : 0);
        break;
      case ValueType::kInt:
        Pod<int64_t>(v.AsInt());
        break;
      case ValueType::kDouble:
        Pod<double>(v.AsDouble());
        break;
      case ValueType::kString:
        String(v.AsString());
        break;
    }
  }
  bool good() const { return out_->good(); }

 private:
  std::ofstream* out_;
};

class Reader {
 public:
  explicit Reader(std::ifstream* in) : in_(in) {}

  template <typename T>
  Result<T> Pod() {
    T value;
    in_->read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in_->good()) return Status::Corruption("snapshot truncated");
    return value;
  }
  Result<std::string> String() {
    MBQ_ASSIGN_OR_RETURN(uint32_t size, Pod<uint32_t>());
    if (size > (64u << 20)) return Status::Corruption("snapshot string too big");
    std::string s(size, '\0');
    in_->read(s.data(), size);
    if (!in_->good() && size > 0) return Status::Corruption("snapshot truncated");
    return s;
  }
  Result<Value> Val() {
    MBQ_ASSIGN_OR_RETURN(uint8_t tag, Pod<uint8_t>());
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kNull:
        return Value::Null();
      case ValueType::kBool: {
        MBQ_ASSIGN_OR_RETURN(uint8_t b, Pod<uint8_t>());
        return Value::Bool(b != 0);
      }
      case ValueType::kInt: {
        MBQ_ASSIGN_OR_RETURN(int64_t v, Pod<int64_t>());
        return Value::Int(v);
      }
      case ValueType::kDouble: {
        MBQ_ASSIGN_OR_RETURN(double v, Pod<double>());
        return Value::Double(v);
      }
      case ValueType::kString: {
        MBQ_ASSIGN_OR_RETURN(std::string s, String());
        return Value::String(std::move(s));
      }
    }
    return Status::Corruption("snapshot: bad value tag");
  }

 private:
  std::ifstream* in_;
};

}  // namespace

Status SaveSnapshot(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot create " + path);
  Writer w(&out);
  out.write(kMagic, sizeof(kMagic));

  w.Pod<uint32_t>(graph.NumTypes());
  for (TypeId t = 0; t < static_cast<TypeId>(graph.NumTypes()); ++t) {
    w.Pod<uint8_t>(graph.TypeKind(t) == ObjectKind::kNode ? 0 : 1);
    w.String(graph.TypeName(t));
  }
  w.Pod<uint32_t>(graph.NumAttributes());
  for (AttrId a = 0; a < static_cast<AttrId>(graph.NumAttributes()); ++a) {
    w.Pod<int32_t>(graph.AttributeOwner(a));
    w.Pod<uint8_t>(static_cast<uint8_t>(graph.AttributeType(a)));
    w.Pod<uint8_t>(static_cast<uint8_t>(graph.GetAttributeKind(a)));
    w.String(graph.AttributeName(a));
  }

  w.Pod<uint64_t>(graph.ObjectSpan());
  for (Oid oid = 0; oid < graph.ObjectSpan(); ++oid) {
    TypeId type = graph.RawObjectType(oid);
    w.Pod<int32_t>(type);
    if (type != kInvalidType && graph.TypeKind(type) == ObjectKind::kEdge) {
      Oid tail, head;
      graph.RawEdgeEndpoints(oid, &tail, &head);
      w.Pod<uint32_t>(tail);
      w.Pod<uint32_t>(head);
    }
  }

  for (AttrId a = 0; a < static_cast<AttrId>(graph.NumAttributes()); ++a) {
    // Count first (the map has no size accessor through the callback).
    uint64_t count = 0;
    graph.ForEachAttributeValue(a, [&count](Oid, const Value&) { ++count; });
    w.Pod<uint64_t>(count);
    Status status = Status::OK();
    graph.ForEachAttributeValue(a, [&](Oid oid, const Value& value) {
      w.Pod<uint32_t>(oid);
      w.Val(value);
    });
    MBQ_RETURN_IF_ERROR(status);
  }
  out.flush();
  if (!w.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadSnapshot(const std::string& path, Graph* graph) {
  if (graph->NumTypes() != 0 || graph->ObjectSpan() != 0) {
    return Status::FailedPrecondition(
        "LoadSnapshot requires a freshly constructed graph");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not an mbq snapshot: " + path);
  }
  Reader r(&in);

  MBQ_ASSIGN_OR_RETURN(uint32_t num_types, r.Pod<uint32_t>());
  for (uint32_t t = 0; t < num_types; ++t) {
    MBQ_ASSIGN_OR_RETURN(uint8_t kind, r.Pod<uint8_t>());
    MBQ_ASSIGN_OR_RETURN(std::string name, r.String());
    if (kind == 0) {
      MBQ_RETURN_IF_ERROR(graph->NewNodeType(name).status());
    } else {
      MBQ_RETURN_IF_ERROR(graph->NewEdgeType(name).status());
    }
  }
  MBQ_ASSIGN_OR_RETURN(uint32_t num_attrs, r.Pod<uint32_t>());
  for (uint32_t a = 0; a < num_attrs; ++a) {
    MBQ_ASSIGN_OR_RETURN(int32_t owner, r.Pod<int32_t>());
    MBQ_ASSIGN_OR_RETURN(uint8_t dtype, r.Pod<uint8_t>());
    MBQ_ASSIGN_OR_RETURN(uint8_t kind, r.Pod<uint8_t>());
    MBQ_ASSIGN_OR_RETURN(std::string name, r.String());
    if (kind > static_cast<uint8_t>(AttributeKind::kUnique)) {
      return Status::Corruption("snapshot: bad attribute kind");
    }
    MBQ_RETURN_IF_ERROR(
        graph
            ->NewAttribute(owner, name, static_cast<ValueType>(dtype),
                           static_cast<AttributeKind>(kind))
            .status());
  }

  MBQ_ASSIGN_OR_RETURN(uint64_t span, r.Pod<uint64_t>());
  std::vector<TypeId> node_types = graph->NodeTypes();
  for (uint64_t oid = 0; oid < span; ++oid) {
    MBQ_ASSIGN_OR_RETURN(int32_t type, r.Pod<int32_t>());
    if (type == kInvalidType) {
      // Freed slot: burn the oid with a placeholder node, then drop it.
      if (node_types.empty()) {
        return Status::Corruption(
            "snapshot has freed slots but no node type to burn oids with");
      }
      MBQ_ASSIGN_OR_RETURN(Oid placeholder, graph->NewNode(node_types[0]));
      MBQ_RETURN_IF_ERROR(graph->Drop(placeholder));
      continue;
    }
    if (type < 0 || static_cast<uint32_t>(type) >= graph->NumTypes()) {
      return Status::Corruption("snapshot: bad object type");
    }
    if (graph->TypeKind(type) == ObjectKind::kNode) {
      MBQ_ASSIGN_OR_RETURN(Oid created, graph->NewNode(type));
      if (created != oid) return Status::Internal("oid drift on load");
    } else {
      MBQ_ASSIGN_OR_RETURN(uint32_t tail, r.Pod<uint32_t>());
      MBQ_ASSIGN_OR_RETURN(uint32_t head, r.Pod<uint32_t>());
      MBQ_ASSIGN_OR_RETURN(Oid created, graph->NewEdge(type, tail, head));
      if (created != oid) return Status::Internal("oid drift on load");
    }
  }

  for (uint32_t a = 0; a < num_attrs; ++a) {
    MBQ_ASSIGN_OR_RETURN(uint64_t count, r.Pod<uint64_t>());
    for (uint64_t i = 0; i < count; ++i) {
      MBQ_ASSIGN_OR_RETURN(uint32_t oid, r.Pod<uint32_t>());
      MBQ_ASSIGN_OR_RETURN(Value value, r.Val());
      MBQ_RETURN_IF_ERROR(
          graph->SetAttribute(oid, static_cast<AttrId>(a), value));
    }
  }
  MBQ_RETURN_IF_ERROR(graph->Flush());
  return Status::OK();
}

}  // namespace mbq::bitmapstore
