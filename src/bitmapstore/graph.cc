#include "bitmapstore/graph.h"

#include "util/logging.h"

namespace mbq::bitmapstore {

namespace {
/// Approximate bytes one adjacency entry occupies on disk. Far larger
/// than a packed edge id: the bitmap store keeps several index structures
/// per link (out/in link arrays, per-type bitmaps, positional maps) —
/// the overhead behind the paper's 15.1 GB Sparksee database versus the
/// 2.8 GB record store for the same data.
constexpr uint64_t kAdjacencyEntryBytes = 96;
/// Bytes per row of the object table (type, endpoints, oid maps).
constexpr uint64_t kObjectTableRowBytes = 24;
}  // namespace

Graph::Graph(GraphOptions options) : options_(options) {
  io_clock_ = std::make_unique<VirtualClock>();
  disk_ = std::make_unique<storage::SimulatedDisk>(options_.disk_profile,
                                                   io_clock_.get());
  storage::BufferCacheOptions cache_options;
  cache_options.capacity_pages =
      std::max<size_t>(16, options_.cache_bytes / storage::kPageSize);
  cache_options.write_policy = storage::WritePolicy::kWriteBack;
  cache_options.flush_all_when_full = true;  // Sparksee-style stall
  cache_ = std::make_unique<storage::BufferCache>(disk_.get(), cache_options);
  extents_ = std::make_unique<storage::ExtentAllocator>(disk_.get(),
                                                        options_.extent_pages);
  accountant_ =
      std::make_unique<storage::StorageAccountant>(cache_.get(), extents_.get());
  object_table_stream_ = accountant_->NewStream();

  obs::MetricsRegistry* registry = options_.metrics != nullptr
                                       ? options_.metrics
                                       : &obs::MetricsRegistry::Default();
  metrics_provider_ =
      obs::ScopedProvider(registry, [this](obs::MetricsSink* sink) {
        sink->Gauge("bitmapstore.neighbors_calls",
                    static_cast<double>(stats_.neighbors_calls), "calls");
        sink->Gauge("bitmapstore.explode_calls",
                    static_cast<double>(stats_.explode_calls), "calls");
        sink->Gauge("bitmapstore.select_calls",
                    static_cast<double>(stats_.select_calls), "calls");
        sink->Gauge("bitmapstore.attribute_reads",
                    static_cast<double>(stats_.attribute_reads), "reads");
        sink->Gauge("bitmapstore.attribute_writes",
                    static_cast<double>(stats_.attribute_writes), "writes");
        const storage::BufferCacheStats& cache = cache_->stats();
        sink->Gauge("bitmapstore.page_cache.hits",
                    static_cast<double>(cache.hits), "pages");
        sink->Gauge("bitmapstore.page_cache.misses",
                    static_cast<double>(cache.misses), "pages");
        sink->Gauge("bitmapstore.page_cache.evictions",
                    static_cast<double>(cache.evictions), "pages");
        sink->Gauge("bitmapstore.page_cache.pages_flushed",
                    static_cast<double>(cache.pages_flushed), "pages");
        sink->Gauge("bitmapstore.page_cache.flush_stalls",
                    static_cast<double>(cache.flush_stalls), "events");
        const storage::DiskStats& disk = disk_->stats();
        sink->Gauge("bitmapstore.disk.page_reads",
                    static_cast<double>(disk.page_reads), "pages");
        sink->Gauge("bitmapstore.disk.page_writes",
                    static_cast<double>(disk.page_writes), "pages");
        sink->Gauge("bitmapstore.disk.seeks", static_cast<double>(disk.seeks),
                    "seeks");
        sink->Gauge("bitmapstore.disk.busy_nanos",
                    static_cast<double>(disk.busy_nanos), "ns");
        sink->Gauge("bitmapstore.nodes", static_cast<double>(num_nodes_),
                    "nodes");
        sink->Gauge("bitmapstore.edges", static_cast<double>(num_edges_),
                    "edges");
      });
}

Graph::~Graph() = default;

// ----------------------------------------------------------------- Schema

Result<TypeId> Graph::NewNodeType(const std::string& name) {
  if (type_by_name_.count(name) != 0) {
    return Status::AlreadyExists("type exists: " + name);
  }
  TypeInfo t;
  t.name = name;
  t.kind = ObjectKind::kNode;
  types_.push_back(std::move(t));
  TypeId id = static_cast<TypeId>(types_.size() - 1);
  type_by_name_[name] = id;
  return id;
}

Result<TypeId> Graph::NewEdgeType(const std::string& name) {
  if (type_by_name_.count(name) != 0) {
    return Status::AlreadyExists("type exists: " + name);
  }
  TypeInfo t;
  t.name = name;
  t.kind = ObjectKind::kEdge;
  t.out.stream = accountant_->NewStream();
  t.in.stream = accountant_->NewStream();
  types_.push_back(std::move(t));
  TypeId id = static_cast<TypeId>(types_.size() - 1);
  type_by_name_[name] = id;
  return id;
}

Result<TypeId> Graph::FindType(const std::string& name) const {
  auto it = type_by_name_.find(name);
  if (it == type_by_name_.end()) {
    return Status::NotFound("no such type: " + name);
  }
  return it->second;
}

Result<AttrId> Graph::NewAttribute(TypeId type, const std::string& name,
                                   ValueType dtype, AttributeKind kind) {
  if (type < 0 || static_cast<size_t>(type) >= types_.size()) {
    return Status::InvalidArgument("bad type id");
  }
  for (AttrId a : types_[type].attributes) {
    if (attributes_[a].name == name) {
      return Status::AlreadyExists("attribute exists: " + name);
    }
  }
  AttributeInfo info;
  info.type = type;
  info.name = name;
  info.dtype = dtype;
  info.kind = kind;
  info.stream = accountant_->NewStream();
  attributes_.push_back(std::move(info));
  AttrId id = static_cast<AttrId>(attributes_.size() - 1);
  types_[type].attributes.push_back(id);
  return id;
}

Result<AttrId> Graph::FindAttribute(TypeId type, const std::string& name) const {
  if (type < 0 || static_cast<size_t>(type) >= types_.size()) {
    return Status::InvalidArgument("bad type id");
  }
  for (AttrId a : types_[type].attributes) {
    if (attributes_[a].name == name) return a;
  }
  return Status::NotFound("no such attribute: " + name);
}

ValueType Graph::AttributeType(AttrId attr) const {
  MBQ_CHECK(attr >= 0 && static_cast<size_t>(attr) < attributes_.size());
  return attributes_[attr].dtype;
}

AttributeKind Graph::GetAttributeKind(AttrId attr) const {
  MBQ_CHECK(attr >= 0 && static_cast<size_t>(attr) < attributes_.size());
  return attributes_[attr].kind;
}

const std::string& Graph::AttributeName(AttrId attr) const {
  MBQ_CHECK(attr >= 0 && static_cast<size_t>(attr) < attributes_.size());
  return attributes_[attr].name;
}

const std::string& Graph::TypeName(TypeId type) const {
  MBQ_CHECK(type >= 0 && static_cast<size_t>(type) < types_.size());
  return types_[type].name;
}

ObjectKind Graph::TypeKind(TypeId type) const {
  MBQ_CHECK(type >= 0 && static_cast<size_t>(type) < types_.size());
  return types_[type].kind;
}

std::vector<TypeId> Graph::NodeTypes() const {
  std::vector<TypeId> out;
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].kind == ObjectKind::kNode) out.push_back(static_cast<TypeId>(i));
  }
  return out;
}

std::vector<TypeId> Graph::EdgeTypes() const {
  std::vector<TypeId> out;
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].kind == ObjectKind::kEdge) out.push_back(static_cast<TypeId>(i));
  }
  return out;
}

// ---------------------------------------------------------------- Objects

Status Graph::CheckOid(Oid oid) const {
  if (oid >= type_of_.size() || type_of_[oid] == kInvalidType) {
    return Status::NotFound("no such object: " + std::to_string(oid));
  }
  return Status::OK();
}

Status Graph::CheckNodeOid(Oid oid) const {
  MBQ_RETURN_IF_ERROR(CheckOid(oid));
  if (types_[type_of_[oid]].kind != ObjectKind::kNode) {
    return Status::InvalidArgument("object is not a node: " +
                                   std::to_string(oid));
  }
  return Status::OK();
}

Result<Oid> Graph::NewNode(TypeId type) {
  if (type < 0 || static_cast<size_t>(type) >= types_.size() ||
      types_[type].kind != ObjectKind::kNode) {
    return Status::InvalidArgument("bad node type");
  }
  epochs_.Bump(cache::TypeDomain(type));
  Oid oid = static_cast<Oid>(type_of_.size());
  type_of_.push_back(type);
  edge_tail_.push_back(kInvalidOid);
  edge_head_.push_back(kInvalidOid);
  types_[type].objects.Add(oid);
  ++types_[type].count;
  ++num_nodes_;
  MBQ_RETURN_IF_ERROR(
      accountant_->AppendBytes(object_table_stream_, kObjectTableRowBytes)
          .status());
  return oid;
}

Result<Oid> Graph::NewEdge(TypeId type, Oid tail, Oid head) {
  if (type < 0 || static_cast<size_t>(type) >= types_.size() ||
      types_[type].kind != ObjectKind::kEdge) {
    return Status::InvalidArgument("bad edge type");
  }
  MBQ_RETURN_IF_ERROR(CheckNodeOid(tail));
  MBQ_RETURN_IF_ERROR(CheckNodeOid(head));
  epochs_.Bump(cache::TypeDomain(type));
  Oid oid = static_cast<Oid>(type_of_.size());
  type_of_.push_back(type);
  edge_tail_.push_back(tail);
  edge_head_.push_back(head);
  TypeInfo& t = types_[type];
  t.objects.Add(oid);
  ++t.count;
  ++num_edges_;

  t.out.edges[tail].Add(oid);
  t.in.edges[head].Add(oid);
  MBQ_RETURN_IF_ERROR(
      accountant_->AppendBytes(object_table_stream_, kObjectTableRowBytes)
          .status());
  MBQ_ASSIGN_OR_RETURN(uint64_t out_off,
                       accountant_->AppendBytes(t.out.stream,
                                                kAdjacencyEntryBytes));
  t.out.first_offset.emplace(tail, out_off);
  MBQ_ASSIGN_OR_RETURN(uint64_t in_off,
                       accountant_->AppendBytes(t.in.stream,
                                                kAdjacencyEntryBytes));
  t.in.first_offset.emplace(head, in_off);

  if (options_.materialize_neighbors) {
    // Maintaining node->node bitmaps costs a read-modify-write of the
    // node's whole neighbor structure on every insertion — O(degree) I/O
    // per edge, quadratic over a hub's lifetime. This is the cost that
    // made the paper abort the materialized import after 8 hours.
    t.out.nbrs[tail].Add(head);
    t.in.nbrs[head].Add(tail);
    MBQ_RETURN_IF_ERROR(
        accountant_->AppendBytes(t.out.stream, kAdjacencyEntryBytes).status());
    MBQ_RETURN_IF_ERROR(
        accountant_->AppendBytes(t.in.stream, kAdjacencyEntryBytes).status());
    auto rewrite = [&](const AdjacencyIndex& adj, Oid node,
                       uint64_t degree) -> Status {
      auto it = adj.first_offset.find(node);
      if (it == adj.first_offset.end()) return Status::OK();
      return accountant_->TouchWrite(adj.stream, it->second,
                                     std::max<uint64_t>(1, degree) *
                                         kAdjacencyEntryBytes);
    };
    MBQ_RETURN_IF_ERROR(rewrite(t.out, tail, t.out.nbrs[tail].Cardinality()));
    MBQ_RETURN_IF_ERROR(rewrite(t.in, head, t.in.nbrs[head].Cardinality()));
  }
  return oid;
}

Status Graph::Drop(Oid oid) {
  MBQ_RETURN_IF_ERROR(CheckOid(oid));
  TypeId type = type_of_[oid];
  TypeInfo& t = types_[type];
  // Incident edges of a dropped node bump their own types through the
  // recursive Drop calls below.
  epochs_.Bump(cache::TypeDomain(type));
  if (t.kind == ObjectKind::kNode) {
    // Remove incident edges of every edge type first.
    for (size_t ti = 0; ti < types_.size(); ++ti) {
      TypeInfo& et = types_[ti];
      if (et.kind != ObjectKind::kEdge) continue;
      for (bool outgoing : {true, false}) {
        auto& index = outgoing ? et.out : et.in;
        auto it = index.edges.find(oid);
        if (it == index.edges.end()) continue;
        std::vector<Oid> incident = it->second.ToVector();
        for (Oid e : incident) {
          if (type_of_[e] != kInvalidType) MBQ_RETURN_IF_ERROR(Drop(e));
        }
      }
    }
    --num_nodes_;
  } else {
    Oid tail = edge_tail_[oid];
    Oid head = edge_head_[oid];
    auto erase_from = [&](AdjacencyIndex& adj, Oid node) {
      auto it = adj.edges.find(node);
      if (it != adj.edges.end()) {
        it->second.Remove(oid);
        if (it->second.Empty()) adj.edges.erase(it);
      }
    };
    erase_from(t.out, tail);
    erase_from(t.in, head);
    if (options_.materialize_neighbors) {
      // Rebuilding the neighbor bitmaps precisely would need edge
      // multiplicity; recompute from remaining edges.
      auto rebuild = [&](AdjacencyIndex& adj, Oid node, bool outgoing) {
        auto it = adj.edges.find(node);
        Bitmap fresh;
        if (it != adj.edges.end()) {
          it->second.ForEach([&](uint32_t e) {
            fresh.Add(outgoing ? edge_head_[e] : edge_tail_[e]);
          });
        }
        if (fresh.Empty()) {
          adj.nbrs.erase(node);
        } else {
          adj.nbrs[node] = std::move(fresh);
        }
      };
      rebuild(t.out, tail, /*outgoing=*/true);
      rebuild(t.in, head, /*outgoing=*/false);
    }
    --num_edges_;
  }
  // Remove attribute values and index postings.
  for (AttrId a : t.attributes) {
    AttributeInfo& info = attributes_[a];
    auto it = info.values.find(oid);
    if (it != info.values.end()) {
      auto idx = info.index.find(it->second);
      if (idx != info.index.end()) {
        idx->second.Remove(oid);
        if (idx->second.Empty()) info.index.erase(idx);
      }
      info.values.erase(it);
    }
    info.locations.erase(oid);
  }
  t.objects.Remove(oid);
  --t.count;
  type_of_[oid] = kInvalidType;
  edge_tail_[oid] = kInvalidOid;
  edge_head_[oid] = kInvalidOid;
  return Status::OK();
}

Result<TypeId> Graph::GetObjectType(Oid oid) const {
  MBQ_RETURN_IF_ERROR(CheckOid(oid));
  return type_of_[oid];
}

uint64_t Graph::CountObjects(TypeId type) const {
  MBQ_CHECK(type >= 0 && static_cast<size_t>(type) < types_.size());
  return types_[type].count;
}

Result<Objects> Graph::Select(TypeId type) const {
  if (type < 0 || static_cast<size_t>(type) >= types_.size()) {
    return Status::InvalidArgument("bad type id");
  }
  stats_.select_calls.fetch_add(1, std::memory_order_relaxed);
  return Objects(types_[type].objects);
}

Result<Graph::EdgeData> Graph::GetEdgeData(Oid edge) const {
  MBQ_RETURN_IF_ERROR(CheckOid(edge));
  TypeId type = type_of_[edge];
  if (types_[type].kind != ObjectKind::kEdge) {
    return Status::InvalidArgument("object is not an edge");
  }
  MBQ_RETURN_IF_ERROR(accountant_->TouchRead(
      object_table_stream_, uint64_t{edge} * kObjectTableRowBytes,
      kObjectTableRowBytes));
  EdgeData data;
  data.edge = edge;
  data.tail = edge_tail_[edge];
  data.head = edge_head_[edge];
  data.type = type;
  return data;
}

Result<Oid> Graph::GetEdgePeer(Oid edge, Oid node) const {
  MBQ_ASSIGN_OR_RETURN(EdgeData data, GetEdgeData(edge));
  if (data.tail == node) return data.head;
  if (data.head == node) return data.tail;
  return Status::InvalidArgument("node is not an endpoint of edge");
}

// ------------------------------------------------------------- Attributes

Result<const Graph::AttributeInfo*> Graph::CheckAttr(AttrId attr) const {
  if (attr < 0 || static_cast<size_t>(attr) >= attributes_.size()) {
    return Status::InvalidArgument("bad attribute id");
  }
  return &attributes_[attr];
}

Status Graph::SetAttribute(Oid oid, AttrId attr, const Value& value) {
  MBQ_RETURN_IF_ERROR(CheckOid(oid));
  MBQ_RETURN_IF_ERROR(CheckAttr(attr).status());
  AttributeInfo& info = attributes_[attr];
  if (type_of_[oid] != info.type) {
    return Status::InvalidArgument("attribute " + info.name +
                                   " not defined on object's type");
  }
  if (!value.is_null() && value.type() != info.dtype) {
    return Status::InvalidArgument(
        "type mismatch for attribute " + info.name + ": expected " +
        common::ValueTypeName(info.dtype) + ", got " +
        common::ValueTypeName(value.type()));
  }
  epochs_.Bump(cache::TypeDomain(info.type));
  bool indexed = info.kind != AttributeKind::kBasic;
  if (indexed && info.kind == AttributeKind::kUnique && !value.is_null()) {
    auto idx = info.index.find(value);
    if (idx != info.index.end() && !idx->second.Empty() &&
        !(idx->second.Cardinality() == 1 && idx->second.Contains(oid))) {
      return Status::AlreadyExists("unique attribute " + info.name +
                                   " already has value " + value.ToString());
    }
  }
  // Clear any previous value.
  auto prev = info.values.find(oid);
  if (prev != info.values.end()) {
    if (indexed) {
      auto idx = info.index.find(prev->second);
      if (idx != info.index.end()) {
        idx->second.Remove(oid);
        if (idx->second.Empty()) info.index.erase(idx);
      }
    }
    info.values.erase(prev);
  }
  stats_.attribute_writes.fetch_add(1, std::memory_order_relaxed);
  if (value.is_null()) return Status::OK();
  info.values.emplace(oid, value);
  if (indexed) info.index[value].Add(oid);
  uint32_t width = static_cast<uint32_t>(value.StorageBytes());
  MBQ_ASSIGN_OR_RETURN(uint64_t off,
                       accountant_->AppendBytes(info.stream, width));
  info.locations[oid] = {off, width};
  return Status::OK();
}

Result<Value> Graph::GetAttribute(Oid oid, AttrId attr) const {
  MBQ_RETURN_IF_ERROR(CheckOid(oid));
  MBQ_ASSIGN_OR_RETURN(const AttributeInfo* info, CheckAttr(attr));
  stats_.attribute_reads.fetch_add(1, std::memory_order_relaxed);
  auto it = info->values.find(oid);
  if (it == info->values.end()) return Value::Null();
  auto loc = info->locations.find(oid);
  if (loc != info->locations.end()) {
    MBQ_RETURN_IF_ERROR(accountant_->TouchRead(info->stream, loc->second.first,
                                               loc->second.second));
  }
  return it->second;
}

Result<Oid> Graph::FindObject(AttrId attr, const Value& value) const {
  MBQ_ASSIGN_OR_RETURN(const AttributeInfo* info, CheckAttr(attr));
  if (info->kind != AttributeKind::kUnique) {
    return Status::FailedPrecondition("FindObject requires a unique attribute");
  }
  auto idx = info->index.find(value);
  if (idx == info->index.end() || idx->second.Empty()) return kInvalidOid;
  return *idx->second.Min();
}

Result<Objects> Graph::Select(AttrId attr, Condition cond,
                              const Value& value) const {
  MBQ_ASSIGN_OR_RETURN(const AttributeInfo* info, CheckAttr(attr));
  stats_.select_calls.fetch_add(1, std::memory_order_relaxed);
  Objects out;
  if (info->kind == AttributeKind::kBasic) {
    // Unindexed: scan every stored value (and pay its pages).
    MBQ_RETURN_IF_ERROR(
        accountant_->TouchRead(info->stream, 0,
                               accountant_->StreamBytes(info->stream)));
    for (const auto& [oid, v] : info->values) {
      int c = v.Compare(value);
      bool keep = false;
      switch (cond) {
        case Condition::kEqual:
          keep = c == 0;
          break;
        case Condition::kNotEqual:
          keep = c != 0;
          break;
        case Condition::kLess:
          keep = c < 0;
          break;
        case Condition::kLessEqual:
          keep = c <= 0;
          break;
        case Condition::kGreater:
          keep = c > 0;
          break;
        case Condition::kGreaterEqual:
          keep = c >= 0;
          break;
      }
      if (keep) out.Add(oid);
    }
    return out;
  }
  // Indexed: walk the ordered value index.
  const auto& index = info->index;
  auto add_range = [&out](auto begin, auto end) {
    for (auto it = begin; it != end; ++it) {
      out.bitmap().InplaceOr(it->second);
    }
  };
  switch (cond) {
    case Condition::kEqual: {
      auto it = index.find(value);
      if (it != index.end()) out = Objects(it->second);
      break;
    }
    case Condition::kNotEqual: {
      for (auto it = index.begin(); it != index.end(); ++it) {
        if (it->first.Compare(value) != 0) out.bitmap().InplaceOr(it->second);
      }
      break;
    }
    case Condition::kLess:
      add_range(index.begin(), index.lower_bound(value));
      break;
    case Condition::kLessEqual:
      add_range(index.begin(), index.upper_bound(value));
      break;
    case Condition::kGreater:
      add_range(index.upper_bound(value), index.end());
      break;
    case Condition::kGreaterEqual:
      add_range(index.lower_bound(value), index.end());
      break;
  }
  return out;
}

// ------------------------------------------------------------- Navigation

Status Graph::TouchAdjacency(const AdjacencyIndex& adj, Oid node,
                             uint64_t degree) const {
  auto it = adj.first_offset.find(node);
  if (it == adj.first_offset.end()) return Status::OK();
  return accountant_->TouchRead(adj.stream, it->second,
                                std::max<uint64_t>(1, degree) *
                                    kAdjacencyEntryBytes);
}

Result<Objects> Graph::NeighborsOneDirection(Oid node, const TypeInfo& et,
                                             bool outgoing) const {
  const AdjacencyIndex& adj = outgoing ? et.out : et.in;
  Objects out;
  if (options_.materialize_neighbors) {
    auto it = adj.nbrs.find(node);
    if (it != adj.nbrs.end()) {
      MBQ_RETURN_IF_ERROR(TouchAdjacency(adj, node, it->second.Cardinality()));
      out = Objects(it->second);
    }
    return out;
  }
  auto it = adj.edges.find(node);
  if (it == adj.edges.end()) return out;
  MBQ_RETURN_IF_ERROR(TouchAdjacency(adj, node, it->second.Cardinality()));
  // Without a neighbor index every incident edge must be resolved to its
  // far endpoint through the object table — the per-edge cost the paper's
  // recommendation queries suffer from.
  Status touch_status = Status::OK();
  it->second.ForEach([&](uint32_t e) {
    Status st = accountant_->TouchRead(object_table_stream_,
                                       uint64_t{e} * kObjectTableRowBytes,
                                       kObjectTableRowBytes);
    if (!st.ok()) touch_status = st;
    out.Add(outgoing ? edge_head_[e] : edge_tail_[e]);
  });
  MBQ_RETURN_IF_ERROR(touch_status);
  return out;
}

Result<Objects> Graph::Neighbors(Oid node, TypeId etype,
                                 EdgesDirection dir) const {
  MBQ_RETURN_IF_ERROR(CheckNodeOid(node));
  if (etype < 0 || static_cast<size_t>(etype) >= types_.size() ||
      types_[etype].kind != ObjectKind::kEdge) {
    return Status::InvalidArgument("bad edge type");
  }
  stats_.neighbors_calls.fetch_add(1, std::memory_order_relaxed);
  const TypeInfo& et = types_[etype];
  if (dir == EdgesDirection::kOutgoing) {
    return NeighborsOneDirection(node, et, true);
  }
  if (dir == EdgesDirection::kIngoing) {
    return NeighborsOneDirection(node, et, false);
  }
  MBQ_ASSIGN_OR_RETURN(Objects out, NeighborsOneDirection(node, et, true));
  MBQ_ASSIGN_OR_RETURN(Objects in, NeighborsOneDirection(node, et, false));
  return Objects::CombineUnion(out, in);
}

Result<Objects> Graph::Neighbors(const Objects& nodes, TypeId etype,
                                 EdgesDirection dir) const {
  Objects result;
  Status status = Status::OK();
  nodes.ForEach([&](uint32_t node) -> bool {
    auto r = Neighbors(node, etype, dir);
    if (!r.ok()) {
      status = r.status();
      return false;
    }
    result.UnionInPlace(*r);
    return true;
  });
  MBQ_RETURN_IF_ERROR(status);
  return result;
}

Result<Objects> Graph::Explode(Oid node, TypeId etype,
                               EdgesDirection dir) const {
  MBQ_RETURN_IF_ERROR(CheckNodeOid(node));
  if (etype < 0 || static_cast<size_t>(etype) >= types_.size() ||
      types_[etype].kind != ObjectKind::kEdge) {
    return Status::InvalidArgument("bad edge type");
  }
  stats_.explode_calls.fetch_add(1, std::memory_order_relaxed);
  const TypeInfo& et = types_[etype];
  Objects out;
  auto collect = [&](const AdjacencyIndex& adj) -> Status {
    auto it = adj.edges.find(node);
    if (it == adj.edges.end()) return Status::OK();
    MBQ_RETURN_IF_ERROR(TouchAdjacency(adj, node, it->second.Cardinality()));
    out.bitmap().InplaceOr(it->second);
    return Status::OK();
  };
  if (dir != EdgesDirection::kIngoing) MBQ_RETURN_IF_ERROR(collect(et.out));
  if (dir != EdgesDirection::kOutgoing) MBQ_RETURN_IF_ERROR(collect(et.in));
  return out;
}

Result<uint64_t> Graph::Degree(Oid node, TypeId etype,
                               EdgesDirection dir) const {
  MBQ_RETURN_IF_ERROR(CheckNodeOid(node));
  if (etype < 0 || static_cast<size_t>(etype) >= types_.size() ||
      types_[etype].kind != ObjectKind::kEdge) {
    return Status::InvalidArgument("bad edge type");
  }
  const TypeInfo& et = types_[etype];
  uint64_t degree = 0;
  auto count = [&](const AdjacencyIndex& adj) {
    auto it = adj.edges.find(node);
    if (it != adj.edges.end()) degree += it->second.Cardinality();
  };
  if (dir != EdgesDirection::kIngoing) count(et.out);
  if (dir != EdgesDirection::kOutgoing) count(et.in);
  return degree;
}

// ---------------------------------------------------------------- Control

Status Graph::Flush() { return accountant_->Finalize(); }

Status Graph::DropCaches() { return cache_->EvictAll(); }

storage::BufferCacheStats Graph::cache_stats() const { return cache_->stats(); }

storage::DiskStats Graph::disk_stats() const { return disk_->stats(); }

uint64_t Graph::DiskSizeBytes() const { return disk_->SizeBytes(); }

uint64_t Graph::SimulatedIoNanos() const { return io_clock_->NowNanos(); }

}  // namespace mbq::bitmapstore

namespace mbq::bitmapstore {

TypeId Graph::AttributeOwner(AttrId attr) const {
  MBQ_CHECK(attr >= 0 && static_cast<size_t>(attr) < attributes_.size());
  return attributes_[attr].type;
}

void Graph::ForEachAttributeValue(
    AttrId attr, const std::function<void(Oid, const Value&)>& fn) const {
  MBQ_CHECK(attr >= 0 && static_cast<size_t>(attr) < attributes_.size());
  for (const auto& [oid, value] : attributes_[attr].values) fn(oid, value);
}

TypeId Graph::RawObjectType(Oid oid) const {
  return oid < type_of_.size() ? type_of_[oid] : kInvalidType;
}

void Graph::RawEdgeEndpoints(Oid edge, Oid* tail, Oid* head) const {
  MBQ_CHECK(edge < edge_tail_.size());
  *tail = edge_tail_[edge];
  *head = edge_head_[edge];
}

void Graph::CorruptAdjacencyForTest(TypeId etype, Oid node, Oid edge) {
  MBQ_CHECK(etype >= 0 && static_cast<size_t>(etype) < types_.size());
  MBQ_CHECK(types_[etype].kind == ObjectKind::kEdge);
  types_[etype].out.edges[node].Add(edge);
}

void Graph::CorruptTypeCountForTest(TypeId type, int64_t delta) {
  MBQ_CHECK(type >= 0 && static_cast<size_t>(type) < types_.size());
  types_[type].count += delta;
}

}  // namespace mbq::bitmapstore
