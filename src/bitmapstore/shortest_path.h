#ifndef MBQ_BITMAPSTORE_SHORTEST_PATH_H_
#define MBQ_BITMAPSTORE_SHORTEST_PATH_H_

#include <vector>

#include "bitmapstore/graph.h"

namespace mbq::bitmapstore {

/// Unweighted single-pair shortest path by breadth-first search, mirroring
/// Sparksee's SinglePairShortestPathBFS algorithm class. Edge types to
/// traverse are registered before Run(); a maximum-hops bound keeps the
/// search from exhausting the graph (the practice the paper recommends).
class SinglePairShortestPathBFS {
 public:
  SinglePairShortestPathBFS(const Graph* graph, Oid source, Oid destination);

  /// Allows traversal of `etype` edges in direction `dir`.
  void AddEdgeType(TypeId etype, EdgesDirection dir);
  /// Bounds the search depth (default: unbounded).
  void SetMaximumHops(uint32_t max_hops) { max_hops_ = max_hops; }

  /// Executes the BFS. Must be called exactly once.
  Status Run();

  /// True if a path within the hop bound was found.
  bool Exists() const { return exists_; }
  /// Number of edges on the found path. Precondition: Exists().
  uint32_t GetCost() const;
  /// Nodes along the path, source first. Precondition: Exists().
  const std::vector<Oid>& GetPathAsNodes() const;
  /// Nodes expanded during the search (work measure).
  uint64_t nodes_expanded() const { return nodes_expanded_; }

 private:
  const Graph* graph_;
  Oid source_;
  Oid destination_;
  std::vector<std::pair<TypeId, EdgesDirection>> edge_types_;
  uint32_t max_hops_ = UINT32_MAX;
  bool ran_ = false;
  bool exists_ = false;
  std::vector<Oid> path_;
  uint64_t nodes_expanded_ = 0;
};

}  // namespace mbq::bitmapstore

#endif  // MBQ_BITMAPSTORE_SHORTEST_PATH_H_
